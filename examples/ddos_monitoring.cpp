// DDoS monitoring scenario: the paper's motivating workload. A monitoring
// system runs intrusion-detection-flavoured queries (flows, super-sources,
// p2p-detector) when a spoofed SYN flood hits the link. Without load
// shedding the capture buffer overflows exactly when the measurements matter
// most; with the predictive scheme the system degrades gracefully and the
// attack remains visible in the query results.
//
//   ./examples/ddos_monitoring

#include <cstdio>
#include <vector>

#include "src/api/pipeline.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

int main() {
  using namespace shedmon;

  trace::TraceSpec spec = trace::CescaII();
  spec.duration_s = 20.0;
  trace::Trace traffic = trace::TraceGenerator(spec).Generate();

  trace::DdosSpec flood;
  flood.start_s = 8.0;
  flood.duration_s = 5.0;
  flood.pps = 3000.0;
  flood.spoofed_sources = true;
  flood.syn_flood = true;
  InjectDdos(traffic, flood, 1234);
  std::printf("SYN flood injected: t = %.0f..%.0f s, %.0f pps, spoofed sources\n\n",
              flood.start_s, flood.start_s + flood.duration_s, flood.pps);

  const std::vector<std::string> queries = {"flows", "super-sources", "counter"};
  const double demand =
      core::MeasureMeanDemand(queries, traffic, core::OracleKind::kModel);

  for (const bool shedding : {false, true}) {
    auto pipeline = PipelineBuilder()
                        .Shedder(shedding ? core::ShedderKind::kPredictive
                                          : core::ShedderKind::kNoShed)
                        .Strategy(shed::StrategyKind::kMmfsPkt)
                        .CyclesPerBin(0.6 * demand)
                        .Build();
    std::vector<QueryHandle> handles;
    for (const auto& name : queries) {
      handles.push_back(pipeline.AddQuery(name));
    }
    pipeline.Push(traffic);
    pipeline.Finish();

    std::printf("=== %s ===\n", shedding ? "predictive load shedding" : "no load shedding");
    std::printf("uncontrolled drops: %llu packets\n",
                static_cast<unsigned long long>(pipeline.total_dropped()));

    // The flow count per 1 s interval is the attack's signature; the handle
    // hands back both the estimate and its unsampled reference twin.
    const auto& flows = dynamic_cast<const query::FlowsQuery&>(handles[0].query());
    const auto& ref_flows =
        dynamic_cast<const query::FlowsQuery&>(*handles[0].reference());
    std::printf("active 5-tuple flows per interval (estimate vs truth):\n");
    for (size_t i = 0; i < flows.flow_counts().size(); i += 2) {
      std::printf("  t=%2zu s: %8.0f  (truth %8.0f)\n", i, flows.flow_counts()[i],
                  i < ref_flows.flow_counts().size() ? ref_flows.flow_counts()[i] : 0.0);
    }
    for (const QueryHandle& handle : handles) {
      std::printf("%-14s mean error %.1f%%\n", handle.name().c_str(),
                  handle.Accuracy().mean_error * 100.0);
    }
    std::printf("\n");
  }
  std::printf(
      "With shedding, the flow-count surge (the attack) stays visible and\n"
      "accurate from sampled data; without it, batches are lost wholesale and\n"
      "the numbers are silently wrong — the paper's core motivation.\n");
  return 0;
}
