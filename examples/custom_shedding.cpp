// Custom load shedding (Ch. 6): a user-defined query brings its own shedding
// method instead of relying on packet/flow sampling. The example defines a
// SYN-rate query whose custom method processes a deterministic packet stride
// and rescales; it runs next to a selfish clone that ignores its budget and
// is policed by the enforcement policy.
//
//   ./examples/custom_shedding

#include <cmath>
#include <cstdio>
#include <memory>

#include "src/api/pipeline.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"

namespace {

using namespace shedmon;

// A user-written monitoring application: counts TCP SYNs per interval (a
// SYN-flood detector's front end). Its custom shedding method keeps every
// k-th packet and rescales — cheaper and more accurate for a rate estimate
// than random sampling, and entirely the query author's business.
class SynRateQuery : public query::Query {
 public:
  SynRateQuery() : Query("syn-rate", 10) {}

  const std::vector<double>& syn_counts() const { return snaps_; }

  bool supports_custom_shedding() const override { return true; }

  double IntervalError(const Query& reference, size_t interval) const override {
    const auto* ref = dynamic_cast<const SynRateQuery*>(&reference);
    if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
      return 1.0;
    }
    return util::RelativeError(snaps_[interval], ref->snaps_[interval]);
  }

 protected:
  void OnBatch(const query::BatchInput& in) override {
    const double inv = 1.0 / std::max(in.sampling_rate, 1e-6);
    for (const net::Packet& pkt : in.packets) {
      Count(pkt, inv);
    }
    ChargeWork(55.0 * static_cast<double>(in.packets.size()));
  }

  void OnCustomBatch(const query::BatchInput& in, double fraction) override {
    const size_t stride =
        std::max<size_t>(1, static_cast<size_t>(std::llround(1.0 / std::max(fraction, 1e-3))));
    size_t examined = 0;
    for (size_t i = 0; i < in.packets.size(); i += stride) {
      Count(in.packets[i], static_cast<double>(stride));
      ++examined;
    }
    AdjustProcessedCount(-(static_cast<double>(in.packets.size()) -
                           static_cast<double>(examined)));
    ChargeWork(55.0 * static_cast<double>(examined));
  }

  void OnEndInterval(size_t) override {
    snaps_.push_back(cur_);
    cur_ = 0.0;
  }

 private:
  void Count(const net::Packet& pkt, double weight) {
    if (pkt.rec->tuple.proto == net::kProtoTcp &&
        (pkt.rec->tcp_flags & net::kTcpSyn) != 0) {
      cur_ += weight;
    }
  }

  double cur_ = 0.0;
  std::vector<double> snaps_;
};

}  // namespace

int main() {
  using namespace shedmon;

  trace::TraceSpec spec = trace::CescaII();
  spec.duration_s = 15.0;
  trace::Trace traffic = trace::TraceGenerator(spec).Generate();
  trace::DdosSpec flood;
  flood.start_s = 7.0;
  flood.duration_s = 4.0;
  flood.pps = 2000.0;
  InjectDdos(traffic, flood, 77);

  const std::vector<std::string> base = {"counter", "flows"};
  const double demand = core::MeasureMeanDemand(base, traffic, core::OracleKind::kModel) * 2.0;

  // A user-written query cannot be cloned by name, so accuracy tracking
  // takes an explicit second instance to run over the unsampled stream.
  auto pipeline = PipelineBuilder()
                      .Shedder(core::ShedderKind::kPredictive)
                      .Strategy(shed::StrategyKind::kMmfsPkt)
                      .CyclesPerBin(0.5 * demand)
                      .CustomShedding()
                      .Build();
  QueryHandle syn_handle = pipeline.AddQuery(std::make_unique<SynRateQuery>(), {0.05, true},
                                             std::make_unique<SynRateQuery>());
  QueryHandle selfish_handle =
      pipeline.AddQuery(std::make_unique<query::SelfishP2pDetectorQuery>(), {0.05, true});
  pipeline.AddQuery("counter", {0.03, true});
  pipeline.AddQuery("flows", {0.05, true});

  pipeline.Push(traffic);
  pipeline.Finish();

  const auto& syn = dynamic_cast<const SynRateQuery&>(syn_handle.query());
  const auto& reference = dynamic_cast<const SynRateQuery&>(*syn_handle.reference());
  std::printf("SYN packets per interval (custom-shed estimate vs truth):\n");
  for (size_t i = 0; i < syn.syn_counts().size(); ++i) {
    std::printf("  t=%2zu s: %8.0f  (truth %8.0f)\n", i + 1, syn.syn_counts()[i],
                i < reference.syn_counts().size() ? reference.syn_counts()[i] : 0.0);
  }
  std::printf("\nmean error of the custom query: %.1f%%\n",
              syn_handle.Accuracy().mean_error * 100.0);
  std::printf("selfish neighbour policed %zu time(s); custom query policed %zu time(s)\n",
              pipeline.system().enforcement(selfish_handle.index()).times_policed(),
              pipeline.system().enforcement(syn_handle.index()).times_policed());
  std::printf("uncontrolled drops: %llu\n\n",
              static_cast<unsigned long long>(pipeline.total_dropped()));
  std::printf(
      "The system delegated shedding to the query, verified actual vs granted\n"
      "cycles every bin (§6.1.1), and disabled only the selfish neighbour.\n");
  return 0;
}
