// Quickstart for the public API: build a shedmon::Pipeline with predictive
// load shedding, register two queries through handles, push generated
// traffic at 2x overload packet by packet, watch bins stream out through an
// observer, and read live per-query accuracy straight from the handles.
//
//   ./examples/quickstart

#include <cstdio>

#include "src/api/pipeline.h"
#include "src/query/queries.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

namespace {

// Observers receive every closed bin on the pushing thread, in bin order.
// This one prints a one-line summary once a second (every tenth 100 ms bin).
class ProgressPrinter : public shedmon::BinObserver {
 public:
  void OnBin(const shedmon::core::BinLog& log, const shedmon::BinStats& stats) override {
    if (stats.bin_index % 10 != 0) {
      return;
    }
    std::printf("  t=%4.1fs  %5zu pkts  utilization %4.0f%%  shed %4.0f%%  drops %zu\n",
                static_cast<double>(log.start_us) * 1e-6, log.packets_in,
                stats.utilization * 100.0, stats.shed_fraction * 100.0, log.packets_dropped);
  }
};

}  // namespace

int main() {
  using namespace shedmon;

  // 1. Traffic: 15 s of synthetic mixed traffic on the CESCA-II profile.
  trace::TraceSpec spec = trace::CescaII();
  spec.duration_s = 15.0;
  const trace::Trace traffic = trace::TraceGenerator(spec).Generate();
  std::printf("generated %zu packets over %.0f s\n", traffic.packets.size(),
              spec.duration_s);

  // 2. Capacity: measure what full processing would need, then provision
  //    half of it — a sustained 2x overload (K = 0.5).
  const double demand =
      core::MeasureMeanDemand({"counter", "flows"}, traffic, core::OracleKind::kModel);

  // 3. The pipeline: fluent configuration, then stable handles per query.
  //    Threads(2) shards per-query work (and the reference instances) over
  //    two workers; results are bit-identical to the serial run.
  auto pipeline = PipelineBuilder()
                      .Shedder(core::ShedderKind::kPredictive)
                      .Strategy(shed::StrategyKind::kMmfsPkt)
                      .CyclesPerBin(0.5 * demand)
                      .Threads(2)
                      .Build();
  QueryHandle counter = pipeline.AddQuery("counter");
  QueryHandle flows = pipeline.AddQuery("flows");

  ProgressPrinter printer;
  pipeline.AddObserver(&printer);

  // 4. Push the raw packets; the pipeline bins them into 100 ms batches,
  //    predicts each batch's cost from 42 traffic features, decides how much
  //    to shed, samples, executes, learns — and fires the observer as each
  //    bin closes. No pre-batching on the caller's side.
  std::printf("\nstreaming (one status line per second):\n");
  for (const net::PacketRecord& packet : traffic.packets) {
    pipeline.Push(net::Packet::View(packet));
  }
  pipeline.Finish();

  // 5. Results, straight from the handle: per-interval outputs, scaled by
  //    the applied sampling rates.
  const auto& counter_query = dynamic_cast<const query::CounterQuery&>(counter.query());
  std::printf("\ncounter query, one row per 1 s interval (estimates from sampled data):\n");
  for (size_t i = 0; i < counter_query.snapshots().size(); ++i) {
    std::printf("  interval %2zu: %8.0f packets  %12.0f bytes\n", i,
                counter_query.snapshots()[i].pkts, counter_query.snapshots()[i].bytes);
  }

  // 6. How well did shedding preserve the answers? The pipeline ran
  //    unsampled reference instances alongside, so accuracy is one call.
  std::printf("\naccuracy against the pipeline-managed unsampled references:\n");
  for (const QueryHandle& handle : {counter, flows}) {
    const auto acc = handle.Accuracy();
    std::printf("  %-8s mean error %.2f%%  (stdev %.2f%%)\n", handle.name().c_str(),
                acc.mean_error * 100.0, acc.stdev_error * 100.0);
  }
  std::printf("\nshedding statistics: %llu packets in, %llu lost uncontrolled\n",
              static_cast<unsigned long long>(pipeline.total_packets()),
              static_cast<unsigned long long>(pipeline.total_dropped()));
  std::printf("(the demand was 2x the capacity: everything above was absorbed by\n"
              " controlled sampling, not by dropping packets at the capture buffer)\n");
  return 0;
}
