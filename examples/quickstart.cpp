// Quickstart: build a monitoring system with predictive load shedding,
// register two queries, feed it generated traffic at 2x overload and print
// what each query reported together with the shedding statistics.
//
//   ./examples/quickstart

#include <cstdio>

#include "src/core/runner.h"
#include "src/query/queries.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

int main() {
  using namespace shedmon;

  // 1. Traffic: 15 s of synthetic mixed traffic on the CESCA-II profile.
  trace::TraceSpec spec = trace::CescaII();
  spec.duration_s = 15.0;
  const trace::Trace traffic = trace::TraceGenerator(spec).Generate();
  std::printf("generated %zu packets over %.0f s\n", traffic.packets.size(),
              spec.duration_s);

  // 2. Capacity: measure what full processing would need, then provision
  //    half of it — a sustained 2x overload (K = 0.5).
  const std::vector<std::string> queries = {"counter", "flows"};
  const double demand =
      core::MeasureMeanDemand(queries, traffic, core::OracleKind::kModel);

  core::RunSpec run;
  run.system.shedder = core::ShedderKind::kPredictive;
  run.system.strategy = shed::StrategyKind::kMmfsPkt;
  run.system.cycles_per_bin = 0.5 * demand;
  // Shard per-query work (and the reference instances) across two workers.
  // Results are bit-identical to num_threads = 0; only wall-clock changes.
  run.system.num_threads = 2;
  run.oracle = core::OracleKind::kModel;
  run.query_names = queries;

  // 3. Run. The system predicts each batch's cost from 42 traffic features,
  //    decides how much to shed, samples, executes, and learns.
  core::RunResult result = core::RunSystemOnTrace(run, traffic);

  // 4. Results: per-interval outputs, scaled by the applied sampling rates.
  const auto& counter =
      dynamic_cast<const query::CounterQuery&>(result.system->query(0));
  std::printf("\ncounter query, one row per 1 s interval (estimates from sampled data):\n");
  for (size_t i = 0; i < counter.snapshots().size(); ++i) {
    std::printf("  interval %2zu: %8.0f packets  %12.0f bytes\n", i,
                counter.snapshots()[i].pkts, counter.snapshots()[i].bytes);
  }

  // 5. How well did shedding preserve the answers?
  std::printf("\naccuracy against an unsampled reference run:\n");
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto acc = result.Accuracy(q);
    std::printf("  %-8s mean error %.2f%%  (stdev %.2f%%)\n", queries[q].c_str(),
                acc.mean_error * 100.0, acc.stdev_error * 100.0);
  }
  std::printf("\nshedding statistics: %llu packets in, %llu lost uncontrolled\n",
              static_cast<unsigned long long>(result.system->total_packets()),
              static_cast<unsigned long long>(result.system->total_dropped()));
  std::printf("(the demand was 2x the capacity: everything above was absorbed by\n"
              " controlled sampling, not by dropping packets at the capture buffer)\n");
  return 0;
}
