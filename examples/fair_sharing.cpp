// Fair sharing among competing users (Ch. 5): a cheap counter query and an
// expensive pattern-search query compete for the same overloaded monitor.
// Compare CPU-fair (mmfs_cpu) and packet-fair (mmfs_pkt) allocations, with
// each user declaring only a minimum sampling rate — and see why lying about
// it cannot help (the Nash-equilibrium property of §5.3).
//
//   ./examples/fair_sharing

#include <cstdio>
#include <vector>

#include "src/api/pipeline.h"
#include "src/game/game.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"

int main() {
  using namespace shedmon;

  trace::TraceSpec spec = trace::CescaII();
  spec.duration_s = 12.0;
  const trace::Trace traffic = trace::TraceGenerator(spec).Generate();

  const std::vector<std::string> queries = {"counter", "pattern-search", "flows"};
  const std::vector<core::QueryConfig> configs = {
      {0.03, true},  // counter tolerates heavy sampling
      {0.10, true},  // pattern-search wants at least 10%
      {0.05, true},
  };
  const double demand =
      core::MeasureMeanDemand(queries, traffic, core::OracleKind::kModel);

  for (const auto strategy : {shed::StrategyKind::kMmfsCpu, shed::StrategyKind::kMmfsPkt}) {
    auto pipeline = PipelineBuilder()
                        .Shedder(core::ShedderKind::kPredictive)
                        .Strategy(strategy)
                        .CyclesPerBin(0.5 * demand)  // 2x overload
                        .Build();
    std::vector<QueryHandle> handles;
    for (size_t q = 0; q < queries.size(); ++q) {
      handles.push_back(pipeline.AddQuery(queries[q], configs[q]));
    }
    pipeline.Push(traffic);
    pipeline.Finish();

    std::printf("=== %s ===\n",
                strategy == shed::StrategyKind::kMmfsCpu ? "mmfs_cpu (fair in cycles)"
                                                         : "mmfs_pkt (fair in packets)");
    for (const QueryHandle& handle : handles) {
      util::RunningStats rate;
      for (const auto& bin : pipeline.log()) {
        if (handle.index() < bin.rate.size()) {
          rate.Add(bin.rate[handle.index()]);
        }
      }
      std::printf("  %-15s mean sampling rate %.2f   accuracy %.2f\n", handle.name().c_str(),
                  rate.mean(), handle.MeanAccuracy());
    }
    std::printf("  minimum accuracy across users: %.2f\n\n", pipeline.MinimumAccuracy());
  }

  // Why honesty is the best policy: the allocation game of §5.3.
  std::printf("The §5.3 game, 3 users, capacity 100 cycles:\n");
  game::GameConfig game_cfg;
  game_cfg.capacity = 100.0;
  game_cfg.full_demand.assign(3, 1e9);
  const std::vector<double> fair(3, 100.0 / 3.0);
  std::printf("  everyone demands C/|Q| = %.1f   -> payoff %.1f each (equilibrium: %s)\n",
              100.0 / 3.0, game::Payoff(game_cfg, fair, 0),
              game::IsNashEquilibrium(game_cfg, fair, 401, 1e-6) ? "yes" : "no");
  std::vector<double> greedy = fair;
  greedy[0] = 60.0;
  std::printf("  user 0 demands 60 instead       -> payoff %.1f (disabled)\n",
              game::Payoff(game_cfg, greedy, 0));
  std::vector<double> shy = fair;
  shy[0] = 10.0;
  std::printf("  user 0 demands 10 instead       -> payoff %.1f (strictly worse)\n",
              game::Payoff(game_cfg, shy, 0));
  return 0;
}
