# Google Benchmark acquisition for bench_micro: system package first (works
# fully offline, covers distro containers with libbenchmark-dev), FetchContent
# of a pinned release as the fallback — the same treatment gtest gets in
# ShedmonGoogleTest.cmake, so bench_micro always builds instead of being
# silently skipped.

find_package(benchmark QUIET)

if(NOT TARGET benchmark::benchmark)
  set(SHEDMON_BENCHMARK_TAG v1.8.3 CACHE STRING "Google Benchmark tag for FetchContent")

  include(FetchContent)
  FetchContent_Declare(googlebenchmark
    GIT_REPOSITORY https://github.com/google/benchmark.git
    GIT_TAG ${SHEDMON_BENCHMARK_TAG})

  # Library only: no benchmark self-tests (which would drag in gtest), no
  # install rules, and don't let its -Werror break our build.
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_WERROR OFF CACHE BOOL "" FORCE)

  FetchContent_MakeAvailable(googlebenchmark)

  # The in-tree build exports the plain `benchmark` target; normalise.
  if(NOT TARGET benchmark::benchmark)
    add_library(benchmark::benchmark ALIAS benchmark)
  endif()

  # Third-party code is not ours to keep tidy-clean.
  foreach(bench_target benchmark benchmark_main)
    if(TARGET ${bench_target})
      set_target_properties(${bench_target} PROPERTIES CXX_CLANG_TIDY "")
    endif()
  endforeach()
endif()
