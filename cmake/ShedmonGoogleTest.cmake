# GoogleTest acquisition: system package first (works fully offline, covers
# distro containers with libgtest-dev), FetchContent of a pinned release as
# the fallback. Plain find_package-then-fetch keeps this working on CMake
# 3.20 (FetchContent's FIND_PACKAGE_ARGS integration would need 3.24).

include(GoogleTest)

find_package(GTest QUIET)

if(NOT TARGET GTest::gtest_main)
  set(SHEDMON_GTEST_TAG v1.14.0 CACHE STRING "GoogleTest tag for FetchContent")

  include(FetchContent)
  FetchContent_Declare(googletest
    GIT_REPOSITORY https://github.com/google/googletest.git
    GIT_TAG ${SHEDMON_GTEST_TAG})

  # We only need the libraries, never install rules.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)

  FetchContent_MakeAvailable(googletest)

  # The in-tree build exports plain target names; normalise to GTest::.
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()

  # Third-party code is not ours to keep tidy-clean.
  foreach(gtest_target gtest gtest_main gmock gmock_main)
    if(TARGET ${gtest_target})
      set_target_properties(${gtest_target} PROPERTIES CXX_CLANG_TIDY "")
    endif()
  endforeach()
endif()
