# Shared compile/link settings for every shedmon target, exposed through an
# interface target so per-subsystem CMakeLists stay declarative.

add_library(shedmon_compile_options INTERFACE)
add_library(shedmon::compile_options ALIAS shedmon_compile_options)

target_include_directories(shedmon_compile_options INTERFACE
  $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}>
  $<INSTALL_INTERFACE:${CMAKE_INSTALL_INCLUDEDIR}/shedmon>)

target_compile_options(shedmon_compile_options INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall -Wextra>)

# Clang's thread-safety analysis is a compile-time race detector over the
# SHEDMON_GUARDED_BY/REQUIRES/... annotations (src/util/thread_annotations.h)
# and the util::Mutex wrappers. Promoted straight to an error on every clang
# build — an unannotated access to guarded state should never compile, not
# merely warn — while the rest of the warning set stays governed by
# SHEDMON_WERROR. GCC has no equivalent analysis; the macros expand to
# nothing there.
target_compile_options(shedmon_compile_options INTERFACE
  $<$<CXX_COMPILER_ID:Clang,AppleClang>:-Wthread-safety -Werror=thread-safety>)

if(SHEDMON_WERROR)
  target_compile_options(shedmon_compile_options INTERFACE
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Werror>)
endif()

if(SHEDMON_SANITIZE)
  string(REPLACE "," ";" shedmon_san_list "${SHEDMON_SANITIZE}")
  foreach(san IN LISTS shedmon_san_list)
    if(NOT san MATCHES "^(address|undefined|leak|thread|memory)$")
      message(FATAL_ERROR "Unknown sanitizer in SHEDMON_SANITIZE: ${san}")
    endif()
    target_compile_options(shedmon_compile_options INTERFACE
      -fsanitize=${san} -fno-omit-frame-pointer)
    target_link_options(shedmon_compile_options INTERFACE -fsanitize=${san})
  endforeach()
endif()

# shedmon_add_library(<name> <source...> [DEPS <target...>])
#
# Declares one static library per subsystem plus a shedmon::<name> alias.
# DEPS are PUBLIC so the link graph mirrors the include graph. Every
# subsystem library joins the shedmonTargets export set so downstream
# projects get the full DAG from find_package(shedmon).
function(shedmon_add_library name)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  add_library(${name} STATIC ${ARG_UNPARSED_ARGUMENTS})
  add_library(shedmon::${name} ALIAS ${name})
  target_link_libraries(${name} PUBLIC shedmon::compile_options ${ARG_DEPS})
  if(SHEDMON_INSTALL)
    install(TARGETS ${name} EXPORT shedmonTargets
      ARCHIVE DESTINATION ${CMAKE_INSTALL_LIBDIR})
  endif()
endfunction()

# shedmon_add_executable(<name> <source...> [DEPS <target...>])
function(shedmon_add_executable name)
  cmake_parse_arguments(ARG "" "" "DEPS" ${ARGN})
  add_executable(${name} ${ARG_UNPARSED_ARGUMENTS})
  target_link_libraries(${name} PRIVATE shedmon::compile_options ${ARG_DEPS})
endfunction()
