#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "src/query/accuracy.h"
#include "src/query/boyer_moore.h"
#include "src/query/queries.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/rng.h"

namespace shedmon::query {
namespace {

// ------------------------------------------------------------ Boyer-Moore --

TEST(BoyerMooreTest, FindsPatternAtEveryPosition) {
  const BoyerMoore bm("needle");
  const std::string hay = "xxneedlexx";
  EXPECT_EQ(bm.Find(reinterpret_cast<const uint8_t*>(hay.data()), hay.size()), 2u);
  const std::string front = "needle.....";
  EXPECT_EQ(bm.Find(reinterpret_cast<const uint8_t*>(front.data()), front.size()), 0u);
  const std::string back = ".....needle";
  EXPECT_EQ(bm.Find(reinterpret_cast<const uint8_t*>(back.data()), back.size()), 5u);
}

TEST(BoyerMooreTest, MissesAbsentPattern) {
  const BoyerMoore bm("needle");
  const std::string hay = "haystack without the n-word";
  EXPECT_EQ(bm.Find(reinterpret_cast<const uint8_t*>(hay.data()), hay.size()),
            BoyerMoore::kNpos);
}

TEST(BoyerMooreTest, TextShorterThanPattern) {
  const BoyerMoore bm("longpattern");
  const std::string hay = "short";
  EXPECT_EQ(bm.Find(reinterpret_cast<const uint8_t*>(hay.data()), hay.size()),
            BoyerMoore::kNpos);
}

TEST(BoyerMooreTest, RepeatedSuffixPatterns) {
  // Good-suffix-rule stress: repetitive pattern and text.
  // "aabaabababab": first "abab" starts at index 4, overlapping at 6 and 8.
  const BoyerMoore bm("abab");
  const std::string hay = "aabaabababab";
  EXPECT_EQ(bm.Find(reinterpret_cast<const uint8_t*>(hay.data()), hay.size()), 4u);
  EXPECT_EQ(bm.CountOccurrences(reinterpret_cast<const uint8_t*>(hay.data()), hay.size()), 3u);
}

TEST(BoyerMooreTest, BinaryPatternWithNulBytes) {
  const BoyerMoore bm(std::string("\xe3\x00\x01", 3));
  const uint8_t text[] = {0x10, 0xe3, 0x00, 0x01, 0x20};
  EXPECT_EQ(bm.Find(text, sizeof(text)), 1u);
}

TEST(BoyerMooreTest, EmptyPatternRejected) {
  EXPECT_THROW(BoyerMoore(""), std::invalid_argument);
}

TEST(BoyerMooreTest, MatchesBruteForceOnRandomInput) {
  util::Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text(200, ' ');
    for (auto& c : text) {
      c = static_cast<char>('a' + rng.NextBelow(4));
    }
    std::string pat(1 + rng.NextBelow(6), ' ');
    for (auto& c : pat) {
      c = static_cast<char>('a' + rng.NextBelow(4));
    }
    const BoyerMoore bm(pat);
    const size_t expected = text.find(pat);
    const size_t got = bm.Find(reinterpret_cast<const uint8_t*>(text.data()), text.size());
    if (expected == std::string::npos) {
      EXPECT_EQ(got, BoyerMoore::kNpos) << pat << " in " << text;
    } else {
      EXPECT_EQ(got, expected) << pat << " in " << text;
    }
  }
}

// ----------------------------------------------------------- query fixture --

struct Fixture {
  std::vector<net::PacketRecord> records;
  std::vector<std::vector<uint8_t>> payloads;

  void Add(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport, uint8_t proto,
           uint16_t len, std::string payload = "") {
    net::PacketRecord rec;
    rec.tuple = {src, dst, sport, dport, proto};
    rec.wire_len = len;
    rec.payload_len = static_cast<uint16_t>(payload.size());
    records.push_back(rec);
    payloads.emplace_back(payload.begin(), payload.end());
  }

  trace::PacketVec Packets() const {
    trace::PacketVec out;
    for (size_t i = 0; i < records.size(); ++i) {
      net::Packet p;
      p.rec = &records[i];
      if (!payloads[i].empty()) {
        p.payload = payloads[i].data();
        p.payload_len = static_cast<uint16_t>(payloads[i].size());
      }
      out.push_back(p);
    }
    return out;
  }
};

BatchInput Input(const trace::PacketVec& packets, double rate = 1.0) {
  return BatchInput{packets, 0, 100'000, rate};
}

// ---------------------------------------------------------------- counter --

TEST(CounterQueryTest, ExactWithoutSampling) {
  Fixture fx;
  for (int i = 0; i < 25; ++i) {
    fx.Add(1, 2, 10, 80, net::kProtoTcp, 100);
  }
  const auto packets = fx.Packets();
  CounterQuery q;
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  ASSERT_EQ(q.snapshots().size(), 1u);
  EXPECT_DOUBLE_EQ(q.snapshots()[0].pkts, 25.0);
  EXPECT_DOUBLE_EQ(q.snapshots()[0].bytes, 2500.0);
}

TEST(CounterQueryTest, ScalesBySamplingRateInverse) {
  Fixture fx;
  for (int i = 0; i < 30; ++i) {
    fx.Add(1, 2, 10, 80, net::kProtoTcp, 100);
  }
  const auto packets = fx.Packets();
  CounterQuery q;
  q.ProcessBatch(Input(packets, 0.5));
  q.EndInterval();
  EXPECT_DOUBLE_EQ(q.snapshots()[0].pkts, 60.0);
  EXPECT_DOUBLE_EQ(q.snapshots()[0].bytes, 6000.0);
}

TEST(CounterQueryTest, ZeroErrorAgainstIdenticalReference) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.Add(1, 2, 10, 80, net::kProtoTcp, 100);
  }
  const auto packets = fx.Packets();
  CounterQuery a;
  CounterQuery b;
  a.ProcessBatch(Input(packets));
  b.ProcessBatch(Input(packets));
  a.EndInterval();
  b.EndInterval();
  EXPECT_DOUBLE_EQ(a.IntervalError(b, 0), 0.0);
}

// ------------------------------------------------------------ application --

TEST(ApplicationQueryTest, ClassifiesWellKnownPorts) {
  EXPECT_EQ(ApplicationQuery::ClassifyPorts({1, 2, 30000, 80, 6}), net::AppClass::kWeb);
  EXPECT_EQ(ApplicationQuery::ClassifyPorts({1, 2, 30000, 53, 17}), net::AppClass::kDns);
  EXPECT_EQ(ApplicationQuery::ClassifyPorts({1, 2, 30000, 6881, 6}), net::AppClass::kP2p);
  EXPECT_EQ(ApplicationQuery::ClassifyPorts({1, 2, 30000, 22, 6}), net::AppClass::kSsh);
  EXPECT_EQ(ApplicationQuery::ClassifyPorts({1, 2, 30000, 40000, 6}), net::AppClass::kOther);
  // Source-port fallback for reverse-direction packets.
  EXPECT_EQ(ApplicationQuery::ClassifyPorts({1, 2, 443, 40000, 6}), net::AppClass::kWeb);
}

TEST(ApplicationQueryTest, SplitsTrafficByApp) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.Add(1, 2, 30000, 80, net::kProtoTcp, 100);
  }
  for (int i = 0; i < 5; ++i) {
    fx.Add(1, 2, 30000, 53, net::kProtoUdp, 60);
  }
  const auto packets = fx.Packets();
  ApplicationQuery q;
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  const auto& snap = q.snapshots()[0];
  EXPECT_DOUBLE_EQ(snap.pkts[static_cast<size_t>(net::AppClass::kWeb)], 10.0);
  EXPECT_DOUBLE_EQ(snap.pkts[static_cast<size_t>(net::AppClass::kDns)], 5.0);
}

// --------------------------------------------------------- high-watermark --

TEST(HighWatermarkQueryTest, TracksPeakBin) {
  Fixture small;
  small.Add(1, 2, 10, 80, net::kProtoTcp, 100);
  Fixture large;
  for (int i = 0; i < 50; ++i) {
    large.Add(1, 2, 10, 80, net::kProtoTcp, 1000);
  }
  const auto small_pkts = small.Packets();
  const auto large_pkts = large.Packets();
  HighWatermarkQuery q;
  q.ProcessBatch(Input(small_pkts));
  q.ProcessBatch(Input(large_pkts));
  q.ProcessBatch(Input(small_pkts));
  q.EndInterval();
  EXPECT_DOUBLE_EQ(q.watermarks()[0], 50000.0);
}

TEST(HighWatermarkQueryTest, CustomShedStrideEstimatesPeak) {
  Fixture fx;
  for (int i = 0; i < 400; ++i) {
    fx.Add(1, 2, 10, 80, net::kProtoTcp, 500);
  }
  const auto packets = fx.Packets();
  HighWatermarkQuery q;
  ASSERT_TRUE(q.supports_custom_shedding());
  q.ProcessCustom(Input(packets), 0.25);
  q.EndInterval();
  // 1-in-4 stride x 4 rescale over uniform sizes is exact.
  EXPECT_NEAR(q.watermarks()[0], 200000.0, 2000.0);
}

// ------------------------------------------------------------------ flows --

TEST(FlowsQueryTest, CountsDistinctFlows) {
  Fixture fx;
  for (uint32_t f = 0; f < 40; ++f) {
    for (int rep = 0; rep < 3; ++rep) {
      fx.Add(100 + f, 2, static_cast<uint16_t>(1000 + f), 80, net::kProtoTcp, 100);
    }
  }
  const auto packets = fx.Packets();
  FlowsQuery q;
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  EXPECT_DOUBLE_EQ(q.flow_counts()[0], 40.0);
}

TEST(FlowsQueryTest, FlowSamplingEstimateScales) {
  Fixture fx;
  for (uint32_t f = 0; f < 100; ++f) {
    fx.Add(100 + f, 2, static_cast<uint16_t>(1000 + f), 80, net::kProtoTcp, 100);
  }
  const auto packets = fx.Packets();
  // Emulate 50% flow sampling: feed half the flows, tell the query rate=0.5.
  trace::PacketVec half(packets.begin(), packets.begin() + 50);
  FlowsQuery q;
  q.ProcessBatch(Input(half, 0.5));
  q.EndInterval();
  EXPECT_DOUBLE_EQ(q.flow_counts()[0], 100.0);
}

TEST(FlowsQueryTest, IntervalResetsFlowTable) {
  Fixture fx;
  fx.Add(1, 2, 10, 80, net::kProtoTcp, 100);
  const auto packets = fx.Packets();
  FlowsQuery q;
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  // Same flow counts once per interval.
  EXPECT_DOUBLE_EQ(q.flow_counts()[0], 1.0);
  EXPECT_DOUBLE_EQ(q.flow_counts()[1], 1.0);
}

TEST(FlowsQueryTest, PrefersFlowSampling) {
  FlowsQuery q;
  EXPECT_EQ(q.preferred_sampling(), SamplingMethod::kFlow);
}

// ------------------------------------------------------------------ top-k --

TEST(TopKQueryTest, RanksDestinationsByBytes) {
  Fixture fx;
  for (int i = 0; i < 30; ++i) {
    fx.Add(1, 100, 10, 80, net::kProtoTcp, 1000);  // heavy hitter
  }
  for (int i = 0; i < 5; ++i) {
    fx.Add(1, 200, 10, 80, net::kProtoTcp, 100);
  }
  const auto packets = fx.Packets();
  TopKQuery q(5);
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  const auto& snap = q.snapshots()[0];
  ASSERT_GE(snap.topk.size(), 2u);
  EXPECT_EQ(snap.topk[0].first, 100u);
  EXPECT_DOUBLE_EQ(snap.topk[0].second, 30000.0);
}

TEST(TopKQueryTest, PerfectRunHasZeroMisrankedPairs) {
  Fixture fx;
  for (uint32_t d = 0; d < 20; ++d) {
    for (uint32_t rep = 0; rep <= d; ++rep) {
      fx.Add(1, 100 + d, 10, 80, net::kProtoTcp, 100);
    }
  }
  const auto packets = fx.Packets();
  TopKQuery a(5);
  TopKQuery b(5);
  a.ProcessBatch(Input(packets));
  b.ProcessBatch(Input(packets));
  a.EndInterval();
  b.EndInterval();
  EXPECT_DOUBLE_EQ(a.IntervalMisrankedPairs(b, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.IntervalError(b, 0), 0.0);
}

TEST(TopKQueryTest, MisrankingDetected) {
  // Estimate sees only the light destinations; reference sees all.
  Fixture light;
  for (uint32_t d = 0; d < 5; ++d) {
    light.Add(1, 200 + d, 10, 80, net::kProtoTcp, 100);
  }
  Fixture full;
  for (uint32_t d = 0; d < 5; ++d) {
    full.Add(1, 200 + d, 10, 80, net::kProtoTcp, 100);
  }
  for (uint32_t d = 0; d < 5; ++d) {
    for (int rep = 0; rep < 50; ++rep) {
      full.Add(1, 100 + d, 10, 80, net::kProtoTcp, 1000);  // true heavies
    }
  }
  const auto light_pkts = light.Packets();
  const auto full_pkts = full.Packets();
  TopKQuery est(5);
  TopKQuery ref(5);
  est.ProcessBatch(Input(light_pkts));
  ref.ProcessBatch(Input(full_pkts));
  est.EndInterval();
  ref.EndInterval();
  // Every (reported, true-heavy) pair is misranked: 5 x 5.
  EXPECT_DOUBLE_EQ(est.IntervalMisrankedPairs(ref, 0), 25.0);
  EXPECT_DOUBLE_EQ(est.IntervalError(ref, 0), 1.0);
}

TEST(TopKQueryTest, SampleAndHoldKeepsHeavyHitters) {
  util::Rng rng(43);
  Fixture fx;
  for (int i = 0; i < 2000; ++i) {
    fx.Add(1, 100, 10, 80, net::kProtoTcp, 1000);  // dominant key
  }
  for (int i = 0; i < 200; ++i) {
    fx.Add(1, 200 + static_cast<uint32_t>(rng.NextBelow(50)), 10, 80, net::kProtoTcp, 100);
  }
  const auto packets = fx.Packets();
  TopKQuery q(3);
  q.ProcessCustom(Input(packets), 0.3);
  q.EndInterval();
  ASSERT_FALSE(q.snapshots()[0].topk.empty());
  EXPECT_EQ(q.snapshots()[0].topk[0].first, 100u);
}

// ---------------------------------------------- trace and pattern-search --

TEST(TraceQueryTest, StoresBytesProportionalToInput) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.Add(1, 2, 10, 80, net::kProtoTcp, 500, std::string(460, 'x'));
  }
  const auto packets = fx.Packets();
  TraceQuery q;
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  EXPECT_DOUBLE_EQ(q.snapshots()[0].pkts_stored, 10.0);
  EXPECT_DOUBLE_EQ(q.snapshots()[0].bytes_stored, 4600.0);
}

TEST(TraceQueryTest, GenericErrorIsUnprocessedFraction) {
  Fixture fx;
  for (int i = 0; i < 100; ++i) {
    fx.Add(1, 2, 10, 80, net::kProtoTcp, 100);
  }
  const auto all = fx.Packets();
  const trace::PacketVec quarter(all.begin(), all.begin() + 25);
  TraceQuery est;
  TraceQuery ref;
  est.ProcessBatch(Input(quarter, 0.25));
  ref.ProcessBatch(Input(all));
  est.EndInterval();
  ref.EndInterval();
  EXPECT_DOUBLE_EQ(est.IntervalError(ref, 0), 0.75);
}

TEST(PatternSearchQueryTest, FindsPlantedPattern) {
  Fixture fx;
  fx.Add(1, 2, 10, 80, net::kProtoTcp, 200, "GET /index.html HTTP/1.1\r\n");
  fx.Add(1, 2, 10, 80, net::kProtoTcp, 200, std::string(100, 'z'));
  const auto packets = fx.Packets();
  PatternSearchQuery q("HTTP/1.1");
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  EXPECT_DOUBLE_EQ(q.match_counts()[0], 1.0);
}

// ----------------------------------------------------------- p2p-detector --

Fixture P2pFixture() {
  Fixture fx;
  // One BitTorrent flow: the handshake signature appears on the first two
  // stream packets (as the generator emits), both of which the detector
  // must observe to classify the flow.
  fx.Add(10, 20, 50000, 6881, net::kProtoTcp, 200,
         std::string(trace::BittorrentSignature()) + std::string(50, 'a'));
  fx.Add(10, 20, 50000, 6881, net::kProtoTcp, 200,
         std::string(trace::BittorrentSignature()) + std::string(50, 'a'));
  for (int i = 0; i < 5; ++i) {
    fx.Add(10, 20, 50000, 6881, net::kProtoTcp, 1400, std::string(200, 'b'));
  }
  // One plain web flow.
  fx.Add(11, 21, 50001, 80, net::kProtoTcp, 200, "GET / HTTP/1.1\r\n");
  for (int i = 0; i < 5; ++i) {
    fx.Add(11, 21, 50001, 80, net::kProtoTcp, 1400, std::string(200, 'c'));
  }
  return fx;
}

TEST(P2pDetectorQueryTest, DetectsSignatureFlows) {
  const Fixture fx = P2pFixture();
  const auto packets = fx.Packets();
  P2pDetectorQuery q;
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  ASSERT_EQ(q.p2p_flows().size(), 1u);
  ASSERT_EQ(q.p2p_flows()[0].size(), 1u);
  EXPECT_EQ(q.p2p_flows()[0].begin()->dst_port, 6881);
}

TEST(P2pDetectorQueryTest, ZeroErrorAgainstItself) {
  const Fixture fx = P2pFixture();
  const auto packets = fx.Packets();
  P2pDetectorQuery a;
  P2pDetectorQuery b;
  a.ProcessBatch(Input(packets));
  b.ProcessBatch(Input(packets));
  a.EndInterval();
  b.EndInterval();
  EXPECT_DOUBLE_EQ(a.IntervalError(b, 0), 0.0);
}

TEST(P2pDetectorQueryTest, CustomSheddingKeepsDetectionAtModerateBudget) {
  const Fixture fx = P2pFixture();
  const auto packets = fx.Packets();
  P2pDetectorQuery shed;
  P2pDetectorQuery ref;
  shed.ProcessCustom(Input(packets), 0.5);  // above first-packet cost share
  ref.ProcessBatch(Input(packets));
  shed.EndInterval();
  ref.EndInterval();
  EXPECT_DOUBLE_EQ(shed.IntervalError(ref, 0), 0.0);
}

TEST(P2pDetectorQueryTest, SelfishVariantIgnoresBudget) {
  const Fixture fx = P2pFixture();
  const auto packets = fx.Packets();
  SelfishP2pDetectorQuery selfish;
  selfish.ProcessCustom(Input(packets), 0.01);
  selfish.EndInterval();
  // Processed everything despite a 1% budget.
  EXPECT_DOUBLE_EQ(selfish.IntervalPacketsProcessed(0),
                   static_cast<double>(packets.size()));
}

// -------------------------------------------------------------- autofocus --

TEST(AutofocusQueryTest, FindsDominantPrefixCluster) {
  std::unordered_map<uint32_t, double> bytes;
  // 10.1.0.0/16 cluster: many hosts with moderate traffic.
  for (uint32_t h = 0; h < 100; ++h) {
    bytes[0x0a010000 + h] = 100.0;
  }
  // Background noise far away, below threshold.
  bytes[0xc0000001] = 10.0;
  const auto report = AutofocusQuery::ComputeClusters(bytes, 0.10);
  ASSERT_FALSE(report.empty());
  // Autofocus reports the most specific prefixes above threshold: every
  // reported cluster must sit inside 10.1.0.0/16 and be shorter than a host
  // route; the below-threshold noise host must not appear.
  for (const uint64_t enc : report) {
    const uint32_t prefix = static_cast<uint32_t>(enc >> 8);
    const uint32_t len = static_cast<uint32_t>(enc & 0xff);
    EXPECT_EQ(prefix >> 16, 0x0a01u) << std::hex << prefix;
    EXPECT_LT(len, 32u);
    EXPECT_NE(prefix, 0xc0000001u);
  }
}

TEST(AutofocusQueryTest, SingleHeavyHostReportedAsLeaf) {
  std::unordered_map<uint32_t, double> bytes;
  bytes[0x0a0a0a0a] = 1000.0;
  for (uint32_t h = 0; h < 50; ++h) {
    bytes[0x0b000000 + h * 7919] = 1.0;
  }
  const auto report = AutofocusQuery::ComputeClusters(bytes, 0.5);
  bool leaf = false;
  for (const uint64_t enc : report) {
    if ((enc >> 8) == 0x0a0a0a0a && (enc & 0xff) == 32) {
      leaf = true;
    }
  }
  EXPECT_TRUE(leaf);
}

TEST(AutofocusQueryTest, EmptyInputGivesEmptyReport) {
  EXPECT_TRUE(AutofocusQuery::ComputeClusters({}, 0.05).empty());
}

TEST(AutofocusQueryTest, EndToEndZeroErrorUnsampled) {
  Fixture fx;
  for (uint32_t h = 0; h < 60; ++h) {
    fx.Add(0x0a010000 + h, 2, 10, 80, net::kProtoTcp, 500);
  }
  const auto packets = fx.Packets();
  AutofocusQuery a(0.05);
  AutofocusQuery b(0.05);
  a.ProcessBatch(Input(packets));
  b.ProcessBatch(Input(packets));
  a.EndInterval();
  b.EndInterval();
  EXPECT_DOUBLE_EQ(a.IntervalError(b, 0), 0.0);
}

// ---------------------------------------------------------- super-sources --

TEST(SuperSourcesQueryTest, IdentifiesLargestFanOut) {
  Fixture fx;
  // Scanner: one source touching 80 destinations.
  for (uint32_t d = 0; d < 80; ++d) {
    fx.Add(999, 1000 + d, 10, 80, net::kProtoTcp, 60);
  }
  // Normal sources: 2 destinations each.
  for (uint32_t s = 0; s < 10; ++s) {
    fx.Add(100 + s, 1, 10, 80, net::kProtoTcp, 60);
    fx.Add(100 + s, 2, 10, 80, net::kProtoTcp, 60);
  }
  const auto packets = fx.Packets();
  SuperSourcesQuery q(3);
  q.ProcessBatch(Input(packets));
  q.EndInterval();
  const auto& snap = q.snapshots()[0];
  ASSERT_FALSE(snap.top.empty());
  EXPECT_EQ(snap.top[0].first, 999u);
  EXPECT_NEAR(snap.top[0].second, 80.0, 16.0);
}

TEST(SuperSourcesQueryTest, FanOutErrorSmallWhenUnsampled) {
  Fixture fx;
  for (uint32_t s = 0; s < 5; ++s) {
    for (uint32_t d = 0; d < 20 + 10 * s; ++d) {
      fx.Add(10 + s, 1000 + d, 10, 80, net::kProtoTcp, 60);
    }
  }
  const auto packets = fx.Packets();
  SuperSourcesQuery a(5);
  SuperSourcesQuery b(5);
  a.ProcessBatch(Input(packets));
  b.ProcessBatch(Input(packets));
  a.EndInterval();
  b.EndInterval();
  EXPECT_LT(a.IntervalError(b, 0), 0.01);
}

// -------------------------------------------------- factory and reference --

TEST(QueryFactory, BuildsEveryStandardQuery) {
  for (const auto& name : AllQueryNames()) {
    const auto q = MakeQuery(name);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->name(), name);
  }
  EXPECT_THROW(MakeQuery("no-such-query"), std::invalid_argument);
}

TEST(QueryFactory, StandardSetsHaveExpectedSizes) {
  EXPECT_EQ(StandardSevenQueryNames().size(), 7u);
  EXPECT_EQ(StandardNineQueryNames().size(), 9u);
  EXPECT_EQ(AllQueryNames().size(), 10u);
}

TEST(RunReferenceTest, ProducesIntervalsForAllQueries) {
  trace::TraceSpec spec;
  spec.duration_s = 3.0;
  spec.flows_per_s = 150.0;
  spec.payloads = true;
  spec.seed = 77;
  const auto t = trace::TraceGenerator(spec).Generate();
  const auto refs = RunReference({"counter", "flows", "p2p-detector"}, t);
  ASSERT_EQ(refs.size(), 3u);
  for (const auto& q : refs) {
    EXPECT_GE(q->completed_intervals(), 3u) << q->name();
  }
}

TEST(RunReferenceTest, ReferenceIsSelfConsistent) {
  trace::TraceSpec spec;
  spec.duration_s = 2.0;
  spec.flows_per_s = 100.0;
  spec.seed = 78;
  const auto t = trace::TraceGenerator(spec).Generate();
  const auto a = RunReference({"counter"}, t);
  const auto b = RunReference({"counter"}, t);
  EXPECT_NEAR(a[0]->MeanError(*b[0]), 0.0, 1e-12);
}

// Parameterized sweep reproducing Fig. 6.4's shape: error grows as the
// sampling rate falls, and at full rate the error vanishes.
class SamplingSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplingSweep, CounterErrorBoundedByRate) {
  const double rate = GetParam();
  trace::TraceSpec spec;
  spec.duration_s = 4.0;
  spec.flows_per_s = 200.0;
  spec.seed = 79;
  const auto t = trace::TraceGenerator(spec).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  util::Rng rng(80);
  CounterQuery est;
  CounterQuery ref;
  size_t bins = 0;
  while (batcher.Next(batch)) {
    trace::PacketVec sampled;
    for (const auto& pkt : batch.packets) {
      if (rng.NextDouble() < rate) {
        sampled.push_back(pkt);
      }
    }
    est.ProcessBatch(BatchInput{sampled, batch.start_us, batch.duration_us, rate});
    ref.ProcessBatch(BatchInput{batch.packets, batch.start_us, batch.duration_us, 1.0});
    if (++bins % 10 == 0) {
      est.EndInterval();
      ref.EndInterval();
    }
  }
  const double err = est.MeanError(ref);
  if (rate >= 0.999) {
    EXPECT_NEAR(err, 0.0, 1e-9);
  } else {
    // Binomial sampling error at ~hundreds of packets per interval.
    EXPECT_LT(err, 0.30 * std::sqrt((1.0 - rate) / rate));
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingSweep, ::testing::Values(0.05, 0.1, 0.3, 0.6, 1.0));

}  // namespace
}  // namespace shedmon::query
