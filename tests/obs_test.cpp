// src/obs/ unit tests: instrument semantics (striped counters, gauges,
// fixed-bucket histograms), the get-or-create registry contract, Prometheus
// exposition (cumulative buckets, +Inf, label escaping), the JSONL event
// log, and the snapshot primitives' byte-exact round-trip.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/prometheus.h"
#include "src/obs/snapshot.h"

namespace shedmon::obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(Counter, SumsStripesExactly) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0.0);
  counter.Increment();
  counter.Add(2.5);
  EXPECT_EQ(counter.Value(), 3.5);
}

TEST(Counter, ConcurrentAddsLoseNothing) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.Add(1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<double>(kThreads * kAddsPerThread));
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.Set(4.0);
  EXPECT_EQ(gauge.Value(), 4.0);
  gauge.Add(-1.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Set(0.0);
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(Histogram, BucketsByUpperEdgeWithImplicitInf) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (le 1)
  histogram.Observe(1.0);    // bucket 0: edges are inclusive upper bounds
  histogram.Observe(5.0);    // bucket 1 (le 10)
  histogram.Observe(1000.0); // +Inf tail
  const Histogram::Data data = histogram.Read();
  ASSERT_EQ(data.counts.size(), 4u);  // three bounds + Inf
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 0u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.sum, 0.5 + 1.0 + 5.0 + 1000.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests_total", {}, "help");
  Counter& b = registry.GetCounter("requests_total");
  EXPECT_EQ(&a, &b);
  // Different labels are a different series of the same family.
  Counter& c = registry.GetCounter("requests_total", {{"code", "500"}});
  EXPECT_NE(&a, &c);
}

TEST(Registry, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.GetCounter("x_total");
  EXPECT_THROW(registry.GetGauge("x_total"), std::logic_error);
  EXPECT_THROW(registry.GetHistogram("x_total", {1.0}), std::logic_error);
  registry.GetHistogram("latency", {0.1, 1.0});
  EXPECT_THROW(registry.GetCounter("latency"), std::logic_error);
}

TEST(Registry, HistogramBoundsFixedByFirstRegistration) {
  MetricsRegistry registry;
  Histogram& first = registry.GetHistogram("latency", {0.1, 1.0});
  Histogram& again = registry.GetHistogram("latency", {5.0, 50.0, 500.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{0.1, 1.0}));
}

TEST(Registry, SnapshotIsSortedByFamilyAndStableWithinIt) {
  MetricsRegistry registry;
  registry.GetGauge("zz_gauge").Set(1.0);
  registry.GetCounter("aa_total", {{"q", "b"}}).Add(2.0);
  registry.GetCounter("aa_total", {{"q", "a"}}).Add(3.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.samples.size(), 3u);
  EXPECT_EQ(snapshot.samples[0].name, "aa_total");
  EXPECT_EQ(snapshot.samples[0].labels.at("q"), "b");  // registration order
  EXPECT_EQ(snapshot.samples[1].labels.at("q"), "a");
  EXPECT_EQ(snapshot.samples[2].name, "zz_gauge");
  EXPECT_EQ(snapshot.samples[2].value, 1.0);
}

// The smoke test behind the "scrape under load" CI leg: writers on several
// threads, a scraper snapshotting concurrently, and an exact final value.
TEST(Registry, ScrapeUnderLoadIsSafeAndConverges) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("events_total");
  Histogram& histogram = registry.GetHistogram("value", {0.5});
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      for (const MetricSample& sample : snapshot.samples) {
        EXPECT_GE(sample.value, 0.0);
        EXPECT_LE(sample.histogram.count, 4u * 10'000u);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        counter.Increment();
        histogram.Observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true);
  scraper.join();
  EXPECT_EQ(counter.Value(), 40'000.0);
  const Histogram::Data data = histogram.Read();
  EXPECT_EQ(data.count, 40'000u);
  EXPECT_EQ(data.counts[0], 20'000u);
  EXPECT_EQ(data.counts[1], 20'000u);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(Prometheus, EncodesCountersAndGaugesWithTypeAndHelp) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", {}, "Requests seen").Add(7.0);
  registry.GetGauge("queue_depth").Set(3.0);
  const std::string text = PrometheusEncoder::Encode(registry.Snapshot());
  EXPECT_NE(text.find("# HELP requests_total Requests seen\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3\n"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("latency_seconds", {0.1, 1.0});
  histogram.Observe(0.05);
  histogram.Observe(0.5);
  histogram.Observe(2.0);
  const std::string text = PrometheusEncoder::Encode(registry.Snapshot());
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 2.55\n"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("odd_total", {{"q", "a\"b\\c\nd"}}).Increment();
  const std::string text = PrometheusEncoder::Encode(registry.Snapshot());
  EXPECT_NE(text.find("odd_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured JSONL event log
// ---------------------------------------------------------------------------

TEST(JsonlLog, WritesOneEscapedObjectPerLine) {
  std::ostringstream out;
  JsonlLogger logger(out);
  logger.Write(LogEvent("query_added")
                   .Str("query", "says \"hi\"\n")
                   .Int("bin", 12)
                   .Num("rate", 0.25)
                   .Bool("custom", true));
  logger.Write(LogEvent("finish"));
  logger.Flush();
  EXPECT_EQ(out.str(),
            "{\"event\":\"query_added\",\"query\":\"says \\\"hi\\\"\\n\","
            "\"bin\":12,\"rate\":0.25,\"custom\":true}\n"
            "{\"event\":\"finish\"}\n");
}

TEST(JsonlLog, NonFiniteNumbersBecomeNull) {
  std::ostringstream out;
  JsonlLogger logger(out);
  logger.Write(LogEvent("e").Num("x", std::nan("")).Num("y", HUGE_VAL));
  EXPECT_EQ(out.str(), "{\"event\":\"e\",\"x\":null,\"y\":null}\n");
}

TEST(JsonlLog, FilePathConstructorThrowsWhenUnwritable) {
  EXPECT_THROW(JsonlLogger("/nonexistent-dir/events.jsonl"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Snapshot primitives
// ---------------------------------------------------------------------------

TEST(Snapshot, PrimitivesRoundTripByteExactly) {
  std::stringstream stream;
  SnapshotWriter writer(stream);
  writer.Magic();
  writer.U8(0xAB);
  writer.U32(0xDEADBEEF);
  writer.U64(0x0123456789ABCDEFULL);
  writer.I64(-42);
  writer.F64(0.1);  // not representable exactly: must round-trip bit-exactly
  writer.F64(-0.0);
  writer.Bool(true);
  writer.Str("shedmon\n\"snapshot\"");
  const std::array<uint64_t, 4> rng = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL};
  writer.RngState(rng);

  SnapshotReader reader(stream);
  reader.Magic();
  EXPECT_EQ(reader.U8(), 0xAB);
  EXPECT_EQ(reader.U32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.I64(), -42);
  const double f = reader.F64();
  EXPECT_EQ(f, 0.1);
  EXPECT_TRUE(std::signbit(reader.F64()));
  EXPECT_TRUE(reader.Bool());
  EXPECT_EQ(reader.Str(), "shedmon\n\"snapshot\"");
  EXPECT_EQ(reader.RngState(), rng);
}

TEST(Snapshot, BadMagicAndTruncationThrow) {
  {
    std::istringstream garbage("NOTASNAPxxxx");
    SnapshotReader reader(garbage);
    EXPECT_THROW(reader.Magic(), SnapshotError);
  }
  {
    std::stringstream stream;
    SnapshotWriter writer(stream);
    writer.Magic();
    writer.U32(7);
    std::istringstream truncated(stream.str().substr(0, stream.str().size() - 2));
    SnapshotReader reader(truncated);
    reader.Magic();
    EXPECT_THROW(reader.U32(), SnapshotError);
  }
}

// The v2 checksum trailer: both sides fold every byte into a running FNV-1a
// sum; the reader's Trailer() accepts an intact stream and rejects any
// payload corruption the primitive reads themselves would miss.
TEST(Snapshot, TrailerAcceptsIntactStreamAndRejectsCorruption) {
  std::stringstream stream;
  SnapshotWriter writer(stream);
  writer.Magic();
  writer.U64(12345);
  writer.Str("payload");
  writer.Trailer();
  const std::string bytes = stream.str();

  {
    std::istringstream in(bytes);
    SnapshotReader reader(in);
    reader.Magic();
    EXPECT_EQ(reader.U64(), 12345u);
    EXPECT_EQ(reader.Str(), "payload");
    EXPECT_NO_THROW(reader.Trailer());
  }
  // A bit flip in the payload keeps every field readable — 12345 becomes
  // another valid u64 — but the trailer catches it.
  {
    std::string flipped = bytes;
    flipped[13] = static_cast<char>(flipped[13] ^ 0x40);  // inside the U64
    std::istringstream in(flipped);
    SnapshotReader reader(in);
    reader.Magic();
    (void)reader.U64();
    (void)reader.Str();
    EXPECT_THROW(reader.Trailer(), SnapshotError);
  }
  // A truncated trailer reads as a short stream.
  {
    std::istringstream in(bytes.substr(0, bytes.size() - 3));
    SnapshotReader reader(in);
    reader.Magic();
    (void)reader.U64();
    (void)reader.Str();
    EXPECT_THROW(reader.Trailer(), SnapshotError);
  }
}

}  // namespace
}  // namespace shedmon::obs
