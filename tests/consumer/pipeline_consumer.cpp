// Minimal find_package(shedmon) consumer driving the public API end to end:
// build a Pipeline, push a second of generated traffic, and check that bins
// streamed out and live accuracy is readable from the handle. CI runs this
// against the installed package so the api/ headers are install-tested.

#include <cstdio>

#include "src/api/pipeline.h"
#include "src/api/sinks.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

int main() {
  using namespace shedmon;

  trace::TraceSpec spec = trace::CescaII();
  spec.duration_s = 1.0;
  const trace::Trace traffic = trace::TraceGenerator(spec).Generate();

  auto pipeline = PipelineBuilder()
                      .Shedder(core::ShedderKind::kPredictive)
                      .Strategy(shed::StrategyKind::kMmfsPkt)
                      .Build();
  QueryHandle counter = pipeline.AddQuery("counter");
  pipeline.Push(traffic);
  pipeline.Finish();

  if (pipeline.bins_processed() == 0 || !counter.valid()) {
    std::fprintf(stderr, "FAIL: pipeline processed no bins\n");
    return 1;
  }
  const auto accuracy = counter.Accuracy();
  if (accuracy.mean_error < 0.0 || accuracy.mean_error > 1.0) {
    std::fprintf(stderr, "FAIL: implausible accuracy %f\n", accuracy.mean_error);
    return 1;
  }
  std::printf("OK: %zu bins, %llu packets, counter mean error %.3f\n",
              pipeline.bins_processed(),
              static_cast<unsigned long long>(pipeline.total_packets()),
              accuracy.mean_error);
  return 0;
}
