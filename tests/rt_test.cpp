// Unit tests for the src/rt robustness primitives: injectable clocks, the
// bounded ingest queue, the deadline governor's degradation ladder, fault
// plan parsing / injection, the resilient sink writer, and atomic file
// publication. Everything time-related is driven by a ManualClock so the
// suite is fully deterministic.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/rt/atomic_file.h"
#include "src/rt/bounded_queue.h"
#include "src/rt/clock.h"
#include "src/rt/fault.h"
#include "src/rt/governor.h"
#include "src/rt/resilient.h"

namespace shedmon::rt {
namespace {

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

TEST(Clock, ManualClockAdvancesOnlyWhenTold) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowUs(), 1000u);
  clock.Advance(250);
  EXPECT_EQ(clock.NowUs(), 1250u);
  clock.SleepUs(750);  // sleeping on a manual clock advances it
  EXPECT_EQ(clock.NowUs(), 2000u);
}

TEST(Clock, SystemClockIsMonotonicAndSleeps) {
  SystemClock clock;
  const uint64_t before = clock.NowUs();
  clock.SleepUs(1000);
  EXPECT_GE(clock.NowUs(), before + 1000);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueue, DropNewestRejectsWhenFullAndCounts) {
  BoundedQueue<int> queue(2, OverflowPolicy::kDropNewest);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_FALSE(queue.Push(3));
  EXPECT_FALSE(queue.Push(4));
  EXPECT_EQ(queue.dropped_newest(), 2u);
  EXPECT_EQ(queue.TryPop(), 1);
  EXPECT_EQ(queue.TryPop(), 2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

TEST(BoundedQueue, DropOldestEvictsHeadAndCounts) {
  BoundedQueue<int> queue(2, OverflowPolicy::kDropOldest);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));  // evicts 1
  EXPECT_EQ(queue.dropped_oldest(), 1u);
  EXPECT_EQ(queue.TryPop(), 2);
  EXPECT_EQ(queue.TryPop(), 3);
}

TEST(BoundedQueue, BlockPolicyWaitsForTheConsumer) {
  BoundedQueue<int> queue(1, OverflowPolicy::kBlock);
  ASSERT_TRUE(queue.Push(1));
  std::thread producer([&] { EXPECT_TRUE(queue.Push(2)); });  // blocks until a Pop
  EXPECT_EQ(queue.Pop(), 1);
  producer.join();
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(BoundedQueue, CloseWakesProducersAndDrainsConsumers) {
  BoundedQueue<int> queue(1, OverflowPolicy::kBlock);
  ASSERT_TRUE(queue.Push(7));
  std::thread producer([&] { EXPECT_FALSE(queue.Push(8)); });  // blocked, then closed
  queue.Close();
  producer.join();
  EXPECT_FALSE(queue.Push(9));
  EXPECT_EQ(queue.Pop(), 7);              // close drains what is buffered
  EXPECT_EQ(queue.Pop(), std::nullopt);   // then reports closed-and-empty
}

TEST(BoundedQueue, DropOldestHandsBackTheEvictedItem) {
  // The capture slot ring needs the displaced item back (its slot must be
  // recycled, not leaked); kDropOldest reports it through the out-param.
  BoundedQueue<int> queue(2, OverflowPolicy::kDropOldest);
  std::optional<int> evicted;
  EXPECT_TRUE(queue.Push(1, &evicted));
  EXPECT_EQ(evicted, std::nullopt);
  EXPECT_TRUE(queue.Push(2, &evicted));
  EXPECT_EQ(evicted, std::nullopt);
  EXPECT_TRUE(queue.Push(3, &evicted));
  EXPECT_EQ(evicted, 1);
  EXPECT_EQ(queue.dropped_oldest(), 1u);
}

TEST(BoundedQueue, PopForTimesOutEmptyAndReturnsDataWhenPresent) {
  BoundedQueue<int> queue(2, OverflowPolicy::kBlock);
  EXPECT_EQ(queue.PopFor(1000), std::nullopt);  // 1ms timeout, empty queue
  ASSERT_TRUE(queue.Push(5));
  EXPECT_EQ(queue.PopFor(1000), 5);
  queue.Close();
  EXPECT_EQ(queue.PopFor(1000), std::nullopt);  // closed and empty: immediate
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, PopForWakesOnPushFromAnotherThread) {
  BoundedQueue<int> queue(2, OverflowPolicy::kBlock);
  std::thread producer([&] { queue.Push(9); });
  // Generous timeout: the wait must end on the push, not the deadline.
  EXPECT_EQ(queue.PopFor(5'000'000), 9);
  producer.join();
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> queue(0, OverflowPolicy::kDropNewest);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_FALSE(queue.Push(2));
}

// ---------------------------------------------------------------------------
// DeadlineGovernor
// ---------------------------------------------------------------------------

GovernorConfig TestGovernorConfig() {
  GovernorConfig config;
  config.budget_fraction = 0.5;  // 100ms bin -> 50ms budget
  config.boost_factor = 2.0;
  config.decay_bins = 2;
  return config;
}

constexpr uint64_t kBinUs = 100'000;

// Runs one bin that takes `elapsed_us` of wall time.
Directive RunBin(DeadlineGovernor& governor, ManualClock& clock, uint64_t elapsed_us,
                 uint64_t bin_index) {
  const Directive d = governor.Begin();
  clock.Advance(elapsed_us);
  governor.End(kBinUs, bin_index);
  return d;
}

TEST(DeadlineGovernor, CleanBinsStayAtLevelZero) {
  auto clock = std::make_shared<ManualClock>();
  DeadlineGovernor governor(TestGovernorConfig(), clock);
  for (uint64_t bin = 0; bin < 5; ++bin) {
    const Directive d = RunBin(governor, *clock, 10'000, bin);
    EXPECT_EQ(d.action, DegradeAction::kNone);
    EXPECT_EQ(d.rate_scale, 1.0);
  }
  EXPECT_EQ(governor.level(), 0);
  EXPECT_EQ(governor.deadline_misses(), 0u);
  EXPECT_FALSE(governor.last_deadline_missed());
}

TEST(DeadlineGovernor, LadderEscalatesOneRungPerOverrunAndCapsAtDropBin) {
  auto clock = std::make_shared<ManualClock>();
  DeadlineGovernor governor(TestGovernorConfig(), clock);

  // Bin 0 overruns (80ms > 50ms budget); its directive was still kNone —
  // the overrun can only shape the NEXT bin.
  Directive d = RunBin(governor, *clock, 80'000, 0);
  EXPECT_EQ(d.action, DegradeAction::kNone);
  EXPECT_TRUE(governor.last_deadline_missed());
  EXPECT_EQ(governor.last_overrun_us(), 30'000.0);
  EXPECT_EQ(governor.level(), 1);

  d = RunBin(governor, *clock, 80'000, 1);
  EXPECT_EQ(d.action, DegradeAction::kBoostShedding);
  EXPECT_EQ(d.rate_scale, 0.5);
  EXPECT_EQ(governor.level(), 2);

  d = RunBin(governor, *clock, 80'000, 2);
  EXPECT_EQ(d.action, DegradeAction::kTruncate);
  EXPECT_EQ(d.rate_scale, 0.25);
  EXPECT_EQ(d.truncate_queries, 1);
  EXPECT_EQ(governor.level(), 3);

  // The ladder caps at kDropBin; the rate scale keeps compounding so a
  // persistent overrun never plateaus.
  d = RunBin(governor, *clock, 80'000, 3);
  EXPECT_EQ(d.action, DegradeAction::kDropBin);
  EXPECT_EQ(governor.level(), 3);
  EXPECT_EQ(governor.deadline_misses(), 4u);
}

TEST(DeadlineGovernor, DecaysOneRungAfterConsecutiveCleanBins) {
  auto clock = std::make_shared<ManualClock>();
  DeadlineGovernor governor(TestGovernorConfig(), clock);
  RunBin(governor, *clock, 80'000, 0);
  RunBin(governor, *clock, 80'000, 1);
  ASSERT_EQ(governor.level(), 2);

  // One clean bin is not enough (decay_bins = 2)...
  RunBin(governor, *clock, 10'000, 2);
  EXPECT_EQ(governor.level(), 2);
  // ...two are; the streak then restarts for the next rung.
  RunBin(governor, *clock, 10'000, 3);
  EXPECT_EQ(governor.level(), 1);
  RunBin(governor, *clock, 10'000, 4);
  EXPECT_EQ(governor.level(), 1);
  const Directive d = RunBin(governor, *clock, 10'000, 5);
  EXPECT_EQ(d.action, DegradeAction::kBoostShedding);  // still level 1 going in
  EXPECT_EQ(governor.level(), 0);

  // Fully recovered: back to the no-op directive with scale 1.
  const Directive recovered = governor.Begin();
  EXPECT_EQ(recovered.action, DegradeAction::kNone);
  EXPECT_EQ(recovered.rate_scale, 1.0);
}

TEST(DeadlineGovernor, MissResetsTheCleanStreak) {
  auto clock = std::make_shared<ManualClock>();
  DeadlineGovernor governor(TestGovernorConfig(), clock);
  RunBin(governor, *clock, 80'000, 0);
  ASSERT_EQ(governor.level(), 1);
  RunBin(governor, *clock, 10'000, 1);  // clean (streak 1 of 2)
  RunBin(governor, *clock, 80'000, 2);  // miss: streak resets, level 2
  EXPECT_EQ(governor.level(), 2);
  RunBin(governor, *clock, 10'000, 3);
  EXPECT_EQ(governor.level(), 2);  // streak must rebuild from zero
}

TEST(DeadlineGovernor, InvalidConfigValuesAreClampedToSaneDefaults) {
  auto clock = std::make_shared<ManualClock>();
  GovernorConfig bad;
  bad.budget_fraction = -1.0;
  bad.boost_factor = 0.5;
  bad.decay_bins = 0;
  DeadlineGovernor governor(bad, clock);
  EXPECT_GT(governor.config().budget_fraction, 0.0);
  EXPECT_GT(governor.config().boost_factor, 1.0);
  EXPECT_GE(governor.config().decay_bins, 1);
}

// ---------------------------------------------------------------------------
// FaultPlan / FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesTheFullSpecLanguage) {
  const FaultPlan plan = FaultPlan::Parse(
      "seed=42,stall_bin=3:50000,stall_every=10:1000;clock_jump=5:200000,"
      "worker_stall=7:4000,sink_fail_n=2,sink_fail_every=9,short_write_every=13,"
      "corrupt_snapshot=1");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_EQ(plan.stall_bins.at(3), 50'000u);
  EXPECT_EQ(plan.stall_every, 10u);
  EXPECT_EQ(plan.stall_every_us, 1000u);
  EXPECT_EQ(plan.clock_jumps.at(5), 200'000u);
  EXPECT_EQ(plan.worker_stalls.at(7), 4000u);
  EXPECT_EQ(plan.sink_fail_n, 2u);
  EXPECT_EQ(plan.sink_fail_every, 9u);
  EXPECT_EQ(plan.short_write_every, 13u);
  EXPECT_EQ(plan.corrupt_snapshots, 1u);
}

TEST(FaultPlan, EmptySpecIsInertAndMalformedSpecsThrow) {
  const FaultPlan plan = FaultPlan::Parse("");
  EXPECT_TRUE(plan.stall_bins.empty());
  EXPECT_EQ(plan.sink_fail_n, 0u);

  EXPECT_THROW(FaultPlan::Parse("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("seed"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("seed=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("stall_bin=3"), std::invalid_argument);  // wants BIN:US
  EXPECT_THROW(FaultPlan::Parse("stall_bin=:5"), std::invalid_argument);
}

TEST(FaultInjector, AppliesScheduledStallsAndJumpsAgainstTheSharedClock) {
  auto clock = std::make_shared<ManualClock>();
  FaultPlan plan = FaultPlan::Parse("stall_bin=2:30000,clock_jump=4:500000,stall_every=3:1000");
  FaultInjector injector(plan, clock);

  injector.OnBinStart(0);
  EXPECT_EQ(clock->NowUs(), 0u);
  injector.OnBinStart(1);
  EXPECT_EQ(clock->NowUs(), 0u);
  injector.OnBinStart(2);  // stall_bin 2 plus stall_every (2 % 3 == 3 - 1)
  EXPECT_EQ(clock->NowUs(), 31'000u);
  injector.OnBinStart(3);
  EXPECT_EQ(clock->NowUs(), 31'000u);
  injector.OnBinStart(4);  // clock jump only
  EXPECT_EQ(clock->NowUs(), 531'000u);
  injector.OnBinStart(5);  // stall_every again
  EXPECT_EQ(clock->NowUs(), 532'000u);

  // Stalls are counted per stalled BIN: bin 2's stall_bin + stall_every
  // coalesce into one sleep, so two bins stalled (2 and 5).
  EXPECT_EQ(injector.bin_stalls_applied(), 2u);
  EXPECT_EQ(injector.clock_jumps_applied(), 1u);
}

TEST(FaultInjector, WorkerStallsApplyPerTaskOfTheScheduledBin) {
  auto clock = std::make_shared<ManualClock>();
  FaultInjector injector(FaultPlan::Parse("worker_stall=1:2000"), clock);
  injector.OnWorkerTask(0);
  EXPECT_EQ(clock->NowUs(), 0u);
  injector.OnWorkerTask(1);
  injector.OnWorkerTask(1);  // each task of the bin stalls
  EXPECT_EQ(clock->NowUs(), 4000u);
  EXPECT_EQ(injector.worker_stalls_applied(), 2u);
}

TEST(FaultInjector, SinkFaultScheduleIsAttemptDriven) {
  auto clock = std::make_shared<ManualClock>();
  FaultInjector injector(FaultPlan::Parse("sink_fail_n=2,short_write_every=4"), clock);
  // Attempts 0 and 1 fail with EIO, attempt 3 (the 4th) short-writes.
  EXPECT_EQ(injector.NextSinkWriteFault(), SinkFault::kEio);
  EXPECT_EQ(injector.NextSinkWriteFault(), SinkFault::kEio);
  EXPECT_EQ(injector.NextSinkWriteFault(), SinkFault::kNone);
  EXPECT_EQ(injector.NextSinkWriteFault(), SinkFault::kShortWrite);
  EXPECT_EQ(injector.NextSinkWriteFault(), SinkFault::kNone);
  EXPECT_EQ(injector.sink_faults_issued(), 3u);
}

TEST(FaultInjector, SnapshotCorruptionCreditsAreConsumedOnce) {
  auto clock = std::make_shared<ManualClock>();
  FaultInjector injector(FaultPlan::Parse("corrupt_snapshot=2"), clock);
  EXPECT_TRUE(injector.TakeSnapshotCorruption());
  EXPECT_TRUE(injector.TakeSnapshotCorruption());
  EXPECT_FALSE(injector.TakeSnapshotCorruption());
  EXPECT_EQ(injector.snapshots_corrupted(), 2u);
}

// ---------------------------------------------------------------------------
// ResilientWriter
// ---------------------------------------------------------------------------

RetryPolicy TestRetryPolicy() {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 8000;
  policy.jitter_fraction = 0.0;  // exact backoff arithmetic in tests
  return policy;
}

TEST(ResilientWriter, PassesWritesThroughWhenHealthy) {
  std::ostringstream out;
  auto clock = std::make_shared<ManualClock>();
  ResilientWriter writer(out, TestRetryPolicy(), clock);
  EXPECT_TRUE(writer.Write("row one\n"));
  EXPECT_TRUE(writer.Write("row two\n"));
  writer.Flush();
  EXPECT_EQ(out.str(), "row one\nrow two\n");
  EXPECT_EQ(writer.retries(), 0u);
  EXPECT_FALSE(writer.quarantined());
}

TEST(ResilientWriter, RetriesTransientEioWithBackoffOnTheClock) {
  std::ostringstream out;
  auto clock = std::make_shared<ManualClock>();
  FaultInjector injector(FaultPlan::Parse("sink_fail_n=2"), clock);
  ResilientWriter writer(out, TestRetryPolicy(), clock);
  writer.SetFaultInjector(&injector);

  EXPECT_TRUE(writer.Write("payload\n"));  // two EIOs, lands on the 3rd attempt
  EXPECT_EQ(out.str(), "payload\n");
  EXPECT_EQ(writer.retries(), 2u);
  // Backoff slept on the shared clock: 1000 (retry 1) + 2000 (retry 2).
  EXPECT_EQ(clock->NowUs(), 3000u);
  EXPECT_FALSE(writer.quarantined());
}

TEST(ResilientWriter, ShortWritesResumeFromTheFirstUnwrittenByte) {
  std::ostringstream out;
  auto clock = std::make_shared<ManualClock>();
  // Every attempt short-writes (half the remaining bytes land, then the
  // device "fails") until a single byte remains, which writes cleanly:
  // "abc\n" needs attempts of 2, 1, then 1 bytes.
  FaultInjector injector(FaultPlan::Parse("short_write_every=1"), clock);
  ResilientWriter writer(out, TestRetryPolicy(), clock);
  writer.SetFaultInjector(&injector);

  EXPECT_TRUE(writer.Write("abc\n"));
  // No byte duplicated, no byte lost.
  EXPECT_EQ(out.str(), "abc\n");
  EXPECT_EQ(writer.retries(), 2u);
}

TEST(ResilientWriter, ExhaustedRetriesQuarantineInsteadOfFailingTheRun) {
  std::ostringstream out;
  auto clock = std::make_shared<ManualClock>();
  FaultInjector injector(FaultPlan::Parse("sink_fail_n=1000"), clock);  // every attempt fails
  ResilientWriter writer(out, TestRetryPolicy(), clock);
  writer.SetFaultInjector(&injector);

  EXPECT_FALSE(writer.Write("doomed\n"));
  EXPECT_TRUE(writer.quarantined());
  EXPECT_EQ(writer.retries(), 3u);
  EXPECT_EQ(writer.dropped_writes(), 1u);
  // Quarantined writes are counted and discarded, not retried.
  const uint64_t t = clock->NowUs();
  EXPECT_FALSE(writer.Write("also doomed\n"));
  EXPECT_EQ(writer.dropped_writes(), 2u);
  EXPECT_EQ(clock->NowUs(), t);
  EXPECT_EQ(out.str(), "");
}

TEST(ResilientWriter, QuarantineIsRecordedInMetrics) {
  std::ostringstream out;
  auto clock = std::make_shared<ManualClock>();
  FaultInjector injector(FaultPlan::Parse("sink_fail_n=1000"), clock);
  obs::MetricsRegistry metrics;
  ResilientWriter writer(out, TestRetryPolicy(), clock);
  writer.SetFaultInjector(&injector);
  writer.Attach(&metrics, nullptr, "csv");

  EXPECT_FALSE(writer.Write("doomed\n"));
  const obs::MetricsSnapshot snapshot = metrics.Snapshot();
  bool saw_retries = false;
  bool saw_quarantine = false;
  for (const auto& sample : snapshot.samples) {
    if (sample.name == "shedmon_rt_sink_retries_total") {
      saw_retries = true;
      EXPECT_EQ(sample.value, 3.0);
    }
    if (sample.name == "shedmon_rt_sink_quarantined_total") {
      saw_quarantine = true;
      EXPECT_EQ(sample.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_retries);
  EXPECT_TRUE(saw_quarantine);
}

TEST(ResilientWriter, JitterIsDeterministicForAFixedSeed) {
  auto run = [](uint64_t seed) {
    std::ostringstream out;
    auto clock = std::make_shared<ManualClock>();
    FaultInjector injector(FaultPlan::Parse("sink_fail_n=3"), clock);
    RetryPolicy policy = TestRetryPolicy();
    policy.jitter_fraction = 0.25;
    policy.jitter_seed = seed;
    ResilientWriter writer(out, policy, clock);
    writer.SetFaultInjector(&injector);
    EXPECT_TRUE(writer.Write("row\n"));
    return clock->NowUs();  // total backoff slept, jitter included
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

// ---------------------------------------------------------------------------
// WriteFileAtomic
// ---------------------------------------------------------------------------

TEST(AtomicFile, WritesAndReplacesWithoutTempLitter) {
  const std::string path = ::testing::TempDir() + "shedmon_rt_atomic_test.bin";
  WriteFileAtomic(path, "first contents");
  {
    std::ifstream in(path, std::ios::binary);
    std::string got((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(got, "first contents");
  }
  WriteFileAtomic(path, "second");
  {
    std::ifstream in(path, std::ios::binary);
    std::string got((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_EQ(got, "second");
  }
  EXPECT_FALSE(std::ifstream(path + ".tmp." + std::to_string(::getpid())).good());
  std::remove(path.c_str());
}

TEST(AtomicFile, ThrowsOnUnwritableDestination) {
  EXPECT_THROW(WriteFileAtomic("/nonexistent-dir/sub/file.bin", "x"), std::runtime_error);
}

}  // namespace
}  // namespace shedmon::rt
