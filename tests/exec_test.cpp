// src/exec/ tests: ThreadPool semantics (ordering, exception propagation,
// zero-task and one-worker edges), QueryExecutor's ordered merge, and the
// subsystem's headline property — parallel pipelines are bit-identical to
// serial ones at every thread count, for every shedder kind.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/runner.h"
#include "src/exec/parallel_trace_runner.h"
#include "src/exec/query_executor.h"
#include "src/exec/thread_pool.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

namespace shedmon {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  exec::ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenZeroRequested) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  // The queue is FIFO, so one worker must observe tasks in submission order.
  exec::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  exec::ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  for (const size_t grain : {size_t{0}, size_t{1}, size_t{3}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(0, hits.size(), grain, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
    for (auto& h : hits) {
      h.store(0);
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndSingleIteration) {
  exec::ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t) { ++calls; });  // empty range: no calls
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(5, 6, 1, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForOnOneWorkerPoolDoesNotDeadlock) {
  // An external caller runs the first chunk itself and the single worker
  // drains the rest. (Calling ParallelFor from a worker of the same pool is
  // outside the contract — see the header.)
  exec::ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 100, 7, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstIterationError) {
  exec::ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.ParallelFor(0, 64, 1,
                                [&](size_t i) {
                                  executed.fetch_add(1);
                                  if (i == 13) {
                                    throw std::invalid_argument("13");
                                  }
                                }),
               std::invalid_argument);
  // All chunks ran to completion before the rethrow (no detached work left).
  EXPECT_EQ(executed.load(), 64);
}

// ---------------------------------------------------------------------------
// QueryExecutor
// ---------------------------------------------------------------------------

TEST(QueryExecutorTest, MergeRunsInIndexOrderAfterAllTasks) {
  exec::ThreadPool pool(4);
  exec::QueryExecutor executor(&pool);
  std::atomic<int> tasks_done{0};
  std::vector<size_t> merge_order;
  executor.Run(
      25, [&](size_t) { tasks_done.fetch_add(1); },
      [&](size_t i) {
        EXPECT_EQ(tasks_done.load(), 25);  // merge starts only after the barrier
        merge_order.push_back(i);
      });
  std::vector<size_t> expected(25);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merge_order, expected);
}

TEST(QueryExecutorTest, NullPoolRunsInline) {
  exec::QueryExecutor executor(nullptr);
  EXPECT_FALSE(executor.parallel());
  std::vector<std::string> events;
  executor.Run(
      2, [&](size_t i) { events.push_back("task" + std::to_string(i)); },
      [&](size_t i) { events.push_back("merge" + std::to_string(i)); });
  EXPECT_EQ(events, (std::vector<std::string>{"task0", "task1", "merge0", "merge1"}));
}

TEST(QueryExecutorTest, TaskFailureSkipsMerge) {
  exec::ThreadPool pool(2);
  exec::QueryExecutor executor(&pool);
  bool merged = false;
  EXPECT_THROW(executor.Run(
                   4,
                   [](size_t i) {
                     if (i == 2) {
                       throw std::runtime_error("task failed");
                     }
                   },
                   [&](size_t) { merged = true; }),
               std::runtime_error);
  EXPECT_FALSE(merged);
}

TEST(QueryExecutorTest, ZeroTasksIsANoOp) {
  exec::ThreadPool pool(2);
  exec::QueryExecutor executor(&pool);
  int calls = 0;
  executor.Run(0, [&](size_t) { ++calls; }, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// Parallel == serial, bit for bit
// ---------------------------------------------------------------------------

const trace::Trace& EquivalenceTrace() {
  static const trace::Trace t = [] {
    trace::TraceSpec spec;
    spec.name = "exec-equivalence";
    spec.duration_s = 4.0;
    spec.flows_per_s = 180.0;
    spec.payloads = true;
    spec.seed = 777;
    return trace::TraceGenerator(spec).Generate();
  }();
  return t;
}

std::vector<std::string> EquivalenceQueries() {
  // Mixed packet/flow sampling, custom-shedding support (high-watermark,
  // top-k) and byte-heavy work (pattern-search).
  return {"counter", "flows", "high-watermark", "top-k", "pattern-search"};
}

double EquivalenceDemand() {
  static const double demand = core::MeasureMeanDemand(
      EquivalenceQueries(), EquivalenceTrace(), core::OracleKind::kModel);
  return demand;
}

void ExpectBinLogsIdentical(const std::vector<core::BinLog>& serial,
                            const std::vector<core::BinLog>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t b = 0; b < serial.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    const core::BinLog& s = serial[b];
    const core::BinLog& p = parallel[b];
    EXPECT_EQ(s.start_us, p.start_us);
    EXPECT_EQ(s.packets_in, p.packets_in);
    EXPECT_EQ(s.packets_dropped, p.packets_dropped);
    EXPECT_EQ(s.packets_unsampled, p.packets_unsampled);
    EXPECT_EQ(s.batch_dropped, p.batch_dropped);
    EXPECT_EQ(s.overload, p.overload);
    EXPECT_EQ(s.predicted_cycles, p.predicted_cycles);
    EXPECT_EQ(s.avail_cycles, p.avail_cycles);
    EXPECT_EQ(s.query_cycles, p.query_cycles);
    EXPECT_EQ(s.ps_cycles, p.ps_cycles);
    EXPECT_EQ(s.ls_cycles, p.ls_cycles);
    EXPECT_EQ(s.como_cycles, p.como_cycles);
    EXPECT_EQ(s.backlog_cycles, p.backlog_cycles);
    EXPECT_EQ(s.rtthresh, p.rtthresh);
    EXPECT_EQ(s.rate, p.rate);
    EXPECT_EQ(s.per_query_cycles, p.per_query_cycles);
    EXPECT_EQ(s.disabled, p.disabled);
  }
}

struct EquivalenceCase {
  std::string label;
  core::ShedderKind shedder = core::ShedderKind::kPredictive;
  shed::StrategyKind strategy = shed::StrategyKind::kEqSrates;
  double k = 0.5;  // overload factor
  bool custom_shedding = false;
};

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<EquivalenceCase, size_t>> {};

TEST_P(ParallelEquivalence, BinLogsAndAccuraciesBitIdenticalToSerial) {
  const auto& [c, threads] = GetParam();
  core::RunSpec spec;
  spec.system.shedder = c.shedder;
  spec.system.strategy = c.strategy;
  spec.system.cycles_per_bin = std::max(1.0, EquivalenceDemand() * (1.0 - c.k));
  spec.system.enable_custom_shedding = c.custom_shedding;
  spec.oracle = core::OracleKind::kModel;
  spec.query_names = EquivalenceQueries();

  spec.system.num_threads = 0;
  const auto serial = RunSystemOnTrace(spec, EquivalenceTrace());
  spec.system.num_threads = threads;
  const auto parallel = RunSystemOnTrace(spec, EquivalenceTrace());

  EXPECT_EQ(serial.system->total_packets(), parallel.system->total_packets());
  EXPECT_EQ(serial.system->total_dropped(), parallel.system->total_dropped());
  ExpectBinLogsIdentical(serial.system->log(), parallel.system->log());
  ASSERT_EQ(serial.system->num_queries(), parallel.system->num_queries());
  for (size_t q = 0; q < serial.system->num_queries(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    const auto sa = serial.Accuracy(q);
    const auto pa = parallel.Accuracy(q);
    EXPECT_EQ(sa.mean_error, pa.mean_error);
    EXPECT_EQ(sa.stdev_error, pa.stdev_error);
    EXPECT_EQ(serial.MeanAccuracy(q), parallel.MeanAccuracy(q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShedderByThreads, ParallelEquivalence,
    ::testing::Combine(
        ::testing::Values(
            EquivalenceCase{"predictive_eq", core::ShedderKind::kPredictive,
                            shed::StrategyKind::kEqSrates, 0.5, false},
            EquivalenceCase{"predictive_mmfs_noshed_k0", core::ShedderKind::kPredictive,
                            shed::StrategyKind::kMmfsPkt, 0.0, false},
            EquivalenceCase{"predictive_custom", core::ShedderKind::kPredictive,
                            shed::StrategyKind::kMmfsCpu, 0.6, true},
            EquivalenceCase{"reactive", core::ShedderKind::kReactive,
                            shed::StrategyKind::kEqSrates, 0.5, false},
            EquivalenceCase{"no_shed", core::ShedderKind::kNoShed,
                            shed::StrategyKind::kEqSrates, 0.5, false}),
        ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// ParallelTraceRunner
// ---------------------------------------------------------------------------

TEST(ParallelTraceRunnerTest, RunAllMatchesIndividualSerialRuns) {
  std::vector<core::RunSpec> specs;
  for (const double k : {0.0, 0.4, 0.8}) {
    core::RunSpec spec;
    spec.system.cycles_per_bin = std::max(1.0, EquivalenceDemand() * (1.0 - k));
    spec.oracle = core::OracleKind::kModel;
    spec.query_names = EquivalenceQueries();
    specs.push_back(spec);
  }

  exec::ThreadPool pool(3);
  const auto parallel = exec::ParallelTraceRunner(&pool).RunAll(specs, EquivalenceTrace());
  const auto serial = exec::ParallelTraceRunner(nullptr).RunAll(specs, EquivalenceTrace());

  ASSERT_EQ(parallel.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectBinLogsIdentical(serial[i].system->log(), parallel[i].system->log());
    EXPECT_EQ(serial[i].AverageAccuracy(), parallel[i].AverageAccuracy());
    EXPECT_EQ(serial[i].MinimumAccuracy(), parallel[i].MinimumAccuracy());
  }
}

TEST(ParallelTraceRunnerTest, RunGridMapsCellIndexToResultIndex) {
  exec::ThreadPool pool(2);
  const auto results = exec::ParallelTraceRunner(&pool).RunGrid(
      4,
      [&](size_t cell) {
        core::RunSpec spec;
        // Distinguish cells by capacity so the mapping is observable.
        spec.system.cycles_per_bin = EquivalenceDemand() * (1.0 + static_cast<double>(cell));
        spec.oracle = core::OracleKind::kModel;
        spec.query_names = {"counter"};
        return spec;
      },
      EquivalenceTrace());
  ASSERT_EQ(results.size(), 4u);
  for (size_t cell = 0; cell < results.size(); ++cell) {
    EXPECT_EQ(results[cell].system->capacity(),
              EquivalenceDemand() * (1.0 + static_cast<double>(cell)))
        << "cell " << cell;
  }
}

}  // namespace
}  // namespace shedmon
