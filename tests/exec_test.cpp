// src/exec/ tests: ThreadPool semantics (ordering, exception propagation,
// zero-task and one-worker edges), QueryExecutor's ordered merge, and the
// subsystem's headline property — parallel pipelines are bit-identical to
// serial ones at every thread count, for every shedder kind.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "src/api/pipeline.h"
#include "src/core/runner.h"
#include "src/exec/parallel_trace_runner.h"
#include "src/exec/query_executor.h"
#include "src/exec/thread_pool.h"
#include "src/query/queries.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

namespace shedmon {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  exec::ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenZeroRequested) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  // The queue is FIFO, so one worker must observe tasks in submission order.
  exec::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i, &order] { order.push_back(i); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  exec::ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  for (const size_t grain : {size_t{0}, size_t{1}, size_t{3}, size_t{1000}}) {
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(0, hits.size(), grain, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
    for (auto& h : hits) {
      h.store(0);
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndSingleIteration) {
  exec::ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](size_t) { ++calls; });  // empty range: no calls
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(5, 6, 1, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForGrainBeyondRangeNeverMakesEmptyChunks) {
  // Regression: the caller-participation path re-checks the grain against
  // the range, so a 1-item range with a huge grain (a 1-packet batch after
  // shard splitting) runs exactly one non-empty caller chunk.
  exec::ThreadPool pool(4);
  for (const size_t grain : {size_t{1}, size_t{2}, size_t{1000}}) {
    int calls = 0;
    pool.ParallelFor(7, 8, grain, [&](size_t i) {
      ++calls;
      EXPECT_EQ(i, 7u);
    });
    EXPECT_EQ(calls, 1) << "grain " << grain;
  }
}

TEST(ThreadPoolTest, ParallelForOnOneWorkerPoolDoesNotDeadlock) {
  // An external caller runs the first chunk itself and the single worker
  // drains the rest. (Calling ParallelFor from a worker of the same pool is
  // outside the contract — see the header.)
  exec::ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 100, 7, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstIterationError) {
  exec::ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.ParallelFor(0, 64, 1,
                                [&](size_t i) {
                                  executed.fetch_add(1);
                                  if (i == 13) {
                                    throw std::invalid_argument("13");
                                  }
                                }),
               std::invalid_argument);
  // All chunks ran to completion before the rethrow (no detached work left).
  EXPECT_EQ(executed.load(), 64);
}

// ---------------------------------------------------------------------------
// QueryExecutor
// ---------------------------------------------------------------------------

TEST(QueryExecutorTest, MergeRunsInIndexOrderAfterAllTasks) {
  exec::ThreadPool pool(4);
  exec::QueryExecutor executor(&pool);
  std::atomic<int> tasks_done{0};
  std::vector<size_t> merge_order;
  executor.Run(
      25, [&](size_t) { tasks_done.fetch_add(1); },
      [&](size_t i) {
        EXPECT_EQ(tasks_done.load(), 25);  // merge starts only after the barrier
        merge_order.push_back(i);
      });
  std::vector<size_t> expected(25);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(merge_order, expected);
}

TEST(QueryExecutorTest, NullPoolRunsInline) {
  exec::QueryExecutor executor(nullptr);
  EXPECT_FALSE(executor.parallel());
  std::vector<std::string> events;
  executor.Run(
      2, [&](size_t i) { events.push_back("task" + std::to_string(i)); },
      [&](size_t i) { events.push_back("merge" + std::to_string(i)); });
  EXPECT_EQ(events, (std::vector<std::string>{"task0", "task1", "merge0", "merge1"}));
}

TEST(QueryExecutorTest, TaskFailureSkipsMerge) {
  exec::ThreadPool pool(2);
  exec::QueryExecutor executor(&pool);
  bool merged = false;
  EXPECT_THROW(executor.Run(
                   4,
                   [](size_t i) {
                     if (i == 2) {
                       throw std::runtime_error("task failed");
                     }
                   },
                   [&](size_t) { merged = true; }),
               std::runtime_error);
  EXPECT_FALSE(merged);
}

TEST(QueryExecutorTest, ZeroTasksIsANoOp) {
  exec::ThreadPool pool(2);
  exec::QueryExecutor executor(&pool);
  int calls = 0;
  executor.Run(0, [&](size_t) { ++calls; }, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// Shard planning and unit splitting
// ---------------------------------------------------------------------------

void ExpectCoversOnce(const std::vector<exec::ShardRange>& ranges, size_t units) {
  size_t pos = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, pos);
    EXPECT_LE(r.begin, r.end);
    pos = r.end;
  }
  EXPECT_EQ(pos, units);
}

TEST(ShardSplitTest, SplitUnitsNeverProducesEmptyRanges) {
  // Regression for the 1-packet-batch guard: more shards than units clamps
  // to one unit per shard instead of emitting zero-width ranges.
  const auto one = exec::QueryExecutor::SplitUnits(1, 8);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 1u);

  const auto three = exec::QueryExecutor::SplitUnits(3, 8);
  ASSERT_EQ(three.size(), 3u);
  ExpectCoversOnce(three, 3);
  for (const auto& r : three) {
    EXPECT_EQ(r.end - r.begin, 1u);
  }
}

TEST(ShardSplitTest, SplitUnitsZeroUnitsDegradesToOneEmptySpan) {
  const auto ranges = exec::QueryExecutor::SplitUnits(0, 4);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, 0u);
}

TEST(ShardSplitTest, SplitUnitsSpreadsRemainderOverLeadingRanges) {
  const auto ranges = exec::QueryExecutor::SplitUnits(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  ExpectCoversOnce(ranges, 10);
  EXPECT_EQ(ranges[0].end - ranges[0].begin, 3u);
  EXPECT_EQ(ranges[1].end - ranges[1].begin, 3u);
  EXPECT_EQ(ranges[2].end - ranges[2].begin, 2u);
  EXPECT_EQ(ranges[3].end - ranges[3].begin, 2u);
}

TEST(ShardSplitTest, PlanShardsRespectsPoolGrainAndBudget) {
  exec::ThreadPool pool(3);
  exec::QueryExecutor executor(&pool);
  // Capped by the max-shards budget.
  EXPECT_EQ(executor.PlanShards(10'000, 2, 256), 2u);
  // Capped by execution contexts (3 workers + the participating caller).
  EXPECT_EQ(executor.PlanShards(10'000, 16, 256), 4u);
  // Capped by the minimum grain; tiny batches stay whole.
  EXPECT_EQ(executor.PlanShards(600, 16, 256), 2u);
  EXPECT_EQ(executor.PlanShards(255, 16, 256), 1u);
  EXPECT_EQ(executor.PlanShards(1, 16, 256), 1u);
  EXPECT_EQ(executor.PlanShards(0, 16, 256), 1u);
  // max_shards <= 1 and inline executors never shard.
  EXPECT_EQ(executor.PlanShards(10'000, 1, 256), 1u);
  EXPECT_EQ(exec::QueryExecutor(nullptr).PlanShards(10'000, 16, 256), 1u);
}

// ---------------------------------------------------------------------------
// Parallel == serial, bit for bit
// ---------------------------------------------------------------------------

const trace::Trace& EquivalenceTrace() {
  static const trace::Trace t = [] {
    trace::TraceSpec spec;
    spec.name = "exec-equivalence";
    spec.duration_s = 4.0;
    spec.flows_per_s = 180.0;
    spec.payloads = true;
    spec.seed = 777;
    return trace::TraceGenerator(spec).Generate();
  }();
  return t;
}

std::vector<std::string> EquivalenceQueries() {
  // Mixed packet/flow sampling, custom-shedding support (high-watermark,
  // top-k), byte-heavy work with sub-packet shard seams (pattern-search),
  // and a deliberately non-shardable query (trace: order-sensitive rolling
  // storage) so sharded bins mix split and whole batches.
  return {"counter", "flows", "high-watermark", "top-k", "pattern-search", "trace"};
}

double EquivalenceDemand() {
  static const double demand = core::MeasureMeanDemand(
      EquivalenceQueries(), EquivalenceTrace(), core::OracleKind::kModel);
  return demand;
}

void ExpectBinLogsIdentical(const std::vector<core::BinLog>& serial,
                            const std::vector<core::BinLog>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t b = 0; b < serial.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    const core::BinLog& s = serial[b];
    const core::BinLog& p = parallel[b];
    EXPECT_EQ(s.start_us, p.start_us);
    EXPECT_EQ(s.packets_in, p.packets_in);
    EXPECT_EQ(s.packets_dropped, p.packets_dropped);
    EXPECT_EQ(s.packets_unsampled, p.packets_unsampled);
    EXPECT_EQ(s.batch_dropped, p.batch_dropped);
    EXPECT_EQ(s.overload, p.overload);
    EXPECT_EQ(s.predicted_cycles, p.predicted_cycles);
    EXPECT_EQ(s.avail_cycles, p.avail_cycles);
    EXPECT_EQ(s.query_cycles, p.query_cycles);
    EXPECT_EQ(s.ps_cycles, p.ps_cycles);
    EXPECT_EQ(s.ls_cycles, p.ls_cycles);
    EXPECT_EQ(s.como_cycles, p.como_cycles);
    EXPECT_EQ(s.backlog_cycles, p.backlog_cycles);
    EXPECT_EQ(s.rtthresh, p.rtthresh);
    EXPECT_EQ(s.rate, p.rate);
    EXPECT_EQ(s.per_query_cycles, p.per_query_cycles);
    EXPECT_EQ(s.disabled, p.disabled);
  }
}

struct EquivalenceCase {
  std::string label;
  core::ShedderKind shedder = core::ShedderKind::kPredictive;
  shed::StrategyKind strategy = shed::StrategyKind::kEqSrates;
  double k = 0.5;  // overload factor
  bool custom_shedding = false;
};

core::RunSpec EquivalenceSpec(const EquivalenceCase& c) {
  core::RunSpec spec;
  spec.system.shedder = c.shedder;
  spec.system.strategy = c.strategy;
  spec.system.cycles_per_bin = std::max(1.0, EquivalenceDemand() * (1.0 - c.k));
  spec.system.enable_custom_shedding = c.custom_shedding;
  spec.oracle = core::OracleKind::kModel;
  spec.query_names = EquivalenceQueries();
  return spec;
}

// One serial (threads 0, shards 1) golden run per case, shared across the
// (threads x shards) grid so the sweep stays fast.
const core::RunResult& SerialBaseline(const EquivalenceCase& c) {
  static std::map<std::string, core::RunResult>& cache =
      *new std::map<std::string, core::RunResult>();
  auto it = cache.find(c.label);
  if (it == cache.end()) {
    core::RunSpec spec = EquivalenceSpec(c);
    spec.system.num_threads = 0;
    it = cache.emplace(c.label, RunSystemOnTrace(spec, EquivalenceTrace())).first;
  }
  return it->second;
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<EquivalenceCase, size_t, size_t>> {};

TEST_P(ParallelEquivalence, BinLogsAndAccuraciesBitIdenticalToSerial) {
  const auto& [c, threads, shards] = GetParam();
  core::RunSpec spec = EquivalenceSpec(c);
  spec.system.num_threads = threads;
  spec.system.max_shards_per_query = shards;
  if (threads == 0 && shards > 1) {
    // Shards without a worker pool used to be silently inert; the eager
    // builder validation now rejects the combination outright.
    EXPECT_THROW(RunSystemOnTrace(spec, EquivalenceTrace()), shedmon::ConfigError);
    return;
  }
  const auto& serial = SerialBaseline(c);
  const auto parallel = RunSystemOnTrace(spec, EquivalenceTrace());

  EXPECT_EQ(serial.system->total_packets(), parallel.system->total_packets());
  EXPECT_EQ(serial.system->total_dropped(), parallel.system->total_dropped());
  ExpectBinLogsIdentical(serial.system->log(), parallel.system->log());
  ASSERT_EQ(serial.system->num_queries(), parallel.system->num_queries());
  for (size_t q = 0; q < serial.system->num_queries(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    const auto sa = serial.Accuracy(q);
    const auto pa = parallel.Accuracy(q);
    EXPECT_EQ(sa.mean_error, pa.mean_error);
    EXPECT_EQ(sa.stdev_error, pa.stdev_error);
    EXPECT_EQ(serial.MeanAccuracy(q), parallel.MeanAccuracy(q));
  }
}

// threads 0 (inline) x shards > 1 proves the builder rejects sharding
// without a pool; threads > 0 x shards {2, 8} exercises real (query, shard)
// fan-out, including shard counts past the pool width.
INSTANTIATE_TEST_SUITE_P(
    ShedderByThreadsAndShards, ParallelEquivalence,
    ::testing::Combine(
        ::testing::Values(
            EquivalenceCase{"predictive_eq", core::ShedderKind::kPredictive,
                            shed::StrategyKind::kEqSrates, 0.5, false},
            EquivalenceCase{"predictive_mmfs_noshed_k0", core::ShedderKind::kPredictive,
                            shed::StrategyKind::kMmfsPkt, 0.0, false},
            EquivalenceCase{"predictive_custom", core::ShedderKind::kPredictive,
                            shed::StrategyKind::kMmfsCpu, 0.6, true},
            EquivalenceCase{"reactive", core::ShedderKind::kReactive,
                            shed::StrategyKind::kEqSrates, 0.5, false},
            EquivalenceCase{"no_shed", core::ShedderKind::kNoShed,
                            shed::StrategyKind::kEqSrates, 0.5, false}),
        ::testing::Values(0, 2, 4), ::testing::Values(1, 2, 8)),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_t" + std::to_string(std::get<1>(info.param)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Sharded determinism (ROADMAP gap: oracle behavior under threads + shards)
// ---------------------------------------------------------------------------

// Runs the public Pipeline facade over the equivalence trace with worker
// threads and intra-query sharding; returns the run's BinLogs plus per-query
// accuracies.
std::unique_ptr<api::Pipeline> RunShardedPipeline(core::OracleKind oracle, size_t threads,
                                                  size_t shards, double capacity) {
  auto pipeline = PipelineBuilder()
                      .Oracle(oracle)
                      .CyclesPerBin(capacity)
                      .Threads(threads)
                      .MaxShardsPerQuery(shards)
                      .BuildUnique();
  for (const auto& name : EquivalenceQueries()) {
    pipeline->AddQuery(name);
  }
  pipeline->Push(EquivalenceTrace());
  pipeline->Finish();
  return pipeline;
}

TEST(ShardedDeterminism, ModelOracleSheddingDecisionsIdenticalAcrossRuns) {
  // Two independent pipelines, each with 4 workers and real shard fan-out:
  // every shedding decision (rates, disabled flags, overload bits) and every
  // charge must be bit-identical between the runs — the model oracle's
  // determinism survives the extra (query, shard) scheduling freedom.
  const double capacity = std::max(1.0, EquivalenceDemand() * 0.5);
  const auto a = RunShardedPipeline(core::OracleKind::kModel, 4, 4, capacity);
  const auto b = RunShardedPipeline(core::OracleKind::kModel, 4, 4, capacity);
  ExpectBinLogsIdentical(a->log(), b->log());
  ASSERT_EQ(a->num_queries(), b->num_queries());
  for (size_t q = 0; q < a->num_queries(); ++q) {
    EXPECT_EQ(a->MeanAccuracyAt(q), b->MeanAccuracyAt(q)) << "query " << q;
  }
}

// Records what the kQuery charges actually see, so the shard-cycles plumbing
// (worker-timed OnShardBatch -> WorkHint::shard_cycles -> wall-measuring
// oracle) is pinned deterministically instead of via flaky TSC assertions.
class ShardCyclesProbeOracle : public core::CostOracle {
 public:
  double Run(core::WorkKind kind, const core::WorkHint& hint,
             const std::function<void()>& fn) override {
    fn();
    if (kind == core::WorkKind::kQuery) {
      std::lock_guard<std::mutex> lock(mutex_);
      query_shard_cycles_.push_back(hint.shard_cycles);
    }
    // A wall-measuring oracle must fold the pre-spent shard cycles into the
    // charge; mimic that so the BinLog exposes whether they arrived.
    return 1.0 + hint.shard_cycles;
  }
  double DefaultBinBudget(uint64_t /*bin_us*/) const override { return 1e12; }
  std::string_view name() const override { return "shard-cycles-probe"; }

  std::vector<double> query_shard_cycles() {
    std::lock_guard<std::mutex> lock(mutex_);
    return query_shard_cycles_;
  }

 private:
  std::mutex mutex_;
  std::vector<double> query_shard_cycles_;
};

TEST(ShardedDeterminism, MeasuringOraclesChargeWorkerShardCycles) {
  core::SystemConfig cfg;
  cfg.cycles_per_bin = 1e12;
  cfg.num_threads = 4;
  cfg.max_shards_per_query = 4;
  auto owned_oracle = std::make_unique<ShardCyclesProbeOracle>();
  ShardCyclesProbeOracle* oracle = owned_oracle.get();
  core::MonitoringSystem system(cfg, std::move(owned_oracle));
  system.AddQuery(query::MakeQuery("pattern-search"));  // byte-heavy, shards
  system.AddQuery(query::MakeQuery("trace"));           // never shards

  trace::Batcher batcher(EquivalenceTrace(), cfg.time_bin_us);
  trace::Batch batch;
  ASSERT_TRUE(batcher.Next(batch));
  ASSERT_GT(batch.size(), 0u);
  system.ProcessBatch(batch);
  system.Finish();

  // Both queries charged; the sharded one carried worker-timed shard cycles
  // into its hint, the non-shardable one must not have.
  const auto charges = oracle->query_shard_cycles();
  ASSERT_EQ(charges.size(), 2u);
  EXPECT_GT(*std::max_element(charges.begin(), charges.end()), 0.0);
  EXPECT_EQ(*std::min_element(charges.begin(), charges.end()), 0.0);
  // And the charge (1 + shard_cycles) flowed into the BinLog's accounting.
  ASSERT_EQ(system.log().size(), 1u);
  EXPECT_GT(system.log()[0].query_cycles, 2.0);
}

TEST(ShardedDeterminism, MeasuredOracleToleranceBandSmoke) {
  // The measured oracle charges real TSC cycles, so two runs are never
  // bit-identical; under threads + shards it must still behave sanely. With
  // ample capacity nothing but the cold-start probe ever sheds: every
  // post-warmup rate stays 1.0, no uncontrolled drops, and the accounting
  // stays inside loose structural bands.
  auto pipeline = RunShardedPipeline(core::OracleKind::kMeasured, 4, 4, /*capacity=*/1e12);
  EXPECT_EQ(pipeline->total_dropped(), 0u);
  EXPECT_EQ(pipeline->total_packets(), EquivalenceTrace().packets.size());
  const auto& log = pipeline->log();
  ASSERT_FALSE(log.empty());
  // Warm-up: the cost models need SystemConfig::warmup_observations bins.
  const size_t warmup = core::SystemConfig{}.warmup_observations;
  for (size_t b = 0; b < log.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    EXPECT_FALSE(log[b].batch_dropped);
    EXPECT_GE(log[b].query_cycles, 0.0);
    for (size_t q = 0; q < log[b].rate.size(); ++q) {
      EXPECT_GE(log[b].rate[q], 0.0);
      EXPECT_LE(log[b].rate[q], 1.0);
      if (b >= warmup) {
        EXPECT_EQ(log[b].rate[q], 1.0) << "query " << q;
      }
    }
  }
  for (size_t q = 0; q < pipeline->num_queries(); ++q) {
    const double accuracy = pipeline->MeanAccuracyAt(q);
    EXPECT_GE(accuracy, 0.0) << "query " << q;
    EXPECT_LE(accuracy, 1.0) << "query " << q;
  }
}

// ---------------------------------------------------------------------------
// ParallelTraceRunner
// ---------------------------------------------------------------------------

TEST(ParallelTraceRunnerTest, RunAllMatchesIndividualSerialRuns) {
  std::vector<core::RunSpec> specs;
  for (const double k : {0.0, 0.4, 0.8}) {
    core::RunSpec spec;
    spec.system.cycles_per_bin = std::max(1.0, EquivalenceDemand() * (1.0 - k));
    spec.oracle = core::OracleKind::kModel;
    spec.query_names = EquivalenceQueries();
    specs.push_back(spec);
  }

  exec::ThreadPool pool(3);
  const auto parallel = exec::ParallelTraceRunner(&pool).RunAll(specs, EquivalenceTrace());
  const auto serial = exec::ParallelTraceRunner(nullptr).RunAll(specs, EquivalenceTrace());

  ASSERT_EQ(parallel.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("spec " + std::to_string(i));
    ExpectBinLogsIdentical(serial[i].system->log(), parallel[i].system->log());
    EXPECT_EQ(serial[i].AverageAccuracy(), parallel[i].AverageAccuracy());
    EXPECT_EQ(serial[i].MinimumAccuracy(), parallel[i].MinimumAccuracy());
  }
}

TEST(ParallelTraceRunnerTest, RunGridMapsCellIndexToResultIndex) {
  exec::ThreadPool pool(2);
  const auto results = exec::ParallelTraceRunner(&pool).RunGrid(
      4,
      [&](size_t cell) {
        core::RunSpec spec;
        // Distinguish cells by capacity so the mapping is observable.
        spec.system.cycles_per_bin = EquivalenceDemand() * (1.0 + static_cast<double>(cell));
        spec.oracle = core::OracleKind::kModel;
        spec.query_names = {"counter"};
        return spec;
      },
      EquivalenceTrace());
  ASSERT_EQ(results.size(), 4u);
  for (size_t cell = 0; cell < results.size(); ++cell) {
    EXPECT_EQ(results[cell].system->capacity(),
              EquivalenceDemand() * (1.0 + static_cast<double>(cell)))
        << "cell " << cell;
  }
}

}  // namespace
}  // namespace shedmon
