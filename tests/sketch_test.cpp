#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "src/sketch/bitmap.h"
#include "src/sketch/fused_hash.h"
#include "src/sketch/h3.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace shedmon::sketch {
namespace {

TEST(H3Hash, DeterministicPerSeed) {
  H3Hash a(42);
  H3Hash b(42);
  const uint8_t key[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(a.Hash(key, 5), b.Hash(key, 5));
}

TEST(H3Hash, DifferentSeedsGiveDifferentFunctions) {
  H3Hash a(1);
  H3Hash b(2);
  const uint8_t key[4] = {9, 9, 9, 9};
  EXPECT_NE(a.Hash(key, 4), b.Hash(key, 4));
}

TEST(H3Hash, SingleByteChangesFlipOutput) {
  H3Hash h(7);
  uint8_t key[8] = {0};
  const uint64_t base = h.Hash(key, 8);
  for (int i = 0; i < 8; ++i) {
    key[i] = 1;
    EXPECT_NE(h.Hash(key, 8), base) << "byte " << i;
    key[i] = 0;
  }
}

TEST(H3Hash, UnitHashInRange) {
  H3Hash h(11);
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = rng.NextU64();
    uint8_t key[8];
    std::memcpy(key, &k, 8);
    const double u = h.HashUnit(key, 8);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(H3Hash, UnitHashApproximatelyUniform) {
  H3Hash h(13);
  util::Rng rng(5);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t k = rng.NextU64();
    uint8_t key[8];
    std::memcpy(key, &k, 8);
    ++buckets[static_cast<size_t>(h.HashUnit(key, 8) * 10.0)];
  }
  for (int c : buckets) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(H3Hash, PositionSensitivity) {
  // The same byte value at different positions must hash differently, and
  // appending bytes must change the hash (per-position tables).
  H3Hash h(17);
  const uint8_t at0[2] = {0x42, 0x00};
  const uint8_t at1[2] = {0x00, 0x42};
  EXPECT_NE(h.Hash(at0, 2), h.Hash(at1, 2));
  EXPECT_NE(h.Hash(at0, 1), h.Hash(at0, 2));
}

TEST(FusedTupleHasher, SingleFullWidthSubHashMatchesH3) {
  // A sub-hash over every key byte in order must reproduce H3Hash exactly.
  const uint64_t seed = 0xfeedbeef;
  const FusedTupleHasher fused(13, {{seed, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}}});
  const H3Hash reference(seed);
  util::Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    uint8_t key[13];
    for (auto& b : key) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    EXPECT_EQ(fused.Hash1(key), reference.Hash(key, 13));
    EXPECT_EQ(fused.Hash1Fixed<13>(key), reference.Hash(key, 13));
    EXPECT_DOUBLE_EQ(fused.HashUnit1(key), reference.HashUnit(key, 13));
    EXPECT_DOUBLE_EQ(fused.HashUnit1Fixed<13>(key), reference.HashUnit(key, 13));
  }
}

TEST(FusedTupleHasher, RandomSubKeysMatchMaterializedH3) {
  // Property test over random sub-key patterns: each fused sub-hash must be
  // bit-identical to extracting the sub-key bytes and hashing them with a
  // plain H3Hash of the same seed.
  util::Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t key_len = 2 + rng.NextU64() % 15;  // 2..16
    std::vector<FusedTupleHasher::SubHash> subs;
    const size_t num_subs = 1 + rng.NextU64() % FusedTupleHasher::kMaxFusedHashes;
    for (size_t s = 0; s < num_subs; ++s) {
      FusedTupleHasher::SubHash sub;
      sub.seed = rng.NextU64();
      const size_t sub_len = 1 + rng.NextU64() % key_len;
      for (size_t j = 0; j < sub_len; ++j) {
        sub.key_bytes.push_back(static_cast<uint8_t>(rng.NextU64() % key_len));
      }
      subs.push_back(std::move(sub));
    }
    const FusedTupleHasher fused(key_len, subs);
    ASSERT_EQ(fused.num_hashes(), num_subs);

    std::vector<uint64_t> out(num_subs);
    for (int i = 0; i < 50; ++i) {
      uint8_t key[16];
      for (size_t b = 0; b < key_len; ++b) {
        key[b] = static_cast<uint8_t>(rng.NextU64());
      }
      fused.HashAll(key, out.data());
      for (size_t s = 0; s < num_subs; ++s) {
        const H3Hash reference(subs[s].seed);
        std::vector<uint8_t> sub_key;
        for (const uint8_t pos : subs[s].key_bytes) {
          sub_key.push_back(key[pos]);
        }
        EXPECT_EQ(out[s], reference.Hash(sub_key.data(), sub_key.size()))
            << "trial " << trial << " sub " << s;
      }
    }
  }
}

TEST(FusedTupleHasher, RejectsBadShapes) {
  EXPECT_THROW(FusedTupleHasher(0, {{1, {0}}}), std::invalid_argument);
  EXPECT_THROW(FusedTupleHasher(17, {{1, {0}}}), std::invalid_argument);
  EXPECT_THROW(FusedTupleHasher(4, {}), std::invalid_argument);
  EXPECT_THROW(FusedTupleHasher(4, {{1, {4}}}), std::invalid_argument);
  EXPECT_THROW(FusedTupleHasher(4, {{1, {}}}), std::invalid_argument);
  // A sub-key longer than H3's table (duplicated positions) must be rejected,
  // not read past the end of the seeded tables.
  EXPECT_THROW(
      FusedTupleHasher(4, {{1, {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0}}}),
      std::invalid_argument);
  EXPECT_NO_THROW(FusedTupleHasher(4, {{1, {0, 1, 2, 3}}}));
}

TEST(DirectBitmap, RequiresPowerOfTwo) {
  EXPECT_THROW(DirectBitmap(100), std::invalid_argument);
  EXPECT_NO_THROW(DirectBitmap(128));
}

TEST(DirectBitmap, CountsSmallSetsExactly) {
  DirectBitmap bm(1024);
  // Distinct low bits -> distinct bitmap positions -> near-exact estimate.
  for (uint64_t i = 0; i < 50; ++i) {
    bm.Insert(i);
  }
  EXPECT_EQ(bm.bits_set(), 50u);
  EXPECT_NEAR(bm.Estimate(), 50.0, 2.5);
}

TEST(DirectBitmap, LinearCountingTracksCardinality) {
  for (const int n : {100, 300, 600}) {
    DirectBitmap bm(1024);
    util::Rng rng(n);
    std::unordered_set<uint64_t> keys;
    while (keys.size() < static_cast<size_t>(n)) {
      keys.insert(rng.NextU64());
    }
    for (uint64_t k : keys) {
      bm.Insert(util::HashU64(k));
    }
    EXPECT_NEAR(bm.Estimate(), n, 0.15 * n) << n;
  }
}

TEST(DirectBitmap, DuplicatesDoNotInflate) {
  DirectBitmap bm(256);
  for (int rep = 0; rep < 100; ++rep) {
    bm.Insert(util::HashU64(7));
  }
  EXPECT_EQ(bm.bits_set(), 1u);
}

TEST(DirectBitmap, ClearResets) {
  DirectBitmap bm(256);
  bm.Insert(1);
  bm.Clear();
  EXPECT_EQ(bm.bits_set(), 0u);
  EXPECT_DOUBLE_EQ(bm.Estimate(), 0.0);
}

TEST(DirectBitmap, UnionMatchesSetUnion) {
  DirectBitmap a(512);
  DirectBitmap b(512);
  for (uint64_t i = 0; i < 60; ++i) {
    a.Insert(util::HashU64(i));
  }
  for (uint64_t i = 30; i < 90; ++i) {
    b.Insert(util::HashU64(i));
  }
  a.Union(b);
  EXPECT_NEAR(a.Estimate(), 90.0, 10.0);
}

TEST(DirectBitmap, UnionSizeMismatchThrows) {
  DirectBitmap a(256);
  DirectBitmap b(512);
  EXPECT_THROW(a.Union(b), std::invalid_argument);
}

TEST(MultiResBitmap, RejectsBadComponentCount) {
  EXPECT_THROW(MultiResBitmap(1, 64), std::invalid_argument);
  EXPECT_THROW(MultiResBitmap(31, 64), std::invalid_argument);
}

TEST(MultiResBitmap, EmptyEstimatesZero) {
  MultiResBitmap bm;
  EXPECT_NEAR(bm.Estimate(), 0.0, 1e-9);
}

// Parameterized accuracy sweep: the paper dimensions its bitmaps for ~1%
// counting error; with default sizing we verify better than 12% over four
// orders of magnitude.
class MrbAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(MrbAccuracy, EstimateWithinTolerance) {
  const int n = GetParam();
  MultiResBitmap bm;
  util::Rng rng(static_cast<uint64_t>(n) * 77 + 1);
  std::unordered_set<uint64_t> keys;
  while (keys.size() < static_cast<size_t>(n)) {
    keys.insert(rng.NextU64());
  }
  for (uint64_t k : keys) {
    bm.Insert(k);  // keys are already uniform 64-bit values
  }
  const double est = bm.Estimate();
  EXPECT_NEAR(est, n, std::max(10.0, 0.12 * n)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, MrbAccuracy,
                         ::testing::Values(10, 100, 1000, 5000, 20000, 100000));

TEST(MultiResBitmap, UnionAccumulates) {
  MultiResBitmap a;
  MultiResBitmap b;
  util::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    a.Insert(rng.NextU64());
  }
  for (int i = 0; i < 500; ++i) {
    b.Insert(rng.NextU64());
  }
  const double before = a.Estimate();
  a.Union(b);
  EXPECT_GT(a.Estimate(), before * 1.5);
}

TEST(MultiResBitmap, CountNewMeasuresDisjointKeys) {
  MultiResBitmap interval;
  MultiResBitmap batch;
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    interval.Insert(rng.NextU64());
  }
  // Batch of 300 fresh keys: CountNew should see ~300.
  for (int i = 0; i < 300; ++i) {
    batch.Insert(rng.NextU64());
  }
  EXPECT_NEAR(interval.CountNew(batch), 300.0, 70.0);
}

TEST(MultiResBitmap, CountNewIsZeroForSeenKeys) {
  MultiResBitmap interval;
  MultiResBitmap batch;
  util::Rng rng(8);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng.NextU64());
  }
  for (uint64_t k : keys) {
    interval.Insert(k);
  }
  for (int i = 0; i < 100; ++i) {
    batch.Insert(keys[static_cast<size_t>(i)]);
  }
  EXPECT_NEAR(interval.CountNew(batch), 0.0, 20.0);
}

TEST(MultiResBitmap, ClearResetsEstimate) {
  MultiResBitmap bm;
  util::Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    bm.Insert(rng.NextU64());
  }
  bm.Clear();
  EXPECT_NEAR(bm.Estimate(), 0.0, 1e-9);
}

TEST(MultiResBitmap, DeterministicForSameInserts) {
  MultiResBitmap a;
  MultiResBitmap b;
  util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.NextU64();
    a.Insert(k);
    b.Insert(k);
  }
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

}  // namespace
}  // namespace shedmon::sketch
