#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/shed/enforcement.h"
#include "src/shed/sampler.h"
#include "src/shed/strategy.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/rng.h"

namespace shedmon::shed {
namespace {

trace::Trace SmallTrace() {
  trace::TraceSpec spec;
  spec.duration_s = 3.0;
  spec.flows_per_s = 250.0;
  spec.seed = 5;
  return trace::TraceGenerator(spec).Generate();
}

trace::PacketVec FirstBatch(const trace::Trace& t, trace::Batch& storage) {
  trace::Batcher batcher(t, 1'000'000);  // 1 s "batch" for plenty of packets
  EXPECT_TRUE(batcher.Next(storage));
  return storage.packets;
}

// ----------------------------------------------------------------- samplers --

TEST(PacketSamplerTest, RateOneKeepsEverything) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  PacketSampler sampler(1);
  EXPECT_EQ(sampler.Sample(packets, 1.0).size(), packets.size());
}

TEST(PacketSamplerTest, RateZeroDropsEverything) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  PacketSampler sampler(2);
  EXPECT_TRUE(sampler.Sample(packets, 0.0).empty());
}

TEST(PacketSamplerTest, KeepsApproximatelyRateFraction) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  ASSERT_GT(packets.size(), 500u);
  PacketSampler sampler(3);
  const auto out = sampler.Sample(packets, 0.4);
  const double frac = static_cast<double>(out.size()) / static_cast<double>(packets.size());
  EXPECT_NEAR(frac, 0.4, 0.08);
}

TEST(PacketSamplerTest, SampleIntoSelectsSameSetAsCopyingApi) {
  // Two samplers with the same seed consume the same RNG sequence, so the
  // in-place and copying APIs must pick exactly the same packets.
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  for (const double rate : {0.0, 0.3, 0.7, 1.0}) {
    PacketSampler copying(17);
    PacketSampler in_place(17);
    const auto copied = copying.Sample(packets, rate);
    trace::PacketVec buf;
    in_place.SampleInto(packets, rate, buf);
    ASSERT_EQ(copied.size(), buf.size()) << "rate " << rate;
    for (size_t i = 0; i < copied.size(); ++i) {
      EXPECT_EQ(copied[i].rec, buf[i].rec) << "rate " << rate << " index " << i;
    }
  }
}

TEST(PacketSamplerTest, SampleIntoClearsAndReusesBuffer) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  PacketSampler sampler(18);
  trace::PacketVec buf;
  sampler.SampleInto(packets, 0.5, buf);
  const size_t first_size = buf.size();
  const size_t first_cap = buf.capacity();
  ASSERT_GT(first_size, 0u);
  // A dirty, already-sized buffer must be fully replaced, not appended to,
  // and its capacity must be retained.
  sampler.SampleInto(packets, 0.5, buf);
  EXPECT_NEAR(static_cast<double>(buf.size()), static_cast<double>(first_size),
              0.25 * static_cast<double>(packets.size()));
  EXPECT_GE(buf.capacity(), first_cap);
  for (const auto& pkt : buf) {
    EXPECT_NE(pkt.rec, nullptr);
  }
}

TEST(FlowSamplerTest, SampleIntoSelectsSameSetAsCopyingApi) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  const FlowSampler sampler(19);
  for (const double rate : {0.0, 0.25, 0.6, 1.0}) {
    const auto copied = sampler.Sample(packets, rate);
    trace::PacketVec buf;
    sampler.SampleInto(packets, rate, buf);
    ASSERT_EQ(copied.size(), buf.size()) << "rate " << rate;
    for (size_t i = 0; i < copied.size(); ++i) {
      EXPECT_EQ(copied[i].rec, buf[i].rec) << "rate " << rate << " index " << i;
    }
  }
}

TEST(FlowSamplerTest, FlowsKeptOrDroppedCoherently) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  FlowSampler sampler(7);
  const auto out = sampler.Sample(packets, 0.5);
  std::set<net::FiveTuple> kept;
  for (const auto& pkt : out) {
    kept.insert(pkt.rec->tuple);
  }
  // Every packet of a kept flow must be present.
  std::map<net::FiveTuple, size_t> in_count;
  std::map<net::FiveTuple, size_t> out_count;
  for (const auto& pkt : packets) {
    ++in_count[pkt.rec->tuple];
  }
  for (const auto& pkt : out) {
    ++out_count[pkt.rec->tuple];
  }
  for (const auto& [tuple, count] : out_count) {
    EXPECT_EQ(count, in_count[tuple]);
  }
}

TEST(FlowSamplerTest, SamplesApproximatelyRateFractionOfFlows) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  std::set<net::FiveTuple> all_flows;
  for (const auto& pkt : packets) {
    all_flows.insert(pkt.rec->tuple);
  }
  ASSERT_GT(all_flows.size(), 100u);
  FlowSampler sampler(11);
  const auto out = sampler.Sample(packets, 0.3);
  std::set<net::FiveTuple> kept;
  for (const auto& pkt : out) {
    kept.insert(pkt.rec->tuple);
  }
  const double frac =
      static_cast<double>(kept.size()) / static_cast<double>(all_flows.size());
  EXPECT_NEAR(frac, 0.3, 0.10);
}

TEST(FlowSamplerTest, ReseedChangesSelection) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  FlowSampler sampler(13);
  const auto first = sampler.Sample(packets, 0.5);
  sampler.Reseed(14);
  const auto second = sampler.Sample(packets, 0.5);
  std::set<net::FiveTuple> f1;
  std::set<net::FiveTuple> f2;
  for (const auto& pkt : first) {
    f1.insert(pkt.rec->tuple);
  }
  for (const auto& pkt : second) {
    f2.insert(pkt.rec->tuple);
  }
  EXPECT_NE(f1, f2);
}

TEST(FlowSamplerTest, DeterministicWithoutReseed) {
  trace::Batch storage;
  const auto t = SmallTrace();
  const auto packets = FirstBatch(t, storage);
  FlowSampler sampler(17);
  const auto a = sampler.Sample(packets, 0.5);
  const auto b = sampler.Sample(packets, 0.5);
  EXPECT_EQ(a.size(), b.size());
}

// --------------------------------------------------------------- strategies --

std::vector<QueryDemand> Demands(std::initializer_list<std::pair<double, double>> list) {
  std::vector<QueryDemand> out;
  for (const auto& [cycles, min_rate] : list) {
    out.push_back({cycles, min_rate});
  }
  return out;
}

TEST(EqSrates, NoOverloadGivesFullRate) {
  const EqSratesStrategy s;
  const auto alloc = s.Allocate(Demands({{100, 0.1}, {200, 0.1}}), 1000);
  EXPECT_DOUBLE_EQ(alloc.rate[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc.rate[1], 1.0);
}

TEST(EqSrates, AppliesSingleCommonRate) {
  const EqSratesStrategy s;
  const auto alloc = s.Allocate(Demands({{100, 0.0}, {300, 0.0}}), 200);
  EXPECT_DOUBLE_EQ(alloc.rate[0], 0.5);
  EXPECT_DOUBLE_EQ(alloc.rate[1], 0.5);
}

TEST(EqSrates, DisablesQueriesWhoseFloorExceedsRate) {
  const EqSratesStrategy s;
  // Common rate would be 0.25; query 1 needs at least 0.9 -> disabled, and
  // the survivor then gets min(1, 200/100) = 1.
  const auto alloc = s.Allocate(Demands({{100, 0.0}, {700, 0.9}}), 200);
  EXPECT_TRUE(alloc.disabled[1]);
  EXPECT_DOUBLE_EQ(alloc.rate[1], 0.0);
  EXPECT_DOUBLE_EQ(alloc.rate[0], 1.0);
}

TEST(DisableLargestMinDemandsTest, DropsLargestFirst) {
  // Floors: 50, 500, 100 cycles; capacity 200. Dropping the 500-cycle floor
  // suffices (50 + 100 = 150 fits), so only query 1 is disabled.
  const auto disabled =
      DisableLargestMinDemands(Demands({{100, 0.5}, {1000, 0.5}, {200, 0.5}}), 200);
  EXPECT_FALSE(disabled[0]);
  EXPECT_TRUE(disabled[1]);
  EXPECT_FALSE(disabled[2]);
}

TEST(DisableLargestMinDemandsTest, KeepsFeasibleSet) {
  const auto disabled =
      DisableLargestMinDemands(Demands({{100, 0.5}, {1000, 0.5}, {200, 0.5}}), 160);
  // Floors: 50, 500, 100. Capacity 160: drop 500, then 50+100=150 fits.
  EXPECT_FALSE(disabled[0]);
  EXPECT_TRUE(disabled[1]);
  EXPECT_FALSE(disabled[2]);
}

TEST(MmfsCpu, GuaranteesMinimumRates) {
  const MmfsCpuStrategy s;
  const auto demands = Demands({{1000, 0.3}, {500, 0.2}, {200, 0.1}});
  const auto alloc = s.Allocate(demands, 800);
  for (size_t q = 0; q < demands.size(); ++q) {
    ASSERT_FALSE(alloc.disabled[q]);
    EXPECT_GE(alloc.rate[q], demands[q].min_sampling_rate - 1e-9);
  }
}

TEST(MmfsCpu, NeverExceedsCapacity) {
  const MmfsCpuStrategy s;
  const auto demands = Demands({{1000, 0.3}, {500, 0.2}, {200, 0.1}});
  const auto alloc = s.Allocate(demands, 800);
  EXPECT_LE(alloc.TotalCycles(demands), 800 * (1 + 1e-9));
}

TEST(MmfsCpu, EqualizesCyclesNotRates) {
  // Two queries, no floors, cheap one fully satisfiable: CPU fairness gives
  // both the same cycles, so the cheap query gets the higher rate.
  const MmfsCpuStrategy s;
  const auto demands = Demands({{1000, 0.0}, {100, 0.0}});
  const auto alloc = s.Allocate(demands, 400);
  EXPECT_NEAR(alloc.rate[1], 1.0, 1e-6);                    // 100 cycles
  EXPECT_NEAR(alloc.rate[0] * 1000.0, 300.0, 1.0);          // remaining 300
}

TEST(MmfsPkt, EqualizesRates) {
  // Same scenario: packet fairness levels the sampling rate instead.
  const MmfsPktStrategy s;
  const auto demands = Demands({{1000, 0.0}, {100, 0.0}});
  const auto alloc = s.Allocate(demands, 400);
  EXPECT_NEAR(alloc.rate[0], alloc.rate[1], 1e-6);
  EXPECT_NEAR(alloc.rate[0], 400.0 / 1100.0, 1e-6);
}

TEST(MmfsPkt, FloorsBindAndOthersShareRemainder) {
  const MmfsPktStrategy s;
  const auto demands = Demands({{1000, 0.8}, {1000, 0.0}});
  const auto alloc = s.Allocate(demands, 1000);
  EXPECT_NEAR(alloc.rate[0], 0.8, 1e-6);
  EXPECT_NEAR(alloc.rate[1], 0.2, 1e-6);
}

TEST(MmfsPkt, MaximizesMinimumRateVsCpu) {
  // The Fig. 5.1 phenomenon: with a heavy and many light queries, packet
  // fairness gives the heavy query a strictly better rate.
  const MmfsPktStrategy pkt;
  const MmfsCpuStrategy cpu;
  auto demands = Demands({{1000, 0.0}});
  for (int i = 0; i < 10; ++i) {
    demands.push_back({100, 0.0});
  }
  const double capacity = 0.5 * 2000.0;
  const auto a_pkt = pkt.Allocate(demands, capacity);
  const auto a_cpu = cpu.Allocate(demands, capacity);
  double min_pkt = 1.0;
  double min_cpu = 1.0;
  for (size_t q = 0; q < demands.size(); ++q) {
    min_pkt = std::min(min_pkt, a_pkt.rate[q]);
    min_cpu = std::min(min_cpu, a_cpu.rate[q]);
  }
  EXPECT_GT(min_pkt, min_cpu + 0.1);
}

TEST(Strategies, InfeasibleFloorsDisableLargestDemands) {
  for (const auto kind :
       {StrategyKind::kMmfsCpu, StrategyKind::kMmfsPkt}) {
    const auto s = MakeStrategy(kind);
    const auto demands = Demands({{1000, 0.9}, {100, 0.9}});
    const auto alloc = s->Allocate(demands, 500);
    EXPECT_TRUE(alloc.disabled[0]) << s->name();
    EXPECT_FALSE(alloc.disabled[1]) << s->name();
    EXPECT_GE(alloc.rate[1], 0.9) << s->name();
  }
}

TEST(Strategies, ZeroCapacityYieldsZeroRates) {
  for (const auto kind :
       {StrategyKind::kEqSrates, StrategyKind::kMmfsCpu, StrategyKind::kMmfsPkt}) {
    const auto s = MakeStrategy(kind);
    const auto alloc = s->Allocate(Demands({{100, 0.0}, {200, 0.0}}), 0.0);
    for (const double r : alloc.rate) {
      EXPECT_LE(r, 1e-6) << s->name();
    }
  }
}

// Property sweep: for random demand vectors, every strategy must produce a
// feasible allocation (capacity respected, floors respected for enabled
// queries, rates in [0,1]); the mmfs variants must exhaust capacity when
// demand exceeds it (work conservation).
class StrategyProperty : public ::testing::TestWithParam<int> {};

TEST_P(StrategyProperty, RandomDemandsFeasibleAndWorkConserving) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 997 + 3);
  const size_t n = 2 + rng.NextBelow(8);
  std::vector<QueryDemand> demands(n);
  double total = 0.0;
  for (auto& d : demands) {
    d.predicted_cycles = 10.0 + rng.NextDouble() * 1000.0;
    d.min_sampling_rate = rng.NextDouble() * 0.5;
    total += d.predicted_cycles;
  }
  const double capacity = total * (0.2 + 0.7 * rng.NextDouble());

  for (const auto kind :
       {StrategyKind::kEqSrates, StrategyKind::kMmfsCpu, StrategyKind::kMmfsPkt}) {
    const auto s = MakeStrategy(kind);
    const auto alloc = s->Allocate(demands, capacity);
    ASSERT_EQ(alloc.rate.size(), n);
    double used = 0.0;
    for (size_t q = 0; q < n; ++q) {
      EXPECT_GE(alloc.rate[q], -1e-9) << s->name();
      EXPECT_LE(alloc.rate[q], 1.0 + 1e-9) << s->name();
      if (!alloc.disabled[q]) {
        EXPECT_GE(alloc.rate[q], demands[q].min_sampling_rate - 1e-6) << s->name();
      } else {
        EXPECT_DOUBLE_EQ(alloc.rate[q], 0.0) << s->name();
      }
      used += alloc.rate[q] * demands[q].predicted_cycles;
    }
    EXPECT_LE(used, capacity * (1.0 + 1e-6)) << s->name();
    if (kind != StrategyKind::kEqSrates && capacity < total) {
      // Work conservation: the mmfs variants leave no capacity unused while
      // some query is still below rate 1.
      bool any_below_one = false;
      for (size_t q = 0; q < n; ++q) {
        if (!alloc.disabled[q] && alloc.rate[q] < 1.0 - 1e-6) {
          any_below_one = true;
        }
      }
      if (any_below_one) {
        EXPECT_GT(used, capacity * 0.98) << s->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, StrategyProperty, ::testing::Range(0, 20));

// Max-min optimality check for mmfs_pkt: no pairwise transfer can raise the
// minimum rate (exchange argument on random instances).
TEST(MmfsPkt, NoTransferImprovesMinimum) {
  util::Rng rng(123);
  const MmfsPktStrategy s;
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 3 + rng.NextBelow(5);
    std::vector<QueryDemand> demands(n);
    double total = 0.0;
    for (auto& d : demands) {
      d.predicted_cycles = 50.0 + rng.NextDouble() * 500.0;
      d.min_sampling_rate = 0.0;
      total += d.predicted_cycles;
    }
    const double capacity = 0.5 * total;
    const auto alloc = s.Allocate(demands, capacity);
    double min_rate = 1.0;
    for (size_t q = 0; q < n; ++q) {
      min_rate = std::min(min_rate, alloc.rate[q]);
    }
    // All rates equal the minimum (no floors, capacity binding).
    for (size_t q = 0; q < n; ++q) {
      EXPECT_NEAR(alloc.rate[q], min_rate, 1e-6);
    }
  }
}

// -------------------------------------------------------------- enforcement --

TEST(Enforcement, WellBehavedQueryHasUnitCorrection) {
  EnforcementPolicy p;
  for (int i = 0; i < 20; ++i) {
    p.Observe(1000.0, 990.0);
  }
  EXPECT_DOUBLE_EQ(p.correction(), 1.0);
  EXPECT_FALSE(p.InPenalty());
}

TEST(Enforcement, ModerateOveruseYieldsProportionalCorrection) {
  EnforcementPolicy p;
  for (int i = 0; i < 20; ++i) {
    p.Observe(1000.0, 1300.0);
  }
  EXPECT_NEAR(p.correction(), 1.3, 0.05);
  EXPECT_FALSE(p.InPenalty());
}

TEST(Enforcement, GrossViolationsTriggerPenalty) {
  EnforcementConfig cfg;
  cfg.strikes_to_disable = 3;
  cfg.penalty_bins = 5;
  EnforcementPolicy p(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(p.InPenalty());
    p.Observe(1000.0, 5000.0);
  }
  EXPECT_TRUE(p.InPenalty());
  EXPECT_EQ(p.times_policed(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(p.InPenalty());
    p.Tick();
  }
  EXPECT_FALSE(p.InPenalty());
}

TEST(Enforcement, IntermittentViolationsResetStrikes) {
  EnforcementConfig cfg;
  cfg.strikes_to_disable = 3;
  EnforcementPolicy p(cfg);
  for (int i = 0; i < 10; ++i) {
    p.Observe(1000.0, 5000.0);  // strike
    p.Observe(1000.0, 900.0);   // reset
  }
  EXPECT_FALSE(p.InPenalty());
  EXPECT_EQ(p.times_policed(), 0u);
}

TEST(Enforcement, ZeroGrantObservationsIgnored) {
  EnforcementPolicy p;
  p.Observe(0.0, 1e9);
  EXPECT_DOUBLE_EQ(p.correction(), 1.0);
}

}  // namespace
}  // namespace shedmon::shed
