// Tracing + HTTP observability endpoint suite: the per-stage span tracer
// must emit well-formed Chrome trace-event JSON covering every pipeline
// stage, count (never hide) dropped spans, and feed the stage-wall
// histograms; the embedded ObsServer must answer /metrics, /healthz,
// /stats and /trace, reject malformed requests, and fail Build() loudly
// when its port is taken. Above all, both surfaces are one-way: a pipeline
// being traced and scraped under load produces BinLogs bit-identical to a
// plain one at every (threads x shards) combination.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/config.h"
#include "src/api/pipeline.h"
#include "src/core/runner.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

namespace shedmon {
namespace {

const trace::Trace& TracingTrace() {
  static const trace::Trace trace = [] {
    trace::TraceSpec spec = trace::CescaII();
    spec.duration_s = 3.0;
    return trace::TraceGenerator(spec).Generate();
  }();
  return trace;
}

core::SystemConfig BaseConfig(size_t threads, size_t shards) {
  core::SystemConfig config;
  config.shedder = core::ShedderKind::kPredictive;
  config.num_threads = threads;
  config.max_shards_per_query = shards;
  config.cycles_per_bin = 0.5 * core::MeasureMeanDemand({"counter", "flows"}, TracingTrace(),
                                                        core::OracleKind::kModel);
  return config;
}

std::unique_ptr<api::Pipeline> BuildPipeline(size_t threads, size_t shards, bool tracing,
                                             bool serve) {
  api::PipelineBuilder builder;
  builder.Config(BaseConfig(threads, shards)).AddQuery("counter").AddQuery("flows");
  if (tracing) {
    builder.Tracing();
  }
  if (serve) {
    builder.ServeOn(0);  // ephemeral port; read it back via serve_port()
  }
  return builder.BuildUnique();
}

void ExpectBinLogsIdentical(const std::vector<core::BinLog>& golden,
                            const std::vector<core::BinLog>& actual) {
  ASSERT_EQ(golden.size(), actual.size());
  for (size_t b = 0; b < golden.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    const core::BinLog& g = golden[b];
    const core::BinLog& a = actual[b];
    EXPECT_EQ(g.start_us, a.start_us);
    EXPECT_EQ(g.packets_in, a.packets_in);
    EXPECT_EQ(g.packets_dropped, a.packets_dropped);
    EXPECT_EQ(g.packets_unsampled, a.packets_unsampled);
    EXPECT_EQ(g.batch_dropped, a.batch_dropped);
    EXPECT_EQ(g.overload, a.overload);
    EXPECT_EQ(g.predicted_cycles, a.predicted_cycles);
    EXPECT_EQ(g.avail_cycles, a.avail_cycles);
    EXPECT_EQ(g.query_cycles, a.query_cycles);
    EXPECT_EQ(g.ps_cycles, a.ps_cycles);
    EXPECT_EQ(g.ls_cycles, a.ls_cycles);
    EXPECT_EQ(g.como_cycles, a.como_cycles);
    EXPECT_EQ(g.backlog_cycles, a.backlog_cycles);
    EXPECT_EQ(g.rtthresh, a.rtthresh);
    EXPECT_EQ(g.rate, a.rate);
    EXPECT_EQ(g.per_query_cycles, a.per_query_cycles);
    EXPECT_EQ(g.disabled, a.disabled);
    EXPECT_EQ(g.degradation, a.degradation);
    EXPECT_EQ(g.deadline_missed, a.deadline_missed);
    EXPECT_EQ(g.deadline_overrun_us, a.deadline_overrun_us);
  }
}

// ---------------------------------------------------------------------------
// Minimal HTTP/1.1 client (raw sockets, Connection: close)
// ---------------------------------------------------------------------------

// Writes raw bytes to 127.0.0.1:port and returns everything the server sends
// back until it closes the connection.
std::string SendRaw(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

struct HttpReply {
  int status = 0;
  std::string body;
};

HttpReply Get(uint16_t port, const std::string& path) {
  const std::string raw =
      SendRaw(port, "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
  HttpReply reply;
  const size_t space = raw.find(' ');
  if (space != std::string::npos) {
    reply.status = std::stoi(raw.substr(space + 1));
  }
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    reply.body = raw.substr(header_end + 4);
  }
  return reply;
}

// Extracts every value of a numeric JSON field, in order of appearance.
std::vector<uint64_t> JsonFieldValues(const std::string& json, const std::string& field) {
  std::vector<uint64_t> values;
  const std::string needle = "\"" + field + "\":";
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    values.push_back(std::stoull(json.substr(pos)));
  }
  return values;
}

// ---------------------------------------------------------------------------
// Tracer: span coverage, export schema, bounded drops
// ---------------------------------------------------------------------------

TEST(Tracing, SpansCoverEveryStageAcrossThreadsAndShards) {
  for (const auto& [threads, shards] : std::vector<std::pair<size_t, size_t>>{{0, 1}, {4, 8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads) + " shards=" + std::to_string(shards));
    auto pipeline = BuildPipeline(threads, shards, /*tracing=*/true, /*serve=*/false);
    pipeline->Push(TracingTrace());
    pipeline->Finish();

    ASSERT_NE(pipeline->tracer(), nullptr);
    std::vector<bool> seen(obs::kStageCount, false);
    for (const obs::SpanRecord& span : pipeline->tracer()->Snapshot()) {
      seen[static_cast<size_t>(span.stage)] = true;
    }
    EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kBinClose)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kExtraction)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kPrediction)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kShedDecision)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kQuery)]);
    EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kSink)]);
    if (threads > 0 && shards > 1) {
      EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kShard)]);
      EXPECT_TRUE(seen[static_cast<size_t>(obs::Stage::kMerge)]);
    }
  }
}

TEST(Tracing, ExportIsWellFormedChromeTraceJson) {
  auto pipeline = BuildPipeline(2, 8, /*tracing=*/true, /*serve=*/false);
  pipeline->Push(TracingTrace());
  pipeline->Finish();
  const std::string json = pipeline->tracer()->ExportChromeTrace();

  // Envelope: the two keys Perfetto / about:tracing require.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Every duration event is complete ("ph":"X" with a dur); instants carry
  // the thread scope. Nothing else is emitted.
  const size_t durations = JsonFieldValues(json, "dur").size();
  size_t x_events = 0;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++x_events;
    pos += 8;
  }
  EXPECT_EQ(durations, x_events);
  EXPECT_GT(x_events, 0u);

  // The exporter sorts spans: timestamps must be non-decreasing so the
  // timeline loads without Perfetto re-sorting gigabytes.
  const std::vector<uint64_t> ts = JsonFieldValues(json, "ts");
  ASSERT_FALSE(ts.empty());
  for (size_t i = 1; i < ts.size(); ++i) {
    ASSERT_LE(ts[i - 1], ts[i]) << "event " << i;
  }
}

TEST(Tracing, DroppedSpansAreCountedNeverSilent) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer(/*spans_per_stripe=*/4);  // tiny ring: drops guaranteed
  tracer.AttachMetrics(&metrics);
  for (uint32_t i = 0; i < 100; ++i) {
    tracer.Record(obs::Stage::kQuery, i, 1, i);
  }
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.Snapshot().size() + tracer.dropped(), 100u);
  double counted = 0.0;
  for (const auto& sample : metrics.Snapshot().samples) {
    if (sample.name == "shedmon_obs_trace_dropped_total") {
      counted += sample.value;
    }
  }
  EXPECT_EQ(counted, static_cast<double>(tracer.dropped()));
  // The export advertises the loss instead of pretending completeness.
  EXPECT_NE(tracer.ExportChromeTrace().find("\"dropped_spans\":"), std::string::npos);
}

TEST(Tracing, StageWallHistogramsRideTheSameSpans) {
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/true, /*serve=*/false);
  pipeline->Push(TracingTrace());
  pipeline->Finish();
  size_t stage_samples = 0;
  for (const auto& sample : pipeline->Metrics().Snapshot().samples) {
    if (sample.name == "shedmon_stage_wall_us") {
      ++stage_samples;
      EXPECT_TRUE(sample.labels.count("stage"));
    }
  }
  // At least the single-threaded stages report wall time.
  EXPECT_GE(stage_samples, 4u);
}

// ---------------------------------------------------------------------------
// HTTP endpoint
// ---------------------------------------------------------------------------

TEST(Tracing, HttpEndpointsServeMetricsHealthzStatsTrace) {
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/true, /*serve=*/true);
  const uint16_t port = pipeline->serve_port();
  ASSERT_GT(port, 0);
  pipeline->Push(TracingTrace());
  pipeline->Finish();

  const HttpReply metrics = Get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE shedmon_bins_total counter"), std::string::npos);
  EXPECT_NE(metrics.body.find("shedmon_stage_wall_us"), std::string::npos);

  const HttpReply healthz = Get(port, "/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthz.body.find("\"degradation_rung\":\"none\""), std::string::npos);

  const HttpReply stats = Get(port, "/stats");
  EXPECT_EQ(stats.status, 200);
  const std::vector<uint64_t> bins = JsonFieldValues(stats.body, "bins");
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0], pipeline->Stats().bins);
  EXPECT_NE(stats.body.find("\"quarantined_sinks\":0"), std::string::npos);

  const HttpReply trace = Get(port, "/trace?anything=goes");  // query strings stripped
  EXPECT_EQ(trace.status, 200);
  EXPECT_EQ(trace.body.find("{\"traceEvents\":["), 0u);
}

TEST(Tracing, HttpMalformedRequestGets400) {
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/false, /*serve=*/true);
  EXPECT_NE(SendRaw(pipeline->serve_port(), "GARBAGE\r\n\r\n").find("400 Bad Request"),
            std::string::npos);
  EXPECT_NE(SendRaw(pipeline->serve_port(), "GET /metrics SMTP/1.0\r\n\r\n")
                .find("400 Bad Request"),
            std::string::npos);
  // Wrong method on a valid path is its own failure class.
  EXPECT_NE(
      SendRaw(pipeline->serve_port(), "POST /metrics HTTP/1.1\r\n\r\n").find("405 Method"),
      std::string::npos);
}

TEST(Tracing, HttpSegmentedRequestIsReassembled) {
  // A GET split across TCP segments (tiny congestion windows, deliberate
  // trickling) must be reassembled up to the blank-line terminator, not
  // parsed fragment-by-fragment. The old single-recv server answered 400.
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/false, /*serve=*/true);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(pipeline->serve_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::vector<std::string> segments = {"GET /hea", "lthz HTTP/1.1\r\n",
                                             "Host: 127.0.0.1\r\n", "\r\n"};
  for (const std::string& segment : segments) {
    ASSERT_EQ(::send(fd, segment.data(), segment.size(), 0),
              static_cast<ssize_t>(segment.size()));
    // Long enough that the server's recv loop wakes between segments.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::string reply;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(reply.find("200 OK"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;
}

TEST(Tracing, HttpOversizedHeaderIsCappedNotBuffered) {
  // A client that streams headers without ever sending the blank-line
  // terminator is cut off at the 16 KiB cap: the server answers from what it
  // has (instead of growing an unbounded std::string or hanging until the
  // flood ends), closes the connection, and keeps serving other clients.
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/false, /*serve=*/true);
  std::string request = "GET /healthz HTTP/1.1\r\n";
  request.append(64 * 1024, 'X');  // 4x the cap, no terminator
  const std::string reply = SendRaw(pipeline->serve_port(), request);
  EXPECT_NE(reply.find("HTTP/1.1"), std::string::npos) << reply;
  // The accept loop survives to serve the next client.
  EXPECT_EQ(Get(pipeline->serve_port(), "/healthz").status, 200);
}

TEST(Tracing, HttpUnknownPathGets404) {
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/false, /*serve=*/true);
  EXPECT_EQ(Get(pipeline->serve_port(), "/nope").status, 404);
}

TEST(Tracing, HttpTraceIs404WhenTracingDisabled) {
  auto pipeline = BuildPipeline(0, 1, /*tracing=*/false, /*serve=*/true);
  const HttpReply reply = Get(pipeline->serve_port(), "/trace");
  EXPECT_EQ(reply.status, 404);
  EXPECT_NE(reply.body.find("tracing disabled"), std::string::npos);
}

TEST(Tracing, HttpPortInUseFailsAtBuildWithConfigError) {
  // Squat a loopback port the way another daemon would.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const uint16_t taken = ntohs(addr.sin_port);

  api::PipelineBuilder builder;
  builder.Config(BaseConfig(0, 1)).AddQuery("counter").ServeOn(taken);
  EXPECT_THROW(builder.BuildUnique(), api::ConfigError);
  ::close(fd);
}

// ---------------------------------------------------------------------------
// One-way observability: tracing + scraping change nothing
// ---------------------------------------------------------------------------

// The load-shedding results must not depend on whether anyone is watching: a
// pipeline with tracing enabled and scrapers hammering every endpoint
// mid-run produces BinLogs bit-identical to a plain pipeline, at every
// (threads x shards) combination.
TEST(Tracing, ScrapedPipelineDeterminismAtEveryThreadAndShardCount) {
  for (const size_t threads : {0, 2, 4}) {
    for (const size_t shards : {1, 8}) {
      if (threads == 0 && shards > 1) {
        continue;  // sharding requires a worker pool
      }
      SCOPED_TRACE("threads=" + std::to_string(threads) + " shards=" + std::to_string(shards));

      auto golden = BuildPipeline(threads, shards, /*tracing=*/false, /*serve=*/false);
      golden->Push(TracingTrace());
      golden->Finish();

      auto observed = BuildPipeline(threads, shards, /*tracing=*/true, /*serve=*/true);
      const uint16_t port = observed->serve_port();
      std::atomic<bool> stop{false};
      std::vector<std::thread> scrapers;
      for (int s = 0; s < 2; ++s) {
        scrapers.emplace_back([port, &stop] {
          const std::string paths[] = {"/metrics", "/healthz", "/stats", "/trace"};
          for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
            Get(port, paths[i % 4]);
          }
        });
      }
      observed->Push(TracingTrace());
      observed->Finish();
      stop.store(true, std::memory_order_relaxed);
      for (std::thread& scraper : scrapers) {
        scraper.join();
      }
      observed->StopServing();

      ExpectBinLogsIdentical(golden->log(), observed->log());
    }
  }
}

}  // namespace
}  // namespace shedmon
