// shedmon::Pipeline facade tests: the golden equivalence suite (a
// Pipeline-driven run produces field-exact BinLogs and accuracies vs. the
// pre-refactor batch path, serial and threaded, including mid-run query
// arrivals), QueryHandle add/remove semantics, observer ordering on the
// coordinator thread at any thread count, and the CSV/JSONL sinks.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/api/config.h"
#include "src/api/pipeline.h"
#include "src/api/run.h"
#include "src/api/sinks.h"
#include "src/core/runner.h"
#include "src/obs/prometheus.h"
#include "src/obs/snapshot.h"
#include "src/query/queries.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

namespace shedmon {
namespace {

const trace::Trace& SharedTrace() {
  static const trace::Trace trace = [] {
    trace::TraceSpec spec = trace::CescaII();
    spec.duration_s = 3.0;
    return trace::TraceGenerator(spec).Generate();
  }();
  return trace;
}

// The pre-refactor core::RunSystemOnTrace, replicated verbatim (modulo the
// serial reference helper): the golden batch path every Pipeline run must
// reproduce bit for bit. Kept in the test so the facade can never drift from
// the historical semantics unnoticed.
core::RunResult GoldenRunSystemOnTrace(const core::RunSpec& spec, const trace::Trace& trace) {
  core::RunResult result;
  result.system =
      std::make_unique<core::MonitoringSystem>(spec.system, core::MakeOracle(spec.oracle));
  for (size_t i = 0; i < spec.query_names.size(); ++i) {
    core::QueryConfig qc;
    if (i < spec.query_configs.size()) {
      qc = spec.query_configs[i];
    } else if (spec.use_default_min_rates) {
      qc.min_sampling_rate = core::DefaultMinRate(spec.query_names[i]);
    }
    result.system->AddQuery(query::MakeQuery(spec.query_names[i]), qc);
  }

  trace::Batcher batcher(trace, spec.system.time_bin_us);
  trace::Batch batch;
  while (batcher.Next(batch)) {
    result.system->ProcessBatch(batch);
  }
  result.system->Finish();

  result.reference = query::RunReference(spec.query_names, trace, spec.system.time_bin_us);
  return result;
}

void ExpectBinLogsIdentical(const std::vector<core::BinLog>& golden,
                            const std::vector<core::BinLog>& actual) {
  ASSERT_EQ(golden.size(), actual.size());
  for (size_t b = 0; b < golden.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    const core::BinLog& g = golden[b];
    const core::BinLog& a = actual[b];
    EXPECT_EQ(g.start_us, a.start_us);
    EXPECT_EQ(g.packets_in, a.packets_in);
    EXPECT_EQ(g.packets_dropped, a.packets_dropped);
    EXPECT_EQ(g.packets_unsampled, a.packets_unsampled);
    EXPECT_EQ(g.batch_dropped, a.batch_dropped);
    EXPECT_EQ(g.overload, a.overload);
    EXPECT_EQ(g.predicted_cycles, a.predicted_cycles);
    EXPECT_EQ(g.avail_cycles, a.avail_cycles);
    EXPECT_EQ(g.query_cycles, a.query_cycles);
    EXPECT_EQ(g.ps_cycles, a.ps_cycles);
    EXPECT_EQ(g.ls_cycles, a.ls_cycles);
    EXPECT_EQ(g.como_cycles, a.como_cycles);
    EXPECT_EQ(g.backlog_cycles, a.backlog_cycles);
    EXPECT_EQ(g.rtthresh, a.rtthresh);
    EXPECT_EQ(g.rate, a.rate);
    EXPECT_EQ(g.per_query_cycles, a.per_query_cycles);
    EXPECT_EQ(g.disabled, a.disabled);
    EXPECT_EQ(g.degradation, a.degradation);
    EXPECT_EQ(g.deadline_missed, a.deadline_missed);
    EXPECT_EQ(g.deadline_overrun_us, a.deadline_overrun_us);
  }
}

core::RunSpec SpecFor(const std::vector<std::string>& names, core::ShedderKind shedder,
                      shed::StrategyKind strategy, bool custom, size_t threads) {
  core::RunSpec spec;
  spec.system.shedder = shedder;
  spec.system.strategy = strategy;
  spec.system.enable_custom_shedding = custom;
  spec.system.num_threads = threads;
  spec.system.cycles_per_bin =
      0.5 * core::MeasureMeanDemand(names, SharedTrace(), core::OracleKind::kModel);
  spec.query_names = names;
  return spec;
}

// ---------------------------------------------------------------------------
// Golden equivalence: Pipeline vs pre-refactor batch path
// ---------------------------------------------------------------------------

struct GoldenCase {
  std::string label;
  std::vector<std::string> names;
  core::ShedderKind shedder = core::ShedderKind::kPredictive;
  shed::StrategyKind strategy = shed::StrategyKind::kMmfsPkt;
  bool custom = false;
};

class PipelineGolden : public ::testing::TestWithParam<std::tuple<GoldenCase, size_t>> {};

TEST_P(PipelineGolden, BinLogsAndAccuraciesMatchPreRefactorPath) {
  const auto& [config, threads] = GetParam();
  const core::RunSpec spec =
      SpecFor(config.names, config.shedder, config.strategy, config.custom, threads);

  const core::RunResult golden = GoldenRunSystemOnTrace(spec, SharedTrace());

  auto pipeline = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  std::vector<api::QueryHandle> handles;
  for (const auto& name : config.names) {
    handles.push_back(pipeline->AddQuery(name));
  }
  pipeline->Push(SharedTrace());
  pipeline->Finish();

  EXPECT_EQ(golden.system->total_packets(), pipeline->total_packets());
  EXPECT_EQ(golden.system->total_dropped(), pipeline->total_dropped());
  ExpectBinLogsIdentical(golden.system->log(), pipeline->log());
  for (size_t q = 0; q < config.names.size(); ++q) {
    SCOPED_TRACE(config.names[q]);
    const query::AccuracyRow want = golden.Accuracy(q);
    const query::AccuracyRow live = handles[q].Accuracy();
    EXPECT_EQ(want.mean_error, live.mean_error);
    EXPECT_EQ(want.stdev_error, live.stdev_error);
    EXPECT_EQ(golden.MeanAccuracy(q), handles[q].MeanAccuracy());
  }
  EXPECT_EQ(golden.AverageAccuracy(), pipeline->AverageAccuracy());
  EXPECT_EQ(golden.MinimumAccuracy(), pipeline->MinimumAccuracy());
}

INSTANTIATE_TEST_SUITE_P(
    ShedderStrategySweep, PipelineGolden,
    ::testing::Combine(
        ::testing::Values(
            GoldenCase{"predictive_mmfs_pkt",
                       {"counter", "flows", "top-k"},
                       core::ShedderKind::kPredictive,
                       shed::StrategyKind::kMmfsPkt,
                       false},
            GoldenCase{"predictive_eq_srates",
                       {"counter", "flows"},
                       core::ShedderKind::kPredictive,
                       shed::StrategyKind::kEqSrates,
                       false},
            GoldenCase{"reactive",
                       {"counter", "flows"},
                       core::ShedderKind::kReactive,
                       shed::StrategyKind::kEqSrates,
                       false},
            GoldenCase{"no_shed",
                       {"counter", "flows"},
                       core::ShedderKind::kNoShed,
                       shed::StrategyKind::kEqSrates,
                       false},
            GoldenCase{"predictive_custom",
                       {"high-watermark", "p2p-detector", "counter"},
                       core::ShedderKind::kPredictive,
                       shed::StrategyKind::kMmfsPkt,
                       true}),
        ::testing::Values(size_t{0}, size_t{2}, size_t{4})),
    [](const auto& info) {
      return std::get<0>(info.param).label + "_threads" +
             std::to_string(std::get<1>(info.param));
    });

// The wrapper itself (core::RunSystemOnTrace is now a shim over the facade)
// must also match the golden path exactly.
TEST(PipelineGoldenWrapper, RunSystemOnTraceStillMatchesGoldenPath) {
  for (const size_t threads : {size_t{0}, size_t{2}}) {
    const core::RunSpec spec = SpecFor({"counter", "flows"}, core::ShedderKind::kPredictive,
                                       shed::StrategyKind::kMmfsPkt, false, threads);
    const core::RunResult golden = GoldenRunSystemOnTrace(spec, SharedTrace());
    const core::RunResult wrapped = core::RunSystemOnTrace(spec, SharedTrace());
    ExpectBinLogsIdentical(golden.system->log(), wrapped.system->log());
    for (size_t q = 0; q < spec.query_names.size(); ++q) {
      EXPECT_EQ(golden.Accuracy(q).mean_error, wrapped.Accuracy(q).mean_error);
      EXPECT_EQ(golden.Accuracy(q).stdev_error, wrapped.Accuracy(q).stdev_error);
    }
  }
}

// Mid-run query arrival (Fig. 6.9 shape): golden = manual batch loop adding
// a query between two ProcessBatch calls; pipeline = AdvanceTime + AddQuery
// at the same bin boundary while pushing raw packets.
TEST(PipelineGoldenArrival, MidRunAddQueryMatchesManualBatchLoop) {
  const std::vector<std::string> initial = {"counter", "flows"};
  const std::string arrival = "top-k";
  constexpr uint64_t kBinUs = 100'000;
  constexpr size_t kArrivalBin = 12;
  const double demand =
      core::MeasureMeanDemand({"counter", "flows", "top-k"}, SharedTrace(),
                              core::OracleKind::kModel);

  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    core::SystemConfig cfg;
    cfg.shedder = core::ShedderKind::kPredictive;
    cfg.strategy = shed::StrategyKind::kMmfsPkt;
    cfg.cycles_per_bin = 0.5 * demand;
    cfg.num_threads = threads;

    // Golden: the manual loop the fig6.9 driver used before the facade.
    core::MonitoringSystem golden(cfg, core::MakeOracle(core::OracleKind::kModel));
    for (const auto& name : initial) {
      golden.AddQuery(query::MakeQuery(name), {core::DefaultMinRate(name), true});
    }
    trace::Batcher batcher(SharedTrace(), kBinUs);
    trace::Batch batch;
    size_t bin = 0;
    while (batcher.Next(batch)) {
      if (bin == kArrivalBin) {
        golden.AddQuery(query::MakeQuery(arrival), {core::DefaultMinRate(arrival), true});
      }
      golden.ProcessBatch(batch);
      ++bin;
    }
    golden.Finish();
    ASSERT_GT(bin, kArrivalBin) << "trace too short for the arrival scenario";

    // Facade: push packets, sequence the arrival with AdvanceTime.
    auto pipeline = api::PipelineBuilder().Config(cfg).BuildUnique();
    for (const auto& name : initial) {
      pipeline->AddQuery(name);
    }
    bool added = false;
    for (const net::PacketRecord& packet : SharedTrace().packets) {
      if (!added && packet.ts_us >= kArrivalBin * kBinUs) {
        pipeline->AdvanceTime(kArrivalBin * kBinUs);
        pipeline->AddQuery(arrival);
        added = true;
      }
      pipeline->Push(net::Packet::View(packet));
    }
    pipeline->Finish();
    ASSERT_TRUE(added);

    EXPECT_EQ(golden.total_packets(), pipeline->total_packets());
    EXPECT_EQ(golden.total_dropped(), pipeline->total_dropped());
    ExpectBinLogsIdentical(golden.log(), pipeline->log());
    // The late query's results match too: compare against a fresh reference
    // run of the same post-arrival stream the golden system saw.
    EXPECT_EQ(golden.num_queries(), pipeline->num_queries());
    for (size_t q = 0; q < golden.num_queries(); ++q) {
      EXPECT_EQ(golden.query(q).completed_intervals(),
                pipeline->system().query(q).completed_intervals());
      EXPECT_EQ(golden.query(q).work_units(), pipeline->system().query(q).work_units());
    }
  }
}

// ---------------------------------------------------------------------------
// Push ingestion semantics
// ---------------------------------------------------------------------------

TEST(PipelinePush, PacketViewSpansMatchRecordPush) {
  const core::RunSpec spec = SpecFor({"counter", "pattern-search"},
                                     core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, false, 0);

  auto by_record = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  by_record->AddQuery("counter");
  by_record->AddQuery("pattern-search");
  by_record->Push(SharedTrace());
  by_record->Finish();

  // Same traffic, ingested as materialized Packet views batch by batch (the
  // shape a live capture path would use); payload bytes are copied.
  auto by_view = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  by_view->AddQuery("counter");
  by_view->AddQuery("pattern-search");
  trace::Batcher batcher(SharedTrace(), spec.system.time_bin_us);
  trace::Batch batch;
  while (batcher.Next(batch)) {
    by_view->Push(std::span<const net::Packet>(batch.packets));
    // Recycling the batch right after Push must be safe: views were copied.
  }
  by_view->Finish();

  ExpectBinLogsIdentical(by_record->log(), by_view->log());
}

TEST(PipelinePush, RejectsPacketsOlderThanTheOpenBin) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->AddQuery("counter");
  net::PacketRecord record;
  record.ts_us = 250'000;
  pipeline->Push(net::Packet::View(record));
  net::PacketRecord late;
  late.ts_us = 90'000;  // bin 0, but bin 2 is open
  EXPECT_THROW(pipeline->Push(net::Packet::View(late)), std::invalid_argument);
  // Same-bin and later packets still flow.
  record.ts_us = 260'000;
  pipeline->Push(net::Packet::View(record));
  pipeline->Finish();
  EXPECT_EQ(pipeline->bins_processed(), 3u);
}

TEST(PipelinePush, AdvanceTimeClosesEmptyBins) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->AddQuery("counter");
  pipeline->AdvanceTime(500'000);  // five empty bins
  EXPECT_EQ(pipeline->bins_processed(), 5u);
  for (const auto& bin : pipeline->log()) {
    EXPECT_EQ(bin.packets_in, 0u);
  }
  pipeline->Finish();
  EXPECT_EQ(pipeline->bins_processed(), 5u);  // Finish adds no empty bin
}

TEST(PipelinePush, FinishIsIdempotentAndClosesThePipeline) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->AddQuery("counter");
  net::PacketRecord record;
  record.ts_us = 10;
  pipeline->Push(net::Packet::View(record));
  pipeline->Finish();
  EXPECT_EQ(pipeline->bins_processed(), 1u);
  pipeline->Finish();  // no-op
  EXPECT_EQ(pipeline->bins_processed(), 1u);
  EXPECT_TRUE(pipeline->finished());
  EXPECT_THROW(pipeline->Push(net::Packet::View(record)), std::logic_error);
  EXPECT_THROW(pipeline->AddQuery("flows"), std::logic_error);
}

// ---------------------------------------------------------------------------
// QueryHandle lifecycle: mid-run add, remove/detach, stable handles
// ---------------------------------------------------------------------------

TEST(PipelineHandles, DetachReturnsQueryAndReferenceAndInvalidatesHandle) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  api::QueryHandle flows = pipeline->AddQuery("flows");
  ASSERT_TRUE(counter.valid());
  EXPECT_EQ(counter.index(), 0u);
  EXPECT_EQ(flows.index(), 1u);

  // Run a little over both queries, then detach the first mid-run.
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    if (packet.ts_us >= 15 * 100'000) {
      break;
    }
    pipeline->Push(net::Packet::View(packet));
  }
  pipeline->AdvanceTime(15 * 100'000);
  ASSERT_EQ(pipeline->bins_processed(), 15u);

  api::DetachedQuery detached = pipeline->Detach(counter);
  ASSERT_NE(detached.query, nullptr);
  ASSERT_NE(detached.reference, nullptr);
  EXPECT_EQ(detached.query->name(), "counter");
  EXPECT_FALSE(counter.valid());
  EXPECT_THROW(counter.query(), std::logic_error);
  EXPECT_THROW(pipeline->Detach(counter), std::logic_error);

  // The surviving handle shifted down but still addresses its query.
  EXPECT_TRUE(flows.valid());
  EXPECT_EQ(flows.index(), 0u);
  EXPECT_EQ(flows.name(), "flows");
  EXPECT_EQ(pipeline->num_queries(), 1u);

  // Later bins are sized for the remaining query only.
  pipeline->AdvanceTime(20 * 100'000);
  pipeline->Finish();
  EXPECT_EQ(pipeline->log().back().rate.size(), 1u);
  // The detached pair still yields the standard accuracy summary.
  const auto row = query::SummarizeAccuracy(*detached.query, *detached.reference);
  EXPECT_GE(row.mean_error, 0.0);
  EXPECT_TRUE(flows.has_reference());
  EXPECT_GE(flows.Accuracy().mean_error, 0.0);
}

TEST(PipelineHandles, RemovedQueryStopsAffectingTheRun) {
  // A pipeline where the expensive query leaves matches a fresh system that
  // continues with the survivor's state — we can't replay history, but the
  // column count and rate allocation must reflect the removal immediately.
  auto pipeline = api::PipelineBuilder().BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  api::QueryHandle pattern = pipeline->AddQuery("pattern-search");
  pipeline->AdvanceTime(10 * 100'000);
  EXPECT_EQ(pipeline->log().back().rate.size(), 2u);
  pipeline->Remove(pattern);
  pipeline->AdvanceTime(12 * 100'000);
  pipeline->Finish();
  EXPECT_EQ(pipeline->log().back().rate.size(), 1u);
  EXPECT_FALSE(pattern.valid());
  EXPECT_TRUE(counter.valid());
}

TEST(PipelineHandles, UserQueryWithoutReferenceHasNoAccuracy) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  api::QueryHandle custom =
      pipeline->AddQuery(std::make_unique<query::CounterQuery>(), {0.1, true});
  EXPECT_FALSE(custom.has_reference());
  EXPECT_THROW(custom.Accuracy(), std::logic_error);
  EXPECT_THROW((void)pipeline->AddQuery(std::unique_ptr<query::Query>()),
               std::invalid_argument);
}

TEST(PipelineHandles, TrackAccuracyOffSkipsReferences) {
  auto pipeline = api::PipelineBuilder().TrackAccuracy(false).BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  EXPECT_FALSE(counter.has_reference());
  EXPECT_THROW(counter.Accuracy(), std::logic_error);
  EXPECT_EQ(pipeline->AverageAccuracy(), 0.0);
}

TEST(PipelineHandles, UnattachedAndReleasedHandlesThrowInsteadOfCrashing) {
  api::QueryHandle unattached;
  EXPECT_FALSE(unattached.valid());
  EXPECT_THROW(unattached.index(), std::logic_error);
  EXPECT_THROW(unattached.name(), std::logic_error);
  EXPECT_THROW(unattached.query(), std::logic_error);
  EXPECT_THROW(unattached.reference(), std::logic_error);
  EXPECT_THROW(unattached.Accuracy(), std::logic_error);

  auto pipeline = api::PipelineBuilder().BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  pipeline->Finish();
  (void)pipeline->ReleaseSystem();
  EXPECT_FALSE(counter.valid());
  EXPECT_THROW(counter.query(), std::logic_error);
  EXPECT_THROW(counter.name(), std::logic_error);
}

TEST(PipelineHandles, ZeroTimeBinIsRejectedAtBuild) {
  EXPECT_THROW(api::PipelineBuilder().TimeBin(0).BuildUnique(), std::invalid_argument);
  core::SystemConfig config;
  config.time_bin_us = 0;
  EXPECT_THROW(api::PipelineBuilder().Config(config).BuildUnique(), std::invalid_argument);
}

TEST(PipelineHandles, ReAddedDetachedQueryIsChargedOnlyForNewWork) {
  // The oracle charges the delta of the query's lifetime work counter. A
  // detached instance that re-joins must be re-baselined (not charged its
  // whole history), and its old baseline must not linger for whatever
  // allocation reuses the address (CostOracle::OnQueryAdded/OnQueryRemoved).
  auto pipeline = api::PipelineBuilder().Shedder(core::ShedderKind::kNoShed).BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    if (packet.ts_us >= 100'000) {
      break;
    }
    pipeline->Push(net::Packet::View(packet));
  }
  pipeline->AdvanceTime(100'000);
  const double first_charge = pipeline->log()[0].per_query_cycles[0];
  ASSERT_GT(first_charge, 0.0);

  api::DetachedQuery detached = pipeline->Detach(counter);
  api::QueryHandle back = pipeline->AddQuery(std::move(detached.query), {},
                                             std::move(detached.reference));
  // Replay the same packets one bin later: same work, so the charge must be
  // within the oracle's +/-1% pseudo-noise of the first bin — not doubled by
  // the instance's pre-detach history.
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    if (packet.ts_us >= 100'000) {
      break;
    }
    net::PacketRecord shifted = packet;
    shifted.ts_us += 100'000;
    pipeline->Push(net::Packet::View(shifted));
  }
  pipeline->AdvanceTime(200'000);
  pipeline->Finish();
  const double second_charge = pipeline->log()[1].per_query_cycles[back.index()];
  EXPECT_NEAR(second_charge, first_charge, 0.05 * first_charge);
}

TEST(PipelineHandles, ReleaseRequiresFinish) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->AddQuery("counter");
  EXPECT_THROW(pipeline->ReleaseSystem(), std::logic_error);
  EXPECT_THROW(pipeline->ReleaseReferences(), std::logic_error);
  pipeline->Finish();
  auto references = pipeline->ReleaseReferences();
  ASSERT_EQ(references.size(), 1u);
  EXPECT_NE(references[0], nullptr);
  EXPECT_NE(pipeline->ReleaseSystem(), nullptr);
}

// ---------------------------------------------------------------------------
// Observer dispatch: coordinator thread, bin order, at any thread count
// ---------------------------------------------------------------------------

class RecordingObserver : public api::BinObserver {
 public:
  void OnBin(const core::BinLog& log, const api::BinStats& stats) override {
    bins.push_back(stats.bin_index);
    start_us.push_back(log.start_us);
    num_queries.push_back(stats.num_queries);
    threads.push_back(std::this_thread::get_id());
    names.emplace_back(stats.query_names.begin(), stats.query_names.end());
  }
  void OnRunEnd() override { ++run_ends; }

  std::vector<size_t> bins;
  std::vector<uint64_t> start_us;
  std::vector<size_t> num_queries;
  std::vector<std::thread::id> threads;
  std::vector<std::vector<std::string>> names;
  int run_ends = 0;
};

TEST(PipelineApi, ObserversFireOnCoordinatorThreadInBinOrder) {
  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    auto pipeline = api::PipelineBuilder().Threads(threads).BuildUnique();
    pipeline->AddQuery("counter");
    pipeline->AddQuery("flows");
    RecordingObserver recorder;
    pipeline->AddObserver(&recorder);
    pipeline->Push(SharedTrace());
    pipeline->Finish();

    ASSERT_EQ(recorder.bins.size(), pipeline->bins_processed());
    for (size_t b = 0; b < recorder.bins.size(); ++b) {
      EXPECT_EQ(recorder.bins[b], b);
      EXPECT_EQ(recorder.start_us[b], b * pipeline->time_bin_us());
      EXPECT_EQ(recorder.threads[b], std::this_thread::get_id());
    }
    EXPECT_EQ(recorder.run_ends, 1);
  }
}

TEST(PipelineApi, ObserverSeesArrivalsAndRemovalsInStats) {
  auto pipeline = api::PipelineBuilder().BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  RecordingObserver recorder;
  pipeline->AddObserver(&recorder);

  pipeline->AdvanceTime(2 * 100'000);  // bins 0-1: one query
  pipeline->AddQuery("flows");
  pipeline->AdvanceTime(4 * 100'000);  // bins 2-3: two queries
  pipeline->Remove(counter);
  pipeline->AdvanceTime(5 * 100'000);  // bin 4: flows only
  pipeline->Finish();

  ASSERT_EQ(recorder.num_queries.size(), 5u);
  EXPECT_EQ(recorder.num_queries, (std::vector<size_t>{1, 1, 2, 2, 1}));
  EXPECT_EQ(recorder.names[0], (std::vector<std::string>{"counter"}));
  EXPECT_EQ(recorder.names[2], (std::vector<std::string>{"counter", "flows"}));
  EXPECT_EQ(recorder.names[4], (std::vector<std::string>{"flows"}));
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (const char c : text) {
    lines += c == '\n' ? 1 : 0;
  }
  return lines;
}

TEST(PipelineSinks, CsvSinkWritesHeaderAndOneRowPerBin) {
  std::ostringstream out;
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->AddQuery("counter");
  pipeline->AddObserver(std::make_unique<api::CsvBinSink>(out));
  pipeline->AdvanceTime(3 * 100'000);
  pipeline->Finish();

  const std::string text = out.str();
  EXPECT_EQ(CountLines(text), 4u);  // header + 3 bins
  EXPECT_EQ(text.rfind("bin,start_us,num_queries", 0), 0u);
}

TEST(PipelineSinks, JsonlSinkWritesOneObjectPerBinWithPerQueryArrays) {
  std::ostringstream out;
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->AddQuery("counter");
  pipeline->AddQuery("flows");
  pipeline->AddObserver(std::make_unique<api::JsonlBinSink>(out));
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    if (packet.ts_us >= 2 * 100'000) {
      break;
    }
    pipeline->Push(net::Packet::View(packet));
  }
  pipeline->AdvanceTime(2 * 100'000);
  pipeline->Finish();

  const std::string text = out.str();
  EXPECT_EQ(CountLines(text), 2u);
  EXPECT_NE(text.find("\"bin\":0"), std::string::npos);
  EXPECT_NE(text.find("\"queries\":[\"counter\",\"flows\"]"), std::string::npos);
  EXPECT_NE(text.find("\"rate\":["), std::string::npos);
  EXPECT_EQ(text.find('\t'), std::string::npos);
}

TEST(PipelineSinks, FileSinkThrowsOnUnwritablePath) {
  EXPECT_THROW(api::CsvBinSink("/nonexistent-dir/x.csv"), std::runtime_error);
  EXPECT_THROW(api::JsonlBinSink("/nonexistent-dir/x.jsonl"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// api::RunPipelineGrid
// ---------------------------------------------------------------------------

TEST(PipelineApi, RunPipelineGridMatchesSerialCells) {
  const std::vector<std::string> names = {"counter", "flows"};
  const double demand =
      core::MeasureMeanDemand(names, SharedTrace(), core::OracleKind::kModel);
  const auto make_spec = [&](size_t cell) {
    core::RunSpec spec;
    spec.system.cycles_per_bin = (0.3 + 0.2 * static_cast<double>(cell)) * demand;
    spec.query_names = names;
    return spec;
  };
  const auto serial = api::RunPipelineGrid(3, make_spec, SharedTrace(), nullptr);
  exec::ThreadPool pool(3);
  const auto parallel = api::RunPipelineGrid(3, make_spec, SharedTrace(), &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    ExpectBinLogsIdentical(serial[i]->log(), parallel[i]->log());
    EXPECT_EQ(serial[i]->AverageAccuracy(), parallel[i]->AverageAccuracy());
  }
}

// ---------------------------------------------------------------------------
// Deprecated raw-record shims: still exactly equivalent to the Packet path
// ---------------------------------------------------------------------------

// The shims stay until the next major cleanup; this test pins their semantics
// (shim == Push(net::Packet::View(record)), record by record or as a span).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(PipelineCompat, DeprecatedRecordShimsMatchThePacketViewPath) {
  const core::RunSpec spec = SpecFor({"counter", "flows"}, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, false, 0);

  auto by_view = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  by_view->AddQuery("counter");
  by_view->AddQuery("flows");
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    by_view->Push(net::Packet::View(packet));
  }
  by_view->Finish();

  auto by_record = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  by_record->AddQuery("counter");
  by_record->AddQuery("flows");
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    by_record->Push(packet);
  }
  by_record->Finish();

  auto by_span = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  by_span->AddQuery("counter");
  by_span->AddQuery("flows");
  by_span->Push(std::span<const net::PacketRecord>(SharedTrace().packets));
  by_span->Finish();

  ExpectBinLogsIdentical(by_view->log(), by_record->log());
  ExpectBinLogsIdentical(by_view->log(), by_span->log());
}
#pragma GCC diagnostic pop

// ---------------------------------------------------------------------------
// Eager builder validation: Build() rejects bad configs with ConfigError
// ---------------------------------------------------------------------------

TEST(PipelineValidation, RejectsOutOfRangeSystemKnobs) {
  using B = api::PipelineBuilder;
  EXPECT_THROW(B().TimeBin(0).Build(), ConfigError);
  EXPECT_THROW(B().CyclesPerBin(-1.0).Build(), ConfigError);
  EXPECT_THROW(B().BufferBins(0.0).Build(), ConfigError);
  EXPECT_THROW(B().BufferBins(-2.0).Build(), ConfigError);

  core::SystemConfig config;
  config.ewma_alpha = 0.0;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
  config = {};
  config.ewma_alpha = 1.5;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
  config = {};
  config.como_overhead_fraction = 1.0;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
  config = {};
  config.bootstrap_rate = -0.1;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
  config = {};
  config.reactive_min_rate = 2.0;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
  config = {};
  config.system_interval_bins = 0;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
  config = {};
  config.max_shards_per_query = 0;
  EXPECT_THROW(B().Config(config).Build(), ConfigError);
}

TEST(PipelineValidation, RejectsShardingWithoutAWorkerPool) {
  EXPECT_THROW(api::PipelineBuilder().MaxShardsPerQuery(8).Build(), ConfigError);
  EXPECT_NO_THROW(api::PipelineBuilder().Threads(2).MaxShardsPerQuery(8).Build());
}

TEST(PipelineValidation, RejectsUnknownRosterEntriesAndBadMinRates) {
  EXPECT_THROW(api::PipelineBuilder().AddQuery("no-such-query").Build(), ConfigError);
  core::QueryConfig config;
  config.min_sampling_rate = 1.5;
  EXPECT_THROW(api::PipelineBuilder().AddQuery("counter", config).Build(), ConfigError);
  config.min_sampling_rate = -0.25;
  EXPECT_THROW(api::PipelineBuilder().AddQuery("counter", config).Build(), ConfigError);
}

TEST(PipelineValidation, RejectsUnwritableSinkPathsBeforeBuildingASystem) {
  EXPECT_THROW(api::PipelineBuilder().CsvTo("/nonexistent-dir/x.csv").Build(), ConfigError);
  EXPECT_THROW(api::PipelineBuilder().JsonlTo("/nonexistent-dir/x.jsonl").Build(), ConfigError);
  EXPECT_THROW(api::PipelineBuilder().LogTo("/nonexistent-dir/x.log").Build(), ConfigError);
  // Validate() alone reports the same failures without constructing anything.
  EXPECT_THROW(api::PipelineBuilder().AddQuery("no-such-query").Validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// Declarative roster, config files, Stats, metrics, event log
// ---------------------------------------------------------------------------

TEST(PipelineApi, BuilderRosterRegistersQueriesAtBuild) {
  auto pipeline =
      api::PipelineBuilder().AddQuery("counter").AddQuery("flows").BuildUnique();
  EXPECT_EQ(pipeline->num_queries(), 2u);
  pipeline->AdvanceTime(3 * 100'000);
  pipeline->Finish();
  EXPECT_EQ(pipeline->log().back().rate.size(), 2u);
}

TEST(PipelineApi, FromConfigFileBuildsTheDescribedPipeline) {
  const std::string config_path = ::testing::TempDir() + "shedmon_api_test_config.ini";
  const std::string csv_path = ::testing::TempDir() + "shedmon_api_test_bins.csv";
  {
    std::ofstream file(config_path, std::ios::trunc);
    file << "# pipeline config exercised by api_test\n"
            "[system]\n"
            "time_bin_us = 100000\n"
            "cycles_per_bin = 2.5e6\n"
            "shedder = reactive\n"
            "strategy = mmfs_cpu\n"
            "seed = 7\n"
            "\n"
            "[predictor]\n"
            "kind = ewma\n"
            "ewma_alpha = 0.3\n"
            "\n"
            "[queries]\n"
            "add = counter\n"
            "add = flows\n"
            "\n"
            "[sinks]\n"
            "csv = " << csv_path << "\n";
  }
  api::PipelineBuilder builder = api::PipelineBuilder::FromConfigFile(config_path);
  EXPECT_EQ(builder.config().time_bin_us, 100'000u);
  EXPECT_EQ(builder.config().shedder, core::ShedderKind::kReactive);
  EXPECT_EQ(builder.config().strategy, shed::StrategyKind::kMmfsCpu);
  EXPECT_EQ(builder.config().seed, 7u);
  EXPECT_EQ(builder.config().predictor.kind, predict::PredictorKind::kEwma);

  // The fluent setters still apply on top of the file.
  auto pipeline = builder.Threads(0).BuildUnique();
  EXPECT_EQ(pipeline->num_queries(), 2u);
  pipeline->AdvanceTime(3 * 100'000);
  pipeline->Finish();

  std::ifstream csv(csv_path);
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line.rfind("bin,start_us,num_queries", 0), 0u);
  std::remove(config_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(PipelineApi, ConfigParserRejectsUnknownKeysWithTheOffendingLine) {
  std::istringstream bad("[system]\nbogus_key = 1\n");
  try {
    (void)api::ParseConfig(bad, "test.ini");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    EXPECT_NE(std::string(error.what()).find("test.ini:2"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("bogus_key"), std::string::npos);
  }
}

TEST(PipelineApi, StatsSummarizesTheRunFromRunningTallies) {
  const core::RunSpec spec = SpecFor({"counter", "flows"}, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, false, 0);
  auto pipeline = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  pipeline->AddQuery("counter");
  pipeline->AddQuery("flows");
  pipeline->Push(SharedTrace());
  pipeline->Finish();

  const api::PipelineStats stats = pipeline->Stats();
  EXPECT_EQ(stats.bins, pipeline->bins_processed());
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.packets, pipeline->total_packets());
  EXPECT_EQ(stats.dropped, pipeline->total_dropped());
  EXPECT_EQ(stats.capacity, spec.system.cycles_per_bin);

  const auto& log = pipeline->log();
  size_t overload = 0;
  double shed = 0.0;
  for (const core::BinLog& bin : log) {
    overload += bin.overload ? 1 : 0;
    shed += bin.packets_unsampled;
  }
  EXPECT_EQ(stats.overload_bins, overload);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_GT(stats.mean_utilization, 0.0);
  const core::BinLog& last = log.back();
  const double last_spent =
      last.query_cycles + last.ps_cycles + last.ls_cycles + last.como_cycles;
  EXPECT_DOUBLE_EQ(stats.last_utilization, last_spent / stats.capacity);
}

const obs::MetricSample* FindSample(const obs::MetricsSnapshot& snapshot,
                                    std::string_view name,
                                    const obs::LabelSet& labels = {}) {
  for (const obs::MetricSample& sample : snapshot.samples) {
    if (sample.name == name && sample.labels == labels) {
      return &sample;
    }
  }
  return nullptr;
}

TEST(PipelineMetrics, RegistryMirrorsTheBinLogTallies) {
  const core::RunSpec spec = SpecFor({"counter", "flows"}, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, false, 0);
  auto pipeline = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  pipeline->AddQuery("counter");
  pipeline->AddQuery("flows");
  pipeline->Push(SharedTrace());
  pipeline->Finish();

  const auto& log = pipeline->log();
  size_t packets = 0;
  size_t dropped = 0;
  size_t overload = 0;
  for (const core::BinLog& bin : log) {
    packets += bin.packets_in;
    dropped += bin.packets_dropped;
    overload += bin.overload ? 1 : 0;
  }

  const obs::MetricsSnapshot snapshot = pipeline->Metrics().Snapshot();
  const obs::MetricSample* bins = FindSample(snapshot, "shedmon_bins_total");
  ASSERT_NE(bins, nullptr);
  EXPECT_EQ(bins->value, static_cast<double>(log.size()));
  const obs::MetricSample* in = FindSample(snapshot, "shedmon_packets_total");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->value, static_cast<double>(packets));
  const obs::MetricSample* drop = FindSample(snapshot, "shedmon_packets_dropped_total");
  ASSERT_NE(drop, nullptr);
  EXPECT_EQ(drop->value, static_cast<double>(dropped));
  const obs::MetricSample* over = FindSample(snapshot, "shedmon_overload_bins_total");
  ASSERT_NE(over, nullptr);
  EXPECT_EQ(over->value, static_cast<double>(overload));
  const obs::MetricSample* capacity = FindSample(snapshot, "shedmon_capacity_cycles");
  ASSERT_NE(capacity, nullptr);
  EXPECT_EQ(capacity->value, spec.system.cycles_per_bin);

  // Per-query series carry the query name as a label; the sampling-rate gauge
  // holds the last bin's applied rate.
  const obs::MetricSample* rate =
      FindSample(snapshot, "shedmon_query_sampling_rate", {{"query", "counter"}});
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->value, log.back().rate[0]);

  const obs::MetricSample* util = FindSample(snapshot, "shedmon_bin_utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_EQ(util->histogram.count, log.size());

  // The Prometheus exposition names every family with a TYPE line.
  const std::string text = obs::PrometheusEncoder::Encode(snapshot);
  EXPECT_NE(text.find("# TYPE shedmon_bins_total counter"), std::string::npos);
  EXPECT_NE(text.find("shedmon_query_sampling_rate{query=\"counter\"}"), std::string::npos);
  EXPECT_NE(text.find("shedmon_bin_utilization_bucket{le=\"+Inf\"}"), std::string::npos);
}

TEST(PipelineApi, JsonlEventLogRecordsTheLifecycle) {
  std::ostringstream out;
  auto pipeline = api::PipelineBuilder().BuildUnique();
  pipeline->SetLogger(std::make_unique<obs::JsonlLogger>(out));
  api::QueryHandle counter = pipeline->AddQuery("counter");
  pipeline->AdvanceTime(2 * 100'000);
  pipeline->Remove(counter);
  pipeline->Finish();

  const std::string text = out.str();
  EXPECT_NE(text.find("{\"event\":\"query_added\""), std::string::npos);
  EXPECT_NE(text.find("\"query\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("{\"event\":\"bin_closed\""), std::string::npos);
  EXPECT_NE(text.find("{\"event\":\"query_removed\""), std::string::npos);
  EXPECT_NE(text.find("{\"event\":\"finish\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------------

// The acceptance bar: snapshot at a measurement-interval boundary, restore in
// a "new process", replay the remaining packets — the BinLogs must equal the
// uninterrupted run's field for field, serial and threaded.
TEST(PipelineSnapshot, RestoreThenReplayReproducesTheUninterruptedRun) {
  constexpr uint64_t kCutUs = 2'000'000;  // bin 20 = interval boundary (10-bin intervals)
  for (const size_t threads : {size_t{0}, size_t{2}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const core::RunSpec spec =
        SpecFor({"counter", "flows", "top-k"}, core::ShedderKind::kPredictive,
                shed::StrategyKind::kMmfsPkt, false, threads);

    auto full = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
    for (const char* name : {"counter", "flows", "top-k"}) {
      full->AddQuery(name);
    }
    full->Push(SharedTrace());
    full->Finish();

    auto first = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
    for (const char* name : {"counter", "flows", "top-k"}) {
      first->AddQuery(name);
    }
    for (const net::PacketRecord& packet : SharedTrace().packets) {
      if (packet.ts_us >= kCutUs) {
        break;
      }
      first->Push(net::Packet::View(packet));
    }
    first->AdvanceTime(kCutUs);
    std::stringstream snapshot;
    first->Snapshot(snapshot);

    auto restored = api::PipelineBuilder::Restore(snapshot);
    EXPECT_EQ(restored->num_queries(), 3u);
    for (const net::PacketRecord& packet : SharedTrace().packets) {
      if (packet.ts_us < kCutUs) {
        continue;
      }
      restored->Push(net::Packet::View(packet));
    }
    restored->Finish();

    const auto& full_log = full->log();
    const auto& replay_log = restored->log();
    ASSERT_GT(full_log.size(), 20u);
    ASSERT_EQ(full_log.size(), 20 + replay_log.size());
    const std::vector<core::BinLog> tail(full_log.begin() + 20, full_log.end());
    ExpectBinLogsIdentical(tail, replay_log);
    // The packet tallies are part of the serialized state, so the restored
    // run ends at the uninterrupted run's totals.
    EXPECT_EQ(full->total_packets(), restored->total_packets());
    EXPECT_EQ(full->total_dropped(), restored->total_dropped());
  }
}

TEST(PipelineSnapshot, SnapshotRestoreSnapshotIsByteIdentical) {
  const core::RunSpec spec = SpecFor({"counter", "flows"}, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, false, 0);
  auto pipeline = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
  pipeline->AddQuery("counter");
  pipeline->AddQuery("flows");
  for (const net::PacketRecord& packet : SharedTrace().packets) {
    if (packet.ts_us >= 1'000'000) {
      break;
    }
    pipeline->Push(net::Packet::View(packet));
  }
  pipeline->AdvanceTime(1'000'000);

  std::stringstream original;
  pipeline->Snapshot(original);
  auto restored = api::PipelineBuilder::Restore(original);
  std::stringstream again;
  restored->Snapshot(again);
  ASSERT_FALSE(original.str().empty());
  EXPECT_EQ(original.str(), again.str());
}

TEST(PipelineSnapshot, RejectsMidBinMidIntervalAndNonStandardQueries) {
  std::ostringstream sink;

  auto mid_bin = api::PipelineBuilder().AddQuery("counter").BuildUnique();
  net::PacketRecord record;
  record.ts_us = 10;
  mid_bin->Push(net::Packet::View(record));
  EXPECT_THROW(mid_bin->Snapshot(sink), obs::SnapshotError);

  auto mid_interval = api::PipelineBuilder().AddQuery("counter").BuildUnique();
  mid_interval->AdvanceTime(100'000);  // one bin into a ten-bin interval
  EXPECT_THROW(mid_interval->Snapshot(sink), obs::SnapshotError);

  // A user-supplied query whose name is not in the standard roster cannot be
  // reconstructed from a name, so Snapshot refuses. (A user-supplied instance
  // of a *standard* query is fine: at an interval boundary it is
  // state-equivalent to the fresh instance Restore builds.)
  class BespokeQuery : public query::Query {
   public:
    BespokeQuery() : Query("bespoke-query", 10) {}

   protected:
    void OnBatch(const query::BatchInput& in) override {
      ChargeWork(static_cast<double>(in.packets.size()));
    }
    void OnEndInterval(size_t) override {}
  };
  auto custom = api::PipelineBuilder().BuildUnique();
  custom->AddQuery(std::make_unique<BespokeQuery>(), {0.1, true});
  EXPECT_THROW(custom->Snapshot(sink), obs::SnapshotError);

  std::istringstream garbage("not a snapshot");
  EXPECT_THROW(api::PipelineBuilder::Restore(garbage), obs::SnapshotError);
}

// The v2 checksum trailer: a snapshot that lost its tail or took a bit flip
// anywhere in the payload must be rejected with SnapshotError, never
// restored into a silently-wrong pipeline.
TEST(PipelineSnapshot, RejectsTruncatedAndBitFlippedSnapshots) {
  auto pipeline = api::PipelineBuilder().AddQuery("counter").AddQuery("flows").BuildUnique();
  std::stringstream good;
  pipeline->Snapshot(good);
  const std::string bytes = good.str();
  ASSERT_GT(bytes.size(), 64u);

  {
    std::istringstream intact(bytes);
    EXPECT_NO_THROW(api::PipelineBuilder::Restore(intact));
  }
  for (const size_t keep : {bytes.size() - 1, bytes.size() - 8, bytes.size() / 2}) {
    SCOPED_TRACE("truncated to " + std::to_string(keep) + " bytes");
    std::istringstream truncated(bytes.substr(0, keep));
    EXPECT_THROW(api::PipelineBuilder::Restore(truncated), obs::SnapshotError);
  }
  // Flip one bit at several payload positions (past the magic, whose own
  // check fires first and is already covered above).
  for (const size_t pos : {size_t{16}, bytes.size() / 2, bytes.size() - 9}) {
    SCOPED_TRACE("bit flip at byte " + std::to_string(pos));
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x01);
    std::istringstream in(flipped);
    EXPECT_THROW(api::PipelineBuilder::Restore(in), obs::SnapshotError);
  }
}

// Path-based snapshots publish via write-to-temp + fsync + atomic rename:
// the final file is complete and restorable, and no temp litter survives.
TEST(PipelineSnapshot, PathSnapshotIsAtomicAndRestorable) {
  const std::string path = ::testing::TempDir() + "shedmon_snapshot_atomic.bin";
  auto pipeline = api::PipelineBuilder().AddQuery("counter").BuildUnique();
  pipeline->Snapshot(path);

  auto restored = api::PipelineBuilder::Restore(path);
  EXPECT_EQ(restored->num_queries(), 1u);
  EXPECT_FALSE(std::ifstream(path + ".tmp." + std::to_string(::getpid())).good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Metrics never perturb determinism, even with a scraper hammering away
// ---------------------------------------------------------------------------

TEST(PipelineDeterminism, ScrapingUnderLoadNeverPerturbsResults) {
  const std::vector<std::string> names = {"counter", "flows", "top-k"};
  const core::RunSpec golden_spec = SpecFor(names, core::ShedderKind::kPredictive,
                                            shed::StrategyKind::kMmfsPkt, false, 0);
  const core::RunResult golden = GoldenRunSystemOnTrace(golden_spec, SharedTrace());

  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    for (const size_t shards : {size_t{1}, size_t{8}}) {
      if (threads == 0 && shards > 1) {
        continue;  // rejected by eager validation; covered in exec_test
      }
      SCOPED_TRACE("threads " + std::to_string(threads) + " shards " +
                   std::to_string(shards));
      core::RunSpec spec = SpecFor(names, core::ShedderKind::kPredictive,
                                   shed::StrategyKind::kMmfsPkt, false, threads);
      spec.system.max_shards_per_query = shards;
      auto pipeline = api::PipelineBuilder::FromRunSpec(spec).BuildUnique();
      std::vector<api::QueryHandle> handles;
      for (const auto& name : names) {
        handles.push_back(pipeline->AddQuery(name));
      }

      std::atomic<bool> stop{false};
      std::atomic<size_t> scrapes{0};
      std::thread scraper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string text =
              obs::PrometheusEncoder::Encode(pipeline->Metrics().Snapshot());
          if (!text.empty()) {
            scrapes.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
      pipeline->Push(SharedTrace());
      pipeline->Finish();
      stop.store(true);
      scraper.join();

      EXPECT_GT(scrapes.load(), 0u);
      ExpectBinLogsIdentical(golden.system->log(), pipeline->log());
      for (size_t q = 0; q < names.size(); ++q) {
        SCOPED_TRACE(names[q]);
        EXPECT_EQ(golden.Accuracy(q).mean_error, handles[q].Accuracy().mean_error);
        EXPECT_EQ(golden.Accuracy(q).stdev_error, handles[q].Accuracy().stdev_error);
      }
    }
  }
}

}  // namespace
}  // namespace shedmon
