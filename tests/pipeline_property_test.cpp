// Property sweeps over the full pipeline: the paper's core claims expressed
// as invariants that must hold across strategies, overload levels and
// traffic profiles, not just at the single operating points of the figures.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/runner.h"
#include "src/query/queries.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"

namespace shedmon {
namespace {

using core::OracleKind;
using core::RunSpec;
using core::RunSystemOnTrace;
using core::ShedderKind;

const trace::Trace& SweepTrace() {
  static const trace::Trace t = [] {
    trace::TraceSpec spec;
    spec.name = "sweep";
    spec.duration_s = 6.0;
    spec.flows_per_s = 220.0;
    spec.payloads = true;
    spec.seed = 4242;
    return trace::TraceGenerator(spec).Generate();
  }();
  return t;
}

double SweepDemand() {
  static const double demand = core::MeasureMeanDemand(
      {"counter", "flows", "application", "top-k"}, SweepTrace(), OracleKind::kModel);
  return demand;
}

// ---------------------------------------------------------------------------
// Invariant 1 (Ch. 4 headline): the predictive system never loses a packet
// uncontrolled, for every allocation strategy and overload level.
// ---------------------------------------------------------------------------
class NoDropSweep
    : public ::testing::TestWithParam<std::tuple<shed::StrategyKind, double>> {};

TEST_P(NoDropSweep, PredictiveNeverDropsUncontrolled) {
  const auto [strategy, k] = GetParam();
  RunSpec spec;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.strategy = strategy;
  spec.system.cycles_per_bin = std::max(1.0, SweepDemand() * (1.0 - k));
  spec.oracle = OracleKind::kModel;
  spec.query_names = {"counter", "flows", "application", "top-k"};
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, SweepTrace());
  if (k <= 0.6) {
    EXPECT_EQ(result.system->total_dropped(), 0u)
        << "strategy=" << static_cast<int>(strategy) << " K=" << k;
  } else {
    // At extreme overload the per-bin budget is a tenth of the mean demand;
    // a 7x burst bin can overwhelm any bounded buffer. Bounded loss (<1%)
    // is the honest guarantee there.
    EXPECT_LT(static_cast<double>(result.system->total_dropped()),
              0.01 * static_cast<double>(result.system->total_packets()))
        << "strategy=" << static_cast<int>(strategy) << " K=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByOverload, NoDropSweep,
    ::testing::Combine(::testing::Values(shed::StrategyKind::kEqSrates,
                                         shed::StrategyKind::kMmfsCpu,
                                         shed::StrategyKind::kMmfsPkt),
                       ::testing::Values(0.0, 0.3, 0.6, 0.9)));

// ---------------------------------------------------------------------------
// Invariant 2 (Fig. 5.4): for the scalable queries, accuracy does not
// improve when the overload deepens (monotone degradation, modulo a small
// sampling-noise tolerance).
// ---------------------------------------------------------------------------
class MonotoneSweep : public ::testing::TestWithParam<shed::StrategyKind> {};

TEST_P(MonotoneSweep, AccuracyDegradesWithOverload) {
  const auto strategy = GetParam();
  double prev_accuracy = 1.1;
  for (const double k : {0.0, 0.4, 0.8}) {
    RunSpec spec;
    spec.system.shedder = ShedderKind::kPredictive;
    spec.system.strategy = strategy;
    spec.system.cycles_per_bin = std::max(1.0, SweepDemand() * (1.0 - k));
    spec.oracle = OracleKind::kModel;
    spec.query_names = {"counter", "flows", "application", "top-k"};
    spec.use_default_min_rates = false;
    auto result = RunSystemOnTrace(spec, SweepTrace());
    const double accuracy = result.AverageAccuracy();
    EXPECT_LE(accuracy, prev_accuracy + 0.05) << "K=" << k;
    prev_accuracy = accuracy;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, MonotoneSweep,
                         ::testing::Values(shed::StrategyKind::kEqSrates,
                                           shed::StrategyKind::kMmfsCpu,
                                           shed::StrategyKind::kMmfsPkt));

// ---------------------------------------------------------------------------
// Invariant 3 (Ch. 5): whenever a query runs under an mmfs strategy, its
// user-declared minimum sampling rate is honoured — across overload levels
// and for heterogeneous floors.
// ---------------------------------------------------------------------------
class FloorSweep : public ::testing::TestWithParam<double> {};

TEST_P(FloorSweep, MinimumRatesHonoredWheneverScheduled) {
  const double k = GetParam();
  RunSpec spec;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.strategy = shed::StrategyKind::kMmfsPkt;
  spec.system.cycles_per_bin = std::max(1.0, SweepDemand() * (1.0 - k));
  spec.oracle = OracleKind::kModel;
  spec.query_names = {"counter", "flows", "application", "top-k"};
  spec.query_configs = {{0.02, true}, {0.25, true}, {0.10, true}, {0.40, true}};
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, SweepTrace());
  const double floors[] = {0.02, 0.25, 0.10, 0.40};
  for (const auto& bin : result.system->log()) {
    if (bin.batch_dropped) {
      continue;
    }
    for (size_t q = 0; q < bin.rate.size(); ++q) {
      if (!bin.disabled.empty() && !bin.disabled[q] && bin.rate[q] > 1e-9) {
        EXPECT_GE(bin.rate[q], floors[q] - 1e-6) << "query " << q << " K=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Overloads, FloorSweep, ::testing::Values(0.2, 0.5, 0.8));

// ---------------------------------------------------------------------------
// Invariant 4: determinism — the same spec and trace give bit-identical
// shedding decisions and results with the model oracle.
// ---------------------------------------------------------------------------
TEST(PipelineProperty, ModelRunsAreDeterministic) {
  RunSpec spec;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.strategy = shed::StrategyKind::kMmfsPkt;
  spec.system.cycles_per_bin = 0.5 * SweepDemand();
  spec.oracle = OracleKind::kModel;
  spec.query_names = {"counter", "flows"};
  spec.use_default_min_rates = false;

  auto a = RunSystemOnTrace(spec, SweepTrace());
  auto b = RunSystemOnTrace(spec, SweepTrace());
  ASSERT_EQ(a.system->log().size(), b.system->log().size());
  for (size_t i = 0; i < a.system->log().size(); ++i) {
    const auto& la = a.system->log()[i];
    const auto& lb = b.system->log()[i];
    ASSERT_EQ(la.rate.size(), lb.rate.size());
    for (size_t q = 0; q < la.rate.size(); ++q) {
      EXPECT_DOUBLE_EQ(la.rate[q], lb.rate[q]) << "bin " << i;
    }
    EXPECT_DOUBLE_EQ(la.query_cycles, lb.query_cycles) << "bin " << i;
  }
}

// ---------------------------------------------------------------------------
// Invariant 5: time-bin length is a free parameter — the pipeline stays
// stable and accurate with 50 ms and 200 ms bins, not just the default.
// ---------------------------------------------------------------------------
class BinLengthSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinLengthSweep, StableAcrossBinLengths) {
  const uint64_t bin_us = GetParam();
  const std::vector<std::string> names = {"counter", "flows"};
  const double demand =
      core::MeasureMeanDemand(names, SweepTrace(), OracleKind::kModel, bin_us);
  RunSpec spec;
  spec.system.time_bin_us = bin_us;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.cycles_per_bin = 0.5 * demand;
  spec.oracle = OracleKind::kModel;
  spec.query_names = names;
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, SweepTrace());
  // A single extreme burst bin can exceed even the 5-bin buffer when the
  // per-bin capacity is tiny; bounded loss (<1%) is the honest invariant.
  EXPECT_LT(static_cast<double>(result.system->total_dropped()),
            0.01 * static_cast<double>(result.system->total_packets()))
      << "bin_us=" << bin_us;
  // Shorter bins hold fewer packets, so the sampling-noise floor rises.
  EXPECT_GT(result.AverageAccuracy(), bin_us < 100'000 ? 0.65 : 0.70)
      << "bin_us=" << bin_us;
}

INSTANTIATE_TEST_SUITE_P(BinLengths, BinLengthSweep,
                         ::testing::Values(50'000, 100'000, 200'000));

}  // namespace
}  // namespace shedmon
