#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/cycle_clock.h"
#include "src/util/ewma.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace shedmon::util {
namespace {

TEST(CycleClock, MonotonicNonDecreasing) {
  const uint64_t a = ReadCycles();
  const uint64_t b = ReadCycles();
  EXPECT_GE(b, a);
}

TEST(CycleClock, TimerMeasuresWork) {
  CycleTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.Elapsed(), 0u);
  (void)sink;
}

TEST(CycleClock, CalibrationPositive) { EXPECT_GT(CyclesPerSecond(), 1e6); }

TEST(Ewma, FirstObservationSeeds) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.Update(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, BlendsWithAlpha) {
  Ewma e(0.25, 0.0);
  e.Update(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
  e.Update(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(Ewma, HighAlphaTracksFast) {
  Ewma fast(0.9);
  Ewma slow(0.1);
  for (int i = 0; i < 5; ++i) {
    fast.Update(100.0);
    slow.Update(100.0);
  }
  fast.Update(0.0);
  slow.Update(0.0);
  EXPECT_LT(fast.value(), slow.value());
}

TEST(Ewma, ResetClearsState) {
  Ewma e(0.5);
  e.Update(5.0);
  e.Reset();
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(RunningStats, MeanStdevMatchDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0); }

TEST(EmpiricalCdf, CoversRangeAndIsMonotone) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) {
    v.push_back(static_cast<double>(i));
  }
  const auto cdf = EmpiricalCdf(v, 11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 100.0);
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].f, cdf[i - 1].f);
  }
}

TEST(RelativeError, MatchesPaperDefinition) {
  EXPECT_NEAR(RelativeError(90.0, 100.0), 0.1, 1e-12);
  EXPECT_NEAR(RelativeError(110.0, 100.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 1.0);
}

TEST(PearsonCorrelation, PerfectAndInverse) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> neg;
  for (double v : y) {
    neg.push_back(-v);
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesGivesZero) {
  const std::vector<double> x = {3, 3, 3, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyInverseRate) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.NextExponential(4.0));
  }
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextBoundedPareto(2.0, 500.0, 1.2);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 500.0);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  Rng rng(17);
  size_t above_10x_min = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBoundedPareto(1.0, 10000.0, 1.1) > 10.0) {
      ++above_10x_min;
    }
  }
  // P(X > 10) ~ 10^-1.1 ~ 7.9% for a heavy tail; exponential would be ~0.
  EXPECT_GT(above_10x_min, static_cast<size_t>(0.04 * n));
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stdev(), 1.0, 0.02);
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  Rng rng(23);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[99] / 2 + 1);
}

TEST(ZipfSampler, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument); }

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "long-header"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(FmtPercent(0.1234, 1), "12.3%");
  EXPECT_NE(FmtSci(12345.0).find("e+"), std::string::npos);
}

TEST(SplitMix, HashIsStable) {
  EXPECT_EQ(HashU64(42), HashU64(42));
  EXPECT_NE(HashU64(42), HashU64(43));
}

}  // namespace
}  // namespace shedmon::util
