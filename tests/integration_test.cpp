#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"

namespace shedmon {
namespace {

using core::MeasureMeanDemand;
using core::OracleKind;
using core::RunSpec;
using core::RunSystemOnTrace;
using core::ShedderKind;

trace::Trace IntegrationTrace() {
  trace::TraceSpec spec;
  spec.name = "integration";
  spec.duration_s = 10.0;
  spec.flows_per_s = 220.0;
  spec.payloads = true;
  spec.seed = 101;
  return trace::TraceGenerator(spec).Generate();
}

const std::vector<std::string> kSeven = {"application", "counter",        "flows",
                                         "high-watermark", "pattern-search", "top-k",
                                         "trace"};

// Full seven-query pipeline at K = 0.5 with the model oracle: the Ch. 4
// headline result in miniature.
TEST(Integration, SevenQueriesUnderTwoTimesOverload) {
  const auto t = IntegrationTrace();
  const double demand = MeasureMeanDemand(kSeven, t, OracleKind::kModel);

  RunSpec spec;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.strategy = shed::StrategyKind::kEqSrates;
  spec.system.cycles_per_bin = 0.5 * demand;
  spec.oracle = OracleKind::kModel;
  spec.query_names = kSeven;
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, t);

  EXPECT_EQ(result.system->total_dropped(), 0u);
  // Scalable-metric queries stay accurate under 2x overload.
  for (size_t q = 0; q < kSeven.size(); ++q) {
    const auto& name = kSeven[q];
    if (name == "trace" || name == "pattern-search") {
      continue;  // their "error" is the processed fraction by definition
    }
    // high-watermark estimates a maximum, whose sampled estimator carries an
    // upward bias; the thesis likewise reports it as its least accurate
    // scalable query (Table 4.1).
    const double bound = name == "high-watermark" ? 0.22 : 0.12;
    EXPECT_LT(result.Accuracy(q).mean_error, bound) << name;
  }
}

TEST(Integration, MmfsPktRaisesWorstQueryAccuracy) {
  const auto t = IntegrationTrace();
  const std::vector<std::string> names = {"counter", "flows", "p2p-detector"};
  const double demand = MeasureMeanDemand(names, t, OracleKind::kModel);

  RunSpec eq;
  eq.system.shedder = ShedderKind::kPredictive;
  eq.system.strategy = shed::StrategyKind::kEqSrates;
  eq.system.cycles_per_bin = 0.4 * demand;
  eq.oracle = OracleKind::kModel;
  eq.query_names = names;
  eq.use_default_min_rates = false;

  RunSpec mmfs = eq;
  mmfs.system.strategy = shed::StrategyKind::kMmfsPkt;

  auto r_eq = RunSystemOnTrace(eq, t);
  auto r_mmfs = RunSystemOnTrace(mmfs, t);
  // Both run stably without uncontrolled loss.
  EXPECT_EQ(r_eq.system->total_dropped(), 0u);
  EXPECT_EQ(r_mmfs.system->total_dropped(), 0u);
  // mmfs_pkt cannot be much worse on the minimum and is typically better.
  EXPECT_GE(r_mmfs.MinimumAccuracy() + 0.05, r_eq.MinimumAccuracy());
}

// §4.5.5-style anomaly robustness: a spoofed SYN flood multiplies the flows
// query's cost; with predictive shedding the flow-count estimate holds.
TEST(Integration, SynFloodFlowsQueryStaysAccurate) {
  trace::Trace t = IntegrationTrace();
  trace::DdosSpec ddos;
  ddos.start_s = 4.0;
  ddos.duration_s = 3.0;
  ddos.pps = 2500.0;
  ddos.spoofed_sources = true;
  ddos.syn_flood = true;
  InjectDdos(t, ddos, 999);

  const std::vector<std::string> names = {"flows"};
  const double demand = MeasureMeanDemand(names, t, OracleKind::kModel);
  RunSpec spec;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.cycles_per_bin = 0.6 * demand;
  spec.oracle = OracleKind::kModel;
  spec.query_names = names;
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, t);

  EXPECT_EQ(result.system->total_dropped(), 0u);
  EXPECT_LT(result.Accuracy(0).mean_error, 0.10);
}

// The same scenario without load shedding loses batches wholesale and the
// flow count collapses.
TEST(Integration, SynFloodWithoutSheddingFails) {
  trace::Trace t = IntegrationTrace();
  trace::DdosSpec ddos;
  ddos.start_s = 4.0;
  ddos.duration_s = 3.0;
  ddos.pps = 2500.0;
  InjectDdos(t, ddos, 999);

  const std::vector<std::string> names = {"flows"};
  const double demand = MeasureMeanDemand(names, t, OracleKind::kModel);
  RunSpec spec;
  spec.system.shedder = ShedderKind::kNoShed;
  spec.system.cycles_per_bin = 0.6 * demand;
  spec.oracle = OracleKind::kModel;
  spec.query_names = names;
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, t);

  EXPECT_GT(result.system->total_dropped(), 0u);
  EXPECT_GT(result.Accuracy(0).mean_error, 0.15);
}

// Custom shedding end-to-end: the p2p-detector's own method beats uniform
// packet sampling at equal budget (the Fig. 6.1/6.2 phenomenon).
TEST(Integration, CustomSheddingBeatsPacketSamplingForP2p) {
  const auto t = IntegrationTrace();
  const std::vector<std::string> names = {"p2p-detector", "pattern-search"};
  const double demand = MeasureMeanDemand(names, t, OracleKind::kModel);

  RunSpec base;
  base.system.shedder = ShedderKind::kPredictive;
  base.system.strategy = shed::StrategyKind::kMmfsPkt;
  base.system.cycles_per_bin = 0.45 * demand;
  base.oracle = OracleKind::kModel;
  base.query_names = names;
  base.use_default_min_rates = false;

  RunSpec custom = base;
  custom.system.enable_custom_shedding = true;

  auto r_plain = RunSystemOnTrace(base, t);
  auto r_custom = RunSystemOnTrace(custom, t);
  EXPECT_GT(r_custom.MeanAccuracy(0) + 0.02, r_plain.MeanAccuracy(0));
}

// Smoke test with the measured (rdtsc) oracle: real cycles, real queries.
// Uses the payload-heavy queries so that query cost dominates the (real)
// feature-extraction overhead, as it does on the paper's testbed.
TEST(Integration, MeasuredOracleSmokeTest) {
  trace::TraceSpec spec_t;
  spec_t.duration_s = 4.0;
  spec_t.flows_per_s = 150.0;
  spec_t.payloads = true;
  spec_t.seed = 202;
  const auto t = trace::TraceGenerator(spec_t).Generate();
  const std::vector<std::string> names = {"pattern-search", "p2p-detector", "counter"};

  // Real measurement is noisy; require the pipeline to remain sane: the
  // budget is 60% of demand, so average accuracy well above that of a
  // collapsed system (~0) and bounded drops. Even with RUN_SERIAL the rdtsc
  // readings are at the mercy of the host (CI neighbors, frequency steps),
  // so the sanity bar gets a bounded number of attempts: scheduler noise
  // clears it on a retry, a genuine regression fails every attempt.
  constexpr int kAttempts = 3;
  bool sane = false;
  double accuracy = 0.0;
  uint64_t dropped = 0;
  uint64_t packets = 0;
  for (int attempt = 0; attempt < kAttempts && !sane; ++attempt) {
    const double demand = MeasureMeanDemand(names, t, OracleKind::kMeasured);
    ASSERT_GT(demand, 0.0);

    RunSpec spec;
    spec.system.shedder = ShedderKind::kPredictive;
    spec.system.cycles_per_bin = 0.6 * demand;
    spec.oracle = OracleKind::kMeasured;
    spec.query_names = names;
    spec.use_default_min_rates = false;
    auto result = RunSystemOnTrace(spec, t);
    ASSERT_EQ(result.system->log().size(), 40u);
    accuracy = result.AverageAccuracy();
    dropped = result.system->total_dropped();
    packets = result.system->total_packets();
    sane = accuracy > 0.4 && dropped < packets / 4;
  }
  EXPECT_TRUE(sane) << "accuracy " << accuracy << ", dropped " << dropped << "/" << packets
                    << " after " << kAttempts << " attempts";
}

// Long-run stability: prediction error EWMA keeps the system inside its
// budget across a longer execution (mini Fig. 6.12).
TEST(Integration, LongRunStaysStable) {
  trace::TraceSpec spec_t;
  spec_t.duration_s = 30.0;
  spec_t.flows_per_s = 200.0;
  spec_t.seed = 303;
  const auto t = trace::TraceGenerator(spec_t).Generate();
  const std::vector<std::string> names = {"counter", "flows", "application", "top-k"};
  const double demand = MeasureMeanDemand(names, t, OracleKind::kModel);

  RunSpec spec;
  spec.system.shedder = ShedderKind::kPredictive;
  spec.system.cycles_per_bin = 0.5 * demand;
  spec.oracle = OracleKind::kModel;
  spec.query_names = names;
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, t);
  EXPECT_EQ(result.system->total_dropped(), 0u);

  // Backlog must not trend upward: compare first and second half occupancy.
  util::RunningStats first_half;
  util::RunningStats second_half;
  const auto& log = result.system->log();
  for (size_t i = 0; i < log.size(); ++i) {
    (i < log.size() / 2 ? first_half : second_half).Add(log[i].backlog_cycles);
  }
  EXPECT_LT(second_half.mean(),
            first_half.mean() + 0.5 * result.system->capacity());
}

}  // namespace
}  // namespace shedmon
