#include <gtest/gtest.h>

#include <memory>

#include "src/core/cost.h"
#include "src/core/runner.h"
#include "src/core/system.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"

namespace shedmon::core {
namespace {

trace::TraceSpec TestSpec() {
  trace::TraceSpec spec;
  spec.name = "core-test";
  spec.duration_s = 8.0;
  spec.flows_per_s = 250.0;
  spec.payloads = true;
  spec.seed = 21;
  return spec;
}

// ------------------------------------------------------------- cost oracle --

TEST(ModelOracle, QueryCostScalesWithWorkload) {
  ModelCostOracle oracle;
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch small;
  trace::Batch large;
  ASSERT_TRUE(batcher.Next(small));
  // Find a larger batch.
  ASSERT_TRUE(batcher.Next(large));
  trace::PacketVec few(small.packets.begin(),
                       small.packets.begin() +
                           static_cast<ptrdiff_t>(small.packets.size() / 4));
  EXPECT_LT(oracle.QueryCost("counter", few), oracle.QueryCost("counter", small.packets));
}

TEST(ModelOracle, CostOrderingMatchesFig22) {
  // Fig. 2.2: pattern-search / p2p-detector are the most expensive queries,
  // counter the cheapest, for the same traffic.
  ModelCostOracle oracle;
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  ASSERT_TRUE(batcher.Next(batch));
  ASSERT_TRUE(batcher.Next(batch));
  const double counter = oracle.QueryCost("counter", batch.packets);
  const double flows = oracle.QueryCost("flows", batch.packets);
  const double pattern = oracle.QueryCost("pattern-search", batch.packets);
  const double p2p = oracle.QueryCost("p2p-detector", batch.packets);
  EXPECT_LT(counter, flows);
  EXPECT_LT(flows, pattern);
  EXPECT_LT(counter, p2p);
}

TEST(ModelOracle, DeterministicAcrossInstances) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  ASSERT_TRUE(batcher.Next(batch));
  ModelCostOracle a;
  ModelCostOracle b;
  auto counter_q = query::MakeQuery("counter");
  WorkHint hint{counter_q.get(), &batch.packets, 0.0};
  const double ca = a.Run(WorkKind::kQuery, hint, [] {});
  const double cb = b.Run(WorkKind::kQuery, hint, [] {});
  EXPECT_DOUBLE_EQ(ca, cb);
}

TEST(ModelOracle, LifecycleHooksBaselineAndForgetPerQueryWork) {
  // OnQueryAdded must baseline the charge counter to the query's *current*
  // lifetime work (so an instance with history — or an address reused by a
  // new instance — is charged only for work done after registration), and
  // OnQueryRemoved must drop the entry entirely.
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  ASSERT_TRUE(batcher.Next(batch));
  query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};

  ModelCostOracle oracle;
  auto q = query::MakeQuery("counter");
  // Build up lifetime work the oracle has never seen (as after an address
  // reuse, or a query that ran in another system).
  q->ProcessBatch(in);
  q->ProcessBatch(in);
  ASSERT_GT(q->work_units(), 0.0);

  // Registered now: the next charge covers only post-registration work.
  oracle.OnQueryAdded(q.get());
  WorkHint hint{q.get(), &batch.packets, 0.0};
  const double charged = oracle.Run(WorkKind::kQuery, hint, [&] { q->ProcessBatch(in); });
  const double one_batch_work = q->work_units() / 3.0;
  EXPECT_NEAR(charged, one_batch_work, one_batch_work * 0.02);  // +/-1% noise

  // Removed: the baseline is gone, so this address reads as brand new — the
  // next charge is the counter-from-zero delta a fresh instance reusing the
  // address would get, not the stale (here: zero) delta of the old entry.
  oracle.OnQueryRemoved(q.get());
  const double after_removal = oracle.Run(WorkKind::kQuery, hint, [] {});
  EXPECT_NEAR(after_removal, q->work_units(), q->work_units() * 0.02);
}

TEST(ModelOracle, StaleWorkEntryFallsBackToSaneCost) {
  // Regression test: when a query object address is reused across runs, the
  // oracle's per-query work baseline is stale and the charge falls back to
  // the name-based model. The fallback must use the real query name (a
  // dangling string_view here once produced garbage-name generic costs that
  // poisoned the prediction history).
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  ASSERT_TRUE(batcher.Next(batch));
  ModelCostOracle oracle;
  const double expected = oracle.QueryCost("counter", batch.packets);

  const query::Query* stale_addr = nullptr;
  {
    auto first = query::MakeQuery("counter");
    stale_addr = first.get();
    // Leave a large stale work total behind for this address.
    query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
    for (int i = 0; i < 50; ++i) {
      WorkHint hint{first.get(), &batch.packets, 0.0};
      oracle.Run(WorkKind::kQuery, hint, [&] { first->ProcessBatch(in); });
    }
  }
  // Allocate new queries until one lands on the stale address (usually the
  // first one); if the allocator never reuses it, the test is vacuous but
  // still passes on the fresh-entry path.
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto fresh = query::MakeQuery("counter");
    query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
    WorkHint hint{fresh.get(), &batch.packets, 0.0};
    const double charged =
        oracle.Run(WorkKind::kQuery, hint, [&] { fresh->ProcessBatch(in); });
    EXPECT_NEAR(charged, expected, expected * 0.05);
    if (fresh.get() == stale_addr) {
      break;
    }
  }
}

TEST(MeasuredOracle, ChargesPositiveCyclesForRealWork) {
  MeasuredCostOracle oracle;
  volatile double sink = 0.0;
  const double cycles = oracle.Run(WorkKind::kQuery, {}, [&] {
    for (int i = 0; i < 200000; ++i) {
      sink = sink + static_cast<double>(i);
    }
  });
  EXPECT_GT(cycles, 1000.0);
  EXPECT_GT(oracle.DefaultBinBudget(100'000), 1e6);
  (void)sink;
}

// ------------------------------------------------------- system behaviour --

RunSpec BaseSpec(ShedderKind shedder, double capacity) {
  RunSpec spec;
  spec.system.shedder = shedder;
  spec.system.strategy = shed::StrategyKind::kEqSrates;
  spec.system.cycles_per_bin = capacity;
  spec.oracle = OracleKind::kModel;
  spec.query_names = {"counter", "flows", "application"};
  spec.use_default_min_rates = false;  // pure Ch. 4 setting: no floors
  return spec;
}

TEST(System, ReferenceDemandIsPositive) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  EXPECT_GT(demand, 1e4);
}

TEST(System, PredictiveShedsWithoutUncontrolledDrops) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  // 2x overload (K = 0.5).
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 0.5 * demand), t);
  EXPECT_EQ(result.system->total_dropped(), 0u);
  // The system must actually have shed load.
  bool shed_something = false;
  for (const auto& bin : result.system->log()) {
    for (const double r : bin.rate) {
      if (r < 0.999) {
        shed_something = true;
      }
    }
  }
  EXPECT_TRUE(shed_something);
}

TEST(System, NoShedOverloadCausesUncontrolledDrops) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kNoShed, 0.5 * demand), t);
  EXPECT_GT(result.system->total_dropped(), result.system->total_packets() / 10);
}

TEST(System, PredictiveBeatsNoShedOnAccuracy) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  auto predictive = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 0.5 * demand), t);
  auto noshed = RunSystemOnTrace(BaseSpec(ShedderKind::kNoShed, 0.5 * demand), t);
  EXPECT_GT(predictive.AverageAccuracy(), noshed.AverageAccuracy() + 0.05);
  // The headline Ch. 4 claim: errors stay small under 2x overload. (The
  // first interval carries cold-start probing error, and the prediction
  // subsystem overhead eats into the query budget, hence the margin.)
  EXPECT_GT(predictive.AverageAccuracy(), 0.85);
}

TEST(System, ReactiveSitsBetweenPredictiveAndNoShed) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  auto predictive = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 0.5 * demand), t);
  auto reactive = RunSystemOnTrace(BaseSpec(ShedderKind::kReactive, 0.5 * demand), t);
  auto noshed = RunSystemOnTrace(BaseSpec(ShedderKind::kNoShed, 0.5 * demand), t);
  // Reactive controls loss far better than no shedding at all, but cannot
  // beat the predictive system by a meaningful margin and remains the only
  // sampled system with uncontrolled drops (Fig. 4.2).
  EXPECT_GE(predictive.AverageAccuracy() + 0.08, reactive.AverageAccuracy());
  EXPECT_GT(reactive.AverageAccuracy(), noshed.AverageAccuracy() - 0.02);
  EXPECT_EQ(predictive.system->total_dropped(), 0u);
}

TEST(System, NoOverloadMeansNoShedding) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  // Capacity = 3x demand: no drops, and near-perfect accuracy outside the
  // cold-start probe bins.
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 3.0 * demand), t);
  EXPECT_EQ(result.system->total_dropped(), 0u);
  EXPECT_GT(result.AverageAccuracy(), 0.97);
  // After warm-up every batch runs at full rate.
  const auto& log = result.system->log();
  for (size_t i = 10; i < log.size(); ++i) {
    for (const double r : log[i].rate) {
      EXPECT_GT(r, 0.999);
    }
  }
}

TEST(System, BudgetRespectedUpToBufferSlack) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  const double capacity = 0.5 * demand;
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, capacity), t);
  // Mean total spend per bin must not exceed capacity (stability in the
  // steady state, §4.1); individual bins may use the buffer slack.
  util::RunningStats spend;
  for (const auto& bin : result.system->log()) {
    spend.Add(bin.query_cycles + bin.ps_cycles + bin.ls_cycles + bin.como_cycles);
  }
  EXPECT_LT(spend.mean(), capacity * 1.10);
}

TEST(System, LogsHaveOneEntryPerBin) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  trace::Batcher batcher(t, 100'000);
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 1e9), t);
  EXPECT_EQ(result.system->log().size(), batcher.num_bins());
}

TEST(System, QueriesCompleteIntervals) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 1e9), t);
  for (size_t q = 0; q < result.system->num_queries(); ++q) {
    // 8 s trace, 1 s intervals.
    EXPECT_GE(result.system->query(q).completed_intervals(), 7u);
  }
}

TEST(System, MinRateFloorsAreHonoredByMmfs) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows", "application"}, t, OracleKind::kModel);
  RunSpec spec = BaseSpec(ShedderKind::kPredictive, 0.5 * demand);
  spec.system.strategy = shed::StrategyKind::kMmfsPkt;
  spec.query_configs = {{0.02, true}, {0.3, true}, {0.02, true}};
  spec.use_default_min_rates = false;
  auto result = RunSystemOnTrace(spec, t);
  // Whenever the flows query (index 1) ran, its rate was >= 0.3.
  for (const auto& bin : result.system->log()) {
    if (bin.batch_dropped || bin.rate.size() < 2) {
      continue;
    }
    if (!bin.disabled.empty() && !bin.disabled[1] && bin.rate[1] > 0.0) {
      EXPECT_GE(bin.rate[1], 0.3 - 1e-6);
    }
  }
}

TEST(System, SelfishCustomQueryGetsPoliced) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand = MeasureMeanDemand({"p2p-detector", "counter", "flows"}, t,
                                          OracleKind::kModel);
  SystemConfig cfg;
  cfg.cycles_per_bin = 0.4 * demand;  // heavy overload -> budgets bite
  cfg.shedder = ShedderKind::kPredictive;
  cfg.strategy = shed::StrategyKind::kMmfsPkt;
  cfg.enable_custom_shedding = true;
  cfg.enforcement.strikes_to_disable = 3;
  cfg.enforcement.penalty_bins = 10;
  MonitoringSystem system(cfg, MakeOracle(OracleKind::kModel));
  system.AddQuery(std::make_unique<query::SelfishP2pDetectorQuery>(), {0.05, true});
  system.AddQuery(query::MakeQuery("counter"), {0.05, true});
  system.AddQuery(query::MakeQuery("flows"), {0.05, true});

  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  while (batcher.Next(batch)) {
    system.ProcessBatch(batch);
  }
  system.Finish();
  EXPECT_GE(system.enforcement(0).times_policed(), 1u);
  EXPECT_EQ(system.enforcement(1).times_policed(), 0u);
}

TEST(System, HonestCustomQueryIsNotPoliced) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand = MeasureMeanDemand({"p2p-detector", "counter", "flows"}, t,
                                          OracleKind::kModel);
  SystemConfig cfg;
  cfg.cycles_per_bin = 0.5 * demand;
  cfg.shedder = ShedderKind::kPredictive;
  cfg.strategy = shed::StrategyKind::kMmfsPkt;
  cfg.enable_custom_shedding = true;
  MonitoringSystem system(cfg, MakeOracle(OracleKind::kModel));
  system.AddQuery(query::MakeQuery("p2p-detector"), {0.05, true});
  system.AddQuery(query::MakeQuery("counter"), {0.05, true});
  system.AddQuery(query::MakeQuery("flows"), {0.05, true});
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  while (batcher.Next(batch)) {
    system.ProcessBatch(batch);
  }
  system.Finish();
  EXPECT_EQ(system.enforcement(0).times_policed(), 0u);
}

TEST(System, QueryArrivalMidRunIsAbsorbed) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  const double demand =
      MeasureMeanDemand({"counter", "flows"}, t, OracleKind::kModel);
  SystemConfig cfg;
  cfg.cycles_per_bin = demand;  // fits two queries, tight for three
  cfg.shedder = ShedderKind::kPredictive;
  MonitoringSystem system(cfg, MakeOracle(OracleKind::kModel));
  system.AddQuery(query::MakeQuery("counter"));
  system.AddQuery(query::MakeQuery("flows"));
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  size_t bin = 0;
  while (batcher.Next(batch)) {
    if (bin == 30) {
      system.AddQuery(query::MakeQuery("application"));
    }
    system.ProcessBatch(batch);
    ++bin;
  }
  system.Finish();
  EXPECT_EQ(system.num_queries(), 3u);
  EXPECT_EQ(system.total_dropped(), 0u);
  EXPECT_GT(system.query(2).completed_intervals(), 3u);
}

TEST(Runner, DefaultMinRatesMatchTable52) {
  EXPECT_DOUBLE_EQ(DefaultMinRate("autofocus"), 0.69);
  EXPECT_DOUBLE_EQ(DefaultMinRate("super-sources"), 0.93);
  EXPECT_DOUBLE_EQ(DefaultMinRate("top-k"), 0.57);
  EXPECT_DOUBLE_EQ(DefaultMinRate("counter"), 0.03);
  EXPECT_DOUBLE_EQ(DefaultMinRate("unknown-query"), 0.0);
}

TEST(Runner, AccuracySummaryIsConsistent) {
  const auto t = trace::TraceGenerator(TestSpec()).Generate();
  auto result = RunSystemOnTrace(BaseSpec(ShedderKind::kPredictive, 1e9), t);
  for (size_t q = 0; q < result.system->num_queries(); ++q) {
    const auto row = result.Accuracy(q);
    EXPECT_GE(row.mean_error, 0.0);
    EXPECT_LE(row.mean_error, 1.0);
    EXPECT_NEAR(result.MeanAccuracy(q), 1.0 - row.mean_error, 1e-12);
  }
}

}  // namespace
}  // namespace shedmon::core
