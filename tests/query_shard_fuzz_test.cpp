// Seeded differential fuzz for query::ShardableQuery: every shardable
// query's sharded execution must match its serial twin EXACTLY — interval
// results, processed-packet accounting and work_units(), bit for bit — for
// random packet batches, random sampling rates, random shard range
// partitions and random shard *execution* order. Pattern-search additionally
// gets adversarial shard seams placed around (and inside) planted pattern
// occurrences, the case the pattern.size()-1 seam overlap exists for.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/query/queries.h"
#include "src/query/query.h"
#include "src/trace/batch.h"
#include "src/util/rng.h"

namespace shedmon {
namespace {

using query::BatchInput;
using query::Query;
using query::ShardableQuery;
using query::ShardState;

constexpr char kPattern[] = "HTTP/1.1";  // PatternSearchQuery's default

// ----------------------------------------------------------- batch builder --

// Owns records and payload bytes; Packets() views stay valid while the
// FuzzBatch is alive (vectors are sized up front, never reallocated after).
struct FuzzBatch {
  std::vector<net::PacketRecord> records;
  std::vector<std::vector<uint8_t>> payloads;
  trace::PacketVec packets;
  std::vector<size_t> pattern_offsets;  // global unit offsets of planted patterns

  BatchInput Input(double rate) const { return BatchInput{packets, 0, 100'000, rate}; }
};

// Effective shard-unit length of a packet in pattern-search's byte stream.
size_t EffectiveLen(const net::PacketRecord& rec) {
  return rec.payload_len > 0 ? rec.payload_len : sizeof(net::PacketRecord);
}

FuzzBatch MakeBatch(util::Rng& rng, size_t num_packets) {
  FuzzBatch batch;
  batch.records.resize(num_packets);
  batch.payloads.resize(num_packets);
  const size_t pattern_len = sizeof(kPattern) - 1;
  size_t unit_offset = 0;
  for (size_t i = 0; i < num_packets; ++i) {
    net::PacketRecord& rec = batch.records[i];
    // Small key pools force cross-shard duplicate tuples/keys, the case the
    // merge dedup logic must get right.
    rec.tuple.src_ip = 0x0a000000u + static_cast<uint32_t>(rng.NextU64() % 7);
    rec.tuple.dst_ip = 0xc0a80000u + static_cast<uint32_t>(rng.NextU64() % 5);
    rec.tuple.src_port = static_cast<uint16_t>(1024 + rng.NextU64() % 16);
    rec.tuple.dst_port = static_cast<uint16_t>(rng.NextU64() % 4 == 0 ? 80 : 2000);
    rec.tuple.proto = net::kProtoTcp;
    rec.wire_len = static_cast<uint16_t>(40 + rng.NextU64() % 1461);

    if (rng.NextU64() % 5 != 0) {  // 4 in 5 packets carry a payload
      auto& payload = batch.payloads[i];
      payload.resize(1 + rng.NextU64() % 256);
      for (auto& b : payload) {
        b = static_cast<uint8_t>(rng.NextU64());
      }
      // Plant 0-2 (possibly overlapping) pattern occurrences.
      const size_t plants = rng.NextU64() % 3;
      for (size_t p = 0; p < plants && payload.size() >= pattern_len; ++p) {
        const size_t at = rng.NextU64() % (payload.size() - pattern_len + 1);
        std::memcpy(payload.data() + at, kPattern, pattern_len);
        batch.pattern_offsets.push_back(unit_offset + at);
      }
      rec.payload_len = static_cast<uint16_t>(payload.size());
    }
    unit_offset += EffectiveLen(rec);
  }
  batch.packets.resize(num_packets);
  for (size_t i = 0; i < num_packets; ++i) {
    net::Packet& pkt = batch.packets[i];
    pkt.rec = &batch.records[i];
    if (!batch.payloads[i].empty()) {
      pkt.payload = batch.payloads[i].data();
      pkt.payload_len = static_cast<uint16_t>(batch.payloads[i].size());
    }
  }
  return batch;
}

// ------------------------------------------------------ sharded execution --

// Turns sorted unique cut points into [0, units) ranges.
std::vector<std::pair<size_t, size_t>> RangesFromCuts(size_t units, std::vector<size_t> cuts) {
  cuts.push_back(0);
  cuts.push_back(units);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    if (cuts[i] < units) {
      ranges.emplace_back(cuts[i], std::min(cuts[i + 1], units));
    }
  }
  if (ranges.empty()) {
    ranges.emplace_back(0, units);
  }
  return ranges;
}

// Random cut points; for pattern-search batches the cuts cluster around the
// planted occurrences (start-1, start, inside the pattern, one before its
// end, first byte past it) so seams adversarially slice occurrences.
std::vector<std::pair<size_t, size_t>> PickRanges(util::Rng& rng, size_t units,
                                                  const std::vector<size_t>& hot_spots) {
  std::vector<size_t> cuts;
  const size_t random_cuts = rng.NextU64() % 8;
  for (size_t c = 0; c < random_cuts && units > 0; ++c) {
    cuts.push_back(rng.NextU64() % units);
  }
  const size_t pattern_len = sizeof(kPattern) - 1;
  for (const size_t at : hot_spots) {
    if (rng.NextU64() % 2 != 0) {
      continue;
    }
    const size_t deltas[] = {0, 1, pattern_len / 2, pattern_len - 1, pattern_len};
    const size_t delta = deltas[rng.NextU64() % 5];
    if (at + delta <= units) {
      cuts.push_back(at + delta);
    }
    if (at >= 1 && rng.NextU64() % 2 == 0) {
      cuts.push_back(at - 1);
    }
  }
  return RangesFromCuts(units, std::move(cuts));
}

// Runs one batch through the shard path: fork per range, process the ranges
// in a random order (shards are independent, so execution order must not
// matter), hand the partials to ProcessShards in shard-index order.
void ProcessSharded(util::Rng& rng, Query& q, const BatchInput& in,
                    const std::vector<std::pair<size_t, size_t>>& ranges) {
  ShardableQuery* sh = q.shardable();
  ASSERT_NE(sh, nullptr);
  std::vector<std::unique_ptr<ShardState>> states;
  states.reserve(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    states.push_back(sh->ForkShard());
  }
  std::vector<size_t> order(ranges.size());
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = order.size(); i > 1; --i) {  // Fisher-Yates on the seeded rng
    std::swap(order[i - 1], order[rng.NextU64() % i]);
  }
  for (const size_t s : order) {
    sh->OnShardBatch(*states[s], in, ranges[s].first, ranges[s].second);
  }
  q.ProcessShards(in, std::move(states));
}

// ------------------------------------------------------ result comparison --

#define SHEDMON_EXPECT_SAME(lhs, rhs) EXPECT_EQ(lhs, rhs) << "sharded vs serial mismatch"

void ExpectSameResults(const std::string& name, Query& sharded, Query& serial) {
  SHEDMON_EXPECT_SAME(sharded.work_units(), serial.work_units());
  SHEDMON_EXPECT_SAME(sharded.completed_intervals(), serial.completed_intervals());
  for (size_t i = 0; i < serial.completed_intervals(); ++i) {
    SHEDMON_EXPECT_SAME(sharded.IntervalPacketsProcessed(i),
                        serial.IntervalPacketsProcessed(i));
  }
  if (name == "counter") {
    const auto& a = dynamic_cast<query::CounterQuery&>(sharded).snapshots();
    const auto& b = dynamic_cast<query::CounterQuery&>(serial).snapshots();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      SHEDMON_EXPECT_SAME(a[i].pkts, b[i].pkts);
      SHEDMON_EXPECT_SAME(a[i].bytes, b[i].bytes);
    }
  } else if (name == "application") {
    const auto& a = dynamic_cast<query::ApplicationQuery&>(sharded).snapshots();
    const auto& b = dynamic_cast<query::ApplicationQuery&>(serial).snapshots();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      SHEDMON_EXPECT_SAME(a[i].pkts, b[i].pkts);
      SHEDMON_EXPECT_SAME(a[i].bytes, b[i].bytes);
    }
  } else if (name == "high-watermark") {
    SHEDMON_EXPECT_SAME(dynamic_cast<query::HighWatermarkQuery&>(sharded).watermarks(),
                        dynamic_cast<query::HighWatermarkQuery&>(serial).watermarks());
  } else if (name == "flows") {
    SHEDMON_EXPECT_SAME(dynamic_cast<query::FlowsQuery&>(sharded).flow_counts(),
                        dynamic_cast<query::FlowsQuery&>(serial).flow_counts());
  } else if (name == "top-k") {
    const auto& a = dynamic_cast<query::TopKQuery&>(sharded).snapshots();
    const auto& b = dynamic_cast<query::TopKQuery&>(serial).snapshots();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      SHEDMON_EXPECT_SAME(a[i].topk, b[i].topk);  // includes tie-break order
      SHEDMON_EXPECT_SAME(a[i].all, b[i].all);
    }
  } else if (name == "pattern-search") {
    SHEDMON_EXPECT_SAME(dynamic_cast<query::PatternSearchQuery&>(sharded).match_counts(),
                        dynamic_cast<query::PatternSearchQuery&>(serial).match_counts());
  } else if (name == "autofocus") {
    SHEDMON_EXPECT_SAME(dynamic_cast<query::AutofocusQuery&>(sharded).reports(),
                        dynamic_cast<query::AutofocusQuery&>(serial).reports());
  } else if (name == "super-sources") {
    const auto& a = dynamic_cast<query::SuperSourcesQuery&>(sharded).snapshots();
    const auto& b = dynamic_cast<query::SuperSourcesQuery&>(serial).snapshots();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      SHEDMON_EXPECT_SAME(a[i].top, b[i].top);
      SHEDMON_EXPECT_SAME(a[i].all, b[i].all);
    }
  } else {
    FAIL() << "no exact comparator for query " << name;
  }
}

// ------------------------------------------------------------- the driver --

std::vector<std::string> ShardableQueryNames() {
  std::vector<std::string> names;
  for (const auto& name : query::AllQueryNames()) {
    if (query::MakeQuery(name)->shardable() != nullptr) {
      names.push_back(name);
    }
  }
  return names;
}

class QueryShardFuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(QueryShardFuzz, ShardedMatchesSerialTwinExactly) {
  const std::string name = GetParam();
  util::Rng rng(0x5eed0000 + std::hash<std::string>{}(name) % 1024);
  constexpr int kRounds = 40;
  constexpr int kBatchesPerInterval = 3;

  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto sharded_q = query::MakeQuery(name);
    auto serial_q = query::MakeQuery(name);
    ShardableQuery* sh = sharded_q->shardable();
    ASSERT_NE(sh, nullptr);

    for (int b = 0; b < kBatchesPerInterval; ++b) {
      const size_t num_packets = 1 + rng.NextU64() % 64;  // includes 1-packet batches
      const FuzzBatch batch = MakeBatch(rng, num_packets);
      const double rates[] = {1.0, 0.5, 0.37, 0.08};
      const BatchInput in = batch.Input(rates[rng.NextU64() % 4]);

      const size_t units = sh->ShardUnits(in);
      const auto ranges = PickRanges(rng, units, name == "pattern-search"
                                                    ? batch.pattern_offsets
                                                    : std::vector<size_t>{});
      ProcessSharded(rng, *sharded_q, in, ranges);
      serial_q->ProcessBatch(in);
      // Work must match after every batch, not only at interval ends: the
      // cost oracle charges per-batch deltas of this counter.
      SHEDMON_EXPECT_SAME(sharded_q->work_units(), serial_q->work_units());
    }
    sharded_q->EndInterval();
    serial_q->EndInterval();
    ExpectSameResults(name, *sharded_q, *serial_q);
  }
}

INSTANTIATE_TEST_SUITE_P(AllShardableQueries, QueryShardFuzz,
                         ::testing::ValuesIn(ShardableQueryNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// A deterministic, non-fuzz seam check: a single payload whose pattern sits
// exactly on a shard seam must be found by the left shard (which scans the
// pattern.size()-1 overlap) and only counted once even when both shards see
// pattern bytes.
TEST(QueryShardSeams, OccurrenceStraddlingSeamCountsExactlyOnce) {
  util::Rng rng(7);
  const std::string pattern(kPattern);
  for (size_t seam_delta = 0; seam_delta <= pattern.size(); ++seam_delta) {
    SCOPED_TRACE("seam at pattern start + " + std::to_string(seam_delta));
    FuzzBatch batch;
    batch.records.resize(1);
    batch.payloads.resize(1);
    auto& payload = batch.payloads[0];
    payload.assign(64, 0x2e);
    const size_t at = 20;
    std::memcpy(payload.data() + at, pattern.data(), pattern.size());
    batch.records[0].tuple = {1, 2, 1024, 80, net::kProtoTcp};
    batch.records[0].wire_len = 100;
    batch.records[0].payload_len = static_cast<uint16_t>(payload.size());
    batch.packets.resize(1);
    batch.packets[0].rec = &batch.records[0];
    batch.packets[0].payload = payload.data();
    batch.packets[0].payload_len = static_cast<uint16_t>(payload.size());

    query::PatternSearchQuery sharded;
    query::PatternSearchQuery serial;
    const BatchInput in = batch.Input(1.0);
    ProcessSharded(rng, sharded, in, {{0, at + seam_delta}, {at + seam_delta, payload.size()}});
    serial.ProcessBatch(in);
    sharded.EndInterval();
    serial.EndInterval();
    ASSERT_EQ(serial.match_counts().size(), 1u);
    EXPECT_EQ(serial.match_counts()[0], 1.0);
    EXPECT_EQ(sharded.match_counts(), serial.match_counts());
    EXPECT_EQ(sharded.work_units(), serial.work_units());
  }
}

}  // namespace
}  // namespace shedmon
