#!/usr/bin/env bash
# End-to-end smoke for the live capture front-end, driven exactly the way an
# operator would: `shedmon capture` listens on ephemeral loopback UDP and
# HTTP ports, `shedmon replay` blasts a generated trace into it, /healthz is
# scraped mid-run, and a SIGTERM must drain cleanly — results table printed,
# per-bin CSV written, exit code zero.
#
# usage: capture_smoke.sh <path-to-shedmon_cli>
set -euo pipefail

CLI=$(readlink -f "${1:?usage: capture_smoke.sh <path-to-shedmon_cli>}")
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$CLI" generate --preset cesca2 --duration 3 --seed 23 --out trace.smt >/dev/null

"$CLI" capture --listen-udp 0 --serve 0 \
  --queries counter,flows --capacity 5e6 \
  --csv bins.csv --metrics-out metrics.prom \
  >cap.out 2>cap.err &
pid=$!

for _ in $(seq 200); do
  grep -q '^running' cap.out 2>/dev/null && break
  sleep 0.02
done
UDP_PORT=$(sed -n 's#^capturing udp://127.0.0.1:\([0-9]*\).*#\1#p' cap.out)
HTTP_PORT=$(sed -n 's#^serving http://127.0.0.1:\([0-9]*\).*#\1#p' cap.out)
[ -n "$UDP_PORT" ] || { echo "FAIL: no 'capturing udp://' banner"; cat cap.out; exit 1; }
[ -n "$HTTP_PORT" ] || { echo "FAIL: no 'serving' banner"; cat cap.out; exit 1; }

# Paced rather than blast-rate: loopback UDP can overflow the socket buffer
# on a loaded CI box, and this smoke asserts delivery, not shedding.
"$CLI" replay trace.smt --udp "$UDP_PORT" --pps 50000 >replay.out
grep -q '^replayed' replay.out || { echo "FAIL: replay reported nothing"; cat replay.out; exit 1; }

# Mid-run scrape: the pipeline is live while the capture loop owns it.
python3 - "http://127.0.0.1:$HTTP_PORT/healthz" <<'PY' >healthz.json
import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())
PY
grep -q '"status":"ok"' healthz.json || {
  echo "FAIL: /healthz not ok mid-capture"; cat healthz.json; exit 1; }

# Give the capture loop a moment to drain the datagrams, then ask for a
# clean shutdown. SIGTERM must produce a graceful stop: capture stats, the
# results table, and exit code 0.
sleep 1
kill -TERM "$pid"
wait "$pid" || { echo "FAIL: capture exited non-zero after SIGTERM"; cat cap.err; exit 1; }

grep -q '^capture: ' cap.out || { echo "FAIL: no capture stats line"; cat cap.out; exit 1; }
grep -q 'accuracy error' cap.out || { echo "FAIL: no results table"; cat cap.out; exit 1; }
[ -s bins.csv ] || { echo "FAIL: --csv wrote nothing"; exit 1; }
grep -q 'shedmon_capture_packets_total' metrics.prom || {
  echo "FAIL: metrics lack shedmon_capture_packets_total"; cat metrics.prom | head; exit 1; }

# The capture must have decoded a healthy share of the replayed datagrams
# (loopback UDP may shed a few under load, but near-total loss is a bug).
python3 - <<'PY' || { echo "FAIL: capture saw too few packets"; cat cap.out; exit 1; }
import re
out = open("cap.out").read()
sent = int(re.search(r"replayed (\d+)/", open("replay.out").read()).group(1))
got = int(re.search(r"capture: (\d+) frames", out).group(1))
assert got >= sent * 0.9, (got, sent)
PY

echo "capture smoke: OK"
