#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/features/features.h"
#include "src/predict/engine.h"
#include "src/predict/fcbf.h"
#include "src/predict/linalg.h"
#include "src/predict/predictors.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace shedmon::predict {
namespace {

using features::FeatureVector;
using features::kFeatBytes;
using features::kFeatNewFiveTuple;
using features::kFeatPackets;

TEST(Svd, SolvesExactSquareSystem) {
  // [1 1; 1 2] x = [3; 5] -> x = [1, 2].
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 2;
  const auto r = SolveLeastSquaresSvd(a, {3.0, 5.0});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rank, 2);
  EXPECT_NEAR(r.coef[0], 1.0, 1e-9);
  EXPECT_NEAR(r.coef[1], 2.0, 1e-9);
}

TEST(Svd, LeastSquaresOverdetermined) {
  // y = 2x with one noisy point; OLS slope is known in closed form.
  Matrix a(4, 1);
  std::vector<double> y(4);
  const double xs[4] = {1, 2, 3, 4};
  const double ys[4] = {2, 4, 6, 9};
  double sxy = 0.0;
  double sxx = 0.0;
  for (int i = 0; i < 4; ++i) {
    a.At(static_cast<size_t>(i), 0) = xs[i];
    y[static_cast<size_t>(i)] = ys[i];
    sxy += xs[i] * ys[i];
    sxx += xs[i] * xs[i];
  }
  const auto r = SolveLeastSquaresSvd(a, y);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.coef[0], sxy / sxx, 1e-9);
}

TEST(Svd, HandlesDuplicatedColumns) {
  // Two identical columns: rank 1; pseudo-inverse splits the weight evenly.
  Matrix a(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    a.At(i, 0) = static_cast<double>(i + 1);
    a.At(i, 1) = static_cast<double>(i + 1);
  }
  const std::vector<double> y = {2, 4, 6, 8};
  const auto r = SolveLeastSquaresSvd(a, y);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rank, 1);
  EXPECT_NEAR(r.coef[0], 1.0, 1e-9);
  EXPECT_NEAR(r.coef[1], 1.0, 1e-9);
  // Residual must be zero: the system is consistent.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.At(i, 0) * r.coef[0] + a.At(i, 1) * r.coef[1], y[i], 1e-9);
  }
}

TEST(Svd, UnderdeterminedReturnsMinimumNorm) {
  // One equation, two unknowns: x0 + x1 = 4 -> min-norm solution (2, 2).
  Matrix a(1, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 1;
  const auto r = SolveLeastSquaresSvd(a, {4.0});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.coef[0], 2.0, 1e-9);
  EXPECT_NEAR(r.coef[1], 2.0, 1e-9);
}

TEST(Svd, LargeRandomSystemResidualIsOptimal) {
  // Residual of SVD solution must be orthogonal to the column space.
  util::Rng rng(5);
  const size_t n = 60;
  const size_t p = 8;
  Matrix a(n, p);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < p; ++j) {
      a.At(i, j) = rng.NextGaussian();
    }
    y[i] = rng.NextGaussian();
  }
  const auto r = SolveLeastSquaresSvd(a, y);
  ASSERT_TRUE(r.ok);
  std::vector<double> resid(n);
  for (size_t i = 0; i < n; ++i) {
    double pred = 0.0;
    for (size_t j = 0; j < p; ++j) {
      pred += a.At(i, j) * r.coef[j];
    }
    resid[i] = y[i] - pred;
  }
  for (size_t j = 0; j < p; ++j) {
    double dot = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dot += a.At(i, j) * resid[i];
    }
    EXPECT_NEAR(dot, 0.0, 1e-6) << "column " << j;
  }
}

TEST(Svd, EmptyInputsRejected) {
  Matrix a;
  const auto r = SolveLeastSquaresSvd(a, {});
  EXPECT_FALSE(r.ok);
  Matrix b(2, 1);
  EXPECT_THROW(SolveLeastSquaresSvd(b, {1.0}), std::invalid_argument);
}

Matrix MakeFeatureMatrix(const std::vector<std::vector<double>>& rows) {
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      m.At(r, c) = rows[r][c];
    }
  }
  return m;
}

TEST(Fcbf, SelectsTheRelevantFeature) {
  // Column 0 = y exactly, column 1 = noise, column 2 = constant.
  util::Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    const double v = static_cast<double>(i);
    rows.push_back({v, rng.NextGaussian() * 100.0, 7.0});
    y.push_back(3.0 * v);
  }
  const auto r = SelectFeatures(MakeFeatureMatrix(rows), y, 0.6);
  ASSERT_FALSE(r.selected.empty());
  EXPECT_EQ(r.selected[0], 0);
  for (int s : r.selected) {
    EXPECT_NE(s, 2);  // constants are never relevant
  }
}

TEST(Fcbf, RemovesRedundantCopies) {
  // Columns 0 and 1 are identical and both perfectly relevant; only one may
  // survive the redundancy phase.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    const double v = static_cast<double>(i);
    rows.push_back({v, v, 30.0 - v});
    y.push_back(v);
  }
  const auto r = SelectFeatures(MakeFeatureMatrix(rows), y, 0.5);
  int copies = 0;
  for (int s : r.selected) {
    if (s == 0 || s == 1) {
      ++copies;
    }
  }
  EXPECT_EQ(copies, 1);
}

TEST(Fcbf, FallsBackToBestFeatureWhenThresholdTooHigh) {
  util::Rng rng(9);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double v = static_cast<double>(i);
    // Weak but nonzero correlation in column 1.
    rows.push_back({rng.NextGaussian(), v + rng.NextGaussian() * 30.0});
    y.push_back(v);
  }
  const auto r = SelectFeatures(MakeFeatureMatrix(rows), y, 0.99);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1);
}

TEST(Fcbf, HigherThresholdSelectsFewer) {
  util::Rng rng(13);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    const double v = static_cast<double>(i);
    rows.push_back({v + rng.NextGaussian() * 2.0, v + rng.NextGaussian() * 20.0,
                    v + rng.NextGaussian() * 60.0, rng.NextGaussian() * 10.0});
    y.push_back(v);
  }
  const auto low = SelectFeatures(MakeFeatureMatrix(rows), y, 0.1);
  const auto high = SelectFeatures(MakeFeatureMatrix(rows), y, 0.95);
  EXPECT_GE(low.selected.size(), high.selected.size());
}

FeatureVector MakeFeatures(double pkts, double bytes, double new5t) {
  FeatureVector f{};
  f[kFeatPackets] = pkts;
  f[kFeatBytes] = bytes;
  f[kFeatNewFiveTuple] = new5t;
  return f;
}

TEST(EwmaPredictorTest, TracksConstantSignal) {
  EwmaPredictor p(0.3);
  for (int i = 0; i < 20; ++i) {
    p.Observe(MakeFeatures(100, 1000, 10), 5000.0);
  }
  EXPECT_NEAR(p.Predict(MakeFeatures(500, 5000, 50)), 5000.0, 1e-6);
}

TEST(EwmaPredictorTest, CannotAnticipateInputChanges) {
  // The paper's core observation (Fig. 3.9): EWMA ignores the traffic, so a
  // sudden surge in packets is invisible until after it has cost cycles.
  EwmaPredictor p(0.3);
  for (int i = 0; i < 50; ++i) {
    p.Observe(MakeFeatures(100, 1000, 10), 1000.0);
  }
  const double pred_surge = p.Predict(MakeFeatures(1000, 10000, 100));
  EXPECT_NEAR(pred_surge, 1000.0, 1e-6);  // blind to the 10x input surge
}

TEST(SlrPredictorTest, RecoversLinearPacketCost) {
  SlrPredictor p(kFeatPackets, 60);
  util::Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 400.0;
    p.Observe(MakeFeatures(pkts, pkts * 10, 5), 500.0 + 30.0 * pkts);
  }
  const double pred = p.Predict(MakeFeatures(300, 3000, 5));
  EXPECT_NEAR(pred, 500.0 + 30.0 * 300.0, 200.0);
}

TEST(SlrPredictorTest, MissesCostsDrivenByOtherFeatures) {
  // Cost depends on new flows while packets stay constant: SLR on packets
  // must fail (the Fig. 3.14 failure mode).
  SlrPredictor p(kFeatPackets, 60);
  util::Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    const double flows = (i % 2 == 0) ? 10.0 : 500.0;
    p.Observe(MakeFeatures(200, 2000, flows), 100.0 * flows);
  }
  const double pred_attack = p.Predict(MakeFeatures(200, 2000, 500));
  EXPECT_GT(util::RelativeError(pred_attack, 100.0 * 500.0), 0.30);
}

TEST(MlrPredictorTest, LearnsMultiFeatureCost) {
  MlrPredictor::Config cfg;
  cfg.history = 60;
  // Both drivers must clear the relevance filter: the packet term explains
  // only ~25% of the variance here, so the threshold sits below that.
  cfg.fcbf_threshold = 0.15;
  MlrPredictor p(cfg);
  util::Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 400.0;
    const double new5t = 10.0 + rng.NextDouble() * 200.0;
    p.Observe(MakeFeatures(pkts, pkts * 8, new5t), 20.0 * pkts + 150.0 * new5t);
  }
  const double pred = p.Predict(MakeFeatures(250, 2000, 100));
  EXPECT_NEAR(pred, 20.0 * 250 + 150.0 * 100, 0.05 * (20.0 * 250 + 150.0 * 100));
}

TEST(MlrPredictorTest, AnticipatesFlowAnomalyUnlikeSlr) {
  // Reproduces the §3.4.3 comparison in miniature: cost = f(new flows);
  // during a spoofed DDoS the flow count explodes while packets stay flat.
  MlrPredictor::Config cfg;
  cfg.fcbf_threshold = 0.6;
  MlrPredictor mlr(cfg);
  SlrPredictor slr(kFeatPackets, 60);
  util::Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const double pkts = 180.0 + rng.NextDouble() * 40.0;  // nearly flat
    const double new5t = 20.0 + rng.NextDouble() * 180.0;
    const double cost = 10.0 * pkts + 120.0 * new5t;
    const auto f = MakeFeatures(pkts, pkts * 8, new5t);
    mlr.Observe(f, cost);
    slr.Observe(f, cost);
  }
  const auto attack = MakeFeatures(200, 1600, 2000);  // flow explosion
  const double truth = 10.0 * 200 + 120.0 * 2000;
  EXPECT_LT(util::RelativeError(mlr.Predict(attack), truth), 0.10);
  EXPECT_GT(util::RelativeError(slr.Predict(attack), truth), 0.50);
}

TEST(MlrPredictorTest, SelectionCountsAccumulate) {
  MlrPredictor p;
  util::Rng rng(19);
  for (int i = 0; i < 30; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 100.0;
    p.Observe(MakeFeatures(pkts, pkts * 10, 5), 40.0 * pkts);
  }
  EXPECT_FALSE(p.selection_counts().empty());
  EXPECT_FALSE(p.last_selected().empty());
}

TEST(MlrPredictorTest, ColdStartReturnsHistoryMean) {
  MlrPredictor p;
  EXPECT_DOUBLE_EQ(p.Predict(MakeFeatures(100, 1000, 5)), 0.0);
  p.Observe(MakeFeatures(100, 1000, 5), 4000.0);
  p.Observe(MakeFeatures(100, 1000, 5), 6000.0);
  EXPECT_NEAR(p.Predict(MakeFeatures(100, 1000, 5)), 5000.0, 1e-6);
}

TEST(MlrPredictorTest, AmendLastObservationScrubsCorruption) {
  MlrPredictor p;
  util::Rng rng(23);
  for (int i = 0; i < 40; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 100.0;
    p.Observe(MakeFeatures(pkts, pkts * 10, 5), 40.0 * pkts);
  }
  // A "context switch" corrupts the last measurement with a huge value.
  p.Observe(MakeFeatures(150, 1500, 5), 1e9);
  p.AmendLastObservation(40.0 * 150.0);
  const double pred = p.Predict(MakeFeatures(150, 1500, 5));
  EXPECT_NEAR(pred, 6000.0, 600.0);
}

TEST(MlrPredictorTest, SlidingWindowForgetsOldRegime) {
  MlrPredictor::Config cfg;
  cfg.history = 30;
  MlrPredictor p(cfg);
  util::Rng rng(29);
  // Regime 1: expensive per packet.
  for (int i = 0; i < 30; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 100.0;
    p.Observe(MakeFeatures(pkts, pkts * 10, 5), 100.0 * pkts);
  }
  // Regime 2: cheap per packet; window is fully replaced.
  for (int i = 0; i < 30; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 100.0;
    p.Observe(MakeFeatures(pkts, pkts * 10, 5), 10.0 * pkts);
  }
  EXPECT_NEAR(p.Predict(MakeFeatures(200, 2000, 5)), 2000.0, 300.0);
}

TEST(PredictorFactory, BuildsAllKinds) {
  PredictorConfig cfg;
  cfg.kind = PredictorKind::kMlr;
  EXPECT_EQ(MakePredictor(cfg)->name(), "mlr+fcbf");
  cfg.kind = PredictorKind::kSlr;
  EXPECT_EQ(MakePredictor(cfg)->name(), "slr");
  cfg.kind = PredictorKind::kEwma;
  EXPECT_EQ(MakePredictor(cfg)->name(), "ewma");
}

TEST(PredictionEngineTest, EndToEndPredictObserve) {
  PredictorConfig cfg;
  features::FeatureExtractor::Config ex;
  PredictionEngine engine(cfg, ex);
  util::Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    const double pkts = 100.0 + rng.NextDouble() * 100.0;
    engine.ObserveActual(MakeFeatures(pkts, pkts * 10, 5), 25.0 * pkts);
  }
  const double pred = engine.PredictCycles(MakeFeatures(160, 1600, 5));
  EXPECT_NEAR(pred, 4000.0, 400.0);
  EXPECT_NE(engine.mlr(), nullptr);
}

// Parameterized: MLR accuracy as a function of history length (the Fig. 3.5
// experiment's left half as a property — more history up to ~30 observations
// must not make prediction dramatically worse on stationary inputs).
class MlrHistorySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MlrHistorySweep, StationaryErrorStaysSmall) {
  MlrPredictor::Config cfg;
  cfg.history = GetParam();
  cfg.fcbf_threshold = 0.2;  // keep the weaker (packet) driver selected
  MlrPredictor p(cfg);
  util::Rng rng(37 + GetParam());
  util::RunningStats err;
  for (int i = 0; i < 150; ++i) {
    const double pkts = 200.0 + rng.NextDouble() * 200.0;
    const double new5t = 20.0 + rng.NextDouble() * 50.0;
    const auto f = MakeFeatures(pkts, pkts * 9, new5t);
    const double truth = 15.0 * pkts + 90.0 * new5t;
    if (i > 30) {
      err.Add(util::RelativeError(p.Predict(f), truth));
    }
    p.Observe(f, truth * (1.0 + 0.01 * rng.NextGaussian()));
  }
  EXPECT_LT(err.mean(), 0.05) << "history=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Histories, MlrHistorySweep, ::testing::Values(10, 30, 60, 120));

}  // namespace
}  // namespace shedmon::predict
