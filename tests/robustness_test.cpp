// End-to-end robustness suite: the deadline governor's degradation ladder
// firing under injected stalls, bounded ingest policies, sink quarantine
// under injected I/O faults, crash-safe checkpoint / restore replay, and —
// the other side of the coin — proof that a pipeline with every rt feature
// armed but no faults firing produces BinLogs bit-identical to a plain
// pipeline at every (threads x shards) combination.
//
// All time is a ManualClock: "this bin overran" is something the fault plan
// states, never something the test hopes the scheduler reproduces.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/pipeline.h"
#include "src/api/sinks.h"
#include "src/core/runner.h"
#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/query/queries.h"
#include "src/rt/clock.h"
#include "src/rt/fault.h"
#include "src/rt/governor.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"

namespace shedmon {
namespace {

const trace::Trace& RobustnessTrace() {
  static const trace::Trace trace = [] {
    trace::TraceSpec spec = trace::CescaII();
    spec.duration_s = 3.0;
    return trace::TraceGenerator(spec).Generate();
  }();
  return trace;
}

core::SystemConfig BaseConfig(size_t threads, size_t shards) {
  core::SystemConfig config;
  config.shedder = core::ShedderKind::kPredictive;
  config.num_threads = threads;
  config.max_shards_per_query = shards;
  config.cycles_per_bin = 0.5 * core::MeasureMeanDemand({"counter", "flows"}, RobustnessTrace(),
                                                        core::OracleKind::kModel);
  return config;
}

void ExpectBinLogsIdentical(const std::vector<core::BinLog>& golden,
                            const std::vector<core::BinLog>& actual) {
  ASSERT_EQ(golden.size(), actual.size());
  for (size_t b = 0; b < golden.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    const core::BinLog& g = golden[b];
    const core::BinLog& a = actual[b];
    EXPECT_EQ(g.start_us, a.start_us);
    EXPECT_EQ(g.packets_in, a.packets_in);
    EXPECT_EQ(g.packets_dropped, a.packets_dropped);
    EXPECT_EQ(g.packets_unsampled, a.packets_unsampled);
    EXPECT_EQ(g.batch_dropped, a.batch_dropped);
    EXPECT_EQ(g.overload, a.overload);
    EXPECT_EQ(g.predicted_cycles, a.predicted_cycles);
    EXPECT_EQ(g.avail_cycles, a.avail_cycles);
    EXPECT_EQ(g.query_cycles, a.query_cycles);
    EXPECT_EQ(g.ps_cycles, a.ps_cycles);
    EXPECT_EQ(g.ls_cycles, a.ls_cycles);
    EXPECT_EQ(g.como_cycles, a.como_cycles);
    EXPECT_EQ(g.backlog_cycles, a.backlog_cycles);
    EXPECT_EQ(g.rtthresh, a.rtthresh);
    EXPECT_EQ(g.rate, a.rate);
    EXPECT_EQ(g.per_query_cycles, a.per_query_cycles);
    EXPECT_EQ(g.disabled, a.disabled);
    EXPECT_EQ(g.degradation, a.degradation);
    EXPECT_EQ(g.deadline_missed, a.deadline_missed);
    EXPECT_EQ(g.deadline_overrun_us, a.deadline_overrun_us);
  }
}

// Sums every series of the family: rt counters split by {rung=...} labels
// still report their ladder-wide totals here.
double CounterValue(const obs::MetricsRegistry& metrics, const std::string& name) {
  double sum = 0.0;
  for (const auto& sample : metrics.Snapshot().samples) {
    if (sample.name == name) {
      sum += sample.value;
    }
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Deadline governor end-to-end
// ---------------------------------------------------------------------------

// Every bin stalls past the wall-clock budget, so the ladder must climb one
// rung per bin — boost, truncate, drop — and its footprint must be visible
// in the BinLogs, the stats and the metrics.
TEST(Robustness, DeadlineLadderFiresUnderInjectedStalls) {
  auto clock = std::make_shared<rt::ManualClock>();
  rt::GovernorConfig governor;
  governor.budget_fraction = 0.5;  // 100ms bins -> 50ms budget
  governor.boost_factor = 2.0;
  governor.decay_bins = 2;

  auto pipeline = api::PipelineBuilder()
                      .Config(BaseConfig(0, 1))
                      .AddQuery("counter")
                      .AddQuery("flows")
                      .RtClock(clock)
                      .Deadline(governor)
                      .InjectFaults(rt::FaultPlan::Parse("stall_every=1:80000"))
                      .BuildUnique();
  pipeline->Push(RobustnessTrace());
  pipeline->Finish();

  const auto& log = pipeline->log();
  ASSERT_GE(log.size(), 6u);
  // Bin 0 runs undegraded (the first overrun can only shape bin 1), then the
  // ladder climbs one rung per bin and pins at drop.
  EXPECT_EQ(log[0].degradation, 0);
  EXPECT_TRUE(log[0].deadline_missed);
  EXPECT_GT(log[0].deadline_overrun_us, 0.0);
  EXPECT_EQ(log[1].degradation, 1);  // boost shedding
  EXPECT_EQ(log[2].degradation, 2);  // truncate: last query disabled
  EXPECT_TRUE(log[2].disabled.back());
  EXPECT_EQ(log[3].degradation, 3);  // drop bin
  EXPECT_TRUE(log[3].batch_dropped);
  EXPECT_EQ(log.back().degradation, 3);

  const api::PipelineStats stats = pipeline->Stats();
  EXPECT_EQ(stats.deadline_misses, log.size());
  EXPECT_EQ(stats.degradation_level, 3);

  const obs::MetricsRegistry& metrics = pipeline->Metrics();
  EXPECT_EQ(CounterValue(metrics, "shedmon_rt_deadline_miss_total"),
            static_cast<double>(log.size()));
  EXPECT_GT(CounterValue(metrics, "shedmon_rt_degraded_bins_total"), 0.0);
  EXPECT_GT(CounterValue(metrics, "shedmon_rt_dropped_bins_total"), 0.0);
  EXPECT_GT(CounterValue(metrics, "shedmon_rt_truncated_queries_total"), 0.0);
}

// A transient overload: a few stalled bins, then clean ones. The ladder must
// escalate while the stalls last and decay all the way back to rung 0, after
// which bins carry no degradation markers at all.
TEST(Robustness, LadderDecaysToCleanAfterTheOverloadPasses) {
  auto clock = std::make_shared<rt::ManualClock>();
  rt::GovernorConfig governor;
  governor.budget_fraction = 0.5;
  governor.decay_bins = 2;

  auto pipeline = api::PipelineBuilder()
                      .Config(BaseConfig(0, 1))
                      .AddQuery("counter")
                      .AddQuery("flows")
                      .RtClock(clock)
                      .Deadline(governor)
                      .InjectFaults(rt::FaultPlan::Parse("stall_bin=2:80000,stall_bin=3:80000"))
                      .BuildUnique();
  pipeline->Push(RobustnessTrace());
  pipeline->Finish();

  const auto& log = pipeline->log();
  ASSERT_GE(log.size(), 10u);
  EXPECT_EQ(log[2].degradation, 0);  // first miss happens here...
  EXPECT_TRUE(log[2].deadline_missed);
  EXPECT_EQ(log[3].degradation, 1);  // ...and degrades this one
  EXPECT_EQ(log[4].degradation, 2);  // second miss escalated further
  // Two clean bins per rung: level 2 -> 1 after bins 4-5, 1 -> 0 after 6-7.
  EXPECT_EQ(log[5].degradation, 2);
  EXPECT_EQ(log[6].degradation, 1);
  EXPECT_EQ(log[7].degradation, 1);
  EXPECT_EQ(log[8].degradation, 0);
  EXPECT_EQ(log[9].degradation, 0);
  EXPECT_EQ(pipeline->Stats().degradation_level, 0);
  EXPECT_EQ(pipeline->Stats().deadline_misses, 2u);
}

// ---------------------------------------------------------------------------
// No-fault bit-identity: the rt layer must be invisible until it fires
// ---------------------------------------------------------------------------

TEST(Robustness, NoFaultRunsAreBitIdenticalAtEveryThreadAndShardCount) {
  // Golden: a plain pipeline with no rt features at all.
  auto golden = api::PipelineBuilder()
                    .Config(BaseConfig(0, 1))
                    .AddQuery("counter")
                    .AddQuery("flows")
                    .BuildUnique();
  golden->Push(RobustnessTrace());
  golden->Finish();

  for (const size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    for (const size_t shards : {size_t{1}, size_t{8}}) {
      if (threads == 0 && shards > 1) {
        continue;  // rejected by eager validation; covered in exec_test
      }
      SCOPED_TRACE("threads " + std::to_string(threads) + " shards " + std::to_string(shards));
      // Everything armed: governor (never fires — the ManualClock does not
      // move), fault injector with an empty plan, bounded ingest with a cap
      // far above any bin, sink retry on a JSONL sink.
      const std::string jsonl = ::testing::TempDir() + "shedmon_robustness_identity.jsonl";
      auto armed = api::PipelineBuilder()
                       .Config(BaseConfig(threads, shards))
                       .AddQuery("counter")
                       .AddQuery("flows")
                       .JsonlTo(jsonl)
                       .RtClock(std::make_shared<rt::ManualClock>())
                       .Deadline(0.9)
                       .InjectFaults(rt::FaultPlan::Parse("seed=42"))
                       .IngestCap(1 << 20, rt::OverflowPolicy::kDropNewest)
                       .SinkRetry(rt::RetryPolicy{})
                       .BuildUnique();
      armed->Push(RobustnessTrace());
      armed->Finish();

      ExpectBinLogsIdentical(golden->log(), armed->log());
      EXPECT_EQ(armed->Stats().deadline_misses, 0u);
      EXPECT_EQ(armed->Stats().ingest_dropped, 0u);
      std::remove(jsonl.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Bounded ingest
// ---------------------------------------------------------------------------

net::PacketRecord RecordAt(uint64_t ts_us, uint16_t wire_len) {
  net::PacketRecord record;
  record.ts_us = ts_us;
  record.wire_len = wire_len;
  return record;
}

TEST(Robustness, IngestCapDropNewestKeepsTheHeadOfEachBin) {
  auto pipeline = api::PipelineBuilder()
                      .AddQuery("counter")
                      .IngestCap(10, rt::OverflowPolicy::kDropNewest)
                      .BuildUnique();
  for (int i = 0; i < 25; ++i) {
    pipeline->Push(net::Packet::View(RecordAt(1000 * static_cast<uint64_t>(i), 100)));
  }
  pipeline->AdvanceTime(100'000);  // close bin 0
  EXPECT_EQ(pipeline->log().back().packets_in, 10u);
  EXPECT_EQ(pipeline->ingest_dropped(), 15u);
  EXPECT_EQ(pipeline->Stats().ingest_dropped, 15u);
  // Drops are ingest-buffer accounting, never BinLog packet fields.
  EXPECT_EQ(pipeline->log().back().packets_dropped, 0u);
  EXPECT_EQ(CounterValue(pipeline->Metrics(), "shedmon_rt_ingest_dropped_total"), 15.0);
}

TEST(Robustness, IngestCapDropOldestKeepsTheTailOfEachBin) {
  auto pipeline = api::PipelineBuilder()
                      .IngestCap(10, rt::OverflowPolicy::kDropOldest)
                      .BuildUnique();
  api::QueryHandle counter = pipeline->AddQuery("counter");
  // Distinct wire lengths let the counter query prove WHICH records survived.
  for (int i = 0; i < 25; ++i) {
    const uint16_t wire = static_cast<uint16_t>(i < 15 ? 100 : 500);
    pipeline->Push(net::Packet::View(RecordAt(1000 * static_cast<uint64_t>(i), wire)));
  }
  pipeline->AdvanceTime(100'000);
  pipeline->Finish();
  EXPECT_EQ(pipeline->log().back().packets_in, 10u);
  EXPECT_EQ(pipeline->ingest_dropped(), 15u);
  // The survivors are the LAST ten records (the 500-byte ones).
  const auto& snaps = dynamic_cast<const query::CounterQuery&>(counter.query()).snapshots();
  ASSERT_FALSE(snaps.empty());
  EXPECT_EQ(snaps.back().pkts, 10.0);
  EXPECT_EQ(snaps.back().bytes, 10.0 * 500.0);
}

TEST(Robustness, IngestCapResetsAtEveryBinBoundary) {
  auto pipeline = api::PipelineBuilder()
                      .AddQuery("counter")
                      .IngestCap(10, rt::OverflowPolicy::kDropNewest)
                      .BuildUnique();
  for (int bin = 0; bin < 3; ++bin) {
    for (int i = 0; i < 12; ++i) {
      pipeline->Push(net::Packet::View(
          RecordAt(100'000 * static_cast<uint64_t>(bin) + static_cast<uint64_t>(i), 100)));
    }
  }
  pipeline->Finish();
  ASSERT_EQ(pipeline->log().size(), 3u);
  for (const core::BinLog& log : pipeline->log()) {
    EXPECT_EQ(log.packets_in, 10u);
  }
  EXPECT_EQ(pipeline->ingest_dropped(), 6u);
}

// ---------------------------------------------------------------------------
// Sink fault tolerance
// ---------------------------------------------------------------------------

TEST(Robustness, SinkRetriesRecoverFromTransientFaults) {
  const std::string path = ::testing::TempDir() + "shedmon_robustness_retry.jsonl";
  auto clock = std::make_shared<rt::ManualClock>();
  rt::RetryPolicy retry;
  retry.max_retries = 3;
  retry.jitter_fraction = 0.0;
  auto pipeline = api::PipelineBuilder()
                      .Config(BaseConfig(0, 1))
                      .AddQuery("counter")
                      .JsonlTo(path)
                      .RtClock(clock)
                      .InjectFaults(rt::FaultPlan::Parse("sink_fail_n=2"))
                      .SinkRetry(retry)
                      .BuildUnique();
  pipeline->Push(RobustnessTrace());
  pipeline->Finish();

  // The first row needed retries but landed; every bin has its line.
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, pipeline->log().size());
  EXPECT_GT(CounterValue(pipeline->Metrics(), "shedmon_rt_sink_retries_total"), 0.0);
  EXPECT_EQ(CounterValue(pipeline->Metrics(), "shedmon_rt_sink_quarantined_total"), 0.0);
  std::remove(path.c_str());
}

TEST(Robustness, SinkQuarantineKeepsTheMeasurementAlive) {
  const std::string path = ::testing::TempDir() + "shedmon_robustness_quarantine.jsonl";
  auto clock = std::make_shared<rt::ManualClock>();
  rt::RetryPolicy retry;
  retry.max_retries = 2;
  retry.jitter_fraction = 0.0;
  auto pipeline = api::PipelineBuilder()
                      .Config(BaseConfig(0, 1))
                      .AddQuery("counter")
                      .AddQuery("flows")
                      .JsonlTo(path)
                      .RtClock(clock)
                      .InjectFaults(rt::FaultPlan::Parse("sink_fail_n=100000"))
                      .SinkRetry(retry)
                      .BuildUnique();
  pipeline->Push(RobustnessTrace());
  pipeline->Finish();  // must not throw: losing a sink != losing the run

  // The run itself is intact — bins were processed normally.
  EXPECT_GT(pipeline->log().size(), 10u);
  EXPECT_GT(pipeline->total_packets(), 0u);
  EXPECT_EQ(CounterValue(pipeline->Metrics(), "shedmon_rt_sink_quarantined_total"), 1.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash-safe checkpoints
// ---------------------------------------------------------------------------

// The acceptance bar: a pipeline checkpointing every interval "crashes"
// (is abandoned) mid-run; a new pipeline restored from the last checkpoint
// replays the remaining packets and produces field-exact BinLogs vs the
// uninterrupted run.
TEST(Robustness, CheckpointThenRestoreReplaysTheRemainingBinsFieldExactly) {
  const std::string path = ::testing::TempDir() + "shedmon_robustness_checkpoint.bin";
  std::remove(path.c_str());
  const core::SystemConfig config = BaseConfig(0, 1);

  auto full = api::PipelineBuilder().Config(config).AddQuery("counter").AddQuery("flows")
                  .BuildUnique();
  full->Push(RobustnessTrace());
  full->Finish();

  {
    // "Crashing" process: checkpoints every 10 bins, dies mid-run with the
    // open bin's packets lost (exactly what kill -9 leaves behind).
    auto victim = api::PipelineBuilder()
                      .Config(config)
                      .AddQuery("counter")
                      .AddQuery("flows")
                      .CheckpointTo(path)
                      .CheckpointEvery(10)
                      .BuildUnique();
    for (const net::PacketRecord& packet : RobustnessTrace().packets) {
      if (packet.ts_us >= 2'450'000) {
        break;  // dies mid-bin-24, after the bin-20 checkpoint
      }
      victim->Push(net::Packet::View(packet));
    }
    EXPECT_EQ(victim->checkpoints_written(), 2u);  // bins 10 and 20
    // No Finish(): the victim is simply abandoned.
  }

  // Restart: restore from the surviving checkpoint and replay everything
  // from the first un-checkpointed bin on.
  auto restored = api::PipelineBuilder()
                      .Config(config)
                      .AddQuery("counter")
                      .AddQuery("flows")
                      .RestoreOrBuild(path);
  EXPECT_EQ(restored->next_bin(), 20u);
  const uint64_t resume_us = restored->next_bin() * restored->time_bin_us();
  for (const net::PacketRecord& packet : RobustnessTrace().packets) {
    if (packet.ts_us < resume_us) {
      continue;
    }
    restored->Push(net::Packet::View(packet));
  }
  restored->Finish();

  const auto& full_log = full->log();
  const auto& replay_log = restored->log();
  ASSERT_GT(full_log.size(), 20u);
  ASSERT_EQ(full_log.size(), 20 + replay_log.size());
  const std::vector<core::BinLog> tail(full_log.begin() + 20, full_log.end());
  ExpectBinLogsIdentical(tail, replay_log);
  std::remove(path.c_str());
}

TEST(Robustness, RestoreOrBuildFallsBackPastMissingOrCorruptCheckpoints) {
  const std::string path = ::testing::TempDir() + "shedmon_robustness_corrupt.bin";
  std::remove(path.c_str());
  api::PipelineBuilder builder;
  builder.AddQuery("counter").CheckpointTo(path);

  // Missing file: a fresh build.
  auto fresh = builder.RestoreOrBuild(path);
  EXPECT_EQ(fresh->next_bin(), 0u);
  EXPECT_EQ(fresh->num_queries(), 1u);

  // Corrupt file: also a fresh build, not an exception.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "SHEDSNAPgarbage that is definitely not a valid snapshot";
  }
  auto fallback = builder.RestoreOrBuild(path);
  EXPECT_EQ(fallback->next_bin(), 0u);
  std::remove(path.c_str());
}

// An injected checkpoint corruption (bit flip as the file is written) must
// be caught by the snapshot checksum on restore, and RestoreOrBuild must
// fall back to a fresh pipeline rather than restoring garbage.
TEST(Robustness, InjectedCheckpointCorruptionIsDetectedOnRestore) {
  const std::string path = ::testing::TempDir() + "shedmon_robustness_bitflip.bin";
  std::remove(path.c_str());
  const core::SystemConfig config = BaseConfig(0, 1);
  {
    auto victim = api::PipelineBuilder()
                      .Config(config)
                      .AddQuery("counter")
                      .CheckpointTo(path)
                      .CheckpointEvery(10)
                      .InjectFaults(rt::FaultPlan::Parse("corrupt_snapshot=100"))
                      .BuildUnique();
    for (const net::PacketRecord& packet : RobustnessTrace().packets) {
      if (packet.ts_us >= 1'500'000) {
        break;
      }
      victim->Push(net::Packet::View(packet));
    }
    EXPECT_GE(victim->checkpoints_written(), 1u);
  }
  ASSERT_TRUE(std::ifstream(path).good());
  EXPECT_THROW(api::PipelineBuilder::Restore(path), obs::SnapshotError);
  auto fallback =
      api::PipelineBuilder().Config(config).AddQuery("counter").RestoreOrBuild(path);
  EXPECT_EQ(fallback->next_bin(), 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Degradation is visible at the sink surface
// ---------------------------------------------------------------------------

TEST(Robustness, SinksCarryTheDegradationColumns) {
  std::ostringstream csv;
  std::ostringstream jsonl;
  auto clock = std::make_shared<rt::ManualClock>();
  rt::GovernorConfig governor;
  governor.budget_fraction = 0.5;
  auto pipeline = api::PipelineBuilder()
                      .Config(BaseConfig(0, 1))
                      .AddQuery("counter")
                      .RtClock(clock)
                      .Deadline(governor)
                      .InjectFaults(rt::FaultPlan::Parse("stall_every=1:80000"))
                      .BuildUnique();
  CsvBinSink csv_sink(csv);
  JsonlBinSink jsonl_sink(jsonl);
  pipeline->AddObserver(&csv_sink);
  pipeline->AddObserver(&jsonl_sink);
  pipeline->Push(RobustnessTrace());
  pipeline->Finish();

  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find(",degradation,degradation_rung,deadline_missed,deadline_overrun_us"),
            std::string::npos);
  EXPECT_NE(csv_text.find(",3,drop,"), std::string::npos);
  const std::string jsonl_text = jsonl.str();
  EXPECT_NE(jsonl_text.find("\"degradation\":3"), std::string::npos);
  EXPECT_NE(jsonl_text.find("\"degradation_rung\":\"drop\""), std::string::npos);
  EXPECT_NE(jsonl_text.find("\"deadline_missed\":true"), std::string::npos);
}

}  // namespace
}  // namespace shedmon
