#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_set>

#include "src/features/extractor.h"
#include "src/features/features.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/rng.h"

namespace shedmon::features {
namespace {

TEST(Features, IndexLayoutIsDense) {
  EXPECT_EQ(kNumFeatures, 42);
  std::set<int> seen = {kFeatPackets, kFeatBytes};
  for (int a = 0; a < kNumAggregates; ++a) {
    for (int c = 0; c < kCountersPerAggregate; ++c) {
      const int idx = FeatureIndex(static_cast<Aggregate>(a), static_cast<Counter>(c));
      EXPECT_TRUE(seen.insert(idx).second) << idx;
      EXPECT_GE(idx, 2);
      EXPECT_LT(idx, kNumFeatures);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNumFeatures));
}

TEST(Features, NamesAreUniqueAndMeaningful) {
  std::set<std::string> names;
  for (int i = 0; i < kNumFeatures; ++i) {
    names.insert(std::string(FeatureName(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumFeatures));
  EXPECT_EQ(FeatureName(kFeatPackets), "packets");
  EXPECT_EQ(FeatureName(kFeatBytes), "bytes");
  EXPECT_EQ(FeatureName(kFeatNewFiveTuple), "new_5-tuple");
  EXPECT_EQ(FeatureName(-1), "invalid");
  EXPECT_EQ(FeatureName(kNumFeatures), "invalid");
}

TEST(Features, AggregateKeyLengths) {
  net::FiveTuple t{0x01020304, 0x05060708, 1000, 80, net::kProtoTcp};
  uint8_t key[13];
  EXPECT_EQ(AggregateKey(t, Aggregate::kSrcIp, key), 4u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kDstIp, key), 4u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kProto, key), 1u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kSrcDstIp, key), 8u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kSrcPortProto, key), 3u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kDstPortProto, key), 3u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kSrcIpSrcPortProto, key), 7u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kDstIpDstPortProto, key), 7u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kSrcDstPortProto, key), 5u);
  EXPECT_EQ(AggregateKey(t, Aggregate::kFiveTuple, key), 13u);
}

TEST(Features, AggregateKeysDiscriminateOnlyTheirFields) {
  net::FiveTuple a{0x01020304, 0x05060708, 1000, 80, net::kProtoTcp};
  net::FiveTuple b = a;
  b.src_port = 2000;  // src-ip key must not change, 5-tuple key must
  uint8_t ka[13];
  uint8_t kb[13];
  const size_t la = AggregateKey(a, Aggregate::kSrcIp, ka);
  const size_t lb = AggregateKey(b, Aggregate::kSrcIp, kb);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(ka), la),
            std::string(reinterpret_cast<char*>(kb), lb));
  const size_t fa = AggregateKey(a, Aggregate::kFiveTuple, ka);
  const size_t fb = AggregateKey(b, Aggregate::kFiveTuple, kb);
  EXPECT_NE(std::string(reinterpret_cast<char*>(ka), fa),
            std::string(reinterpret_cast<char*>(kb), fb));
}

// Builds a PacketVec with n packets per tuple spec.
struct PacketFixture {
  std::vector<net::PacketRecord> records;
  trace::PacketVec packets;

  void Add(uint32_t src, uint32_t dst, uint16_t sport, uint16_t dport, uint8_t proto,
           uint16_t len = 100) {
    net::PacketRecord rec;
    rec.tuple = {src, dst, sport, dport, proto};
    rec.wire_len = len;
    records.push_back(rec);
  }
  void Finish() {
    packets.clear();
    for (const auto& rec : records) {
      net::Packet p;
      p.rec = &rec;
      packets.push_back(p);
    }
  }
};

TEST(Extractor, CountsPacketsAndBytesExactly) {
  PacketFixture fx;
  for (int i = 0; i < 50; ++i) {
    fx.Add(1, 2, 3, 4, net::kProtoTcp, 200);
  }
  fx.Finish();
  FeatureExtractor ex;
  const FeatureVector f = ex.Extract(fx.packets);
  EXPECT_DOUBLE_EQ(f[kFeatPackets], 50.0);
  EXPECT_DOUBLE_EQ(f[kFeatBytes], 50.0 * 200.0);
}

TEST(Extractor, UniqueCountTracksDistinctTuples) {
  PacketFixture fx;
  for (uint32_t i = 0; i < 200; ++i) {
    fx.Add(100 + i, 2, static_cast<uint16_t>(1000 + i), 80, net::kProtoTcp);
  }
  // Plus 300 repeats of a single tuple.
  for (int i = 0; i < 300; ++i) {
    fx.Add(1, 2, 3, 4, net::kProtoTcp);
  }
  fx.Finish();
  FeatureExtractor ex;
  const FeatureVector f = ex.Extract(fx.packets);
  EXPECT_NEAR(f[kFeatUniqueFiveTuple], 201.0, 30.0);
  // repeated-in-batch = packets - unique.
  EXPECT_NEAR(f[FeatureIndex(Aggregate::kFiveTuple, Counter::kRepeatedBatch)],
              500.0 - 201.0, 30.0);
}

TEST(Extractor, NewCounterSeparatesFreshFromSeen) {
  PacketFixture first;
  for (uint32_t i = 0; i < 100; ++i) {
    first.Add(10 + i, 2, 1000, 80, net::kProtoTcp);
  }
  first.Finish();
  PacketFixture second;
  for (uint32_t i = 0; i < 100; ++i) {
    second.Add(10 + i, 2, 1000, 80, net::kProtoTcp);  // all seen before
  }
  for (uint32_t i = 0; i < 50; ++i) {
    second.Add(5000 + i, 2, 1000, 80, net::kProtoTcp);  // fresh
  }
  second.Finish();

  FeatureExtractor ex;
  ex.StartInterval();
  (void)ex.Extract(first.packets);
  const FeatureVector f = ex.Extract(second.packets);
  const double new_src = f[FeatureIndex(Aggregate::kSrcIp, Counter::kNew)];
  EXPECT_NEAR(new_src, 50.0, 20.0);
  // repeated-in-interval = packets - new.
  EXPECT_NEAR(f[FeatureIndex(Aggregate::kSrcIp, Counter::kRepeatedInterval)], 100.0, 20.0);
}

TEST(Extractor, StartIntervalResetsNewState) {
  PacketFixture fx;
  for (uint32_t i = 0; i < 100; ++i) {
    fx.Add(10 + i, 2, 1000, 80, net::kProtoTcp);
  }
  fx.Finish();
  FeatureExtractor ex;
  (void)ex.Extract(fx.packets);
  ex.StartInterval();
  const FeatureVector f = ex.Extract(fx.packets);
  // After the reset every key counts as new again.
  EXPECT_NEAR(f[FeatureIndex(Aggregate::kSrcIp, Counter::kNew)], 100.0, 20.0);
}

TEST(Extractor, EmptyBatchGivesZeroVector) {
  trace::PacketVec empty;
  FeatureExtractor ex;
  const FeatureVector f = ex.Extract(empty);
  for (int i = 0; i < kNumFeatures; ++i) {
    EXPECT_NEAR(f[static_cast<size_t>(i)], 0.0, 1e-9) << FeatureName(i);
  }
}

TEST(Extractor, DeterministicForSameSeedAndInput) {
  const trace::Trace t = trace::TraceGenerator(trace::CescaI()).Generate();
  trace::Batcher b1(t, 100'000);
  trace::Batcher b2(t, 100'000);
  trace::Batch batch1;
  trace::Batch batch2;
  FeatureExtractor e1;
  FeatureExtractor e2;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(b1.Next(batch1));
    ASSERT_TRUE(b2.Next(batch2));
    const FeatureVector f1 = e1.Extract(batch1.packets);
    const FeatureVector f2 = e2.Extract(batch2.packets);
    for (int k = 0; k < kNumFeatures; ++k) {
      EXPECT_DOUBLE_EQ(f1[static_cast<size_t>(k)], f2[static_cast<size_t>(k)]);
    }
  }
}

TEST(FusedAggregates, ByteIndicesMatchAggregateKeySerialization) {
  // AggregateByteIndices must describe AggregateKey exactly: extracting the
  // indexed bytes from the canonical serialization yields the materialized
  // key, for every aggregate, over random tuples.
  util::Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    net::FiveTuple t;
    t.src_ip = static_cast<uint32_t>(rng.NextU64());
    t.dst_ip = static_cast<uint32_t>(rng.NextU64());
    t.src_port = static_cast<uint16_t>(rng.NextU64());
    t.dst_port = static_cast<uint16_t>(rng.NextU64());
    t.proto = static_cast<uint8_t>(rng.NextU64());
    const auto canonical = t.Bytes();
    for (int a = 0; a < kNumAggregates; ++a) {
      const auto agg = static_cast<Aggregate>(a);
      uint8_t key[13];
      const size_t len = AggregateKey(t, agg, key);
      const auto indices = AggregateByteIndices(agg);
      ASSERT_EQ(indices.size(), len) << AggregateName(agg);
      for (size_t j = 0; j < len; ++j) {
        EXPECT_EQ(canonical[indices[j]], key[j]) << AggregateName(agg) << " byte " << j;
      }
    }
  }
}

TEST(FusedAggregates, FusedHashesMatchPerAggregateReference) {
  // The tentpole equivalence property: one fused pass over the 13 canonical
  // bytes produces, for all ten aggregates, exactly the hash the seed
  // implementation computed via AggregateKey + per-aggregate H3Hash.
  const uint64_t base_seed = 0x5eed;
  const sketch::FusedTupleHasher fused = MakeAggregateHasher(base_seed);
  std::vector<sketch::H3Hash> reference;
  for (int a = 0; a < kNumAggregates; ++a) {
    reference.emplace_back(AggregateHashSeed(base_seed, static_cast<Aggregate>(a)));
  }

  util::Rng rng(32);
  std::array<uint64_t, kNumAggregates> h;
  for (int i = 0; i < 5000; ++i) {
    net::FiveTuple t;
    t.src_ip = static_cast<uint32_t>(rng.NextU64());
    t.dst_ip = static_cast<uint32_t>(rng.NextU64());
    t.src_port = static_cast<uint16_t>(rng.NextU64());
    t.dst_port = static_cast<uint16_t>(rng.NextU64());
    t.proto = static_cast<uint8_t>(rng.NextU64());
    const auto canonical = t.Bytes();
    fused.HashAllFixed<13, kNumAggregates>(canonical.data(), h);
    for (int a = 0; a < kNumAggregates; ++a) {
      uint8_t key[13];
      const size_t len = AggregateKey(t, static_cast<Aggregate>(a), key);
      EXPECT_EQ(h[static_cast<size_t>(a)], reference[static_cast<size_t>(a)].Hash(key, len))
          << AggregateName(static_cast<Aggregate>(a));
    }
  }
}

TEST(Extractor, FusedExtractMatchesReferenceBitExactly) {
  // Extract (fused + batch-local tuple dedupe) and ExtractReference (the
  // seed's per-aggregate path) must produce bit-identical feature vectors,
  // including across interval state carried over multiple batches.
  const trace::Trace t = trace::TraceGenerator(trace::CescaI()).Generate();
  trace::Batcher b1(t, 100'000);
  trace::Batcher b2(t, 100'000);
  trace::Batch batch1;
  trace::Batch batch2;
  FeatureExtractor fused_ex;
  FeatureExtractor reference_ex;
  int bins = 0;
  while (b1.Next(batch1) && b2.Next(batch2)) {
    if (++bins % 10 == 0) {  // exercise interval resets too
      fused_ex.StartInterval();
      reference_ex.StartInterval();
    }
    const FeatureVector f = fused_ex.Extract(batch1.packets);
    const FeatureVector r = reference_ex.ExtractReference(batch2.packets);
    for (int k = 0; k < kNumFeatures; ++k) {
      ASSERT_DOUBLE_EQ(f[static_cast<size_t>(k)], r[static_cast<size_t>(k)])
          << "bin " << bins << " feature " << FeatureName(k);
    }
  }
  EXPECT_GT(bins, 20);
}

TEST(Extractor, RealTrafficUniqueCountsAreConsistent) {
  // On generated traffic the MRB estimates must track exact counts.
  const trace::Trace t = trace::TraceGenerator(trace::CescaI()).Generate();
  trace::Batcher batcher(t, 100'000);
  trace::Batch batch;
  FeatureExtractor ex;
  int checked = 0;
  while (batcher.Next(batch) && checked < 20) {
    if (batch.size() < 100) {
      continue;
    }
    std::unordered_set<uint32_t> srcs;
    std::unordered_set<net::FiveTuple, net::FiveTupleHash> tuples;
    for (const auto& pkt : batch.packets) {
      srcs.insert(pkt.rec->tuple.src_ip);
      tuples.insert(pkt.rec->tuple);
    }
    const FeatureVector f = ex.Extract(batch.packets);
    EXPECT_NEAR(f[FeatureIndex(Aggregate::kSrcIp, Counter::kUnique)],
                static_cast<double>(srcs.size()),
                std::max(12.0, 0.2 * static_cast<double>(srcs.size())));
    EXPECT_NEAR(f[kFeatUniqueFiveTuple], static_cast<double>(tuples.size()),
                std::max(15.0, 0.2 * static_cast<double>(tuples.size())));
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

}  // namespace
}  // namespace shedmon::features
