#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>

#include "src/net/frame.h"
#include "src/trace/anomaly.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/pcap.h"
#include "src/trace/spec.h"
#include "src/trace/trace_io.h"

namespace shedmon::trace {
namespace {

TraceSpec SmallSpec() {
  TraceSpec spec;
  spec.name = "test";
  spec.duration_s = 5.0;
  spec.flows_per_s = 200.0;
  spec.payloads = true;
  spec.seed = 3;
  return spec;
}

TEST(Generator, DeterministicForSeed) {
  const Trace a = TraceGenerator(SmallSpec()).Generate();
  const Trace b = TraceGenerator(SmallSpec()).Generate();
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (size_t i = 0; i < a.packets.size(); i += 97) {
    EXPECT_EQ(a.packets[i].ts_us, b.packets[i].ts_us);
    EXPECT_EQ(a.packets[i].tuple, b.packets[i].tuple);
  }
}

TEST(Generator, PacketsSortedAndWithinDuration) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  ASSERT_FALSE(t.packets.empty());
  for (size_t i = 1; i < t.packets.size(); ++i) {
    EXPECT_LE(t.packets[i - 1].ts_us, t.packets[i].ts_us);
  }
  EXPECT_LT(t.packets.back().ts_us, 5'000'000u);
}

TEST(Generator, ProducesPlausibleRate) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  // ~200 flows/s x ~4-10 pkts/flow x 5 s.
  EXPECT_GT(t.packets.size(), 2000u);
  EXPECT_LT(t.packets.size(), 60000u);
}

TEST(Generator, AppMixIncludesMajorClasses) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  std::set<net::AppClass> seen;
  for (const auto& p : t.packets) {
    seen.insert(p.app);
  }
  EXPECT_TRUE(seen.count(net::AppClass::kWeb));
  EXPECT_TRUE(seen.count(net::AppClass::kDns));
  EXPECT_TRUE(seen.count(net::AppClass::kP2p));
}

TEST(Generator, TcpFlowsStartWithSyn) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  std::set<net::FiveTuple> seen;
  size_t first_pkts = 0;
  size_t syn_first = 0;
  for (const auto& p : t.packets) {
    if (p.tuple.proto != net::kProtoTcp) {
      continue;
    }
    if (seen.insert(p.tuple).second) {
      ++first_pkts;
      if ((p.tcp_flags & net::kTcpSyn) != 0) {
        ++syn_first;
      }
    }
  }
  ASSERT_GT(first_pkts, 100u);
  // Within-flow reordering across bins can shuffle a few; most hold.
  EXPECT_GT(static_cast<double>(syn_first) / static_cast<double>(first_pkts), 0.9);
}

TEST(Generator, HeaderOnlySpecHasNoPayload) {
  TraceSpec spec = SmallSpec();
  spec.payloads = false;
  const Trace t = TraceGenerator(spec).Generate();
  for (const auto& p : t.packets) {
    EXPECT_EQ(p.payload_len, 0);
  }
}

TEST(Generator, PresetsHaveDistinctCharacters) {
  EXPECT_FALSE(CescaI().payloads);
  EXPECT_TRUE(CescaII().payloads);
  EXPECT_GT(Cenic().burstiness, CescaI().burstiness);
  EXPECT_GT(Abilene().duration_s, CescaI().duration_s);
  EXPECT_TRUE(UpcI().payloads);
}

TEST(Anomaly, DdosAddsPacketsInWindow) {
  Trace t = TraceGenerator(SmallSpec()).Generate();
  const size_t before = t.packets.size();
  DdosSpec ddos;
  ddos.start_s = 1.0;
  ddos.duration_s = 2.0;
  ddos.pps = 1000.0;
  InjectDdos(t, ddos, 5);
  EXPECT_NEAR(static_cast<double>(t.packets.size() - before), 2000.0, 300.0);
  for (size_t i = 1; i < t.packets.size(); ++i) {
    ASSERT_LE(t.packets[i - 1].ts_us, t.packets[i].ts_us);
  }
  for (const auto& p : t.packets) {
    if (p.app == net::AppClass::kAttack) {
      EXPECT_GE(p.ts_us, 1'000'000u);
      EXPECT_LT(p.ts_us, 3'100'000u);
      EXPECT_EQ(p.tuple.dst_ip, ddos.target_ip);
    }
  }
}

TEST(Anomaly, SpoofedDdosExplodesSourceCount) {
  Trace t;
  t.spec.duration_s = 3.0;
  DdosSpec ddos;
  ddos.start_s = 0.0;
  ddos.duration_s = 3.0;
  ddos.pps = 2000.0;
  ddos.spoofed_sources = true;
  InjectDdos(t, ddos, 7);
  std::set<uint32_t> srcs;
  for (const auto& p : t.packets) {
    srcs.insert(p.tuple.src_ip);
  }
  // Nearly every spoofed packet has a unique source.
  EXPECT_GT(srcs.size(), t.packets.size() * 9 / 10);
}

TEST(Anomaly, OnOffDdosLeavesGaps) {
  Trace t;
  t.spec.duration_s = 10.0;
  DdosSpec ddos;
  ddos.start_s = 0.0;
  ddos.duration_s = 8.0;
  ddos.pps = 1000.0;
  ddos.on_off_period_s = 1.0;
  InjectDdos(t, ddos, 9);
  // Packets only in the "on" seconds: [0,1), [2,3), [4,5), [6,7).
  for (const auto& p : t.packets) {
    const double sec = static_cast<double>(p.ts_us) * 1e-6;
    const int second = static_cast<int>(sec);
    EXPECT_EQ(second % 2, 0) << sec;
  }
}

TEST(Anomaly, WormScansManyDestinationsOnOnePort) {
  Trace t;
  t.spec.duration_s = 5.0;
  WormSpec worm;
  worm.start_s = 0.0;
  worm.duration_s = 5.0;
  worm.pps = 1000.0;
  InjectWorm(t, worm, 11);
  std::set<uint32_t> dsts;
  for (const auto& p : t.packets) {
    EXPECT_EQ(p.tuple.dst_port, worm.dst_port);
    dsts.insert(p.tuple.dst_ip);
  }
  EXPECT_GT(dsts.size(), 4000u);
}

TEST(Anomaly, ByteBurstUsesLargePackets) {
  Trace t;
  t.spec.duration_s = 3.0;
  ByteBurstSpec burst;
  burst.start_s = 0.5;
  burst.duration_s = 1.0;
  InjectByteBurst(t, burst, 13);
  ASSERT_FALSE(t.packets.empty());
  for (const auto& p : t.packets) {
    EXPECT_EQ(p.wire_len, 1500);
  }
}

TEST(Batcher, CoversWholeTraceWithoutLoss) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  Batcher batcher(t, 100'000);
  Batch batch;
  size_t total = 0;
  size_t bins = 0;
  uint64_t expected_start = 0;
  while (batcher.Next(batch)) {
    EXPECT_EQ(batch.start_us, expected_start);
    expected_start += 100'000;
    total += batch.size();
    ++bins;
  }
  EXPECT_EQ(total, t.packets.size());
  EXPECT_EQ(bins, batcher.num_bins());
  EXPECT_NEAR(static_cast<double>(bins), 50.0, 1.0);
}

TEST(Batcher, PacketsFallInsideTheirBin) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  Batcher batcher(t, 100'000);
  Batch batch;
  while (batcher.Next(batch)) {
    for (const auto& pkt : batch.packets) {
      EXPECT_GE(pkt.ts_us(), batch.start_us);
      EXPECT_LT(pkt.ts_us(), batch.start_us + batch.duration_us);
    }
  }
}

TEST(Batcher, MaterializesDeterministicPayloads) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  Batcher b1(t, 100'000);
  Batcher b2(t, 100'000);
  Batch batch1;
  Batch batch2;
  ASSERT_TRUE(b1.Next(batch1));
  ASSERT_TRUE(b2.Next(batch2));
  ASSERT_EQ(batch1.size(), batch2.size());
  for (size_t i = 0; i < batch1.size(); ++i) {
    ASSERT_EQ(batch1.packets[i].payload_len, batch2.packets[i].payload_len);
    if (batch1.packets[i].payload_len > 0) {
      EXPECT_EQ(std::memcmp(batch1.packets[i].payload, batch2.packets[i].payload,
                            batch1.packets[i].payload_len),
                0);
    }
  }
}

TEST(Batcher, PlantsSignaturesForP2pFlows) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  Batcher batcher(t, 100'000);
  Batch batch;
  bool found_p2p_sig = false;
  const auto bt = BittorrentSignature();
  const auto gn = GnutellaSignature();
  const auto ed = EdonkeySignature();
  while (batcher.Next(batch) && !found_p2p_sig) {
    for (const auto& pkt : batch.packets) {
      if (pkt.payload_len < 24) {
        continue;
      }
      const char* data = reinterpret_cast<const char*>(pkt.payload);
      if (std::memcmp(data, bt.data(), std::min(bt.size(), size_t{20})) == 0 ||
          std::memcmp(data, gn.data(), std::min(gn.size(), size_t{20})) == 0 ||
          std::memcmp(data, ed.data(), ed.size()) == 0) {
        found_p2p_sig = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_p2p_sig);
}

TEST(Batcher, WireBytesMatchesSum) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  Batcher batcher(t, 100'000);
  Batch batch;
  while (batcher.Next(batch)) {
    uint64_t sum = 0;
    for (const auto& pkt : batch.packets) {
      sum += pkt.rec->wire_len;
    }
    EXPECT_EQ(sum, batch.wire_bytes);
  }
}

TEST(Batcher, ResetReplaysFromStart) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  Batcher batcher(t, 100'000);
  Batch batch;
  ASSERT_TRUE(batcher.Next(batch));
  const size_t first_size = batch.size();
  while (batcher.Next(batch)) {
  }
  batcher.Reset();
  ASSERT_TRUE(batcher.Next(batch));
  EXPECT_EQ(batch.size(), first_size);
}


TEST(Pcap, ExportedFileHasValidStructure) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  const std::string path = ::testing::TempDir() + "/shedmon_test.pcap";
  const size_t written = ExportPcap(t, path);
  EXPECT_EQ(written, t.packets.size());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  std::remove(path.c_str());
}

TEST(Pcap, FrameHasWellFormedHeaders) {
  net::PacketRecord rec;
  rec.tuple = {0x0a000001, 0xc0a80001, 12345, 80, net::kProtoTcp};
  rec.wire_len = 140;
  rec.payload_len = 100;
  rec.payload_class = net::PayloadClass::kHttpRequest;
  rec.payload_seed = 42;
  rec.tcp_flags = net::kTcpAck;
  const auto frame = SynthesizeFrame(rec);
  ASSERT_GE(frame.size(), 14u + 20u + 20u);
  // EtherType IPv4.
  EXPECT_EQ(frame[12], 0x08);
  EXPECT_EQ(frame[13], 0x00);
  // IPv4 version/IHL.
  EXPECT_EQ(frame[14], 0x45);
  // Protocol and addresses at their offsets.
  EXPECT_EQ(frame[14 + 9], net::kProtoTcp);
  EXPECT_EQ(frame[14 + 12], 0x0a);
  EXPECT_EQ(frame[14 + 16], 0xc0);
  // Ports in network byte order.
  EXPECT_EQ((frame[34] << 8) | frame[35], 12345);
  EXPECT_EQ((frame[36] << 8) | frame[37], 80);
  // The payload (with the HTTP signature) starts after 54 header bytes.
  const std::string sig(HttpSignature());
  EXPECT_EQ(std::memcmp(frame.data() + 54, sig.data(), 8), 0);
}

TEST(Pcap, IpChecksumVerifies) {
  net::PacketRecord rec;
  rec.tuple = {0x01020304, 0x05060708, 1111, 2222, net::kProtoUdp};
  rec.wire_len = 60;
  const auto frame = SynthesizeFrame(rec);
  // RFC 1071: the checksum of a header including its checksum field is 0.
  uint32_t sum = 0;
  for (size_t i = 14; i + 1 < 14 + 20; i += 2) {
    sum += static_cast<uint32_t>((frame[i] << 8) | frame[i + 1]);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  EXPECT_EQ(static_cast<uint16_t>(~sum), 0);
}

TEST(Pcap, RoundTripPreservesTuplesAndTiming) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  const std::string path = ::testing::TempDir() + "/shedmon_roundtrip.pcap";
  ExportPcap(t, path);
  const Trace back = ImportPcap(path);
  ASSERT_EQ(back.packets.size(), t.packets.size());
  // Import normalizes timestamps to the first packet.
  const uint64_t base = t.packets.front().ts_us;
  for (size_t i = 0; i < t.packets.size(); i += 101) {
    EXPECT_EQ(back.packets[i].tuple, t.packets[i].tuple) << i;
    EXPECT_EQ(back.packets[i].ts_us, t.packets[i].ts_us - base) << i;
    if (t.packets[i].tuple.proto == net::kProtoTcp) {
      EXPECT_EQ(back.packets[i].tcp_flags, t.packets[i].tcp_flags) << i;
    }
  }
  std::remove(path.c_str());
}

TEST(Pcap, SnaplenTruncatesStoredBytes) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  const std::string full_path = ::testing::TempDir() + "/shedmon_full.pcap";
  const std::string snap_path = ::testing::TempDir() + "/shedmon_snap.pcap";
  ExportPcap(t, full_path);
  ExportPcap(t, snap_path, 64);
  std::ifstream full(full_path, std::ios::binary | std::ios::ate);
  std::ifstream snap(snap_path, std::ios::binary | std::ios::ate);
  EXPECT_GT(full.tellg(), snap.tellg());
  // Truncated captures still import (headers fit in 64 bytes).
  const Trace back = ImportPcap(snap_path);
  EXPECT_EQ(back.packets.size(), t.packets.size());
  std::remove(full_path.c_str());
  std::remove(snap_path.c_str());
}

TEST(Pcap, ImportRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/shedmon_garbage.pcap";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a pcap file at all";
  out.close();
  EXPECT_THROW(ImportPcap(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- Adversarial pcap fixtures --------------------------------------------
// Hand-built capture files that exercise the hardened import path: impossible
// IP header lengths, hostile record lengths, mid-record truncation, and
// non-IPv4 interleave. Headers are written native-endian, matching what
// ExportPcap emits and PcapReader reads.

void AppendRaw(std::vector<uint8_t>& out, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out.insert(out.end(), p, p + len);
}

void AppendU16(std::vector<uint8_t>& out, uint16_t v) { AppendRaw(out, &v, sizeof(v)); }
void AppendU32(std::vector<uint8_t>& out, uint32_t v) { AppendRaw(out, &v, sizeof(v)); }

std::vector<uint8_t> PcapHeaderBytes(uint32_t snaplen = 262144) {
  std::vector<uint8_t> out;
  AppendU32(out, 0xa1b2c3d4u);  // microsecond magic
  AppendU16(out, 2);
  AppendU16(out, 4);
  AppendU32(out, 0);  // thiszone
  AppendU32(out, 0);  // sigfigs
  AppendU32(out, snaplen);
  AppendU32(out, 1);  // LINKTYPE_ETHERNET
  return out;
}

// Appends a record header claiming `incl_len` stored bytes, then however many
// bytes `stored` actually holds — letting tests lie about the length.
void AppendRecord(std::vector<uint8_t>& out, uint64_t ts_us, uint32_t incl_len,
                  const std::vector<uint8_t>& stored) {
  AppendU32(out, static_cast<uint32_t>(ts_us / 1'000'000));
  AppendU32(out, static_cast<uint32_t>(ts_us % 1'000'000));
  AppendU32(out, incl_len);
  AppendU32(out, incl_len);  // orig_len
  AppendRaw(out, stored.data(), stored.size());
}

std::string WriteFixture(const std::string& name, const std::vector<uint8_t>& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

net::PacketRecord GoodTcpRecord(uint16_t src_port) {
  net::PacketRecord rec;
  rec.tuple = {0x0a000001, 0xc0a80001, src_port, 443, net::kProtoTcp};
  rec.payload_len = 64;
  rec.wire_len = 20 + 20 + rec.payload_len;  // wire-faithful IP total length
  rec.tcp_flags = net::kTcpAck;
  return rec;
}

TEST(FrameDecode, RejectsImpossibleIhl) {
  // IHL nibbles 0 and 15 on a frame with exactly eth + 20 captured bytes:
  // below the 20-byte minimum and past the capture respectively. IHL 6 (24
  // bytes) is also past this capture. None may be dereferenced.
  std::vector<uint8_t> frame = SynthesizeFrame(GoodTcpRecord(1000));
  frame.resize(net::kEthHeaderLen + net::kIpv4MinHeaderLen);
  net::DecodedFrame decoded;
  for (const uint8_t ihl : {0, 1, 4, 6, 15}) {
    frame[14] = static_cast<uint8_t>(0x40 | ihl);
    EXPECT_EQ(net::DecodeEthernetFrame(frame.data(), frame.size(), &decoded),
              net::FrameDecodeStatus::kMalformed)
        << "ihl nibble " << int{ihl};
  }
  // IHL 5 on the same capture is the legal minimum.
  frame[14] = 0x45;
  EXPECT_EQ(net::DecodeEthernetFrame(frame.data(), frame.size(), &decoded),
            net::FrameDecodeStatus::kOk);
}

TEST(FrameDecode, RejectsTcpDataOffsetBelowMinimum) {
  std::vector<uint8_t> frame = SynthesizeFrame(GoodTcpRecord(1000));
  net::DecodedFrame decoded;
  for (const uint8_t off : {0, 1, 4}) {
    frame[14 + 20 + 12] = static_cast<uint8_t>(off << 4);
    EXPECT_EQ(net::DecodeEthernetFrame(frame.data(), frame.size(), &decoded),
              net::FrameDecodeStatus::kMalformed)
        << "data offset nibble " << int{off};
  }
  frame[14 + 20 + 12] = 0x50;
  EXPECT_EQ(net::DecodeEthernetFrame(frame.data(), frame.size(), &decoded),
            net::FrameDecodeStatus::kOk);
}

TEST(FrameDecode, ClampsPayloadToCapturedBytes) {
  // A snapped capture: IP total length claims 64 payload bytes but only 10
  // made it into the file. payload_len keeps the wire truth; the view must
  // not extend past the capture.
  const net::PacketRecord rec = GoodTcpRecord(1000);
  std::vector<uint8_t> frame = SynthesizeFrame(rec);
  frame.resize(14 + 20 + 20 + 10);
  net::DecodedFrame decoded;
  ASSERT_EQ(net::DecodeEthernetFrame(frame.data(), frame.size(), &decoded),
            net::FrameDecodeStatus::kOk);
  EXPECT_EQ(decoded.rec.payload_len, 64);
  EXPECT_EQ(decoded.payload_captured, 10);
  EXPECT_EQ(decoded.payload, frame.data() + 14 + 20 + 20);
}

TEST(Pcap, ImportSkipsMalformedAndNonIpv4Interleave) {
  std::vector<uint8_t> file = PcapHeaderBytes();
  const net::PacketRecord good1 = GoodTcpRecord(1000);
  const net::PacketRecord good2 = GoodTcpRecord(2000);

  std::vector<uint8_t> frame = SynthesizeFrame(good1);
  AppendRecord(file, 100, static_cast<uint32_t>(frame.size()), frame);

  // An ARP frame (EtherType 0x0806): normal link noise, silently skipped.
  std::vector<uint8_t> arp(42, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  AppendRecord(file, 200, static_cast<uint32_t>(arp.size()), arp);

  // IPv4 with a hostile IHL nibble of 15: counted out, never read.
  std::vector<uint8_t> bad_ihl = SynthesizeFrame(good1);
  bad_ihl.resize(14 + 20);
  bad_ihl[14] = 0x4f;
  AppendRecord(file, 300, static_cast<uint32_t>(bad_ihl.size()), bad_ihl);

  // TCP data offset of 1 word: impossible, skipped.
  std::vector<uint8_t> bad_off = SynthesizeFrame(good1);
  bad_off[14 + 20 + 12] = 0x10;
  AppendRecord(file, 400, static_cast<uint32_t>(bad_off.size()), bad_off);

  frame = SynthesizeFrame(good2);
  AppendRecord(file, 500, static_cast<uint32_t>(frame.size()), frame);

  const std::string path = WriteFixture("shedmon_interleave.pcap", file);
  const Trace t = ImportPcap(path);
  ASSERT_EQ(t.packets.size(), 2u);
  EXPECT_EQ(t.packets[0].tuple, good1.tuple);
  EXPECT_EQ(t.packets[1].tuple, good2.tuple);
  EXPECT_EQ(t.packets[0].ts_us, 0u);    // normalized to the first good packet
  EXPECT_EQ(t.packets[1].ts_us, 400u);  // 500 - 100
  std::remove(path.c_str());
}

TEST(Pcap, ImportRejectsOversizedInclLen) {
  // incl_len of 1 GiB: the old path did buf.resize(incl_len) — an
  // attacker-controlled allocation. Now it must throw before buffering.
  std::vector<uint8_t> file = PcapHeaderBytes();
  AppendRecord(file, 100, 1u << 30, {});
  const std::string path = WriteFixture("shedmon_oversize.pcap", file);
  EXPECT_THROW(ImportPcap(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Pcap, ImportRejectsInclLenBeyondSnaplen) {
  // Even a modest incl_len is a lie when it exceeds the header's snaplen.
  std::vector<uint8_t> file = PcapHeaderBytes(/*snaplen=*/64);
  std::vector<uint8_t> stored(100, 0);
  AppendRecord(file, 100, 100, stored);
  const std::string path = WriteFixture("shedmon_snaplie.pcap", file);
  EXPECT_THROW(ImportPcap(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Pcap, ImportThrowsOnTruncatedMidRecord) {
  std::vector<uint8_t> file = PcapHeaderBytes();
  const std::vector<uint8_t> frame = SynthesizeFrame(GoodTcpRecord(1000));
  AppendRecord(file, 100, static_cast<uint32_t>(frame.size()), frame);
  // Second record claims 120 bytes but the file ends after 50.
  std::vector<uint8_t> partial(frame.begin(), frame.begin() + 50);
  AppendRecord(file, 200, 120, partial);
  const std::string path = WriteFixture("shedmon_truncated.pcap", file);
  EXPECT_THROW(ImportPcap(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Pcap, ReaderAwaitsThenResumesOnGrowingFile) {
  // The live-follow contract: a mid-record tail reports kAwait and rewinds,
  // so the same Next() call succeeds once the writer appends the rest.
  const std::vector<uint8_t> frame = SynthesizeFrame(GoodTcpRecord(1000));
  std::vector<uint8_t> file = PcapHeaderBytes();
  std::vector<uint8_t> partial(frame.begin(), frame.begin() + 30);
  AppendRecord(file, 1'234'567, static_cast<uint32_t>(frame.size()), partial);
  const std::string path = WriteFixture("shedmon_growing.pcap", file);

  PcapReader reader(path);
  std::vector<uint8_t> buf(reader.max_record_bytes());
  PcapReader::RecordInfo info;
  EXPECT_EQ(reader.Next(buf.data(), buf.size(), &info), PcapReader::Status::kAwait);
  EXPECT_EQ(reader.Next(buf.data(), buf.size(), &info), PcapReader::Status::kAwait);

  {
    std::ofstream append(path, std::ios::binary | std::ios::app);
    append.write(reinterpret_cast<const char*>(frame.data() + 30),
                 static_cast<std::streamsize>(frame.size() - 30));
  }
  ASSERT_EQ(reader.Next(buf.data(), buf.size(), &info), PcapReader::Status::kRecord);
  EXPECT_EQ(info.ts_us, 1'234'567u);
  EXPECT_EQ(info.captured, frame.size());
  EXPECT_EQ(std::memcmp(buf.data(), frame.data(), frame.size()), 0);
  EXPECT_EQ(reader.Next(buf.data(), buf.size(), &info), PcapReader::Status::kEof);
  std::remove(path.c_str());
}

TEST(Pcap, RoundTripIsFieldExact) {
  // Every decoded field — not a sample — must survive export + import for
  // wire-faithful records (wire_len == headers + payload).
  Trace t;
  for (uint16_t i = 0; i < 50; ++i) {
    net::PacketRecord rec;
    const bool tcp = i % 3 != 0;
    rec.tuple = {0x0a000000u + i, 0xc0a80000u + i, static_cast<uint16_t>(1024 + i),
                 static_cast<uint16_t>(tcp ? 443 : 53),
                 tcp ? net::kProtoTcp : net::kProtoUdp};
    rec.payload_len = static_cast<uint16_t>(i * 7 % 200);
    rec.wire_len = static_cast<uint16_t>(20 + (tcp ? 20 : 8) + rec.payload_len);
    rec.ts_us = 1'000'000 + static_cast<uint64_t>(i) * 137;
    rec.tcp_flags = tcp ? net::kTcpAck : 0;
    t.packets.push_back(rec);
  }
  const std::string path = ::testing::TempDir() + "/shedmon_exact.pcap";
  ExportPcap(t, path);
  const Trace back = ImportPcap(path);
  ASSERT_EQ(back.packets.size(), t.packets.size());
  for (size_t i = 0; i < t.packets.size(); ++i) {
    EXPECT_EQ(back.packets[i].tuple, t.packets[i].tuple) << i;
    EXPECT_EQ(back.packets[i].ts_us, t.packets[i].ts_us - t.packets[0].ts_us) << i;
    EXPECT_EQ(back.packets[i].wire_len, t.packets[i].wire_len) << i;
    EXPECT_EQ(back.packets[i].payload_len, t.packets[i].payload_len) << i;
    EXPECT_EQ(back.packets[i].tcp_flags, t.packets[i].tcp_flags) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RoundTripsPacketsExactly) {
  const Trace t = TraceGenerator(SmallSpec()).Generate();
  const std::string path = ::testing::TempDir() + "/shedmon_roundtrip.trace";
  SaveTrace(t, path);
  const Trace loaded = LoadTrace(path);
  ASSERT_EQ(loaded.packets.size(), t.packets.size());
  EXPECT_EQ(loaded.spec.name, t.spec.name);
  for (size_t i = 0; i < t.packets.size(); i += 53) {
    EXPECT_EQ(loaded.packets[i].ts_us, t.packets[i].ts_us);
    EXPECT_EQ(loaded.packets[i].tuple, t.packets[i].tuple);
    EXPECT_EQ(loaded.packets[i].wire_len, t.packets[i].wire_len);
    EXPECT_EQ(loaded.packets[i].payload_seed, t.packets[i].payload_seed);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(LoadTrace("/nonexistent/file.trace"), std::runtime_error);
}

}  // namespace
}  // namespace shedmon::trace
