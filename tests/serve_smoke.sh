#!/usr/bin/env bash
# Live smoke for the embedded HTTP observability endpoint, exercised the way
# an operator's scrape loop would: start a run with --serve 0 (ephemeral
# port) plus per-bin stalls so the run lasts long enough to scrape, parse
# the bound port from the banner, GET /metrics /healthz /stats /trace
# mid-run, check the Prometheus exposition and trace JSON shapes, and
# require a clean shutdown with the trace file written at exit.
#
# usage: serve_smoke.sh <path-to-shedmon_cli>
set -euo pipefail

CLI=$(readlink -f "${1:?usage: serve_smoke.sh <path-to-shedmon_cli>}")
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$CLI" generate --preset cesca2 --duration 4 --seed 11 --out trace.smt >/dev/null

# 50 ms of real stall per bin keeps the 40-bin run alive ~2 s — a
# deterministic window for the mid-run scrapes — and trips the deadline
# ladder, so /healthz has a degradation to report.
"$CLI" run trace.smt --queries counter,flows --k 0.5 \
  --serve 0 --trace-out spans.json \
  --deadline 0.4 --fault-plan "seed=7,stall_every=1:50000" \
  >run.out 2>run.err &
pid=$!

for _ in $(seq 200); do
  grep -q '^serving' run.out 2>/dev/null && break
  sleep 0.02
done
PORT=$(sed -n 's#^serving http://127.0.0.1:\([0-9]*\).*#\1#p' run.out)
[ -n "$PORT" ] || { echo "FAIL: no 'serving' banner with a port"; cat run.out; exit 1; }

fetch() {
  python3 - "$1" <<'PY'
import sys, urllib.request
print(urllib.request.urlopen(sys.argv[1], timeout=5).read().decode())
PY
}

fetch "http://127.0.0.1:$PORT/metrics" >metrics.prom
fetch "http://127.0.0.1:$PORT/healthz" >healthz.json
fetch "http://127.0.0.1:$PORT/stats" >stats.json
fetch "http://127.0.0.1:$PORT/trace" >trace.json

grep -q '# TYPE shedmon_packets_total counter' metrics.prom || {
  echo "FAIL: /metrics is not Prometheus text exposition"; cat metrics.prom; exit 1; }
grep -q 'shedmon_stage_wall_us_bucket{' metrics.prom || {
  echo "FAIL: /metrics lacks the per-stage wall histograms"; exit 1; }
grep -q '"status":' healthz.json || {
  echo "FAIL: /healthz is not the health JSON"; cat healthz.json; exit 1; }
grep -q '"degradation_rung":' stats.json || {
  echo "FAIL: /stats lacks the degradation rung"; cat stats.json; exit 1; }
python3 - <<'PY' || { echo "FAIL: /trace is not valid Chrome trace JSON"; exit 1; }
import json
d = json.load(open("trace.json"))
assert isinstance(d["traceEvents"], list)
PY

wait "$pid" || { echo "FAIL: run exited non-zero"; cat run.err; exit 1; }
[ -s spans.json ] || { echo "FAIL: --trace-out wrote nothing"; exit 1; }
python3 - <<'PY' || { echo "FAIL: --trace-out is not a loadable trace"; exit 1; }
import json
d = json.load(open("spans.json"))
names = {e["name"] for e in d["traceEvents"]}
assert {"bin_close", "extraction", "prediction", "shed_decision", "query"} <= names, names
PY

echo "serve smoke: OK"
