#include <gtest/gtest.h>

#include <cmath>

#include "src/game/game.h"
#include "src/util/rng.h"

namespace shedmon::game {
namespace {

GameConfig UnboundedGame(double capacity, size_t players,
                         shed::StrategyKind share = shed::StrategyKind::kMmfsCpu) {
  GameConfig cfg;
  cfg.capacity = capacity;
  cfg.full_demand.assign(players, capacity * 1e6);  // effectively unbounded
  cfg.share = share;
  return cfg;
}

TEST(Payoff, FeasibleProfileGetsDemandsPlusSpare) {
  const GameConfig cfg = UnboundedGame(100.0, 2);
  // Demands 20 + 30 = 50; spare 50 split max-min (25 each, unbounded caps).
  const auto u = AllPayoffs(cfg, {20.0, 30.0});
  EXPECT_NEAR(u[0], 45.0, 1e-9);
  EXPECT_NEAR(u[1], 55.0, 1e-9);
}

TEST(Payoff, LargestDemandDisabledOnOverload) {
  const GameConfig cfg = UnboundedGame(100.0, 3);
  // 50 + 40 + 30 = 120 > 100: the 50 is disabled; 40 + 30 = 70 fits.
  const auto u = AllPayoffs(cfg, {50.0, 40.0, 30.0});
  EXPECT_DOUBLE_EQ(u[0], 0.0);
  EXPECT_GT(u[1], 40.0 - 1e-9);
  EXPECT_GT(u[2], 30.0 - 1e-9);
}

TEST(Payoff, SumNeverExceedsCapacity) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.NextBelow(6);
    const GameConfig cfg = UnboundedGame(100.0, n);
    std::vector<double> actions(n);
    for (auto& a : actions) {
      a = rng.NextDouble() * 120.0;
    }
    const auto u = AllPayoffs(cfg, actions);
    double total = 0.0;
    for (const double v : u) {
      total += v;
    }
    EXPECT_LE(total, 100.0 * (1 + 1e-9));
  }
}

TEST(Payoff, ActivePlayerNeverGetsLessThanDemand) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.NextBelow(6);
    const GameConfig cfg = UnboundedGame(100.0, n);
    std::vector<double> actions(n);
    for (auto& a : actions) {
      a = rng.NextDouble() * 60.0;
    }
    const auto u = AllPayoffs(cfg, actions);
    for (size_t q = 0; q < n; ++q) {
      if (u[q] > 0.0) {
        EXPECT_GE(u[q], actions[q] - 1e-9);
      }
    }
  }
}

// Theorem 5.1: a* with a_i = C/|Q| is the unique Nash equilibrium.
class NashSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(NashSweep, FairShareProfileIsEquilibrium) {
  const size_t n = GetParam();
  for (const auto share : {shed::StrategyKind::kMmfsCpu, shed::StrategyKind::kMmfsPkt}) {
    const GameConfig cfg = UnboundedGame(100.0, n, share);
    const std::vector<double> fair(n, 100.0 / static_cast<double>(n));
    EXPECT_TRUE(IsNashEquilibrium(cfg, fair, 501, 1e-6)) << n;
  }
}

TEST_P(NashSweep, DeviationsFromFairShareAreUnprofitable) {
  const size_t n = GetParam();
  const GameConfig cfg = UnboundedGame(100.0, n);
  const double fair = 100.0 / static_cast<double>(n);
  std::vector<double> actions(n, fair);
  const double base = Payoff(cfg, actions, 0);
  EXPECT_NEAR(base, fair, 1e-9);
  // Asking for more gets you disabled (payoff 0).
  actions[0] = fair * 1.05;
  EXPECT_DOUBLE_EQ(Payoff(cfg, actions, 0), 0.0);
  // Asking for less leaves you strictly below the fair share.
  actions[0] = fair * 0.5;
  EXPECT_LT(Payoff(cfg, actions, 0), base - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PlayerCounts, NashSweep, ::testing::Values(2, 3, 5, 8, 11));

TEST(Nash, UnfairProfilesAreNotEquilibria) {
  const GameConfig cfg = UnboundedGame(100.0, 4);
  EXPECT_FALSE(IsNashEquilibrium(cfg, {10.0, 10.0, 10.0, 10.0}, 501, 1e-6));
  EXPECT_FALSE(IsNashEquilibrium(cfg, {40.0, 30.0, 20.0, 10.0}, 501, 1e-6));
}

TEST(Nash, FairShareIsFixedPointOfBestResponse) {
  // At the equilibrium nobody moves; best-response dynamics stay put. (From
  // arbitrary profiles, best-response dynamics in this game may cycle — the
  // thesis only claims uniqueness of the equilibrium, not convergence.)
  const GameConfig cfg = UnboundedGame(100.0, 5);
  const std::vector<double> fair(5, 20.0);
  const auto after = BestResponseDynamics(cfg, fair, 16, 501);
  for (const double a : after) {
    EXPECT_NEAR(a, 20.0, 1e-9);
  }
}

TEST(Nash, BestResponseDynamicsStayFeasible) {
  const GameConfig cfg = UnboundedGame(100.0, 5);
  const auto profile = BestResponseDynamics(cfg, {5.0, 90.0, 33.0, 1.0, 60.0}, 32, 201);
  for (const double a : profile) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 100.0);
  }
  const auto u = AllPayoffs(cfg, profile);
  double total = 0.0;
  for (const double v : u) {
    total += v;
  }
  EXPECT_LE(total, 100.0 * (1 + 1e-9));
}

TEST(Nash, AuroraStyleGreedyContrast) {
  // §5.3's closing observation: in a utility-maximizing system, demanding
  // everything is dominant. In ours, demanding everything yields zero when
  // anyone else demands anything.
  const GameConfig cfg = UnboundedGame(100.0, 2);
  EXPECT_DOUBLE_EQ(Payoff(cfg, {100.0, 10.0}, 0), 0.0);
}

// ------------------------------------------------------ Fig. 5.1 simulator --

TEST(MmfsSim, AccuracyFunctionsMatchSpec) {
  EXPECT_DOUBLE_EQ(LightAccuracy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(LightAccuracy(1.0), 1.0);
  EXPECT_NEAR(LightAccuracy(0.2), 1.0 - 0.8 * 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(HeavyAccuracy(0.35), 0.35);
}

TEST(MmfsSim, NoOverloadGivesPerfectAccuracyBothStrategies) {
  const auto p = SimulateLightHeavy(0.0, 0.0);
  EXPECT_NEAR(p.avg_accuracy_cpu, 1.0, 1e-9);
  EXPECT_NEAR(p.avg_accuracy_pkt, 1.0, 1e-9);
}

TEST(MmfsSim, PktImprovesMinimumAccuracyUnderOverload) {
  // The Fig. 5.1 (right) ridge: mmfs_pkt dominates mmfs_cpu on the minimum
  // accuracy because cpu fairness starves the heavy query.
  const auto p = SimulateLightHeavy(0.0, 0.5);
  EXPECT_GT(p.min_diff(), 0.1);
  // While average accuracy stays close (left plot is almost flat).
  EXPECT_NEAR(p.avg_diff(), 0.0, 0.15);
}

TEST(MmfsSim, StrategiesCoincideWhenHeavyQueryDisabled) {
  // Along the Fig. 5.1 diagonal (high m_q and high K) the heavy query is
  // disabled under both strategies and the difference vanishes.
  const auto p = SimulateLightHeavy(0.9, 0.8);
  EXPECT_NEAR(p.min_diff(), 0.0, 1e-9);
}

TEST(MmfsSim, SweepIsBoundedAndFinite) {
  for (double mq = 0.0; mq <= 1.0; mq += 0.25) {
    for (double k = 0.0; k <= 1.0; k += 0.25) {
      const auto p = SimulateLightHeavy(mq, k);
      for (const double v : {p.avg_accuracy_cpu, p.min_accuracy_cpu, p.avg_accuracy_pkt,
                             p.min_accuracy_pkt}) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        EXPECT_TRUE(std::isfinite(v));
      }
    }
  }
}

TEST(MmfsSim, FullOverloadKillsEverything) {
  const auto p = SimulateLightHeavy(0.5, 1.0);
  EXPECT_NEAR(p.avg_accuracy_cpu, 0.0, 1e-9);
  EXPECT_NEAR(p.avg_accuracy_pkt, 0.0, 1e-9);
}

}  // namespace
}  // namespace shedmon::game
