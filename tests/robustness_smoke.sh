#!/usr/bin/env bash
# Soak smoke for the overload-protection surface of the CLI, exercised the
# way an operator would hit it: injected sink I/O faults must be retried,
# injected per-bin stalls must trip the deadline ladder, SIGUSR1 must
# produce a mid-run metrics dump, and a checkpointed run must resume with
# --restore after the original process is gone.
#
# usage: robustness_smoke.sh <path-to-shedmon_cli>
set -euo pipefail

CLI=$(readlink -f "${1:?usage: robustness_smoke.sh <path-to-shedmon_cli>}")
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$CLI" generate --preset cesca2 --duration 4 --seed 11 --out trace.smt >/dev/null

# Every bin stalls 50 ms of real wall-clock (the fault plan runs against the
# default SystemClock), so the 40-bin run lasts ~2 s — a deterministic window
# for the mid-run signal — and blows the 40 ms deadline budget in every bin.
"$CLI" run trace.smt --queries counter,flows --k 0.5 \
  --csv bins.csv --sink-retries 3 \
  --fault-plan "seed=7,sink_fail_n=2,stall_every=1:50000" \
  --deadline 0.4 \
  --checkpoint state.ckpt --metrics-out metrics.prom \
  >run.out 2>run.err &
pid=$!

# The SIGUSR1 handler is installed just before the "running ..." banner;
# signaling earlier would hit the default action and kill the process.
for _ in $(seq 200); do
  grep -q '^running' run.out 2>/dev/null && break
  sleep 0.02
done
kill -USR1 "$pid" 2>/dev/null || true
wait "$pid"

grep -q 'SIGUSR1' run.err || {
  echo "FAIL: no mid-run metrics dump after SIGUSR1"; cat run.err; exit 1; }
[ -s bins.csv ] || { echo "FAIL: csv sink produced nothing"; exit 1; }
[ -s state.ckpt ] || { echo "FAIL: no checkpoint written"; exit 1; }
grep -q 'shedmon_rt_sink_retries_total{sink="csv"} [1-9]' metrics.prom || {
  echo "FAIL: injected sink faults were not retried"; cat metrics.prom; exit 1; }
grep -Eq 'shedmon_rt_deadline_miss_total\{rung="(boost|truncate|drop)"\} [1-9]' metrics.prom || {
  echo "FAIL: injected stalls did not trip the deadline ladder"; cat metrics.prom; exit 1; }
grep -Eq 'rt: [1-9][0-9]* deadline misses' run.out || {
  echo "FAIL: rt summary line missing from run output"; cat run.out; exit 1; }

# Crash recovery: a fresh process resumes from the surviving checkpoint and
# replays only the remaining bins (no stalls this time, so it is quick).
"$CLI" run trace.smt --queries counter,flows --k 0.5 \
  --checkpoint state.ckpt --restore >restore.out 2>restore.err
grep -q 'restored state.ckpt, resuming at bin' restore.err || {
  echo "FAIL: --restore did not resume from the checkpoint"; cat restore.err; exit 1; }

echo "robustness smoke: OK"
