// Live capture suite (src/capture): socket and pcap-follow sources must feed
// the pipeline through pre-allocated slots with zero per-packet payload
// copies, and — with an injected ManualClock freezing the wall-time
// contribution — produce BinLogs bit-identical to an offline replay of the
// same records, at every (threads x shards) combination. Protocol errors,
// truncation and overload are counted, never crashed on.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/config.h"
#include "src/api/pipeline.h"
#include "src/capture/capture.h"
#include "src/capture/replay.h"
#include "src/core/runner.h"
#include "src/net/frame.h"
#include "src/rt/clock.h"
#include "src/trace/generator.h"
#include "src/trace/pcap.h"
#include "src/trace/spec.h"

namespace shedmon {
namespace {

// A deterministic trace whose records are wire-faithful: payload_len is
// exactly what an Ethernet/IPv4 decode of the synthesized frame reports, so
// the offline push and the live capture of the same records see identical
// packets. (Generator traces model payload_len and wire_len independently;
// a frame can only carry one truth.)
const trace::Trace& CaptureTrace() {
  static const trace::Trace t = [] {
    trace::TraceSpec spec = trace::CescaII();  // payload-bearing preset
    spec.duration_s = 2.0;
    spec.flows_per_s = 120.0;
    spec.seed = 17;
    trace::Trace generated = trace::TraceGenerator(spec).Generate();
    for (net::PacketRecord& rec : generated.packets) {
      const uint16_t headers =
          20 + (rec.tuple.proto == net::kProtoTcp ? 20 : 8);
      rec.wire_len = std::max<uint16_t>(rec.wire_len, headers);
      rec.payload_len = static_cast<uint16_t>(rec.wire_len - headers);
    }
    return generated;
  }();
  return t;
}

const std::vector<std::string>& CaptureQueries() {
  static const std::vector<std::string> queries = {"counter", "flows", "application"};
  return queries;
}

core::SystemConfig BaseConfig(size_t threads, size_t shards) {
  core::SystemConfig config;
  config.shedder = core::ShedderKind::kPredictive;
  config.num_threads = threads;
  config.max_shards_per_query = shards;
  config.cycles_per_bin =
      0.5 * core::MeasureMeanDemand(CaptureQueries(), CaptureTrace(), core::OracleKind::kModel);
  return config;
}

api::PipelineBuilder Builder(size_t threads, size_t shards) {
  api::PipelineBuilder builder;
  builder.Config(BaseConfig(threads, shards));
  for (const std::string& query : CaptureQueries()) {
    builder.AddQuery(query);
  }
  return builder;
}

// Offline golden: the whole trace pushed through the classic synchronous
// facade on a single-coordinator pipeline.
const std::vector<core::BinLog>& GoldenLog() {
  static const std::vector<core::BinLog> golden = [] {
    auto pipeline = Builder(0, 1).BuildUnique();
    pipeline->Push(CaptureTrace());
    pipeline->Finish();
    return pipeline->log();
  }();
  return golden;
}

void ExpectBinLogsIdentical(const std::vector<core::BinLog>& golden,
                            const std::vector<core::BinLog>& actual) {
  ASSERT_EQ(golden.size(), actual.size());
  for (size_t b = 0; b < golden.size(); ++b) {
    SCOPED_TRACE("bin " + std::to_string(b));
    const core::BinLog& g = golden[b];
    const core::BinLog& a = actual[b];
    EXPECT_EQ(g.start_us, a.start_us);
    EXPECT_EQ(g.packets_in, a.packets_in);
    EXPECT_EQ(g.packets_dropped, a.packets_dropped);
    EXPECT_EQ(g.packets_unsampled, a.packets_unsampled);
    EXPECT_EQ(g.overload, a.overload);
    EXPECT_EQ(g.predicted_cycles, a.predicted_cycles);
    EXPECT_EQ(g.query_cycles, a.query_cycles);
    EXPECT_EQ(g.rate, a.rate);
    EXPECT_EQ(g.per_query_cycles, a.per_query_cycles);
    EXPECT_EQ(g.disabled, a.disabled);
  }
}

// Polls `done` every few milliseconds until it holds or ~10 s elapse. Real
// sleeps are fine here: the clock under test is the injected ManualClock,
// not the test harness's pacing.
bool WaitUntil(const std::function<bool()>& done) {
  for (int i = 0; i < 2000; ++i) {
    if (done()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

// Builds a live pipeline listening on an ephemeral loopback port with a
// frozen wall clock, so binning is driven purely by embedded timestamps.
std::unique_ptr<api::Pipeline> BuildLive(size_t threads, size_t shards,
                                         capture::SourceSpec source) {
  capture::CaptureConfig cc;
  cc.sources.push_back(std::move(source));
  cc.clock = std::make_shared<rt::ManualClock>();
  api::PipelineBuilder builder = Builder(threads, shards);
  builder.CaptureFrom(cc);
  return builder.BuildUnique();
}

// ---------------------------------------------------------------------------
// Equivalence with offline replay
// ---------------------------------------------------------------------------

TEST(Capture, TcpReplayIsBitIdenticalToOfflineAtEveryThreadAndShardCount) {
  const size_t expected = CaptureTrace().packets.size();
  for (const size_t threads : {0, 2, 4}) {
    for (const size_t shards : {1, 8}) {
      if (threads == 0 && shards > 1) {
        continue;  // sharding requires a worker pool
      }
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      auto pipeline = BuildLive(threads, shards, capture::SourceSpec::Tcp(0));
      const uint16_t port = pipeline->capture()->port(0);
      ASSERT_GT(port, 0);
      EXPECT_EQ(capture::ReplayTraceTcp(CaptureTrace(), port), expected);
      // The framed TCP stream is lossless: every record must arrive.
      ASSERT_TRUE(WaitUntil([&] { return pipeline->capture_stats().packets >= expected; }))
          << "got " << pipeline->capture_stats().packets << "/" << expected;
      pipeline->Finish();
      const capture::CaptureStats stats = pipeline->capture_stats();
      EXPECT_EQ(stats.packets, expected);
      EXPECT_EQ(stats.dropped(), 0u);
      EXPECT_EQ(stats.truncated, 0u);
      ExpectBinLogsIdentical(GoldenLog(), pipeline->log());
      // Zero per-packet ingest copies: every payload was pinned slot memory.
      EXPECT_EQ(pipeline->Stats().ingest_copied_bytes, 0u);
      EXPECT_EQ(pipeline->Stats().capture_packets, expected);
    }
  }
}

TEST(Capture, UdpReplayMatchesOfflineReplay) {
  const size_t expected = CaptureTrace().packets.size();
  auto pipeline = BuildLive(0, 1, capture::SourceSpec::Udp(0));
  const uint16_t port = pipeline->capture()->port(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(capture::ReplayTraceUdp(CaptureTrace(), port), expected);
  WaitUntil([&] { return pipeline->capture_stats().packets >= expected; });
  pipeline->Finish();
  const capture::CaptureStats stats = pipeline->capture_stats();
  if (stats.packets < expected) {
    // UDP is allowed to lose datagrams under scheduler pressure; equivalence
    // is only claimed for a loss-free run (the common case on loopback with
    // an 8 MB receive buffer).
    GTEST_SKIP() << "lossy UDP run: " << stats.packets << "/" << expected;
  }
  EXPECT_EQ(stats.dropped(), 0u);
  ExpectBinLogsIdentical(GoldenLog(), pipeline->log());
  EXPECT_EQ(pipeline->Stats().ingest_copied_bytes, 0u);
}

TEST(Capture, PcapFollowTailsAGrowingFile) {
  // Golden: import the finished file and push it offline. The pcap path
  // rebases timestamps to the first record, exactly like ImportPcap.
  const trace::Trace& t = CaptureTrace();
  const std::string path = ::testing::TempDir() + "/shedmon_follow.pcap";
  trace::ExportPcap(t, path);
  const trace::Trace imported = trace::ImportPcap(path);
  ASSERT_EQ(imported.packets.size(), t.packets.size());
  auto golden_pipeline = Builder(0, 1).BuildUnique();
  golden_pipeline->Push(imported);
  golden_pipeline->Finish();

  // Live: rewrite the file as header + first half, follow it, then append
  // the second half while the follower is already at the tail.
  const size_t half = t.packets.size() / 2;
  trace::Trace first_half;
  first_half.spec = t.spec;
  first_half.packets.assign(t.packets.begin(), t.packets.begin() + half);
  trace::ExportPcap(first_half, path);

  auto pipeline = BuildLive(0, 1, capture::SourceSpec::PcapFile(path));
  ASSERT_TRUE(WaitUntil(
      [&] { return pipeline->capture_stats().packets >= half; }));

  {
    // Append the remaining records the way a capture daemon would: record
    // header + frame bytes, no new file header.
    std::ofstream append(path, std::ios::binary | std::ios::app);
    for (size_t i = half; i < t.packets.size(); ++i) {
      const net::PacketRecord& rec = t.packets[i];
      const std::vector<uint8_t> frame = trace::SynthesizeFrame(rec);
      const uint32_t words[4] = {static_cast<uint32_t>(rec.ts_us / 1'000'000),
                                 static_cast<uint32_t>(rec.ts_us % 1'000'000),
                                 static_cast<uint32_t>(frame.size()),
                                 static_cast<uint32_t>(frame.size())};
      append.write(reinterpret_cast<const char*>(words), sizeof(words));
      append.write(reinterpret_cast<const char*>(frame.data()),
                   static_cast<std::streamsize>(frame.size()));
    }
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return pipeline->capture_stats().packets >= t.packets.size(); }));
  pipeline->Finish();
  EXPECT_EQ(pipeline->capture_stats().packets, t.packets.size());
  EXPECT_EQ(pipeline->capture_stats().dropped(), 0u);
  ExpectBinLogsIdentical(golden_pipeline->log(), pipeline->log());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Wire-protocol hardening
// ---------------------------------------------------------------------------

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(Capture, TcpStreamProtocolErrorDropsConnectionNotProcess) {
  auto pipeline = BuildLive(0, 1, capture::SourceSpec::Tcp(0));
  const uint16_t port = pipeline->capture()->port(0);

  // A stream that never says the magic word: counted as a decode drop, the
  // connection is cut (recv sees EOF), and the listener stays alive.
  const int bad = ConnectLoopback(port);
  const std::vector<uint8_t> garbage(64, 0xab);
  ASSERT_EQ(::send(bad, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));
  char scratch[16];
  EXPECT_LE(::recv(bad, scratch, sizeof(scratch), 0), 0);  // server hung up
  ::close(bad);
  ASSERT_TRUE(
      WaitUntil([&] { return pipeline->capture_stats().dropped_decode >= 1; }));

  // The next well-framed client is served normally.
  trace::Trace small;
  small.packets.assign(CaptureTrace().packets.begin(), CaptureTrace().packets.begin() + 50);
  EXPECT_EQ(capture::ReplayTraceTcp(small, port), 50u);
  EXPECT_TRUE(WaitUntil([&] { return pipeline->capture_stats().packets >= 50; }));
  pipeline->Finish();
}

TEST(Capture, TcpOversizedFrameLengthIsAProtocolError) {
  auto pipeline = BuildLive(0, 1, capture::SourceSpec::Tcp(0));
  const int fd = ConnectLoopback(pipeline->capture()->port(0));
  // Valid magic, hostile frame_len: must be rejected before any allocation.
  uint8_t header[capture::kStreamHeaderLen] = {};
  header[0] = 0x53;
  header[1] = 0x48;
  header[2] = 0x4d;
  header[3] = 0x53;  // kStreamMagic
  const uint32_t huge = capture::kMaxFrameBytes + 1;
  header[4] = static_cast<uint8_t>(huge >> 24);
  header[5] = static_cast<uint8_t>(huge >> 16);
  header[6] = static_cast<uint8_t>(huge >> 8);
  header[7] = static_cast<uint8_t>(huge);
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(header)));
  char scratch[16];
  EXPECT_LE(::recv(fd, scratch, sizeof(scratch), 0), 0);  // connection dropped
  ::close(fd);
  EXPECT_TRUE(
      WaitUntil([&] { return pipeline->capture_stats().dropped_decode >= 1; }));
  pipeline->Finish();
}

TEST(Capture, SnapLengthTruncatesOversizedFramesAndCounts) {
  capture::CaptureConfig cc;
  cc.sources.push_back(capture::SourceSpec::Tcp(0));
  cc.clock = std::make_shared<rt::ManualClock>();
  cc.snap_bytes = 64;  // eth + ip + tcp headers fit; payloads do not
  api::PipelineBuilder builder = Builder(0, 1);
  builder.CaptureFrom(cc);
  auto pipeline = builder.BuildUnique();

  trace::Trace small;
  small.packets.assign(CaptureTrace().packets.begin(), CaptureTrace().packets.begin() + 200);
  EXPECT_EQ(capture::ReplayTraceTcp(small, pipeline->capture()->port(0)), 200u);
  ASSERT_TRUE(WaitUntil([&] { return pipeline->capture_stats().packets >= 200; }));
  pipeline->Finish();
  const capture::CaptureStats stats = pipeline->capture_stats();
  EXPECT_EQ(stats.packets, 200u);  // truncated, not lost
  EXPECT_GT(stats.truncated, 0u);
}

TEST(Capture, UdpRawDatagramWithoutMagicIsTreatedAsAFrame) {
  auto pipeline = BuildLive(0, 1, capture::SourceSpec::Udp(0));
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(pipeline->capture()->port(0));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const std::vector<uint8_t> frame = trace::SynthesizeFrame(CaptureTrace().packets.front());
  ASSERT_EQ(::sendto(fd, frame.data(), frame.size(), 0,
                     reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            static_cast<ssize_t>(frame.size()));
  ::close(fd);
  EXPECT_TRUE(WaitUntil([&] { return pipeline->capture_stats().packets >= 1; }));
  pipeline->Finish();
}

// ---------------------------------------------------------------------------
// Configuration and lifecycle
// ---------------------------------------------------------------------------

TEST(Capture, BuildRejectsEmptySourceList) {
  api::PipelineBuilder builder = Builder(0, 1);
  builder.CaptureFrom(capture::CaptureConfig{});
  EXPECT_THROW(builder.BuildUnique(), api::ConfigError);
}

TEST(Capture, BuildRejectsPcapSourceWithoutPath) {
  capture::CaptureConfig cc;
  cc.sources.push_back(capture::SourceSpec::PcapFile(""));
  api::PipelineBuilder builder = Builder(0, 1);
  builder.CaptureFrom(cc);
  EXPECT_THROW(builder.BuildUnique(), api::ConfigError);
}

TEST(Capture, BuildRejectsMissingPcapFileLoudly) {
  capture::CaptureConfig cc;
  cc.sources.push_back(capture::SourceSpec::PcapFile("/nonexistent/capture.pcap"));
  api::PipelineBuilder builder = Builder(0, 1);
  builder.CaptureFrom(cc);
  EXPECT_THROW(builder.BuildUnique(), api::ConfigError);
}

TEST(Capture, BuildRejectsTakenListenerPort) {
  // Squat a loopback port; the capture listener must fail Build loudly, not
  // share or shadow it.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  capture::CaptureConfig cc;
  cc.sources.push_back(capture::SourceSpec::Udp(ntohs(addr.sin_port)));
  api::PipelineBuilder builder = Builder(0, 1);
  builder.CaptureFrom(cc);
  EXPECT_THROW(builder.BuildUnique(), api::ConfigError);
  ::close(fd);
}

TEST(Capture, StartCaptureIsSingleShot) {
  auto pipeline = BuildLive(0, 1, capture::SourceSpec::Udp(0));
  capture::CaptureConfig cc;
  cc.sources.push_back(capture::SourceSpec::Udp(0));
  EXPECT_THROW(pipeline->StartCapture(cc), api::ConfigError);
  pipeline->StopCapture();
  pipeline->StopCapture();  // idempotent
  pipeline->Finish();
}

TEST(Capture, MetricsAndSpansCoverTheCaptureStage) {
  capture::CaptureConfig cc;
  cc.sources.push_back(capture::SourceSpec::Tcp(0));
  cc.clock = std::make_shared<rt::ManualClock>();
  api::PipelineBuilder builder = Builder(0, 1);
  builder.Tracing().CaptureFrom(cc);
  auto pipeline = builder.BuildUnique();

  trace::Trace small;
  small.packets.assign(CaptureTrace().packets.begin(), CaptureTrace().packets.begin() + 500);
  EXPECT_EQ(capture::ReplayTraceTcp(small, pipeline->capture()->port(0)), 500u);
  ASSERT_TRUE(WaitUntil([&] { return pipeline->capture_stats().packets >= 500; }));
  pipeline->Finish();

  double packets_total = -1.0;
  bool saw_source_frames = false;
  for (const auto& sample : pipeline->Metrics().Snapshot().samples) {
    if (sample.name == "shedmon_capture_packets_total") {
      packets_total = sample.value;
    }
    if (sample.name == "shedmon_capture_frames_total" && sample.labels.count("source")) {
      saw_source_frames = true;
    }
  }
  EXPECT_EQ(packets_total, 500.0);
  EXPECT_TRUE(saw_source_frames);

  ASSERT_NE(pipeline->tracer(), nullptr);
  bool saw_capture_span = false;
  for (const obs::SpanRecord& span : pipeline->tracer()->Snapshot()) {
    saw_capture_span = saw_capture_span || span.stage == obs::Stage::kCapture;
  }
  EXPECT_TRUE(saw_capture_span);
}

// ---------------------------------------------------------------------------
// PushPinned (the zero-copy ingest contract, without sockets)
// ---------------------------------------------------------------------------

TEST(Capture, PushPinnedBorrowsPayloadAndCopiesNothing) {
  auto pinned_pipeline = Builder(0, 1).BuildUnique();
  auto copied_pipeline = Builder(0, 1).BuildUnique();

  // Stable payload storage: PushPinned's contract is that these bytes
  // outlive the bin, which a vector declared before the loop satisfies.
  std::vector<std::vector<uint8_t>> storage;
  storage.reserve(CaptureTrace().packets.size());
  for (const net::PacketRecord& rec : CaptureTrace().packets) {
    storage.emplace_back(rec.payload_len);
    if (rec.payload_len > 0) {
      trace::MaterializePayload(rec, storage.back().data());
    }
    net::Packet packet;
    packet.rec = &rec;
    packet.payload = rec.payload_len > 0 ? storage.back().data() : nullptr;
    packet.payload_len = rec.payload_len;
    pinned_pipeline->PushPinned(packet);
    copied_pipeline->Push(packet);
  }
  pinned_pipeline->Finish();
  copied_pipeline->Finish();

  // Same packets, same results; only the copy accounting differs.
  ExpectBinLogsIdentical(copied_pipeline->log(), pinned_pipeline->log());
  EXPECT_EQ(pinned_pipeline->Stats().ingest_copied_bytes, 0u);
  EXPECT_GT(copied_pipeline->Stats().ingest_copied_bytes, 0u);
}

TEST(Capture, PushPinnedWithNullPayloadFallsBackToMaterialization) {
  auto pinned_pipeline = Builder(0, 1).BuildUnique();
  auto classic_pipeline = Builder(0, 1).BuildUnique();
  for (const net::PacketRecord& rec : CaptureTrace().packets) {
    pinned_pipeline->PushPinned(net::Packet::View(rec));
    classic_pipeline->Push(net::Packet::View(rec));
  }
  pinned_pipeline->Finish();
  classic_pipeline->Finish();
  ExpectBinLogsIdentical(classic_pipeline->log(), pinned_pipeline->log());
}

}  // namespace
}  // namespace shedmon
