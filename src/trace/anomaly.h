#pragma once

#include <cstdint>

#include "src/trace/generator.h"

namespace shedmon::trace {

// Synthetic anomaly injectors (§3.4.3): the thesis evaluates robustness by
// inserting attacks into its traces; these reproduce the same shapes.

// (Distributed) denial of service against a single target. With spoofed
// sources every packet carries a fresh random source IP/port, which explodes
// the flow-related features while leaving packet counts comparatively flat —
// the workload that defeats the SLR/EWMA predictors in Figs. 3.13-3.15.
struct DdosSpec {
  double start_s = 10.0;
  double duration_s = 10.0;
  double pps = 4000.0;
  uint32_t target_ip = 0xc0a80105;  // 192.168.1.5
  uint16_t dst_port = 80;
  bool spoofed_sources = true;
  bool syn_flood = true;      // TCP SYNs of minimum size
  uint16_t pkt_len = 40;
  // > 0 reproduces the §3.4.3 attack that "goes idle every other second":
  // the attack alternates on/off with this period.
  double on_off_period_s = 0.0;
};
void InjectDdos(Trace& trace, const DdosSpec& spec, uint64_t seed);

// Worm outbreak: many sources scanning many destinations on one fixed port.
struct WormSpec {
  double start_s = 10.0;
  double duration_s = 10.0;
  double pps = 3000.0;
  uint16_t dst_port = 445;
  uint16_t pkt_len = 404;
  uint32_t num_sources = 512;
};
void InjectWorm(Trace& trace, const WormSpec& spec, uint64_t seed);

// Burst of maximum-size packets, the attack the thesis aims at byte-driven
// queries (trace, pattern-search).
struct ByteBurstSpec {
  double start_s = 10.0;
  double duration_s = 5.0;
  double pps = 2000.0;
  uint16_t pkt_len = 1500;
  bool payloads = false;
};
void InjectByteBurst(Trace& trace, const ByteBurstSpec& spec, uint64_t seed);

}  // namespace shedmon::trace
