#include "src/trace/pcap.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/trace/batch.h"

namespace shedmon::trace {

namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr uint32_t kLinkTypeEthernet = 1;
constexpr size_t kEthLen = 14;
constexpr size_t kIpLen = 20;

void PutU16(std::vector<uint8_t>& out, size_t offset, uint16_t value) {
  out[offset] = static_cast<uint8_t>(value >> 8);  // network byte order
  out[offset + 1] = static_cast<uint8_t>(value & 0xff);
}

void PutU32(std::vector<uint8_t>& out, size_t offset, uint32_t value) {
  out[offset] = static_cast<uint8_t>(value >> 24);
  out[offset + 1] = static_cast<uint8_t>((value >> 16) & 0xff);
  out[offset + 2] = static_cast<uint8_t>((value >> 8) & 0xff);
  out[offset + 3] = static_cast<uint8_t>(value & 0xff);
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

uint32_t ReadU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

// RFC 1071 internet checksum over a header region.
uint16_t Checksum(const uint8_t* data, size_t len) {
  uint32_t sum = 0;
  for (size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (len % 2 != 0) {
    sum += static_cast<uint32_t>(data[len - 1] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

struct PcapFileHeader {
  uint32_t magic;
  uint16_t version_major;
  uint16_t version_minor;
  int32_t thiszone;
  uint32_t sigfigs;
  uint32_t snaplen;
  uint32_t linktype;
};

struct PcapRecordHeader {
  uint32_t ts_sec;
  uint32_t ts_usec;
  uint32_t incl_len;
  uint32_t orig_len;
};

}  // namespace

std::vector<uint8_t> SynthesizeFrame(const net::PacketRecord& rec) {
  const bool tcp = rec.tuple.proto == net::kProtoTcp;
  const size_t l4_len = tcp ? 20 : 8;
  // The record's wire_len is the IP length; pad up if it is smaller than the
  // headers demand so the frame stays well-formed.
  const size_t ip_total =
      std::max<size_t>(rec.wire_len, kIpLen + l4_len + rec.payload_len);
  std::vector<uint8_t> frame(kEthLen + ip_total, 0);

  // Ethernet: locally administered MACs derived from the IPs, EtherType IPv4.
  frame[0] = 0x02;
  PutU32(frame, 1, rec.tuple.dst_ip);
  frame[5] = 0x01;
  frame[6] = 0x02;
  PutU32(frame, 7, rec.tuple.src_ip);
  frame[11] = 0x02;
  PutU16(frame, 12, 0x0800);

  // IPv4 header.
  const size_t ip = kEthLen;
  frame[ip + 0] = 0x45;  // version 4, IHL 5
  PutU16(frame, ip + 2, static_cast<uint16_t>(ip_total));
  frame[ip + 8] = 64;  // TTL
  frame[ip + 9] = rec.tuple.proto;
  PutU32(frame, ip + 12, rec.tuple.src_ip);
  PutU32(frame, ip + 16, rec.tuple.dst_ip);
  PutU16(frame, ip + 10, Checksum(frame.data() + ip, kIpLen));

  // L4 header.
  const size_t l4 = ip + kIpLen;
  PutU16(frame, l4 + 0, rec.tuple.src_port);
  PutU16(frame, l4 + 2, rec.tuple.dst_port);
  if (tcp) {
    PutU32(frame, l4 + 4, static_cast<uint32_t>(rec.ts_us));  // seq surrogate
    frame[l4 + 12] = 0x50;  // data offset 5
    frame[l4 + 13] = rec.tcp_flags;
    PutU16(frame, l4 + 14, 65535);  // window
  } else {
    PutU16(frame, l4 + 4, static_cast<uint16_t>(8 + rec.payload_len));  // UDP length
  }

  if (rec.payload_len > 0) {
    MaterializePayload(rec, frame.data() + l4 + l4_len);
  }
  return frame;
}

size_t ExportPcap(const Trace& trace, const std::string& path, uint32_t snaplen) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("ExportPcap: cannot open " + path);
  }
  PcapFileHeader header{kPcapMagic, 2, 4, 0, 0, snaplen == 0 ? 262144 : snaplen,
                        kLinkTypeEthernet};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  size_t written = 0;
  for (const auto& rec : trace.packets) {
    const std::vector<uint8_t> frame = SynthesizeFrame(rec);
    const uint32_t keep =
        snaplen == 0 ? static_cast<uint32_t>(frame.size())
                     : std::min<uint32_t>(snaplen, static_cast<uint32_t>(frame.size()));
    PcapRecordHeader rec_header{static_cast<uint32_t>(rec.ts_us / 1'000'000),
                                static_cast<uint32_t>(rec.ts_us % 1'000'000), keep,
                                static_cast<uint32_t>(frame.size())};
    out.write(reinterpret_cast<const char*>(&rec_header), sizeof(rec_header));
    out.write(reinterpret_cast<const char*>(frame.data()), keep);
    ++written;
  }
  if (!out) {
    throw std::runtime_error("ExportPcap: write failed for " + path);
  }
  return written;
}

Trace ImportPcap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ImportPcap: cannot open " + path);
  }
  PcapFileHeader header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || header.magic != kPcapMagic) {
    throw std::runtime_error("ImportPcap: unsupported pcap format in " + path);
  }
  if (header.linktype != kLinkTypeEthernet) {
    throw std::runtime_error("ImportPcap: only LINKTYPE_ETHERNET is supported");
  }

  Trace trace;
  trace.spec.name = path;
  uint64_t first_ts = 0;
  bool have_first = false;
  std::vector<uint8_t> buf;
  while (true) {
    PcapRecordHeader rec_header;
    in.read(reinterpret_cast<char*>(&rec_header), sizeof(rec_header));
    if (!in) {
      break;
    }
    buf.resize(rec_header.incl_len);
    in.read(reinterpret_cast<char*>(buf.data()), rec_header.incl_len);
    if (!in) {
      throw std::runtime_error("ImportPcap: truncated record in " + path);
    }
    if (buf.size() < kEthLen + kIpLen || ReadU16(buf.data() + 12) != 0x0800) {
      continue;  // non-IPv4 frame
    }
    const uint8_t* ip = buf.data() + kEthLen;
    const size_t ihl = static_cast<size_t>(ip[0] & 0x0f) * 4;
    net::PacketRecord rec;
    const uint64_t ts =
        static_cast<uint64_t>(rec_header.ts_sec) * 1'000'000 + rec_header.ts_usec;
    if (!have_first) {
      first_ts = ts;
      have_first = true;
    }
    rec.ts_us = ts - first_ts;
    rec.wire_len = ReadU16(ip + 2);
    rec.tuple.proto = ip[9];
    rec.tuple.src_ip = ReadU32(ip + 12);
    rec.tuple.dst_ip = ReadU32(ip + 16);
    const uint8_t* l4 = ip + ihl;
    const size_t l4_avail = buf.size() - kEthLen - ihl;
    if (l4_avail >= 4) {
      rec.tuple.src_port = ReadU16(l4);
      rec.tuple.dst_port = ReadU16(l4 + 2);
    }
    size_t l4_header = 8;
    if (rec.tuple.proto == net::kProtoTcp && l4_avail >= 14) {
      l4_header = static_cast<size_t>(l4[12] >> 4) * 4;
      rec.tcp_flags = l4[13];
    }
    const size_t header_total = ihl + l4_header;
    rec.payload_len = rec.wire_len > header_total
                          ? static_cast<uint16_t>(rec.wire_len - header_total)
                          : 0;
    rec.payload_class = net::PayloadClass::kNone;  // bytes are not retained
    trace.packets.push_back(rec);
  }
  return trace;
}

}  // namespace shedmon::trace
