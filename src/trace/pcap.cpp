#include "src/trace/pcap.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/net/frame.h"
#include "src/trace/batch.h"

namespace shedmon::trace {

namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr uint32_t kLinkTypeEthernet = 1;
constexpr size_t kEthLen = 14;
constexpr size_t kIpLen = 20;

void PutU16(std::vector<uint8_t>& out, size_t offset, uint16_t value) {
  out[offset] = static_cast<uint8_t>(value >> 8);  // network byte order
  out[offset + 1] = static_cast<uint8_t>(value & 0xff);
}

void PutU32(std::vector<uint8_t>& out, size_t offset, uint32_t value) {
  out[offset] = static_cast<uint8_t>(value >> 24);
  out[offset + 1] = static_cast<uint8_t>((value >> 16) & 0xff);
  out[offset + 2] = static_cast<uint8_t>((value >> 8) & 0xff);
  out[offset + 3] = static_cast<uint8_t>(value & 0xff);
}

// RFC 1071 internet checksum over a header region.
uint16_t Checksum(const uint8_t* data, size_t len) {
  uint32_t sum = 0;
  for (size_t i = 0; i + 1 < len; i += 2) {
    sum += static_cast<uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (len % 2 != 0) {
    sum += static_cast<uint32_t>(data[len - 1] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

struct PcapFileHeader {
  uint32_t magic;
  uint16_t version_major;
  uint16_t version_minor;
  int32_t thiszone;
  uint32_t sigfigs;
  uint32_t snaplen;
  uint32_t linktype;
};

struct PcapRecordHeader {
  uint32_t ts_sec;
  uint32_t ts_usec;
  uint32_t incl_len;
  uint32_t orig_len;
};

}  // namespace

std::vector<uint8_t> SynthesizeFrame(const net::PacketRecord& rec) {
  const bool tcp = rec.tuple.proto == net::kProtoTcp;
  const size_t l4_len = tcp ? 20 : 8;
  // The record's wire_len is the IP length; pad up if it is smaller than the
  // headers demand so the frame stays well-formed.
  const size_t ip_total =
      std::max<size_t>(rec.wire_len, kIpLen + l4_len + rec.payload_len);
  std::vector<uint8_t> frame(kEthLen + ip_total, 0);

  // Ethernet: locally administered MACs derived from the IPs, EtherType IPv4.
  frame[0] = 0x02;
  PutU32(frame, 1, rec.tuple.dst_ip);
  frame[5] = 0x01;
  frame[6] = 0x02;
  PutU32(frame, 7, rec.tuple.src_ip);
  frame[11] = 0x02;
  PutU16(frame, 12, 0x0800);

  // IPv4 header.
  const size_t ip = kEthLen;
  frame[ip + 0] = 0x45;  // version 4, IHL 5
  PutU16(frame, ip + 2, static_cast<uint16_t>(ip_total));
  frame[ip + 8] = 64;  // TTL
  frame[ip + 9] = rec.tuple.proto;
  PutU32(frame, ip + 12, rec.tuple.src_ip);
  PutU32(frame, ip + 16, rec.tuple.dst_ip);
  PutU16(frame, ip + 10, Checksum(frame.data() + ip, kIpLen));

  // L4 header.
  const size_t l4 = ip + kIpLen;
  PutU16(frame, l4 + 0, rec.tuple.src_port);
  PutU16(frame, l4 + 2, rec.tuple.dst_port);
  if (tcp) {
    PutU32(frame, l4 + 4, static_cast<uint32_t>(rec.ts_us));  // seq surrogate
    frame[l4 + 12] = 0x50;  // data offset 5
    frame[l4 + 13] = rec.tcp_flags;
    PutU16(frame, l4 + 14, 65535);  // window
  } else {
    PutU16(frame, l4 + 4, static_cast<uint16_t>(8 + rec.payload_len));  // UDP length
  }

  if (rec.payload_len > 0) {
    MaterializePayload(rec, frame.data() + l4 + l4_len);
  }
  return frame;
}

size_t ExportPcap(const Trace& trace, const std::string& path, uint32_t snaplen) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("ExportPcap: cannot open " + path);
  }
  PcapFileHeader header{kPcapMagic, 2, 4, 0, 0, snaplen == 0 ? 262144 : snaplen,
                        kLinkTypeEthernet};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  size_t written = 0;
  for (const auto& rec : trace.packets) {
    const std::vector<uint8_t> frame = SynthesizeFrame(rec);
    const uint32_t keep =
        snaplen == 0 ? static_cast<uint32_t>(frame.size())
                     : std::min<uint32_t>(snaplen, static_cast<uint32_t>(frame.size()));
    PcapRecordHeader rec_header{static_cast<uint32_t>(rec.ts_us / 1'000'000),
                                static_cast<uint32_t>(rec.ts_us % 1'000'000), keep,
                                static_cast<uint32_t>(frame.size())};
    out.write(reinterpret_cast<const char*>(&rec_header), sizeof(rec_header));
    out.write(reinterpret_cast<const char*>(frame.data()), keep);
    ++written;
  }
  if (!out) {
    throw std::runtime_error("ExportPcap: write failed for " + path);
  }
  return written;
}

PcapReader::PcapReader(const std::string& path) : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    throw std::runtime_error("ImportPcap: cannot open " + path);
  }
  PcapFileHeader header;
  in_.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in_ || header.magic != kPcapMagic) {
    throw std::runtime_error("ImportPcap: unsupported pcap format in " + path);
  }
  if (header.linktype != kLinkTypeEthernet) {
    throw std::runtime_error("ImportPcap: only LINKTYPE_ETHERNET is supported");
  }
  snaplen_ = header.snaplen;
  max_record_ = snaplen_ == 0 ? kMaxPcapRecordBytes : std::min(snaplen_, kMaxPcapRecordBytes);
}

PcapReader::Status PcapReader::Next(uint8_t* out, size_t cap, RecordInfo* info) {
  in_.clear();  // a previous tail read may have tripped eofbit; retry live
  const std::streampos record_start = in_.tellg();
  PcapRecordHeader header;
  in_.read(reinterpret_cast<char*>(&header), sizeof(header));
  const std::streamsize header_got = in_.gcount();
  if (header_got == 0) {
    in_.clear();
    in_.seekg(record_start);
    return Status::kEof;
  }
  if (header_got < static_cast<std::streamsize>(sizeof(header))) {
    in_.clear();
    in_.seekg(record_start);
    return Status::kAwait;
  }
  if (header.incl_len > max_record_) {
    // Attacker-controlled length: reject before any buffering. The old code
    // path did buf.resize(incl_len) here — a multi-GB allocation on demand.
    return Status::kCorrupt;
  }

  const uint32_t keep = std::min<uint32_t>(header.incl_len, static_cast<uint32_t>(cap));
  uint32_t got = 0;
  if (keep > 0) {
    in_.clear();
    in_.read(reinterpret_cast<char*>(out), keep);
    got = static_cast<uint32_t>(in_.gcount());
  }
  // Discard stored bytes past the caller's buffer (cap below incl_len).
  while (got < header.incl_len) {
    char scratch[4096];
    const uint32_t want =
        std::min<uint32_t>(header.incl_len - got, static_cast<uint32_t>(sizeof(scratch)));
    in_.clear();
    in_.read(scratch, want);
    const std::streamsize n = in_.gcount();
    if (n == 0) {
      break;
    }
    got += static_cast<uint32_t>(n);
  }
  if (got < header.incl_len) {
    in_.clear();
    in_.seekg(record_start);  // mid-record tail: retry once the writer catches up
    return Status::kAwait;
  }
  info->ts_us = static_cast<uint64_t>(header.ts_sec) * 1'000'000 + header.ts_usec;
  info->incl_len = header.incl_len;
  info->captured = keep;
  info->orig_len = header.orig_len;
  return Status::kRecord;
}

Trace ImportPcap(const std::string& path) {
  PcapReader reader(path);
  Trace trace;
  trace.spec.name = path;
  uint64_t first_ts = 0;
  bool have_first = false;
  std::vector<uint8_t> buf(reader.max_record_bytes());
  while (true) {
    PcapReader::RecordInfo info;
    const PcapReader::Status status = reader.Next(buf.data(), buf.size(), &info);
    if (status == PcapReader::Status::kEof) {
      break;
    }
    if (status != PcapReader::Status::kRecord) {
      throw std::runtime_error("ImportPcap: truncated record in " + path);
    }
    net::DecodedFrame frame;
    if (net::DecodeEthernetFrame(buf.data(), info.captured, &frame) !=
        net::FrameDecodeStatus::kOk) {
      continue;  // non-IPv4 interleave or a malformed frame: skip, never read
    }
    if (!have_first) {
      first_ts = info.ts_us;
      have_first = true;
    }
    frame.rec.ts_us = info.ts_us - first_ts;
    trace.packets.push_back(frame.rec);
  }
  return trace;
}

}  // namespace shedmon::trace
