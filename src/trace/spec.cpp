#include "src/trace/spec.h"

namespace shedmon::trace {

TraceSpec CescaI() {
  TraceSpec s;
  s.name = "CESCA-I";
  s.duration_s = 30.0;
  s.flows_per_s = 700.0;
  s.burstiness = 0.5;
  s.payloads = false;
  s.seed = 11;
  return s;
}

TraceSpec CescaII() {
  TraceSpec s;
  s.name = "CESCA-II";
  s.duration_s = 30.0;
  s.flows_per_s = 450.0;
  s.burstiness = 0.45;
  s.payloads = true;
  s.seed = 22;
  return s;
}

TraceSpec Abilene() {
  TraceSpec s;
  s.name = "ABILENE";
  s.duration_s = 60.0;
  s.flows_per_s = 850.0;
  s.burstiness = 0.35;
  s.payloads = false;
  s.src_hosts = 8192;
  s.dst_hosts = 4096;
  s.seed = 33;
  return s;
}

TraceSpec Cenic() {
  TraceSpec s;
  s.name = "CENIC";
  s.duration_s = 30.0;
  s.flows_per_s = 750.0;
  s.burstiness = 0.85;  // the thesis notes peak/avg load near 4x on this trace
  s.payloads = false;
  s.seed = 44;
  return s;
}

TraceSpec UpcI() {
  TraceSpec s;
  s.name = "UPC-I";
  s.duration_s = 30.0;
  s.flows_per_s = 550.0;
  s.burstiness = 0.5;
  s.payloads = true;
  s.p2p = 0.18;  // campus link with a heavier P2P share
  s.web = 0.40;
  s.seed = 55;
  return s;
}

}  // namespace shedmon::trace
