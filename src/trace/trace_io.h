#pragma once

#include <string>

#include "src/trace/generator.h"

namespace shedmon::trace {

// Simple binary trace format ("SHEDMON1" magic + record array) so generated
// traces can be saved and replayed across runs, mirroring the paper's use of
// recorded captures for reproducibility.
void SaveTrace(const Trace& trace, const std::string& path);
Trace LoadTrace(const std::string& path);

}  // namespace shedmon::trace
