#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/net/packet.h"
#include "src/trace/generator.h"

namespace shedmon::trace {

using PacketVec = std::vector<net::Packet>;

// One 100 ms time bin of traffic (the paper's "batch", §2.4). Owns the
// materialized payload bytes for its packets in `arena`; Packet views point
// into the arena, so a Batch is movable but not copyable.
struct Batch {
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  PacketVec packets;
  std::vector<uint8_t> arena;
  uint64_t wire_bytes = 0;

  Batch() = default;
  Batch(const Batch&) = delete;
  Batch& operator=(const Batch&) = delete;
  Batch(Batch&&) = default;
  Batch& operator=(Batch&&) = default;

  size_t size() const { return packets.size(); }
};

// Materializes the payload bytes of a record into `out` (must hold
// payload_len bytes): pseudo-random bytes from the record's seed with the
// protocol signature of its payload class planted at the front.
void MaterializePayload(const net::PacketRecord& rec, uint8_t* out);

// Well-known payload signatures used by the generator, pattern-search and
// the p2p-detector.
std::string_view HttpSignature();
std::string_view BittorrentSignature();
std::string_view GnutellaSignature();
std::string_view EdonkeySignature();

// Splits a trace into consecutive fixed-length bins. Bins with no packets
// yield empty batches so the consumer sees every time bin.
//
// Callers are expected to reuse one Batch across Next() calls: the packet
// vector and payload arena are cleared, not freed, so after the largest bin
// has been seen the batcher allocates nothing per bin. Fresh (or undersized)
// batches are pre-sized to the high-water marks of the bins consumed so far,
// so a burst grows the buffers once instead of once per growth step.
class Batcher {
 public:
  Batcher(const Trace& trace, uint64_t bin_us = 100'000);

  // Fills `out` with the next bin; returns false past the end of the trace.
  bool Next(Batch& out);
  void Reset();

  size_t num_bins() const { return num_bins_; }
  uint64_t bin_us() const { return bin_us_; }

 private:
  const Trace& trace_;
  uint64_t bin_us_;
  size_t num_bins_;
  size_t cursor_ = 0;    // index into trace_.packets
  size_t next_bin_ = 0;
  size_t hw_packets_ = 0;  // largest bin seen, in packets
  size_t hw_payload_ = 0;  // largest bin seen, in arena bytes
};

}  // namespace shedmon::trace
