#include "src/trace/anomaly.h"

#include <cmath>

#include "src/util/rng.h"

namespace shedmon::trace {

namespace {

using net::PacketRecord;

// Emits packets at `pps` over [start, start+duration) applying an optional
// on/off duty cycle, invoking `fill` to complete each record.
template <typename Fill>
std::vector<PacketRecord> EmitAttack(double start_s, double duration_s, double pps,
                                     double on_off_period_s, util::Rng& rng, Fill fill) {
  std::vector<PacketRecord> out;
  out.reserve(static_cast<size_t>(pps * duration_s));
  double t = start_s;
  const double end = start_s + duration_s;
  while (t < end) {
    bool active = true;
    if (on_off_period_s > 0.0) {
      const double phase = std::fmod(t - start_s, 2.0 * on_off_period_s);
      active = phase < on_off_period_s;
    }
    if (active) {
      PacketRecord rec;
      rec.ts_us = static_cast<uint64_t>(t * 1e6);
      rec.app = net::AppClass::kAttack;
      fill(rec, rng);
      out.push_back(rec);
    }
    t += rng.NextExponential(pps);
  }
  return out;
}

}  // namespace

void InjectDdos(Trace& trace, const DdosSpec& spec, uint64_t seed) {
  util::Rng rng(seed);
  auto pkts = EmitAttack(
      spec.start_s, spec.duration_s, spec.pps, spec.on_off_period_s, rng,
      [&spec](PacketRecord& rec, util::Rng& r) {
        rec.tuple.dst_ip = spec.target_ip;
        rec.tuple.dst_port = spec.dst_port;
        if (spec.spoofed_sources) {
          rec.tuple.src_ip = static_cast<uint32_t>(r.NextU64());
          rec.tuple.src_port = static_cast<uint16_t>(r.NextU64());
        } else {
          rec.tuple.src_ip = 0x0a0a0a0a;
          rec.tuple.src_port = static_cast<uint16_t>(1024 + r.NextBelow(4096));
        }
        rec.tuple.proto = net::kProtoTcp;
        rec.tcp_flags = spec.syn_flood ? net::kTcpSyn : net::kTcpAck;
        rec.wire_len = spec.pkt_len;
        rec.payload_len = 0;
      });
  MergePackets(trace, std::move(pkts));
}

void InjectWorm(Trace& trace, const WormSpec& spec, uint64_t seed) {
  util::Rng rng(seed);
  auto pkts = EmitAttack(
      spec.start_s, spec.duration_s, spec.pps, 0.0, rng,
      [&spec](PacketRecord& rec, util::Rng& r) {
        // Infected hosts scan random targets on the worm port.
        rec.tuple.src_ip = 0x0a140000 + static_cast<uint32_t>(r.NextBelow(spec.num_sources));
        rec.tuple.dst_ip = static_cast<uint32_t>(r.NextU64());
        rec.tuple.src_port = static_cast<uint16_t>(1024 + r.NextBelow(60000));
        rec.tuple.dst_port = spec.dst_port;
        rec.tuple.proto = net::kProtoTcp;
        rec.tcp_flags = net::kTcpSyn;
        rec.wire_len = spec.pkt_len;
        rec.payload_len = 0;
      });
  MergePackets(trace, std::move(pkts));
}

void InjectByteBurst(Trace& trace, const ByteBurstSpec& spec, uint64_t seed) {
  util::Rng rng(seed);
  auto pkts = EmitAttack(
      spec.start_s, spec.duration_s, spec.pps, 0.0, rng,
      [&spec](PacketRecord& rec, util::Rng& r) {
        rec.tuple.src_ip = 0x0a0b0c0d;
        rec.tuple.dst_ip = 0xc0a80909;
        rec.tuple.src_port = static_cast<uint16_t>(1024 + r.NextBelow(60000));
        rec.tuple.dst_port = 9999;
        rec.tuple.proto = net::kProtoUdp;
        rec.wire_len = spec.pkt_len;
        if (spec.payloads) {
          rec.payload_len = static_cast<uint16_t>(spec.pkt_len - 40);
          rec.payload_class = net::PayloadClass::kRandom;
          rec.payload_seed = static_cast<uint32_t>(r.NextU64());
        }
      });
  MergePackets(trace, std::move(pkts));
}

}  // namespace shedmon::trace
