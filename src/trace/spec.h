#pragma once

#include <cstdint>
#include <string>

namespace shedmon::trace {

// Parameters of a synthetic packet trace. The named presets below stand in
// for the paper's datasets (Table 2.3), scaled from 30-minute captures on a
// GbE link down to tens of seconds at a few thousand packets/s so every
// experiment runs in seconds on a laptop while keeping the statistical
// structure the load-shedding problem depends on: bursty arrivals,
// heavy-tailed flow sizes, a realistic application/port mix, and (for the
// payload traces) signature-bearing payload bytes.
struct TraceSpec {
  std::string name = "synthetic";
  double duration_s = 30.0;
  // Mean flow arrival rate; packet rate is roughly 7x this value.
  double flows_per_s = 600.0;
  // 0 = Poisson-smooth arrivals, 1 = strongly modulated by multi-timescale
  // on/off bursts (self-similar-looking load).
  double burstiness = 0.5;
  bool payloads = false;
  uint32_t src_hosts = 4096;
  uint32_t dst_hosts = 2048;
  double host_zipf_s = 1.05;  // address popularity skew
  uint64_t seed = 1;

  // Application mix (normalized internally).
  double web = 0.45;
  double dns = 0.12;
  double mail = 0.06;
  double p2p = 0.12;
  double streaming = 0.08;
  double ssh = 0.05;
  double other = 0.12;
};

// Scaled-down stand-ins for the thesis datasets (Table 2.3).
TraceSpec CescaI();    // header-only, moderate sustained load
TraceSpec CescaII();   // full payloads, lower pps / higher bytes-per-packet
TraceSpec Abilene();   // header-only backbone, higher rate, longer
TraceSpec Cenic();     // header-only, strongly bursty (peak/avg ~4x)
TraceSpec UpcI();      // full payloads, campus access link

}  // namespace shedmon::trace
