#include "src/trace/batch.h"

#include <algorithm>
#include <cstring>

#include "src/util/rng.h"

namespace shedmon::trace {

std::string_view HttpSignature() { return "GET / HTTP/1.1\r\nHost: "; }
std::string_view BittorrentSignature() { return "\x13"  "BitTorrent protocol"; }
std::string_view GnutellaSignature() { return "GNUTELLA CONNECT/0.6"; }
std::string_view EdonkeySignature() { return "\xe3\x47\x00\x00"; }

void MaterializePayload(const net::PacketRecord& rec, uint8_t* out) {
  const size_t len = rec.payload_len;
  if (len == 0) {
    return;
  }
  // Cheap deterministic filler; one 64-bit word per 8 bytes.
  uint64_t state = (static_cast<uint64_t>(rec.payload_seed) << 17) ^ rec.ts_us;
  size_t i = 0;
  while (i + 8 <= len) {
    const uint64_t w = util::SplitMix64(state);
    std::memcpy(out + i, &w, 8);
    i += 8;
  }
  if (i < len) {
    const uint64_t w = util::SplitMix64(state);
    std::memcpy(out + i, &w, len - i);
  }

  std::string_view sig;
  switch (rec.payload_class) {
    case net::PayloadClass::kHttpRequest:
      sig = HttpSignature();
      break;
    case net::PayloadClass::kBittorrent:
      sig = BittorrentSignature();
      break;
    case net::PayloadClass::kGnutella:
      sig = GnutellaSignature();
      break;
    case net::PayloadClass::kEdonkey:
      sig = EdonkeySignature();
      break;
    case net::PayloadClass::kNone:
    case net::PayloadClass::kRandom:
      return;
  }
  const size_t n = std::min(sig.size(), len);
  std::memcpy(out, sig.data(), n);
}

Batcher::Batcher(const Trace& trace, uint64_t bin_us) : trace_(trace), bin_us_(bin_us) {
  const uint64_t dur = trace.duration_us();
  num_bins_ = dur == 0 ? 0 : static_cast<size_t>((dur + bin_us - 1) / bin_us);
}

void Batcher::Reset() {
  cursor_ = 0;
  next_bin_ = 0;
}

bool Batcher::Next(Batch& out) {
  if (next_bin_ >= num_bins_) {
    return false;
  }
  const uint64_t start = static_cast<uint64_t>(next_bin_) * bin_us_;
  const uint64_t end = start + bin_us_;
  ++next_bin_;

  out.start_us = start;
  out.duration_us = bin_us_;
  out.packets.clear();
  out.arena.clear();
  out.wire_bytes = 0;

  const size_t first = cursor_;
  size_t payload_total = 0;
  while (cursor_ < trace_.packets.size() && trace_.packets[cursor_].ts_us < end) {
    payload_total += trace_.packets[cursor_].payload_len;
    ++cursor_;
  }
  const size_t count = cursor_ - first;
  hw_packets_ = std::max(hw_packets_, count);
  hw_payload_ = std::max(hw_payload_, payload_total);
  out.packets.reserve(hw_packets_);
  out.arena.reserve(hw_payload_);
  out.arena.resize(payload_total);

  size_t offset = 0;
  for (size_t i = first; i < cursor_; ++i) {
    const net::PacketRecord& rec = trace_.packets[i];
    net::Packet pkt;
    pkt.rec = &rec;
    pkt.payload_len = rec.payload_len;
    if (rec.payload_len > 0) {
      uint8_t* dst = out.arena.data() + offset;
      MaterializePayload(rec, dst);
      pkt.payload = dst;
      offset += rec.payload_len;
    }
    out.packets.push_back(pkt);
    out.wire_bytes += rec.wire_len;
  }
  return true;
}

}  // namespace shedmon::trace
