#pragma once

#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/trace/generator.h"

namespace shedmon::trace {

// Exports a trace as a standard libpcap capture file (magic 0xa1b2c3d4,
// LINKTYPE_ETHERNET), synthesizing the Ethernet/IPv4/TCP-or-UDP headers and
// the deterministic payload bytes for each record. Generated traces can then
// be inspected with tcpdump/wireshark or replayed into other tools —
// bridging the gap left by substituting the paper's DAG captures with a
// generator (DESIGN.md §2).
//
// `snaplen` caps the bytes stored per packet (0 = full packet). Returns the
// number of packets written.
size_t ExportPcap(const Trace& trace, const std::string& path, uint32_t snaplen = 0);

// Serializes one record into Ethernet/IPv4/L4 wire bytes (with payload),
// exactly as ExportPcap writes it. Exposed for tests and for feeding other
// byte-level consumers.
std::vector<uint8_t> SynthesizeFrame(const net::PacketRecord& rec);

// Reads back a pcap file written by ExportPcap (or any LINKTYPE_ETHERNET
// IPv4 capture) into packet records; payload bytes are not retained, only
// their length. Timestamps are relative to the first packet.
Trace ImportPcap(const std::string& path);

}  // namespace shedmon::trace
