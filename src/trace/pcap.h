#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/trace/generator.h"

namespace shedmon::trace {

// Hard upper bound on one pcap record's stored bytes. Jumbo frames top out
// far below this; an incl_len beyond it is a corrupt or hostile file, not a
// big packet, and must be rejected instead of allocated.
inline constexpr uint32_t kMaxPcapRecordBytes = 256 * 1024;

// Exports a trace as a standard libpcap capture file (magic 0xa1b2c3d4,
// LINKTYPE_ETHERNET), synthesizing the Ethernet/IPv4/TCP-or-UDP headers and
// the deterministic payload bytes for each record. Generated traces can then
// be inspected with tcpdump/wireshark or replayed into other tools —
// bridging the gap left by substituting the paper's DAG captures with a
// generator (DESIGN.md §2).
//
// `snaplen` caps the bytes stored per packet (0 = full packet). Returns the
// number of packets written.
size_t ExportPcap(const Trace& trace, const std::string& path, uint32_t snaplen = 0);

// Serializes one record into Ethernet/IPv4/L4 wire bytes (with payload),
// exactly as ExportPcap writes it. Exposed for tests and for feeding other
// byte-level consumers.
std::vector<uint8_t> SynthesizeFrame(const net::PacketRecord& rec);

// Incremental reader over a LINKTYPE_ETHERNET microsecond pcap file,
// hardened against malformed input: the constructor validates the file
// header, and Next() refuses records whose incl_len exceeds the header's
// snaplen (or kMaxPcapRecordBytes) before a single byte is buffered. Built
// for two consumers: ImportPcap below reads to EOF, and the live capture
// front-end (src/capture) follows a file another process is still writing —
// kAwait rewinds to the record boundary so the same call can be retried
// once the writer appends the rest.
class PcapReader {
 public:
  enum class Status : uint8_t {
    kRecord,   // one full record delivered
    kEof,      // clean end: the file stops exactly on a record boundary
    kAwait,    // the file ends mid-record; position rewound for a retry
    kCorrupt,  // record claims more bytes than the snaplen cap allows
  };

  struct RecordInfo {
    uint64_t ts_us = 0;     // absolute capture timestamp (sec * 1e6 + usec)
    uint32_t incl_len = 0;  // bytes stored in the file for this record
    uint32_t captured = 0;  // bytes copied into the caller's buffer
    uint32_t orig_len = 0;  // original frame length on the wire
  };

  // Throws std::runtime_error on open failure, a foreign magic, or a
  // non-Ethernet link type.
  explicit PcapReader(const std::string& path);

  // Reads the next record's bytes into `out` (at most `cap`; longer records
  // are stored-bytes-truncated, with the full incl_len reported in info).
  Status Next(uint8_t* out, size_t cap, RecordInfo* info);

  uint32_t snaplen() const { return snaplen_; }
  // Per-record byte ceiling: min(snaplen, kMaxPcapRecordBytes); buffers of
  // this size can hold any record Next() will ever deliver.
  uint32_t max_record_bytes() const { return max_record_; }
  const std::string& path() const { return path_; }

 private:
  std::ifstream in_;
  std::string path_;
  uint32_t snaplen_ = 0;
  uint32_t max_record_ = 0;
};

// Reads back a pcap file written by ExportPcap (or any LINKTYPE_ETHERNET
// IPv4 capture) into packet records; payload bytes are not retained, only
// their length. Timestamps are relative to the first packet. Hardened:
// malformed frames (impossible IHL / TCP data offset) are skipped, and a
// record that is truncated mid-file or claims more than the snaplen cap
// throws std::runtime_error.
Trace ImportPcap(const std::string& path);

}  // namespace shedmon::trace
