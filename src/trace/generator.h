#pragma once

#include <vector>

#include "src/net/packet.h"
#include "src/trace/spec.h"

namespace shedmon::trace {

// A generated (or loaded) packet trace: records sorted by timestamp.
struct Trace {
  TraceSpec spec;
  std::vector<net::PacketRecord> packets;

  uint64_t duration_us() const {
    return packets.empty() ? 0 : packets.back().ts_us + 1;
  }
};

// Flow-level synthetic traffic generator. Flows arrive following a Poisson
// process whose rate is modulated by three on/off burst processes at
// different timescales (0.5 s / 3 s / 12 s) with heavy-tailed sojourn times,
// which yields the multi-timescale burstiness network traces exhibit. Each
// flow draws an application class from the spec's mix; the class determines
// ports, protocol, packet count (bounded Pareto), packet sizes, inter-packet
// gaps and payload content (HTTP or P2P signatures on the first data packet).
class TraceGenerator {
 public:
  explicit TraceGenerator(TraceSpec spec) : spec_(std::move(spec)) {}

  Trace Generate() const;

 private:
  TraceSpec spec_;
};

// Merges freshly injected packets into a trace, keeping timestamp order.
void MergePackets(Trace& trace, std::vector<net::PacketRecord> extra);

}  // namespace shedmon::trace
