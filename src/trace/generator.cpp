#include "src/trace/generator.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace shedmon::trace {

namespace {

using net::AppClass;
using net::PacketRecord;
using net::PayloadClass;

struct AppProfile {
  AppClass app;
  double weight;
  uint8_t proto;         // dominant protocol
  double udp_fraction;   // chance of UDP instead
  uint16_t ports[3];     // candidate server ports
  double pkts_lo, pkts_hi, pkts_alpha;  // bounded-Pareto packets per flow
  double small_pkt_fraction;            // fraction of small (ack-like) packets
  uint16_t small_len, data_len_lo, data_len_hi;
  double gap_mean_ms;    // mean intra-flow packet gap
  PayloadClass first_payload;
};

std::vector<AppProfile> BuildProfiles(const TraceSpec& spec) {
  return {
      {AppClass::kWeb, spec.web, net::kProtoTcp, 0.0, {80, 443, 8080},
       2, 900, 1.25, 0.45, 40, 400, 1460, 8.0, PayloadClass::kHttpRequest},
      {AppClass::kDns, spec.dns, net::kProtoUdp, 1.0, {53, 53, 53},
       1, 4, 1.5, 0.0, 0, 60, 300, 15.0, PayloadClass::kRandom},
      {AppClass::kMail, spec.mail, net::kProtoTcp, 0.0, {25, 110, 587},
       3, 200, 1.3, 0.4, 40, 200, 1460, 12.0, PayloadClass::kRandom},
      {AppClass::kP2p, spec.p2p, net::kProtoTcp, 0.2, {6881, 4662, 6346},
       4, 3000, 1.1, 0.3, 40, 600, 1460, 6.0, PayloadClass::kBittorrent},
      {AppClass::kStreaming, spec.streaming, net::kProtoUdp, 0.7, {554, 1935, 8554},
       20, 1500, 1.2, 0.05, 60, 900, 1380, 4.0, PayloadClass::kRandom},
      {AppClass::kSsh, spec.ssh, net::kProtoTcp, 0.0, {22, 22, 22},
       3, 400, 1.3, 0.5, 40, 60, 800, 20.0, PayloadClass::kRandom},
      {AppClass::kOther, spec.other, net::kProtoTcp, 0.3, {0, 0, 0},
       2, 300, 1.3, 0.3, 40, 100, 1460, 10.0, PayloadClass::kRandom},
  };
}

// One on/off burst source: heavy-tailed on and off sojourns at a timescale.
class OnOffSource {
 public:
  OnOffSource(double timescale_s, uint64_t seed)
      : timescale_s_(timescale_s), rng_(seed) {
    next_toggle_s_ = Sojourn();
    on_ = (rng_.NextDouble() < 0.5);
  }

  // Advances to absolute time t and reports whether the source is on.
  bool At(double t) {
    while (t >= next_toggle_s_) {
      on_ = !on_;
      next_toggle_s_ += Sojourn();
    }
    return on_;
  }

 private:
  double Sojourn() { return rng_.NextBoundedPareto(0.4 * timescale_s_, 8.0 * timescale_s_, 1.4); }

  double timescale_s_;
  util::Rng rng_;
  double next_toggle_s_ = 0.0;
  bool on_ = false;
};

uint32_t HostIp(uint32_t base, size_t index) {
  // Spread hosts across /24 subnets of a /16 so autofocus finds clusters.
  return base + static_cast<uint32_t>(((index / 200) << 8) | (index % 200 + 2));
}

}  // namespace

Trace TraceGenerator::Generate() const {
  Trace trace;
  trace.spec = spec_;

  util::Rng rng(spec_.seed);
  util::ZipfSampler src_pool(spec_.src_hosts, spec_.host_zipf_s);
  util::ZipfSampler dst_pool(spec_.dst_hosts, spec_.host_zipf_s);

  const auto profiles = BuildProfiles(spec_);
  double total_weight = 0.0;
  for (const auto& p : profiles) {
    total_weight += p.weight;
  }

  OnOffSource burst_fast(0.5, spec_.seed * 7 + 1);
  OnOffSource burst_mid(3.0, spec_.seed * 7 + 2);
  OnOffSource burst_slow(12.0, spec_.seed * 7 + 3);

  const uint32_t src_base = 0x0a000000;   // 10.0.0.0/8
  const uint32_t dst_base = 0xc0a80000;   // 192.168.0.0/16

  // Flow arrivals: thinned Poisson over 10 ms steps with burst modulation.
  const double step_s = 0.01;
  const double b = spec_.burstiness;
  for (double t = 0.0; t < spec_.duration_s; t += step_s) {
    const double n_on = (burst_fast.At(t) ? 1.0 : 0.0) + (burst_mid.At(t) ? 1.0 : 0.0) +
                        (burst_slow.At(t) ? 1.0 : 0.0);
    // Mean of n_on is 1.5, so this modulation keeps the average rate at
    // flows_per_s while letting peaks reach (1 + 1.5b) / (1 - 1.5b/2 ...) x.
    const double modulation = (1.0 - b) + b * (n_on / 1.5);
    const double lambda = spec_.flows_per_s * modulation * step_s;
    int arrivals = 0;
    // Poisson via inversion for the small means involved.
    double p = std::exp(-lambda);
    double cum = p;
    const double u = rng.NextDouble();
    while (u > cum && arrivals < 64) {
      ++arrivals;
      p *= lambda / arrivals;
      cum += p;
    }

    for (int a = 0; a < arrivals; ++a) {
      // Pick an application class.
      double pick = rng.NextDouble() * total_weight;
      const AppProfile* prof = &profiles.back();
      for (const auto& candidate : profiles) {
        if (pick < candidate.weight) {
          prof = &candidate;
          break;
        }
        pick -= candidate.weight;
      }

      net::FiveTuple tuple;
      tuple.src_ip = HostIp(src_base, src_pool.Sample(rng));
      tuple.dst_ip = HostIp(dst_base, dst_pool.Sample(rng));
      tuple.src_port = static_cast<uint16_t>(1024 + rng.NextBelow(60000));
      tuple.dst_port = prof->ports[0] == 0
                           ? static_cast<uint16_t>(1024 + rng.NextBelow(60000))
                           : prof->ports[rng.NextBelow(3)];
      const bool udp = rng.NextDouble() < prof->udp_fraction;
      tuple.proto = udp ? net::kProtoUdp : net::kProtoTcp;

      const int npkts = std::max(
          1, static_cast<int>(rng.NextBoundedPareto(prof->pkts_lo, prof->pkts_hi,
                                                    prof->pkts_alpha)));
      double pkt_t = t + rng.NextDouble() * step_s;
      for (int i = 0; i < npkts; ++i) {
        PacketRecord rec;
        rec.ts_us = static_cast<uint64_t>(pkt_t * 1e6);
        rec.tuple = tuple;
        rec.app = prof->app;
        const bool small = rng.NextDouble() < prof->small_pkt_fraction;
        uint16_t len;
        if (small) {
          len = prof->small_len;
        } else {
          len = static_cast<uint16_t>(
              prof->data_len_lo +
              rng.NextBelow(static_cast<uint64_t>(prof->data_len_hi - prof->data_len_lo + 1)));
        }
        rec.wire_len = std::max<uint16_t>(len, 40);
        if (tuple.proto == net::kProtoTcp) {
          rec.tcp_flags = (i == 0) ? net::kTcpSyn : net::kTcpAck;
        }
        if (spec_.payloads) {
          rec.payload_len = rec.wire_len > 40 ? static_cast<uint16_t>(rec.wire_len - 40) : 0;
          if (rec.payload_len > 0) {
            const bool first_data = (i == 0 || (i == 1 && tuple.proto == net::kProtoTcp));
            rec.payload_class = first_data ? prof->first_payload : PayloadClass::kRandom;
            if (prof->app == AppClass::kP2p && first_data) {
              // Rotate P2P protocol signatures across flows.
              const uint64_t which = rng.NextBelow(3);
              rec.payload_class = which == 0   ? PayloadClass::kBittorrent
                                  : which == 1 ? PayloadClass::kGnutella
                                               : PayloadClass::kEdonkey;
            }
            rec.payload_seed = static_cast<uint32_t>(rng.NextU64());
          }
        }
        if (rec.ts_us < static_cast<uint64_t>(spec_.duration_s * 1e6)) {
          trace.packets.push_back(rec);
        }
        pkt_t += rng.NextExponential(1000.0 / prof->gap_mean_ms) / 1000.0;
      }
    }
  }

  std::sort(trace.packets.begin(), trace.packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) { return a.ts_us < b.ts_us; });
  return trace;
}

void MergePackets(Trace& trace, std::vector<net::PacketRecord> extra) {
  std::sort(extra.begin(), extra.end(),
            [](const net::PacketRecord& a, const net::PacketRecord& b) {
              return a.ts_us < b.ts_us;
            });
  const size_t old_size = trace.packets.size();
  trace.packets.insert(trace.packets.end(), extra.begin(), extra.end());
  std::inplace_merge(
      trace.packets.begin(), trace.packets.begin() + static_cast<ptrdiff_t>(old_size),
      trace.packets.end(),
      [](const net::PacketRecord& a, const net::PacketRecord& b) { return a.ts_us < b.ts_us; });
}

}  // namespace shedmon::trace
