#include "src/trace/trace_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace shedmon::trace {

namespace {
constexpr char kMagic[8] = {'S', 'H', 'E', 'D', 'M', 'O', 'N', '1'};

struct RawRecord {
  uint64_t ts_us;
  uint32_t src_ip, dst_ip;
  uint16_t src_port, dst_port;
  uint8_t proto;
  uint8_t tcp_flags;
  uint16_t wire_len, payload_len;
  uint8_t app;
  uint8_t payload_class;
  uint32_t payload_seed;
};

RawRecord Pack(const net::PacketRecord& r) {
  RawRecord w{};
  w.ts_us = r.ts_us;
  w.src_ip = r.tuple.src_ip;
  w.dst_ip = r.tuple.dst_ip;
  w.src_port = r.tuple.src_port;
  w.dst_port = r.tuple.dst_port;
  w.proto = r.tuple.proto;
  w.tcp_flags = r.tcp_flags;
  w.wire_len = r.wire_len;
  w.payload_len = r.payload_len;
  w.app = static_cast<uint8_t>(r.app);
  w.payload_class = static_cast<uint8_t>(r.payload_class);
  w.payload_seed = r.payload_seed;
  return w;
}

net::PacketRecord Unpack(const RawRecord& w) {
  net::PacketRecord r;
  r.ts_us = w.ts_us;
  r.tuple.src_ip = w.src_ip;
  r.tuple.dst_ip = w.dst_ip;
  r.tuple.src_port = w.src_port;
  r.tuple.dst_port = w.dst_port;
  r.tuple.proto = w.proto;
  r.tcp_flags = w.tcp_flags;
  r.wire_len = w.wire_len;
  r.payload_len = w.payload_len;
  r.app = static_cast<net::AppClass>(w.app);
  r.payload_class = static_cast<net::PayloadClass>(w.payload_class);
  r.payload_seed = w.payload_seed;
  return r;
}
}  // namespace

void SaveTrace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("SaveTrace: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = trace.packets.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint32_t name_len = static_cast<uint32_t>(trace.spec.name.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(trace.spec.name.data(), name_len);
  for (const auto& rec : trace.packets) {
    const RawRecord w = Pack(rec);
    out.write(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  if (!out) {
    throw std::runtime_error("SaveTrace: write failed for " + path);
  }
}

Trace LoadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("LoadTrace: cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("LoadTrace: bad magic in " + path);
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  Trace trace;
  trace.spec.name.resize(name_len);
  in.read(trace.spec.name.data(), name_len);
  trace.packets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RawRecord w;
    in.read(reinterpret_cast<char*>(&w), sizeof(w));
    if (!in) {
      throw std::runtime_error("LoadTrace: truncated file " + path);
    }
    trace.packets.push_back(Unpack(w));
  }
  return trace;
}

}  // namespace shedmon::trace
