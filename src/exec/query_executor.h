#pragma once

#include <cstddef>
#include <functional>

namespace shedmon::exec {

class ThreadPool;

// Shards index-addressed units of work (one per registered query, in
// shedmon's main use) across a ThreadPool, then replays a merge step for
// every index *in order 0..n-1* on the calling thread.
//
// This is the primitive that keeps parallel pipelines bit-identical to their
// serial equivalents: tasks may run in any order on any worker as long as
// they only touch state owned by their index (plus explicitly thread-safe
// shared services such as the sequenced cost oracle), while everything
// order-sensitive — accumulating BinLog cycle counters, appending rows,
// updating EWMA smoothers — happens in the merge callback, which observes
// exactly the serial order.
//
// With a null pool (or n <= 1) the executor degrades to a plain serial loop
// running task(i); merge(i) per index, so callers need no separate serial
// code path.
class QueryExecutor {
 public:
  // Does not take ownership of `pool`; pass nullptr for inline execution.
  explicit QueryExecutor(ThreadPool* pool) : pool_(pool) {}

  // Runs task(i) for i in [0, n) (on the pool when available), waits for all
  // of them, then runs merge(i) for i = 0..n-1 on the calling thread.
  // Exceptions from tasks propagate after all tasks finished; merge is only
  // invoked when every task succeeded. Either callback may be empty.
  void Run(size_t n, const std::function<void(size_t)>& task,
           const std::function<void(size_t)>& merge) const;

  bool parallel() const { return pool_ != nullptr; }
  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
};

}  // namespace shedmon::exec
