#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace shedmon::obs {
class Histogram;
class Tracer;
enum class Stage : uint8_t;
}  // namespace shedmon::obs

namespace shedmon::rt {
class FaultInjector;
}  // namespace shedmon::rt

namespace shedmon::exec {

class ThreadPool;

// One contiguous shard of a query's batch, in the query's own shard units
// (packets for most queries, scanned bytes for pattern-search).
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
};

// Shards index-addressed units of work (one per registered query, in
// shedmon's main use) across a ThreadPool, then replays a merge step for
// every index *in order 0..n-1* on the calling thread.
//
// This is the primitive that keeps parallel pipelines bit-identical to their
// serial equivalents: tasks may run in any order on any worker as long as
// they only touch state owned by their index (plus explicitly thread-safe
// shared services such as the sequenced cost oracle), while everything
// order-sensitive — accumulating BinLog cycle counters, appending rows,
// updating EWMA smoothers — happens in the merge callback, which observes
// exactly the serial order.
//
// With a null pool (or n <= 1) the executor degrades to a plain serial loop
// running task(i); merge(i) per index, so callers need no separate serial
// code path.
class QueryExecutor {
 public:
  // Does not take ownership of `pool`; pass nullptr for inline execution.
  explicit QueryExecutor(ThreadPool* pool) : pool_(pool) {}

  // Runs task(i) for i in [0, n) (on the pool when available), waits for all
  // of them, then runs merge(i) for i = 0..n-1 on the calling thread.
  // Exceptions from tasks propagate after all tasks finished; merge is only
  // invoked when every task succeeded. Either callback may be empty.
  void Run(size_t n, const std::function<void(size_t)>& task,
           const std::function<void(size_t)>& merge) const;

  bool parallel() const { return pool_ != nullptr; }
  ThreadPool* pool() const { return pool_; }

  // Optional shard-wave timing: when set (and the pool path is taken), each
  // Run records the wall time of its task fan-out wave. Borrowed pointer;
  // null disables. Timing is observational only — it never feeds back into
  // shard planning, so instrumented runs stay bit-identical.
  void SetMetrics(obs::Histogram* wave_seconds) { wave_seconds_ = wave_seconds; }

  // Optional fault injection: when set, every task of every Run wave first
  // passes through injector->OnWorkerTask(bin_index) — the hook for the
  // fault plan's slow-worker stalls. Borrowed pointer; null disables. The
  // coordinator advances the bin index between batches.
  void SetFaultInjector(rt::FaultInjector* injector) { injector_ = injector; }
  void SetBinIndex(size_t bin_index) { bin_index_ = bin_index; }

  // Optional span tracing: when a tracer is set, every task of a Run wave is
  // recorded as one span (arg = task index) under the stage the coordinator
  // announced with SetTraceStage before dispatching the wave, and the ordered
  // merge replay is recorded as a single merge span. Borrowed pointer; null
  // disables. Like the metrics, spans are write-only — they never influence
  // planning — so traced runs stay bit-identical.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  void SetTraceStage(obs::Stage stage) { trace_stage_ = stage; }

  // ---- Intra-query shard planning ----------------------------------------
  // How many shards to split one query's `units` of batch work into: capped
  // by the caller's `max_shards` budget, by the pool's execution contexts
  // (workers + the participating caller — extra shards beyond that only add
  // dispatch overhead), and by a minimum grain of `min_units` per shard so
  // tiny batches stay whole. Inline executors (null pool) never shard.
  // Deterministic for a given (pool, config, batch): the decision feeds the
  // shard *fan-out*, never the results — the mergeable-state discipline makes
  // every shard count produce bit-identical output.
  size_t PlanShards(size_t units, size_t max_shards, size_t min_units) const;

  // Splits [0, units) into exactly min(shards, max(units, 1)) contiguous
  // near-equal ranges (remainder spread over the leading ranges). Never
  // returns an empty range: requesting more shards than units clamps to one
  // unit per shard, and units == 0 degrades to a single empty-span range so
  // a 1-packet (or empty) batch can never produce zero-width shard work.
  static std::vector<ShardRange> SplitUnits(size_t units, size_t shards);

 private:
  ThreadPool* pool_;
  obs::Histogram* wave_seconds_ = nullptr;
  rt::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Stage trace_stage_{};  // the coordinator announces this per wave
  size_t bin_index_ = 0;
};

}  // namespace shedmon::exec
