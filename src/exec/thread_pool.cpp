#include "src/exec/thread_pool.h"

#include <algorithm>

#include "src/util/cycle_clock.h"

namespace shedmon::exec {

void ThreadPool::SetMetrics(const PoolMetricsHooks& hooks) {
  util::MutexLock lock(mutex_);
  hooks_ = hooks;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    util::MutexLock lock(mutex_);
    queue_.push_back(std::move(fn));
    if (hooks_.queue_depth != nullptr) {
      hooks_.queue_depth->Add(1.0);
    }
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    PoolMetricsHooks hooks;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) {
        cv_.Wait(lock);
      }
      if (queue_.empty()) {
        return;  // stop_ set and queue drained
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      hooks = hooks_;
      if (hooks.queue_depth != nullptr) {
        hooks.queue_depth->Add(-1.0);
      }
    }
    if (hooks.task_seconds != nullptr) {
      const uint64_t start_us = util::MonotonicNowUs();
      fn();
      hooks.task_seconds->Observe(static_cast<double>(util::MonotonicNowUs() - start_us) * 1e-6);
    } else {
      fn();
    }
    if (hooks.tasks_total != nullptr) {
      hooks.tasks_total->Increment();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  if (grain == 0) {
    grain = (n + num_threads() - 1) / num_threads();
  }
  // Re-check the grain against the range: it must be at least 1 (a zero
  // grain after shard splitting would loop forever) and at most n (a grain
  // beyond the range collapses to one caller-run chunk, never an empty one).
  grain = std::max<size_t>(1, std::min(grain, n));

  // Chunk [c*grain, min(end, (c+1)*grain)); chunk 0 runs on the caller.
  struct Chunk {
    size_t begin;
    size_t end;
  };
  std::vector<Chunk> chunks;
  for (size_t lo = begin; lo < end; lo += grain) {
    chunks.push_back({lo, std::min(end, lo + grain)});
  }
  auto run_chunk = [&body](const Chunk& c) {
    for (size_t i = c.begin; i < c.end; ++i) {
      body(i);
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size() - 1);
  for (size_t c = 1; c < chunks.size(); ++c) {
    futures.push_back(Submit([&run_chunk, chunk = chunks[c]] { run_chunk(chunk); }));
  }
  std::exception_ptr first_error;
  try {
    run_chunk(chunks[0]);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace shedmon::exec
