#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace shedmon::exec {

// Optional observability hooks for a pool. Pointers are borrowed from an
// obs::MetricsRegistry owned by whoever owns the pool; null members disable
// the corresponding instrument. Updates go to lock-free striped cells and
// never influence scheduling, so instrumented and bare pools execute tasks
// identically.
struct PoolMetricsHooks {
  obs::Gauge* queue_depth = nullptr;       // tasks currently waiting in the queue
  obs::Counter* tasks_total = nullptr;     // tasks a worker has executed
  obs::Histogram* task_seconds = nullptr;  // per-task wall time, seconds
};

// Fixed-size worker pool for per-query and per-run fan-out. Tasks are plain
// callables; Submit returns a std::future so callers can join on completion
// and exceptions thrown inside a task propagate to whoever waits on it.
//
// Design notes:
//  - Workers are started once in the constructor and joined in the
//    destructor; the pool is created per MonitoringSystem / per sweep, not
//    per bin, so thread start-up cost is off the hot path.
//  - The queue is FIFO, so same-thread submission order is preserved. No
//    work stealing: shedmon's tasks (one per query, one per RunSpec) are
//    coarse enough that a mutex-guarded deque is not a bottleneck.
//  - The pool makes no fairness or affinity promises; determinism of results
//    is the *callers'* job (see core::MonitoringSystem's sequenced cost
//    charging), not the scheduler's.
class ThreadPool {
 public:
  // Spawns `num_threads` workers. At least one worker is always created so a
  // pool can absorb blocking tasks even when callers ask for zero.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Installs (or clears) the metrics hooks. Guarded by the queue mutex so it
  // may be called while workers are parked; call before submitting work —
  // tasks already in flight may be counted under the old hooks.
  void SetMetrics(const PoolMetricsHooks& hooks) SHEDMON_EXCLUDES(mutex_);

  // Enqueues `fn` and returns a future for its result. The future's
  // get()/wait() rethrows any exception the task raised.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  // Runs body(i) for every i in [begin, end) across the pool and blocks until
  // all iterations finished. Iterations are batched into chunks of `grain`
  // consecutive indices (grain 0 picks ceil(n / num_threads), one chunk per
  // worker); the calling thread executes the first chunk itself. The first
  // exception thrown by any iteration is rethrown on the calling thread after
  // all chunks finish.
  //
  // Must be called from OUTSIDE this pool's workers: after its own chunk the
  // caller blocks on futures without helping to drain the queue, so a worker
  // that calls ParallelFor on its own pool can deadlock (every shedmon use
  // drives a pool from the owning coordinator thread; nested fan-out — e.g.
  // a ParallelTraceRunner cell whose RunSpec enables num_threads — creates
  // its own inner pool instead).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& body);

 private:
  void Enqueue(std::function<void()> fn) SHEDMON_EXCLUDES(mutex_);
  void WorkerLoop() SHEDMON_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_ SHEDMON_GUARDED_BY(mutex_);
  bool stop_ SHEDMON_GUARDED_BY(mutex_) = false;
  PoolMetricsHooks hooks_ SHEDMON_GUARDED_BY(mutex_);
};

}  // namespace shedmon::exec
