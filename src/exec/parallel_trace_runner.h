#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/core/runner.h"
#include "src/exec/thread_pool.h"

namespace shedmon::exec {

// Fans whole independent system runs — the K-sweeps and system-comparison
// grids the bench_fig* drivers execute back-to-back — across a ThreadPool.
// Each RunSpec gets its own MonitoringSystem, cost oracle and Batcher over
// the shared (read-only) trace, so runs never share mutable state and every
// RunResult is bit-identical to running the same spec alone.
//
// Header-only by design: exec's compiled library stays below core in the
// dependency DAG (core uses ThreadPool), while this fan-out helper sits above
// it and is pulled in wherever core::RunSystemOnTrace already is.
class ParallelTraceRunner {
 public:
  // Does not take ownership; pass nullptr to run the specs serially in order.
  explicit ParallelTraceRunner(ThreadPool* pool) : pool_(pool) {}

  // Runs every spec over `trace`; result i corresponds to specs[i].
  std::vector<core::RunResult> RunAll(const std::vector<core::RunSpec>& specs,
                                      const trace::Trace& trace) const {
    std::vector<core::RunResult> results(specs.size());
    const auto run_one = [&](size_t i) { results[i] = core::RunSystemOnTrace(specs[i], trace); };
    if (pool_ != nullptr && specs.size() > 1) {
      pool_->ParallelFor(0, specs.size(), 1, run_one);
    } else {
      for (size_t i = 0; i < specs.size(); ++i) {
        run_one(i);
      }
    }
    return results;
  }

  // Generic grid variant for drivers whose cells need extra context beyond a
  // RunSpec (e.g. a per-cell overload factor): runs make_spec(i) for each
  // cell index. make_spec must be safe to call concurrently.
  std::vector<core::RunResult> RunGrid(
      size_t cells, const std::function<core::RunSpec(size_t)>& make_spec,
      const trace::Trace& trace) const {
    std::vector<core::RunResult> results(cells);
    const auto run_one = [&](size_t i) {
      results[i] = core::RunSystemOnTrace(make_spec(i), trace);
    };
    if (pool_ != nullptr && cells > 1) {
      pool_->ParallelFor(0, cells, 1, run_one);
    } else {
      for (size_t i = 0; i < cells; ++i) {
        run_one(i);
      }
    }
    return results;
  }

 private:
  ThreadPool* pool_;
};

}  // namespace shedmon::exec
