#include "src/exec/query_executor.h"

#include <algorithm>

#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rt/fault.h"
#include "src/util/cycle_clock.h"

namespace shedmon::exec {

size_t QueryExecutor::PlanShards(size_t units, size_t max_shards, size_t min_units) const {
  if (pool_ == nullptr || max_shards <= 1) {
    return 1;
  }
  size_t shards = std::min(max_shards, pool_->num_threads() + 1);
  if (min_units > 0) {
    shards = std::min(shards, units / min_units);
  }
  return std::max<size_t>(1, shards);
}

std::vector<ShardRange> QueryExecutor::SplitUnits(size_t units, size_t shards) {
  // Re-check the grain against the actual unit count: a 1-unit batch split
  // "eight ways" must yield one 1-unit range, not seven empty ones.
  shards = std::max<size_t>(1, std::min(shards, std::max<size_t>(units, 1)));
  std::vector<ShardRange> ranges;
  ranges.reserve(shards);
  const size_t base = units / shards;
  const size_t rem = units % shards;
  size_t lo = 0;
  for (size_t s = 0; s < shards; ++s) {
    const size_t hi = lo + base + (s < rem ? 1 : 0);
    ranges.push_back({lo, hi});
    lo = hi;
  }
  return ranges;
}

void QueryExecutor::Run(size_t n, const std::function<void(size_t)>& raw_task,
                        const std::function<void(size_t)>& merge) const {
  std::function<void(size_t)> task = raw_task;
  if (task && injector_ != nullptr) {
    // The stall hits whichever thread runs the task — worker or the
    // participating caller — exactly like a genuinely slow query would.
    task = [this, raw_task](size_t i) {
      injector_->OnWorkerTask(bin_index_);
      raw_task(i);
    };
  }
  if (task && tracer_ != nullptr) {
    // Outermost wrapper so the span covers any injected stall too — the
    // trace should show the wall time a task actually took.
    const std::function<void(size_t)> inner = task;
    obs::Tracer* tracer = tracer_;
    const obs::Stage stage = trace_stage_;
    const uint32_t bin = static_cast<uint32_t>(bin_index_);
    task = [tracer, stage, bin, inner](size_t i) {
      obs::Span span(tracer, stage, bin, static_cast<int64_t>(i));
      inner(i);
    };
  }
  if (task) {
    if (pool_ != nullptr && n > 1) {
      // Grain 1: per-query costs are heterogeneous (Fig. 2.2 spans ~20x), so
      // fine-grained dispatch load-balances better than equal chunks.
      if (wave_seconds_ != nullptr) {
        const uint64_t start_us = util::MonotonicNowUs();
        pool_->ParallelFor(0, n, 1, task);
        wave_seconds_->Observe(static_cast<double>(util::MonotonicNowUs() - start_us) * 1e-6);
      } else {
        pool_->ParallelFor(0, n, 1, task);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        task(i);
      }
    }
  }
  if (merge) {
    obs::Span span(tracer_, obs::Stage::kMerge, static_cast<uint32_t>(bin_index_));
    for (size_t i = 0; i < n; ++i) {
      merge(i);
    }
  }
}

}  // namespace shedmon::exec
