#include "src/exec/query_executor.h"

#include "src/exec/thread_pool.h"

namespace shedmon::exec {

void QueryExecutor::Run(size_t n, const std::function<void(size_t)>& task,
                        const std::function<void(size_t)>& merge) const {
  if (task) {
    if (pool_ != nullptr && n > 1) {
      // Grain 1: per-query costs are heterogeneous (Fig. 2.2 spans ~20x), so
      // fine-grained dispatch load-balances better than equal chunks.
      pool_->ParallelFor(0, n, 1, task);
    } else {
      for (size_t i = 0; i < n; ++i) {
        task(i);
      }
    }
  }
  if (merge) {
    for (size_t i = 0; i < n; ++i) {
      merge(i);
    }
  }
}

}  // namespace shedmon::exec
