#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace shedmon::rt {

// What to do when an ingest buffer is full. Shared by the threaded
// BoundedQueue below and by the synchronous bounded-ingest path inside
// api::Pipeline (which bounds its open-bin record buffer with the same
// three policies).
enum class OverflowPolicy : uint8_t {
  // Producer waits for space (backpressure). At the synchronous Pipeline
  // facade this is equivalent to unbounded buffering: Push IS the
  // processing thread, so it can never be ahead of the consumer.
  kBlock = 0,
  // The incoming item is discarded; the buffer keeps what it has.
  kDropNewest = 1,
  // The oldest buffered item is evicted to make room for the incoming one.
  kDropOldest = 2,
};

// Fixed-capacity MPMC queue with overflow policies and drop accounting —
// the primitive for a live capture front-end where a capture thread
// produces and the pipeline coordinator consumes. Condvar-based: the
// capture loop this feeds is bin-paced (100ms), not per-packet-latency
// bound, so lock-free machinery would buy nothing here.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Returns false iff the item was dropped (kDropNewest on a full queue) or
  // the queue is closed. kBlock waits; kDropOldest always succeeds by
  // evicting the head.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      return false;
    }
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kBlock:
          not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
          if (closed_) {
            return false;
          }
          break;
        case OverflowPolicy::kDropNewest:
          ++dropped_newest_;
          return false;
        case OverflowPolicy::kDropOldest:
          items_.pop_front();
          ++dropped_oldest_;
          break;
      }
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained;
  // nullopt means closed-and-empty (consumer should exit).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Non-blocking variant for poll loops.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  // Wakes blocked producers and consumers; Push fails and Pop drains then
  // returns nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }
  uint64_t dropped_newest() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_newest_;
  }
  uint64_t dropped_oldest() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_oldest_;
  }

 private:
  const size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  uint64_t dropped_newest_ = 0;
  uint64_t dropped_oldest_ = 0;
  bool closed_ = false;
};

}  // namespace shedmon::rt
