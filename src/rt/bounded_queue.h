#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace shedmon::rt {

// What to do when an ingest buffer is full. Shared by the threaded
// BoundedQueue below and by the synchronous bounded-ingest path inside
// api::Pipeline (which bounds its open-bin record buffer with the same
// three policies).
enum class OverflowPolicy : uint8_t {
  // Producer waits for space (backpressure). At the synchronous Pipeline
  // facade this is equivalent to unbounded buffering: Push IS the
  // processing thread, so it can never be ahead of the consumer.
  kBlock = 0,
  // The incoming item is discarded; the buffer keeps what it has.
  kDropNewest = 1,
  // The oldest buffered item is evicted to make room for the incoming one.
  kDropOldest = 2,
};

// Fixed-capacity MPMC queue with overflow policies and drop accounting —
// the primitive for a live capture front-end where a capture thread
// produces and the pipeline coordinator consumes. Condvar-based: the
// capture loop this feeds is bin-paced (100ms), not per-packet-latency
// bound, so lock-free machinery would buy nothing here.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Returns false iff the item was dropped (kDropNewest on a full queue) or
  // the queue is closed. kBlock waits; kDropOldest always succeeds by
  // evicting the head. When `evicted` is non-null, a kDropOldest eviction
  // hands the displaced item back through it — essential when items are
  // handles to pooled resources (capture slots) that must be recycled, not
  // leaked, on overflow.
  bool Push(T item, std::optional<T>* evicted = nullptr) SHEDMON_EXCLUDES(mutex_) {
    if (evicted != nullptr) {
      evicted->reset();
    }
    {
      util::MutexLock lock(mutex_);
      if (closed_) {
        return false;
      }
      if (items_.size() >= capacity_) {
        switch (policy_) {
          case OverflowPolicy::kBlock:
            while (items_.size() >= capacity_ && !closed_) {
              not_full_.Wait(lock);
            }
            if (closed_) {
              return false;
            }
            break;
          case OverflowPolicy::kDropNewest:
            ++dropped_newest_;
            return false;
          case OverflowPolicy::kDropOldest:
            if (evicted != nullptr) {
              *evicted = std::move(items_.front());
            }
            items_.pop_front();
            ++dropped_oldest_;
            break;
        }
      }
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained;
  // nullopt means closed-and-empty (consumer should exit).
  std::optional<T> Pop() SHEDMON_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      util::MutexLock lock(mutex_);
      while (items_.empty() && !closed_) {
        not_empty_.Wait(lock);
      }
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  // Bounded-wait variant for consumer loops that interleave queue drains
  // with periodic work (a capture loop advancing the pipeline clock): waits
  // at most ~`timeout_us` for an item, then returns nullopt. A single timed
  // wait, not a deadline loop — spurious wakeups surface as an early empty
  // return, which poll-style callers absorb by design.
  std::optional<T> PopFor(uint64_t timeout_us) SHEDMON_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      util::MutexLock lock(mutex_);
      if (items_.empty() && !closed_) {
        not_empty_.WaitFor(lock, timeout_us);
      }
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  // Non-blocking variant for poll loops.
  std::optional<T> TryPop() SHEDMON_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      util::MutexLock lock(mutex_);
      if (items_.empty()) {
        return std::nullopt;
      }
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  // Wakes blocked producers and consumers; Push fails and Pop drains then
  // returns nullopt. Idempotent.
  void Close() SHEDMON_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  size_t Size() const SHEDMON_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return items_.size();
  }
  bool closed() const SHEDMON_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return closed_;
  }
  size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }
  uint64_t dropped_newest() const SHEDMON_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return dropped_newest_;
  }
  uint64_t dropped_oldest() const SHEDMON_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return dropped_oldest_;
  }

 private:
  const size_t capacity_;
  const OverflowPolicy policy_;
  mutable util::Mutex mutex_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<T> items_ SHEDMON_GUARDED_BY(mutex_);
  uint64_t dropped_newest_ SHEDMON_GUARDED_BY(mutex_) = 0;
  uint64_t dropped_oldest_ SHEDMON_GUARDED_BY(mutex_) = 0;
  bool closed_ SHEDMON_GUARDED_BY(mutex_) = false;
};

}  // namespace shedmon::rt
