#pragma once

#include <string>
#include <string_view>

namespace shedmon::rt {

// Crash-safe whole-file write: the payload goes to a temp file next to
// `path` (same filesystem, so the rename is atomic), is fsync'd to media,
// and is then renamed over `path`. A crash at any point leaves either the
// old file or the new file — never a torn mix — plus at worst a stray
// `.tmp.<pid>` that the next successful write of the same path replaces.
// Throws std::runtime_error (with errno text) on failure, after removing
// the temp file.
void WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace shedmon::rt
