#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace shedmon::rt {

// Injectable wall-clock time source for everything real-time in src/rt: the
// deadline governor stopwatches bins against it, retry backoff sleeps on it,
// and fault injection advances it. Tests (and the deterministic robustness
// suites) swap in a ManualClock so "this bin took 400 ms" is a statement the
// test makes, not something it hopes the scheduler reproduces.
class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic microseconds. Only differences are meaningful; the epoch is
  // implementation-defined.
  virtual uint64_t NowUs() const = 0;

  // Blocks the calling thread for (at least) `us` on real clocks; manual
  // clocks advance instead, so injected stalls cost no test wall time.
  virtual void SleepUs(uint64_t us) = 0;
};

// std::chrono::steady_clock: the production time source.
class SystemClock final : public Clock {
 public:
  uint64_t NowUs() const override;
  void SleepUs(uint64_t us) override;
};

// Test/fault-injection clock: time moves only when told to. Thread-safe —
// injected worker-task stalls advance it from pool threads while the
// coordinator reads it.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_us = 0) : now_us_(start_us) {}

  uint64_t NowUs() const override { return now_us_.load(std::memory_order_relaxed); }
  void SleepUs(uint64_t us) override { Advance(us); }
  void Advance(uint64_t us) { now_us_.fetch_add(us, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_us_;
};

// The default production clock, shared so every rt component attached to one
// pipeline observes the same timeline.
std::shared_ptr<Clock> DefaultClock();

}  // namespace shedmon::rt
