#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/rt/clock.h"

namespace shedmon::rt {

// A seeded, fully deterministic schedule of faults to inject into one run.
// Parsed from a compact spec string (CLI `--fault-plan`, tests) of
// comma/semicolon-separated key=value entries:
//
//   seed=42            RNG seed for backoff jitter etc. (default 1)
//   stall_bin=N:US     stall the coordinator for US microseconds while
//                      processing bin N (models a slow query / GC pause)
//   stall_every=K:US   stall every Kth bin by US microseconds
//   clock_jump=N:US    jump the clock forward US microseconds at bin N
//                      (models NTP step / VM freeze)
//   worker_stall=N:US  stall each worker task of bin N by US microseconds
//   sink_fail_n=N      the first N sink write attempts fail with EIO
//   sink_fail_every=K  every Kth sink write attempt fails with EIO
//   short_write_every=K  every Kth sink write attempt lands only half its
//                        bytes, then fails
//   corrupt_snapshot=N   corrupt the first N snapshot/checkpoint files as
//                        they are written (single bit flip mid-payload)
//
// Entries whose value is 0 are inert. Unknown keys throw.
struct FaultPlan {
  uint64_t seed = 1;
  std::map<uint64_t, uint64_t> stall_bins;   // bin -> stall us
  uint64_t stall_every = 0;                  // every Kth bin...
  uint64_t stall_every_us = 0;               // ...stalled this long
  std::map<uint64_t, uint64_t> clock_jumps;  // bin -> jump us
  std::map<uint64_t, uint64_t> worker_stalls;
  uint64_t sink_fail_n = 0;
  uint64_t sink_fail_every = 0;
  uint64_t short_write_every = 0;
  uint64_t corrupt_snapshots = 0;

  // Throws std::invalid_argument on malformed specs. Empty spec = no faults.
  static FaultPlan Parse(std::string_view spec);
};

enum class SinkFault : uint8_t { kNone = 0, kEio = 1, kShortWrite = 2 };

// Applies a FaultPlan. One injector is shared by every component of a
// pipeline (coordinator bin loop, exec workers, sinks, snapshot writer);
// each asks at its own hook point and the injector both decides AND applies
// time-related faults against the shared Clock, so core/exec stay oblivious
// to how faults are realized. Decisions are schedule-driven (bin index,
// attempt counter) — never wall-clock driven — so a plan replays
// identically at any thread count. Counters are atomics because worker
// hooks run on pool threads.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::shared_ptr<Clock> clock);

  // Coordinator hook, called once per bin before processing: applies any
  // scheduled clock jump and coordinator stall for this bin.
  void OnBinStart(uint64_t bin_index);

  // Worker hook, called per sharded task: applies the bin's worker stall.
  void OnWorkerTask(uint64_t bin_index);

  // Sink hook, called per write attempt (including retries): returns the
  // fault to simulate for this attempt.
  SinkFault NextSinkWriteFault();

  // Snapshot hook: true if the file being written now should be corrupted.
  // Consumes one corruption credit.
  bool TakeSnapshotCorruption();

  const FaultPlan& plan() const { return plan_; }
  uint64_t bin_stalls_applied() const { return bin_stalls_applied_.load(); }
  uint64_t clock_jumps_applied() const { return clock_jumps_applied_.load(); }
  uint64_t worker_stalls_applied() const { return worker_stalls_applied_.load(); }
  uint64_t sink_faults_issued() const { return sink_faults_issued_.load(); }
  uint64_t snapshots_corrupted() const { return snapshots_corrupted_.load(); }

 private:
  FaultPlan plan_;
  std::shared_ptr<Clock> clock_;
  std::atomic<uint64_t> sink_write_attempts_{0};
  std::atomic<uint64_t> bin_stalls_applied_{0};
  std::atomic<uint64_t> clock_jumps_applied_{0};
  std::atomic<uint64_t> worker_stalls_applied_{0};
  std::atomic<uint64_t> sink_faults_issued_{0};
  std::atomic<uint64_t> snapshots_corrupted_{0};
  std::atomic<uint64_t> snapshot_credits_;
};

}  // namespace shedmon::rt
