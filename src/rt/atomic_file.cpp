#include "src/rt/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace shedmon::rt {
namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    Fail("atomic write: cannot create", tmp);
  }
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      ::unlink(tmp.c_str());
      Fail("atomic write: write failed for", tmp);
    }
    written += static_cast<size_t>(n);
  }
  // Without the fsync the rename can land on media before the data does,
  // which is exactly the torn-checkpoint case this function exists to
  // prevent.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    Fail("atomic write: fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    Fail("atomic write: close failed for", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    Fail("atomic write: rename failed onto", path);
  }
}

}  // namespace shedmon::rt
