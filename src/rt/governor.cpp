#include "src/rt/governor.h"

#include <algorithm>
#include <utility>

namespace shedmon::rt {

const char* DegradeActionName(DegradeAction action) {
  switch (action) {
    case DegradeAction::kNone:
      return "none";
    case DegradeAction::kBoostShedding:
      return "boost";
    case DegradeAction::kTruncate:
      return "truncate";
    case DegradeAction::kDropBin:
      return "drop";
  }
  return "none";
}

DeadlineGovernor::DeadlineGovernor(GovernorConfig config, std::shared_ptr<Clock> clock)
    : config_(config), clock_(std::move(clock)) {
  if (config_.budget_fraction <= 0.0) {
    config_.budget_fraction = 0.9;
  }
  if (config_.boost_factor <= 1.0) {
    config_.boost_factor = 2.0;
  }
  if (config_.decay_bins < 1) {
    config_.decay_bins = 1;
  }
}

void DeadlineGovernor::Attach(obs::MetricsRegistry* metrics, obs::JsonlLogger* logger) {
  metrics_ = metrics;
  logger_ = logger;
}

Directive DeadlineGovernor::Begin() {
  begin_us_ = clock_->NowUs();
  Directive d;
  switch (level_) {
    case 0:
      break;
    case 1:
      d.action = DegradeAction::kBoostShedding;
      d.rate_scale = rate_scale_;
      break;
    case 2:
      d.action = DegradeAction::kTruncate;
      d.rate_scale = rate_scale_;
      d.truncate_queries = 1;
      break;
    default:
      d.action = DegradeAction::kDropBin;
      d.rate_scale = rate_scale_;
      break;
  }
  return d;
}

void DeadlineGovernor::End(uint64_t bin_duration_us, uint64_t bin_index) {
  const uint64_t elapsed = clock_->NowUs() - begin_us_;
  const double budget = config_.budget_fraction * static_cast<double>(bin_duration_us);
  last_missed_ = static_cast<double>(elapsed) > budget;
  last_overrun_us_ = last_missed_ ? static_cast<double>(elapsed) - budget : 0.0;
  if (metrics_ != nullptr) {
    metrics_
        ->GetHistogram("shedmon_rt_bin_wall_us", {1e3, 1e4, 5e4, 1e5, 5e5, 1e6}, {},
                       "Wall-clock microseconds spent processing each bin")
        .Observe(static_cast<double>(elapsed));
  }
  if (last_missed_) {
    ++deadline_misses_;
    Escalate(bin_index, last_overrun_us_);
  } else if (level_ > 0 && ++clean_streak_ >= config_.decay_bins) {
    Decay(bin_index);
  }
}

void DeadlineGovernor::Escalate(uint64_t bin_index, double overrun_us) {
  clean_streak_ = 0;
  if (level_ < 3) {
    ++level_;
  }
  // Any escalation at or above the boost rung tightens the rate scale, so a
  // persistent overrun keeps shedding harder instead of plateauing.
  rate_scale_ = std::max(1e-3, rate_scale_ / config_.boost_factor);
  const char* rung = DegradeActionName(static_cast<uint8_t>(level_));
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("shedmon_rt_deadline_miss_total", {{"rung", rung}},
                     "Bins whose wall-clock processing exceeded the real-time budget, by the "
                     "ladder rung escalated to")
        .Increment();
    metrics_
        ->GetGauge("shedmon_rt_degradation_level", {},
                   "Current degradation ladder rung (0=none 1=boost 2=truncate 3=drop)")
        .Set(level_);
  }
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("rt_deadline_miss")
                       .Int("bin", bin_index)
                       .Num("overrun_us", overrun_us)
                       .Int("level", static_cast<uint64_t>(level_))
                       .Str("rung", rung)
                       .Num("rate_scale", rate_scale_));
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(obs::Stage::kDegrade, static_cast<uint32_t>(bin_index), level_);
  }
}

void DeadlineGovernor::Decay(uint64_t bin_index) {
  clean_streak_ = 0;
  --level_;
  rate_scale_ = level_ > 0 ? std::min(1.0, rate_scale_ * config_.boost_factor) : 1.0;
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge("shedmon_rt_degradation_level", {},
                   "Current degradation ladder rung (0=none 1=boost 2=truncate 3=drop)")
        .Set(level_);
  }
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("rt_degradation_decay")
                       .Int("bin", bin_index)
                       .Int("level", static_cast<uint64_t>(level_))
                       .Str("rung", DegradeActionName(static_cast<uint8_t>(level_)))
                       .Num("rate_scale", rate_scale_));
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(obs::Stage::kDegrade, static_cast<uint32_t>(bin_index), level_);
  }
}

}  // namespace shedmon::rt
