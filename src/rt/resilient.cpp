#include "src/rt/resilient.h"

#include <algorithm>
#include <utility>

#include "src/util/rng.h"

namespace shedmon::rt {

ResilientWriter::ResilientWriter(std::ostream& out, RetryPolicy policy,
                                 std::shared_ptr<Clock> clock)
    : out_(out), policy_(policy), clock_(std::move(clock)) {
  if (policy_.max_retries < 0) {
    policy_.max_retries = 0;
  }
}

void ResilientWriter::Attach(obs::MetricsRegistry* metrics, obs::JsonlLogger* logger,
                             std::string sink_name) {
  metrics_ = metrics;
  logger_ = logger;
  sink_name_ = std::move(sink_name);
}

bool ResilientWriter::Write(std::string_view data) {
  if (quarantined_) {
    ++dropped_writes_;
    return false;
  }
  size_t offset = 0;
  if (Attempt(data, offset)) {
    return true;
  }
  for (int retry = 1; retry <= policy_.max_retries; ++retry) {
    clock_->SleepUs(BackoffUs(retry));
    ++retries_;
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter("shedmon_rt_sink_retries_total", {{"sink", sink_name_}},
                       "Sink write attempts retried after an I/O failure")
          .Increment();
    }
    if (Attempt(data, offset)) {
      return true;
    }
  }
  EnterQuarantine();
  ++dropped_writes_;
  return false;
}

bool ResilientWriter::Attempt(std::string_view data, size_t& offset) {
  ++attempt_counter_;
  const SinkFault fault =
      injector_ != nullptr ? injector_->NextSinkWriteFault() : SinkFault::kNone;
  if (fault == SinkFault::kEio) {
    return false;
  }
  std::string_view rest = data.substr(offset);
  if (fault == SinkFault::kShortWrite && rest.size() > 1) {
    // Half the remaining bytes land, then the device "fails"; the retry
    // resumes from the new offset so no byte is ever duplicated.
    rest = rest.substr(0, rest.size() / 2);
    out_.write(rest.data(), static_cast<std::streamsize>(rest.size()));
    if (out_.good()) {
      offset += rest.size();
    } else {
      out_.clear();
    }
    return false;
  }
  out_.write(rest.data(), static_cast<std::streamsize>(rest.size()));
  if (!out_.good()) {
    out_.clear();
    return false;
  }
  offset = data.size();
  return true;
}

uint64_t ResilientWriter::BackoffUs(int attempt) {
  uint64_t backoff = policy_.initial_backoff_us;
  for (int i = 1; i < attempt && backoff < policy_.max_backoff_us; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, policy_.max_backoff_us);
  if (policy_.jitter_fraction > 0.0) {
    const uint64_t h = util::HashU64(policy_.jitter_seed ^ attempt_counter_);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff += static_cast<uint64_t>(static_cast<double>(backoff) * policy_.jitter_fraction * unit);
  }
  return backoff;
}

void ResilientWriter::EnterQuarantine() {
  quarantined_ = true;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("shedmon_rt_sink_quarantined_total", {{"sink", sink_name_}},
                     "Sinks placed in degraded mode after exhausting write retries")
        .Increment();
  }
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("rt_sink_quarantined")
                       .Str("sink", sink_name_)
                       .Int("retries", retries_));
  }
}

void ResilientWriter::Flush() {
  if (!quarantined_) {
    out_.flush();
    if (!out_.good()) {
      out_.clear();
    }
  }
}

}  // namespace shedmon::rt
