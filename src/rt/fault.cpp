#include "src/rt/fault.h"

#include <stdexcept>
#include <utility>

namespace shedmon::rt {
namespace {

uint64_t ParseU64(std::string_view text, std::string_view what) {
  if (text.empty()) {
    throw std::invalid_argument("fault plan: empty value for " + std::string(what));
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("fault plan: non-numeric value for " + std::string(what) + ": " +
                                  std::string(text));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// Splits "N:US" pairs used by the per-bin schedules.
std::pair<uint64_t, uint64_t> ParsePair(std::string_view text, std::string_view what) {
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument("fault plan: " + std::string(what) + " wants BIN:US, got " +
                                std::string(text));
  }
  return {ParseU64(text.substr(0, colon), what), ParseU64(text.substr(colon + 1), what)};
}

}  // namespace

FaultPlan FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(",;", pos);
    if (end == std::string_view::npos) {
      end = spec.size();
    }
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault plan: entry without '=': " + std::string(entry));
    }
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);
    if (key == "seed") {
      plan.seed = ParseU64(value, key);
    } else if (key == "stall_bin") {
      const auto [bin, us] = ParsePair(value, key);
      plan.stall_bins[bin] = us;
    } else if (key == "stall_every") {
      const auto [every, us] = ParsePair(value, key);
      plan.stall_every = every;
      plan.stall_every_us = us;
    } else if (key == "clock_jump") {
      const auto [bin, us] = ParsePair(value, key);
      plan.clock_jumps[bin] = us;
    } else if (key == "worker_stall") {
      const auto [bin, us] = ParsePair(value, key);
      plan.worker_stalls[bin] = us;
    } else if (key == "sink_fail_n") {
      plan.sink_fail_n = ParseU64(value, key);
    } else if (key == "sink_fail_every") {
      plan.sink_fail_every = ParseU64(value, key);
    } else if (key == "short_write_every") {
      plan.short_write_every = ParseU64(value, key);
    } else if (key == "corrupt_snapshot") {
      plan.corrupt_snapshots = ParseU64(value, key);
    } else {
      throw std::invalid_argument("fault plan: unknown key: " + std::string(key));
    }
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, std::shared_ptr<Clock> clock)
    : plan_(std::move(plan)), clock_(std::move(clock)), snapshot_credits_(plan_.corrupt_snapshots) {}

void FaultInjector::OnBinStart(uint64_t bin_index) {
  if (auto it = plan_.clock_jumps.find(bin_index); it != plan_.clock_jumps.end()) {
    // A jump is pure clock movement (NTP step, VM freeze): observed time
    // advances without the coordinator doing work or yielding the CPU.
    clock_->SleepUs(it->second);
    clock_jumps_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t stall_us = 0;
  if (auto it = plan_.stall_bins.find(bin_index); it != plan_.stall_bins.end()) {
    stall_us += it->second;
  }
  if (plan_.stall_every > 0 && bin_index % plan_.stall_every == plan_.stall_every - 1) {
    stall_us += plan_.stall_every_us;
  }
  if (stall_us > 0) {
    clock_->SleepUs(stall_us);
    bin_stalls_applied_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::OnWorkerTask(uint64_t bin_index) {
  if (auto it = plan_.worker_stalls.find(bin_index); it != plan_.worker_stalls.end()) {
    clock_->SleepUs(it->second);
    worker_stalls_applied_.fetch_add(1, std::memory_order_relaxed);
  }
}

SinkFault FaultInjector::NextSinkWriteFault() {
  const uint64_t attempt = sink_write_attempts_.fetch_add(1, std::memory_order_relaxed);
  SinkFault fault = SinkFault::kNone;
  if (attempt < plan_.sink_fail_n) {
    fault = SinkFault::kEio;
  } else if (plan_.sink_fail_every > 0 && (attempt + 1) % plan_.sink_fail_every == 0) {
    fault = SinkFault::kEio;
  } else if (plan_.short_write_every > 0 && (attempt + 1) % plan_.short_write_every == 0) {
    fault = SinkFault::kShortWrite;
  }
  if (fault != SinkFault::kNone) {
    sink_faults_issued_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

bool FaultInjector::TakeSnapshotCorruption() {
  uint64_t credits = snapshot_credits_.load(std::memory_order_relaxed);
  while (credits > 0) {
    if (snapshot_credits_.compare_exchange_weak(credits, credits - 1,
                                                std::memory_order_relaxed)) {
      snapshots_corrupted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

}  // namespace shedmon::rt
