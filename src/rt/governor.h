#pragma once

#include <cstdint>
#include <memory>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rt/clock.h"

namespace shedmon::rt {

// Degradation ladder rungs, in escalation order. The numeric values are part
// of the BinLog/CSV/JSONL contract (BinLog::degradation carries them), so
// they are stable: 0 means "bin processed normally".
enum class DegradeAction : uint8_t {
  kNone = 0,
  // Multiply the next bin's shedding down (sampling rates scaled by
  // 1/boost_factor) so it finishes inside budget.
  kBoostShedding = 1,
  // Additionally disable non-mandatory queries for the next bin, lowest
  // priority (= highest registration index) first.
  kTruncate = 2,
  // Give up on the bin entirely: it is accounted like a capture-buffer
  // overflow (whole batch dropped, no query work).
  kDropBin = 3,
};

// Canonical rung name — "none" / "boost" / "truncate" / "drop" — shared by
// the JSONL events, the Prometheus label values and the CSV/JSONL sink
// columns so every surface spells the ladder the same way. Out-of-range
// values (a corrupt BinLog byte) map to "none".
const char* DegradeActionName(DegradeAction action);
inline const char* DegradeActionName(uint8_t level) {
  return DegradeActionName(level <= 3 ? static_cast<DegradeAction>(level) : DegradeAction::kNone);
}

// What the governor tells the system to do for the UPCOMING bin. Overruns on
// bin N can only shape bin N+1 — bin N's work is already done by the time
// the stopwatch is read — which also keeps no-overrun runs bit-identical to
// a governor-less pipeline.
struct Directive {
  DegradeAction action = DegradeAction::kNone;
  // Sampling-rate multiplier in (0, 1]; 1.0 when not boosting.
  double rate_scale = 1.0;
  // Number of lowest-priority queries to disable; 0 unless truncating.
  int truncate_queries = 0;
};

struct GovernorConfig {
  // Per-bin wall-clock budget as a fraction of the bin duration. A 100ms bin
  // with fraction 0.9 must finish in 90ms of wall time.
  double budget_fraction = 0.9;
  // Rate divisor applied per kBoostShedding escalation (rates scale by
  // 1/boost_factor, compounding while overruns persist).
  double boost_factor = 2.0;
  // Consecutive in-budget bins required before stepping one rung back down.
  int decay_bins = 2;
};

// Wall-clock deadline enforcement for the per-bin processing loop. Usage,
// from the pipeline coordinator around each bin:
//
//   Directive d = governor.Begin();      // apply d to this bin, start clock
//   ... process bin (or drop it, if d.action == kDropBin) ...
//   governor.End(bin_duration_us);       // stopwatch vs budget, escalate/decay
//
// The ladder escalates one rung per overrun (kBoostShedding additionally
// compounds its rate scale while already boosting) and decays one rung after
// `decay_bins` consecutive clean bins. Deterministic given a deterministic
// Clock: the whole robustness suite drives it with a ManualClock.
class DeadlineGovernor {
 public:
  DeadlineGovernor(GovernorConfig config, std::shared_ptr<Clock> clock);

  // Optional: record escalations as shedmon_rt_* metrics / JSONL events.
  // Pass nullptr to detach. Pointers must outlive the governor.
  void Attach(obs::MetricsRegistry* metrics, obs::JsonlLogger* logger);

  // Optional: mark ladder transitions as instant events (arg = new rung) in
  // a span trace. Borrowed pointer; nullptr detaches.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Directive for the bin about to be processed; starts its stopwatch.
  Directive Begin();

  // Stop the stopwatch for the bin started by the last Begin() and update
  // the ladder. `bin_duration_us` is the bin's span in trace time (the
  // budget base), `bin_index` labels log events.
  void End(uint64_t bin_duration_us, uint64_t bin_index);

  // Observability for the bin just ended.
  bool last_deadline_missed() const { return last_missed_; }
  double last_overrun_us() const { return last_overrun_us_; }
  int level() const { return level_; }
  uint64_t deadline_misses() const { return deadline_misses_; }

  const GovernorConfig& config() const { return config_; }

 private:
  void Escalate(uint64_t bin_index, double overrun_us);
  void Decay(uint64_t bin_index);

  GovernorConfig config_;
  std::shared_ptr<Clock> clock_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::JsonlLogger* logger_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  int level_ = 0;           // current rung: 0 = kNone .. 3 = kDropBin
  double rate_scale_ = 1.0;  // compounded boost, 1.0 at level 0
  int clean_streak_ = 0;
  uint64_t begin_us_ = 0;
  bool last_missed_ = false;
  double last_overrun_us_ = 0.0;
  uint64_t deadline_misses_ = 0;
};

}  // namespace shedmon::rt
