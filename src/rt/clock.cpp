#include "src/rt/clock.h"

#include <chrono>
#include <thread>

namespace shedmon::rt {

uint64_t SystemClock::NowUs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void SystemClock::SleepUs(uint64_t us) {
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

std::shared_ptr<Clock> DefaultClock() { return std::make_shared<SystemClock>(); }

}  // namespace shedmon::rt
