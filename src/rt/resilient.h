#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/rt/clock.h"
#include "src/rt/fault.h"

namespace shedmon::rt {

struct RetryPolicy {
  // Attempts per write beyond the first; exhausting them quarantines the
  // writer.
  int max_retries = 3;
  uint64_t initial_backoff_us = 1000;
  uint64_t max_backoff_us = 100000;
  // Uniform jitter added on top of the exponential backoff, as a fraction
  // of the backoff (decorrelates retry storms across sinks). Jitter draws
  // are hashed from (seed, attempt counter), not a stateful RNG, so
  // concurrent writers stay deterministic.
  double jitter_fraction = 0.25;
  uint64_t jitter_seed = 1;
};

// Write-through wrapper that makes a sink stream survive transient I/O
// failures: each Write retries with exponential backoff + jitter, resuming
// from the first unwritten byte after a short write. When one record
// exhausts its retries the writer enters QUARANTINE: the sink is declared
// degraded, subsequent writes are counted and discarded instead of failing
// the run, and the event is recorded in shedmon_rt_* metrics/JSONL. The
// monitoring pipeline keeps running — losing a results file is strictly
// better than losing the measurement.
class ResilientWriter {
 public:
  ResilientWriter(std::ostream& out, RetryPolicy policy, std::shared_ptr<Clock> clock);

  // Optional fault-injection hook; nullptr detaches. Injected faults are
  // consulted per attempt, before touching the real stream.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // Optional shedmon_rt_* metrics + JSONL events. `sink_name` labels them.
  void Attach(obs::MetricsRegistry* metrics, obs::JsonlLogger* logger, std::string sink_name);

  // True if all bytes landed; false if the record was discarded (already
  // quarantined, or this record triggered quarantine).
  bool Write(std::string_view data);

  void Flush();

  bool quarantined() const { return quarantined_; }
  uint64_t retries() const { return retries_; }
  uint64_t dropped_writes() const { return dropped_writes_; }

 private:
  // One physical attempt at data[offset:]; advances offset. Returns true
  // when everything through the end of data has landed.
  bool Attempt(std::string_view data, size_t& offset);
  void EnterQuarantine();
  uint64_t BackoffUs(int attempt);

  std::ostream& out_;
  RetryPolicy policy_;
  std::shared_ptr<Clock> clock_;
  FaultInjector* injector_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::JsonlLogger* logger_ = nullptr;
  std::string sink_name_;
  uint64_t attempt_counter_ = 0;
  uint64_t retries_ = 0;
  uint64_t dropped_writes_ = 0;
  bool quarantined_ = false;
};

}  // namespace shedmon::rt
