#include "src/query/queries.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <iterator>
#include <stdexcept>

#include "src/trace/batch.h"
#include "src/util/stats.h"

namespace shedmon::query {

namespace {
// A query must not divide by a vanishing sampling rate.
double SafeRate(double rate) { return rate > 1e-6 ? rate : 1e-6; }

// Serial OnBatch via the shard path: one shard over the whole unit range, so
// serial and sharded execution literally share their code (the partials are
// exact, which is what makes every shard count bit-identical; see
// query::ShardableQuery). Queries whose shard partials are heavier than a
// direct loop (keyed maps, per-source bitmaps, match-index vectors) instead
// implement a direct OnBatch twin with the *same arithmetic*; the
// query_shard_fuzz_test differential suite pins the twins together.
void RunAsSingleShard(ShardableQuery& q, const BatchInput& in) {
  std::unique_ptr<ShardState> shard = q.ForkShard();
  q.OnShardBatch(*shard, in, 0, q.ShardUnits(in));
  q.ApplyShards(in, std::move(*shard));
}

// Work-unit weights per query (arbitrary "model cycles"; relative magnitudes
// follow Fig. 2.2: byte-driven and per-flow-state queries at the top, plain
// counters at the bottom). The deterministic cost oracle charges these.
namespace work {
constexpr double kCounterPkt = 40.0;
constexpr double kApplicationPkt = 70.0;
constexpr double kWatermarkPkt = 45.0;
constexpr double kFlowsPkt = 90.0;
constexpr double kFlowsInsert = 700.0;
constexpr double kTopKPkt = 110.0;
constexpr double kTopKInsert = 350.0;
constexpr double kTracePkt = 25.0;
constexpr double kTraceByte = 1.6;
constexpr double kPatternPkt = 30.0;
constexpr double kPatternByte = 2.6;
constexpr double kP2pUpdate = 250.0;   // per-packet flow-state update
constexpr double kP2pScanByte = 1.0;   // payload inspection
constexpr double kP2pInsert = 900.0;   // new flow entry
constexpr double kP2pDecidedLookup = 25.0;  // custom method: counted only
constexpr double kP2pRejected = 5.0;        // custom method: hash test only
constexpr double kAutofocusPkt = 80.0;
constexpr double kAutofocusInsert = 260.0;
constexpr double kAutofocusClusterSrc = 30.0;  // interval-end aggregation
constexpr double kSuperSrcPkt = 85.0;
constexpr double kSuperSrcInsert = 420.0;
}  // namespace work
}  // namespace

// ---------------------------------------------------------------- counter --

namespace {
struct CounterShard : ShardState {
  double pkts = 0.0;   // exact integer-valued partials
  double bytes = 0.0;
};
}  // namespace

CounterQuery::CounterQuery(size_t interval_bins) : Query("counter", interval_bins) {}

void CounterQuery::OnBatch(const BatchInput& in) { RunAsSingleShard(*this, in); }

std::unique_ptr<ShardState> CounterQuery::ForkShard() const {
  return std::make_unique<CounterShard>();
}

void CounterQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                                size_t end) const {
  auto& s = static_cast<CounterShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    s.bytes += static_cast<double>(in.packets[i].rec->wire_len);
  }
}

void CounterQuery::MergeShard(ShardState& into, ShardState&& from) const {
  auto& a = static_cast<CounterShard&>(into);
  auto& b = static_cast<CounterShard&>(from);
  a.pkts += b.pkts;
  a.bytes += b.bytes;
}

void CounterQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<CounterShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  cur_.pkts += s.pkts * inv;
  cur_.bytes += s.bytes * inv;
  ChargeWork(work::kCounterPkt * s.pkts);
}

void CounterQuery::OnEndInterval(size_t /*interval_index*/) {
  snaps_.push_back(cur_);
  cur_ = Snapshot{};
}

double CounterQuery::IntervalErrorPackets(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const CounterQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  return std::min(1.0, util::RelativeError(snaps_[interval].pkts, ref->snaps_[interval].pkts));
}

double CounterQuery::IntervalErrorBytes(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const CounterQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  return std::min(1.0, util::RelativeError(snaps_[interval].bytes, ref->snaps_[interval].bytes));
}

double CounterQuery::IntervalError(const Query& reference, size_t interval) const {
  return 0.5 * (IntervalErrorPackets(reference, interval) +
                IntervalErrorBytes(reference, interval));
}

// ------------------------------------------------------------ application --

ApplicationQuery::ApplicationQuery(size_t interval_bins) : Query("application", interval_bins) {}

net::AppClass ApplicationQuery::ClassifyPorts(const net::FiveTuple& tuple) {
  auto classify_one = [](uint16_t port) -> net::AppClass {
    switch (port) {
      case 80:
      case 443:
      case 8080:
        return net::AppClass::kWeb;
      case 53:
        return net::AppClass::kDns;
      case 25:
      case 110:
      case 143:
      case 587:
        return net::AppClass::kMail;
      case 6881:
      case 4662:
      case 6346:
      case 1214:
        return net::AppClass::kP2p;
      case 554:
      case 1935:
      case 8554:
        return net::AppClass::kStreaming;
      case 22:
        return net::AppClass::kSsh;
      default:
        return net::AppClass::kOther;
    }
  };
  const net::AppClass by_dst = classify_one(tuple.dst_port);
  if (by_dst != net::AppClass::kOther) {
    return by_dst;
  }
  return classify_one(tuple.src_port);
}

namespace {
struct ApplicationShard : ShardState {
  double pkts = 0.0;
  std::array<double, net::kNumAppClasses> class_pkts{};
  std::array<double, net::kNumAppClasses> class_bytes{};
};
}  // namespace

void ApplicationQuery::OnBatch(const BatchInput& in) { RunAsSingleShard(*this, in); }

std::unique_ptr<ShardState> ApplicationQuery::ForkShard() const {
  return std::make_unique<ApplicationShard>();
}

void ApplicationQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                                    size_t end) const {
  auto& s = static_cast<ApplicationShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const net::Packet& pkt = in.packets[i];
    const auto app = static_cast<size_t>(ClassifyPorts(pkt.rec->tuple));
    s.class_pkts[app] += 1.0;
    s.class_bytes[app] += static_cast<double>(pkt.rec->wire_len);
  }
}

void ApplicationQuery::MergeShard(ShardState& into, ShardState&& from) const {
  auto& a = static_cast<ApplicationShard&>(into);
  auto& b = static_cast<ApplicationShard&>(from);
  a.pkts += b.pkts;
  for (int c = 0; c < net::kNumAppClasses; ++c) {
    const auto i = static_cast<size_t>(c);
    a.class_pkts[i] += b.class_pkts[i];
    a.class_bytes[i] += b.class_bytes[i];
  }
}

void ApplicationQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<ApplicationShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  for (int c = 0; c < net::kNumAppClasses; ++c) {
    const auto i = static_cast<size_t>(c);
    if (s.class_pkts[i] == 0.0) {
      continue;  // untouched classes stay bit-for-bit untouched
    }
    cur_.pkts[i] += s.class_pkts[i] * inv;
    cur_.bytes[i] += s.class_bytes[i] * inv;
  }
  ChargeWork(work::kApplicationPkt * s.pkts);
}

void ApplicationQuery::OnEndInterval(size_t /*interval_index*/) {
  snaps_.push_back(cur_);
  cur_ = Snapshot{};
}

namespace {
double WeightedAppError(const std::array<double, net::kNumAppClasses>& est,
                        const std::array<double, net::kNumAppClasses>& ref) {
  double total = 0.0;
  for (double v : ref) {
    total += v;
  }
  if (total <= 0.0) {
    return 0.0;
  }
  double err = 0.0;
  for (int a = 0; a < net::kNumAppClasses; ++a) {
    const auto i = static_cast<size_t>(a);
    if (ref[i] <= 0.0) {
      continue;
    }
    err += (ref[i] / total) * std::min(1.0, util::RelativeError(est[i], ref[i]));
  }
  return err;
}
}  // namespace

double ApplicationQuery::IntervalErrorPackets(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const ApplicationQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  return WeightedAppError(snaps_[interval].pkts, ref->snaps_[interval].pkts);
}

double ApplicationQuery::IntervalErrorBytes(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const ApplicationQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  return WeightedAppError(snaps_[interval].bytes, ref->snaps_[interval].bytes);
}

double ApplicationQuery::IntervalError(const Query& reference, size_t interval) const {
  return 0.5 * (IntervalErrorPackets(reference, interval) +
                IntervalErrorBytes(reference, interval));
}

// --------------------------------------------------------- high-watermark --

HighWatermarkQuery::HighWatermarkQuery(size_t interval_bins)
    : Query("high-watermark", interval_bins) {}

namespace {
struct WatermarkShard : ShardState {
  double pkts = 0.0;
  double bytes = 0.0;
};
}  // namespace

void HighWatermarkQuery::OnBatch(const BatchInput& in) { RunAsSingleShard(*this, in); }

std::unique_ptr<ShardState> HighWatermarkQuery::ForkShard() const {
  return std::make_unique<WatermarkShard>();
}

void HighWatermarkQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                                      size_t end) const {
  auto& s = static_cast<WatermarkShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    s.bytes += static_cast<double>(in.packets[i].rec->wire_len);
  }
}

void HighWatermarkQuery::MergeShard(ShardState& into, ShardState&& from) const {
  auto& a = static_cast<WatermarkShard&>(into);
  auto& b = static_cast<WatermarkShard&>(from);
  a.pkts += b.pkts;
  a.bytes += b.bytes;
}

void HighWatermarkQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<WatermarkShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  cur_watermark_ = std::max(cur_watermark_, s.bytes * inv);
  ChargeWork(work::kWatermarkPkt * s.pkts);
}

void HighWatermarkQuery::OnCustomBatch(const BatchInput& in, double fraction) {
  // Deterministic 1-in-k stride with rescaling: examines ~fraction of the
  // packets; the stride keeps the estimator variance low for a peak metric.
  const size_t stride =
      std::max<size_t>(1, static_cast<size_t>(std::llround(1.0 / std::max(fraction, 1e-3))));
  const double inv = static_cast<double>(stride) / SafeRate(in.sampling_rate);
  double bin_bytes = 0.0;
  size_t examined = 0;
  for (size_t i = 0; i < in.packets.size(); i += stride) {
    bin_bytes += static_cast<double>(in.packets[i].rec->wire_len);
    ++examined;
  }
  cur_watermark_ = std::max(cur_watermark_, bin_bytes * inv);
  AdjustProcessedCount(-(static_cast<double>(in.packets.size()) -
                         static_cast<double>(examined)));
  ChargeWork(work::kWatermarkPkt * static_cast<double>(examined));
}

void HighWatermarkQuery::OnEndInterval(size_t /*interval_index*/) {
  snaps_.push_back(cur_watermark_);
  cur_watermark_ = 0.0;
}

double HighWatermarkQuery::IntervalError(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const HighWatermarkQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  // The scaled maximum is a biased-up estimator, so the relative error is
  // unbounded above; clamp to the [0, 1] accuracy scale of Fig. 5.3.
  return std::min(1.0, util::RelativeError(snaps_[interval], ref->snaps_[interval]));
}

// ------------------------------------------------------------------ flows --

FlowsQuery::FlowsQuery(size_t interval_bins) : Query("flows", interval_bins) {}

namespace {
struct FlowsShard : ShardState {
  double pkts = 0.0;
  // Tuples of this range that are new to the interval, in first-touch order;
  // `seen` only dedupes within the shard.
  std::vector<net::FiveTuple> order;
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> seen;
};
}  // namespace

void FlowsQuery::OnBatch(const BatchInput& in) {
  // Direct serial twin of the shard path: flows_.insert dedupes in one pass,
  // and the estimate/work arithmetic below is the same single-rounding
  // expression ApplyShards evaluates, so serial == sharded bit for bit
  // (differentially enforced by query_shard_fuzz_test).
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  double inserts = 0.0;
  for (const net::Packet& pkt : in.packets) {
    if (flows_.insert(pkt.rec->tuple).second) {
      inserts += 1.0;
    }
  }
  estimate_ += inserts * inv;
  ChargeWork(work::kFlowsPkt * static_cast<double>(in.packets.size()) +
             work::kFlowsInsert * inserts);
}

std::unique_ptr<ShardState> FlowsQuery::ForkShard() const {
  return std::make_unique<FlowsShard>();
}

void FlowsQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                              size_t end) const {
  auto& s = static_cast<FlowsShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const net::FiveTuple& tuple = in.packets[i].rec->tuple;
    // flows_ is pre-batch interval state, stable while shards run.
    if (flows_.count(tuple) == 0 && s.seen.insert(tuple).second) {
      s.order.push_back(tuple);
    }
  }
}

void FlowsQuery::MergeShard(ShardState& into, ShardState&& from) const {
  auto& a = static_cast<FlowsShard&>(into);
  auto& b = static_cast<FlowsShard&>(from);
  a.pkts += b.pkts;
  for (const net::FiveTuple& tuple : b.order) {
    if (a.seen.insert(tuple).second) {
      a.order.push_back(tuple);
    }
  }
}

void FlowsQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<FlowsShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  double inserts = 0.0;
  for (const net::FiveTuple& tuple : s.order) {
    if (flows_.insert(tuple).second) {
      inserts += 1.0;
    }
  }
  estimate_ += inserts * inv;
  ChargeWork(work::kFlowsPkt * s.pkts + work::kFlowsInsert * inserts);
}

void FlowsQuery::OnEndInterval(size_t /*interval_index*/) {
  snaps_.push_back(estimate_);
  flows_.clear();
  estimate_ = 0.0;
}

double FlowsQuery::IntervalError(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const FlowsQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  return std::min(1.0, util::RelativeError(snaps_[interval], ref->snaps_[interval]));
}

// ------------------------------------------------------------------ top-k --

TopKQuery::TopKQuery(size_t k, size_t interval_bins)
    : Query("top-k", interval_bins), k_(k), admit_rng_(0xabba) {}

namespace {
// Shared partial for the per-key byte aggregators (top-k, autofocus): exact
// integer byte sums per key plus the keys in first-touch order, so the merged
// order is the batch's first-occurrence order — the order the serial loop
// inserts keys in, which keeps downstream sorted-snapshot tie-breaking
// bit-identical across shard counts.
struct KeyedBytesShard : ShardState {
  double pkts = 0.0;
  std::unordered_map<uint32_t, double> bytes;
  std::vector<uint32_t> order;

  void Accumulate(uint32_t key, double wire_len) {
    auto [it, inserted] = bytes.try_emplace(key, 0.0);
    it->second += wire_len;
    if (inserted) {
      order.push_back(key);
    }
  }

  void MergeFrom(KeyedBytesShard&& from) {
    pkts += from.pkts;
    for (const uint32_t key : from.order) {
      auto [it, inserted] = bytes.try_emplace(key, 0.0);
      it->second += from.bytes.at(key);
      if (inserted) {
        order.push_back(key);
      }
    }
  }
};
}  // namespace

void TopKQuery::OnBatch(const BatchInput& in) {
  // Direct serial twin of the shard path, with the same exact-integer
  // per-key accumulation and single rounding per key (see ApplyShards), in
  // reused scratch so the hot path allocates nothing after warm-up.
  batch_bytes_.clear();
  batch_order_.clear();
  for (const net::Packet& pkt : in.packets) {
    auto [it, inserted] = batch_bytes_.try_emplace(pkt.rec->tuple.dst_ip, 0.0);
    it->second += static_cast<double>(pkt.rec->wire_len);
    if (inserted) {
      batch_order_.push_back(pkt.rec->tuple.dst_ip);
    }
  }
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  double inserts = 0.0;
  for (const uint32_t key : batch_order_) {
    auto [it, inserted] = bytes_.try_emplace(key, 0.0);
    if (inserted) {
      inserts += 1.0;
    }
    it->second += batch_bytes_.at(key) * inv;
  }
  ChargeWork(work::kTopKPkt * static_cast<double>(in.packets.size()) +
             work::kTopKInsert * inserts);
}

std::unique_ptr<ShardState> TopKQuery::ForkShard() const {
  return std::make_unique<KeyedBytesShard>();
}

void TopKQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                             size_t end) const {
  auto& s = static_cast<KeyedBytesShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const net::Packet& pkt = in.packets[i];
    s.Accumulate(pkt.rec->tuple.dst_ip, static_cast<double>(pkt.rec->wire_len));
  }
}

void TopKQuery::MergeShard(ShardState& into, ShardState&& from) const {
  static_cast<KeyedBytesShard&>(into).MergeFrom(std::move(static_cast<KeyedBytesShard&>(from)));
}

void TopKQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<KeyedBytesShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  double inserts = 0.0;
  for (const uint32_t key : s.order) {
    auto [it, inserted] = bytes_.try_emplace(key, 0.0);
    if (inserted) {
      inserts += 1.0;
    }
    it->second += s.bytes.at(key) * inv;
  }
  ChargeWork(work::kTopKPkt * s.pkts + work::kTopKInsert * inserts);
}

void TopKQuery::OnCustomBatch(const BatchInput& in, double fraction) {
  // Sample & Hold (the thesis cites S&H as a shedding-friendly alternative):
  // packets of keys already tracked count in full; new keys are admitted with
  // probability `fraction` and seeded with the 1/fraction correction.
  const double admit = std::clamp(fraction, 1e-3, 1.0);
  double inserts = 0.0;
  for (const net::Packet& pkt : in.packets) {
    const uint32_t key = pkt.rec->tuple.dst_ip;
    const double len = static_cast<double>(pkt.rec->wire_len);
    auto it = bytes_.find(key);
    if (it != bytes_.end()) {
      it->second += len;
      continue;
    }
    if (admit_rng_.NextDouble() < admit) {
      bytes_[key] = len / admit;
      inserts += 1.0;
    }
  }
  ChargeWork(work::kTopKPkt * static_cast<double>(in.packets.size()) +
             work::kTopKInsert * inserts);
}

void TopKQuery::OnEndInterval(size_t /*interval_index*/) {
  Snapshot snap;
  snap.all = bytes_;
  std::vector<std::pair<uint32_t, double>> sorted(bytes_.begin(), bytes_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted.size() > k_) {
    sorted.resize(k_);
  }
  snap.topk = std::move(sorted);
  snaps_.push_back(std::move(snap));
  bytes_.clear();
}

double TopKQuery::IntervalMisrankedPairs(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const TopKQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return static_cast<double>(k_ * k_);
  }
  const Snapshot& est = snaps_[interval];
  const Snapshot& truth = ref->snaps_[interval];

  std::unordered_set<uint32_t> in_list;
  for (const auto& [ip, by] : est.topk) {
    in_list.insert(ip);
  }
  // Count pairs (x in returned top-k, y outside it) where the true volume of
  // y exceeds the true volume of x — the metric of [12] (§2.2.1).
  size_t misranked = 0;
  for (const auto& [x_ip, x_est] : est.topk) {
    const auto x_true_it = truth.all.find(x_ip);
    const double x_true = x_true_it == truth.all.end() ? 0.0 : x_true_it->second;
    // lint: order-insensitive counting qualifying pairs commutes
    for (const auto& [y_ip, y_true] : truth.all) {
      if (in_list.count(y_ip) != 0) {
        continue;
      }
      if (y_true > x_true) {
        ++misranked;
      }
    }
  }
  return static_cast<double>(misranked);
}

double TopKQuery::IntervalError(const Query& reference, size_t interval) const {
  const double pairs = IntervalMisrankedPairs(reference, interval);
  return std::clamp(pairs / static_cast<double>(k_ * k_), 0.0, 1.0);
}

// ------------------------------------------------------------------ trace --

TraceQuery::TraceQuery(size_t interval_bins) : Query("trace", interval_bins) {
  storage_.resize(kStorageWindow);
}

void TraceQuery::OnBatch(const BatchInput& in) {
  double stored_bytes = 0.0;
  for (const net::Packet& pkt : in.packets) {
    // "Store" the packet: copy payload bytes (or the header record when the
    // trace carries no payload) into the rolling storage window. This is the
    // byte-proportional work the real query spends on the storage path.
    const uint8_t* src;
    size_t len;
    if (pkt.payload_len > 0) {
      src = pkt.payload;
      len = pkt.payload_len;
    } else {
      src = reinterpret_cast<const uint8_t*>(pkt.rec);
      len = sizeof(net::PacketRecord);
    }
    if (storage_pos_ + len > kStorageWindow) {
      storage_pos_ = 0;
    }
    std::memcpy(storage_.data() + storage_pos_, src, len);
    storage_pos_ += len;
    cur_.pkts_stored += 1.0;
    cur_.bytes_stored += static_cast<double>(len);
    stored_bytes += static_cast<double>(len);
  }
  ChargeWork(work::kTracePkt * static_cast<double>(in.packets.size()) +
             work::kTraceByte * stored_bytes);
}

void TraceQuery::OnEndInterval(size_t /*interval_index*/) {
  snaps_.push_back(cur_);
  cur_ = Snapshot{};
}

// --------------------------------------------------------- pattern-search --

namespace {
// The byte stream a packet contributes to the shard-unit space. Header-only
// traces scan the record bytes so the per-packet work stays real (the thesis
// runs this query on header-only captures too).
size_t EffectiveLen(const net::Packet& pkt) {
  return pkt.payload_len > 0 ? pkt.payload_len : sizeof(net::PacketRecord);
}
const uint8_t* EffectiveBytes(const net::Packet& pkt) {
  return pkt.payload_len > 0 ? pkt.payload : reinterpret_cast<const uint8_t*>(pkt.rec);
}

struct PatternShard : ShardState {
  double owned_pkts = 0.0;   // packets whose first byte falls in this range
  double owned_units = 0.0;  // effective bytes owned (no seam overlap)
  std::vector<size_t> matched;  // ascending packet indices with an owned occurrence
};
}  // namespace

PatternSearchQuery::PatternSearchQuery(std::string pattern, size_t interval_bins)
    : Query("pattern-search", interval_bins), matcher_(std::move(pattern)) {}

void PatternSearchQuery::OnBatch(const BatchInput& in) {
  // Direct serial twin of the shard path: whole payloads, no seam handling,
  // same single-rounding match/work arithmetic as ApplyShards.
  double scanned = 0.0;
  double found = 0.0;
  for (const net::Packet& pkt : in.packets) {
    if (matcher_.Contains(EffectiveBytes(pkt), EffectiveLen(pkt))) {
      found += 1.0;
    }
    scanned += static_cast<double>(EffectiveLen(pkt));
  }
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  cur_matches_ += found * inv;
  ChargeWork(work::kPatternPkt * static_cast<double>(in.packets.size()) +
             work::kPatternByte * scanned);
}

size_t PatternSearchQuery::ShardUnits(const BatchInput& in) const {
  size_t units = 0;
  for (const net::Packet& pkt : in.packets) {
    units += EffectiveLen(pkt);
  }
  return units;
}

std::unique_ptr<ShardState> PatternSearchQuery::ForkShard() const {
  return std::make_unique<PatternShard>();
}

void PatternSearchQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                                      size_t end) const {
  auto& s = static_cast<PatternShard&>(shard);
  const size_t m = matcher_.pattern().size();
  // The offset walk below runs from packet 0 in every shard (O(packets) adds
  // per shard before its range starts); that is dwarfed by the byte scan a
  // shard then does, so no prefix-sum cache is kept.
  size_t off = 0;
  for (size_t i = 0; i < in.packets.size() && off < end; ++i) {
    const net::Packet& pkt = in.packets[i];
    const size_t pkt_begin = off;
    const size_t pkt_end = off + EffectiveLen(pkt);
    off = pkt_end;
    if (pkt_end <= begin) {
      continue;  // wholly before this range
    }
    // Non-empty intersection: pkt_begin < end (loop condition) and
    // pkt_end > begin (checked above).
    const size_t lo = std::max(pkt_begin, begin);
    const size_t hi = std::min(pkt_end, end);
    if (pkt_begin >= begin) {
      s.owned_pkts += 1.0;  // the packet's first byte is ours
    }
    s.owned_units += static_cast<double>(hi - lo);
    // Scan the owned slice plus m-1 bytes past the seam (clamped to the
    // packet): every occurrence *starting* in [lo, hi) — including one that
    // straddles the seam — is found here, and an occurrence starting at or
    // after `hi` cannot fit in this window, so no shard double-counts.
    const size_t scan_end = std::min(pkt_end, hi + (m - 1));
    if (matcher_.Contains(EffectiveBytes(pkt) + (lo - pkt_begin), scan_end - lo)) {
      s.matched.push_back(i);
    }
  }
}

void PatternSearchQuery::MergeShard(ShardState& into, ShardState&& from) const {
  auto& a = static_cast<PatternShard&>(into);
  auto& b = static_cast<PatternShard&>(from);
  a.owned_pkts += b.owned_pkts;
  a.owned_units += b.owned_units;
  // A packet split across shards can be matched by both (distinct occurrence
  // start offsets); set_union dedupes so it counts once, like serially.
  std::vector<size_t> matched;
  matched.reserve(a.matched.size() + b.matched.size());
  std::set_union(a.matched.begin(), a.matched.end(), b.matched.begin(), b.matched.end(),
                 std::back_inserter(matched));
  a.matched = std::move(matched);
}

void PatternSearchQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<PatternShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  cur_matches_ += static_cast<double>(s.matched.size()) * inv;
  ChargeWork(work::kPatternPkt * s.owned_pkts + work::kPatternByte * s.owned_units);
}

void PatternSearchQuery::OnEndInterval(size_t /*interval_index*/) {
  snaps_.push_back(cur_matches_);
  cur_matches_ = 0.0;
}

// ----------------------------------------------------------- p2p-detector --

P2pDetectorQuery::P2pDetectorQuery(size_t interval_bins)
    : Query("p2p-detector", interval_bins), admit_hash_(0xdead) {
  signatures_.emplace_back(std::string(trace::BittorrentSignature()));
  signatures_.emplace_back(std::string(trace::GnutellaSignature()));
  signatures_.emplace_back(std::string(trace::EdonkeySignature()));
}

void P2pDetectorQuery::Inspect(const net::Packet& pkt, FlowState& state) {
  if (pkt.payload_len > 0) {
    const size_t scan = std::min<size_t>(pkt.payload_len, 256);
    // One multi-pattern scan pass over the inspected prefix.
    ChargeWork(work::kP2pScanByte * static_cast<double>(scan));
    for (const BoyerMoore& sig : signatures_) {
      if (sig.Contains(pkt.payload, scan)) {
        // [121, 83]-style detection needs the protocol exchange, not a lone
        // match: the signature must be confirmed on both early stream
        // packets before the flow is classified. This is what makes the
        // detector fragile under packet sampling (Fig. 6.4) — missing
        // either early packet loses the flow.
        if (++state.signature_hits >= 2) {
          state.is_p2p = true;
          state.decided = true;
        }
        return;
      }
    }
  }
  if (state.pkts_seen >= kInspectPackets) {
    state.decided = true;  // inspection window exhausted, flow is not P2P
  }
}

void P2pDetectorQuery::OnBatch(const BatchInput& in) {
  for (const net::Packet& pkt : in.packets) {
    auto [it, inserted] = table_.try_emplace(pkt.rec->tuple);
    FlowState& state = it->second;
    ++state.pkts_seen;
    ChargeWork(inserted ? work::kP2pInsert + work::kP2pUpdate : work::kP2pUpdate);
    if (!state.decided) {
      Inspect(pkt, state);
    }
  }
}

void P2pDetectorQuery::OnCustomBatch(const BatchInput& in, double fraction) {
  // Custom method (§6.1): flows that are already classified are only counted
  // (cheap lookup, no payload scan); when the budget drops below the cost of
  // first-packet inspection, new flows are admission-controlled with a hash
  // so entire flows are kept or dropped coherently.
  const double f = std::clamp(fraction, 0.0, 1.0);
  const double admit = f >= kFirstPacketCostShare ? 1.0 : f / kFirstPacketCostShare;
  const uint64_t salt = completed_intervals() * 0x51ed5eedULL;
  for (const net::Packet& pkt : in.packets) {
    auto it = table_.find(pkt.rec->tuple);
    if (it == table_.end()) {
      if (admit < 1.0) {
        const auto key = pkt.rec->tuple.Bytes();
        uint8_t buf[16];
        std::memcpy(buf, key.data(), key.size());
        std::memcpy(buf + 13, &salt, 3);
        if (admit_hash_.HashUnit(buf, sizeof(buf)) >= admit) {
          AdjustProcessedCount(-1.0);
          ChargeWork(work::kP2pRejected);
          continue;
        }
      }
      it = table_.emplace(pkt.rec->tuple, FlowState{}).first;
      ChargeWork(work::kP2pInsert);
    }
    FlowState& state = it->second;
    if (state.decided) {
      // Classified flows are only counted, not re-inspected — the cost
      // reduction at the heart of the custom method.
      ++state.pkts_seen;
      ChargeWork(work::kP2pDecidedLookup);
      continue;
    }
    ++state.pkts_seen;
    ChargeWork(work::kP2pUpdate);
    Inspect(pkt, state);
  }
}

void P2pDetectorQuery::OnEndInterval(size_t /*interval_index*/) {
  std::set<net::FiveTuple> p2p;
  // lint: order-insensitive result lands in an ordered std::set
  for (const auto& [tuple, state] : table_) {
    if (state.is_p2p) {
      p2p.insert(tuple);
    }
  }
  snaps_.push_back(std::move(p2p));
  table_.clear();
}

double P2pDetectorQuery::IntervalError(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const P2pDetectorQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  const auto& est = snaps_[interval];
  const auto& truth = ref->snaps_[interval];
  if (truth.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (const auto& tuple : est) {
    if (truth.count(tuple) != 0) {
      ++correct;
    }
  }
  return 1.0 - static_cast<double>(correct) / static_cast<double>(truth.size());
}

SelfishP2pDetectorQuery::SelfishP2pDetectorQuery(size_t interval_bins)
    : P2pDetectorQuery(interval_bins) {}

void SelfishP2pDetectorQuery::OnCustomBatch(const BatchInput& in, double /*fraction*/) {
  // Ignores the granted budget entirely — the behaviour §6.3.4 polices.
  OnBatch(in);
}

BuggyP2pDetectorQuery::BuggyP2pDetectorQuery(size_t interval_bins)
    : P2pDetectorQuery(interval_bins) {}

void BuggyP2pDetectorQuery::OnCustomBatch(const BatchInput& in, double /*fraction*/) {
  // A broken implementation: cost is unrelated to the granted fraction and
  // periodically spikes to roughly double work (§6.3.5).
  OnBatch(in);
  if (++batch_no_ % 3 == 0) {
    OnBatch(in);
    AdjustProcessedCount(-static_cast<double>(in.packets.size()));
  }
}

// -------------------------------------------------------------- autofocus --

AutofocusQuery::AutofocusQuery(double threshold_fraction, size_t interval_bins)
    : Query("autofocus", interval_bins), threshold_fraction_(threshold_fraction) {}

void AutofocusQuery::OnBatch(const BatchInput& in) {
  // Direct serial twin of the shard path (same discipline as TopKQuery).
  batch_bytes_.clear();
  batch_order_.clear();
  for (const net::Packet& pkt : in.packets) {
    auto [it, inserted] = batch_bytes_.try_emplace(pkt.rec->tuple.src_ip, 0.0);
    it->second += static_cast<double>(pkt.rec->wire_len);
    if (inserted) {
      batch_order_.push_back(pkt.rec->tuple.src_ip);
    }
  }
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  double inserts = 0.0;
  for (const uint32_t key : batch_order_) {
    auto [it, inserted] = src_bytes_.try_emplace(key, 0.0);
    if (inserted) {
      inserts += 1.0;
    }
    it->second += batch_bytes_.at(key) * inv;
  }
  ChargeWork(work::kAutofocusPkt * static_cast<double>(in.packets.size()) +
             work::kAutofocusInsert * inserts);
}

std::unique_ptr<ShardState> AutofocusQuery::ForkShard() const {
  return std::make_unique<KeyedBytesShard>();
}

void AutofocusQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                                  size_t end) const {
  auto& s = static_cast<KeyedBytesShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const net::Packet& pkt = in.packets[i];
    s.Accumulate(pkt.rec->tuple.src_ip, static_cast<double>(pkt.rec->wire_len));
  }
}

void AutofocusQuery::MergeShard(ShardState& into, ShardState&& from) const {
  static_cast<KeyedBytesShard&>(into).MergeFrom(std::move(static_cast<KeyedBytesShard&>(from)));
}

void AutofocusQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<KeyedBytesShard&>(merged);
  const double inv = 1.0 / SafeRate(in.sampling_rate);
  double inserts = 0.0;
  for (const uint32_t key : s.order) {
    auto [it, inserted] = src_bytes_.try_emplace(key, 0.0);
    if (inserted) {
      inserts += 1.0;
    }
    it->second += s.bytes.at(key) * inv;
  }
  ChargeWork(work::kAutofocusPkt * s.pkts + work::kAutofocusInsert * inserts);
}

std::set<uint64_t> AutofocusQuery::ComputeClusters(
    const std::unordered_map<uint32_t, double>& bytes, double threshold_fraction) {
  std::set<uint64_t> report;
  if (bytes.empty()) {
    return report;
  }
  std::vector<std::pair<uint32_t, double>> sorted(bytes.begin(), bytes.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<double> psum(sorted.size() + 1, 0.0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    psum[i + 1] = psum[i] + sorted[i].second;
  }
  const double threshold = threshold_fraction * psum.back();
  if (threshold <= 0.0) {
    return report;
  }

  // Recursive compression over the binary prefix trie ([55]): report the most
  // specific prefixes whose traffic not covered by reported descendants still
  // exceeds the threshold.
  std::function<double(size_t, size_t, int, uint32_t)> walk =
      [&](size_t lo, size_t hi, int depth, uint32_t prefix) -> double {
    const double total = psum[hi] - psum[lo];
    if (total < threshold || lo >= hi) {
      return 0.0;
    }
    if (depth == 32) {
      report.insert((static_cast<uint64_t>(prefix) << 8) | 32u);
      return total;
    }
    const uint32_t bit = 1u << (31 - depth);
    // Partition point: first entry with the depth-th bit set.
    const uint32_t boundary = prefix | bit;
    const auto it = std::lower_bound(
        sorted.begin() + static_cast<ptrdiff_t>(lo), sorted.begin() + static_cast<ptrdiff_t>(hi),
        boundary, [](const auto& entry, uint32_t value) { return entry.first < value; });
    const size_t mid = static_cast<size_t>(it - sorted.begin());
    const double reported =
        walk(lo, mid, depth + 1, prefix) + walk(mid, hi, depth + 1, boundary);
    if (total - reported >= threshold) {
      report.insert((static_cast<uint64_t>(prefix) << 8) | static_cast<uint32_t>(depth));
      return total;
    }
    return reported;
  };
  walk(0, sorted.size(), 0, 0);
  return report;
}

void AutofocusQuery::OnEndInterval(size_t /*interval_index*/) {
  ChargeWork(work::kAutofocusClusterSrc * static_cast<double>(src_bytes_.size()));
  snaps_.push_back(ComputeClusters(src_bytes_, threshold_fraction_));
  src_bytes_.clear();
}

double AutofocusQuery::IntervalError(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const AutofocusQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  const auto& est = snaps_[interval];
  const auto& truth = ref->snaps_[interval];
  if (truth.empty()) {
    return est.empty() ? 0.0 : 1.0;
  }
  // Delta-report error (§2.2.1): the share of reference clusters missing or
  // changed in this report.
  size_t common = 0;
  for (const uint64_t cluster : est) {
    if (truth.count(cluster) != 0) {
      ++common;
    }
  }
  return 1.0 - static_cast<double>(common) / static_cast<double>(truth.size());
}

// ---------------------------------------------------------- super-sources --

SuperSourcesQuery::SuperSourcesQuery(size_t top_n, size_t interval_bins)
    : Query("super-sources", interval_bins), top_n_(top_n), dst_hash_(0xfa11) {}

namespace {
struct SuperSourcesShard : ShardState {
  double pkts = 0.0;
  // Per-source destination bitmaps; the union of the shard bitmaps is the
  // exact bit set the serial loop would have produced.
  std::unordered_map<uint32_t, sketch::DirectBitmap> fanout;
  std::vector<uint32_t> order;  // first-touch order of sources
};
}  // namespace

void SuperSourcesQuery::OnBatch(const BatchInput& in) {
  // Direct serial twin of the shard path: bitmap insertion is an exact bit
  // union however it is grouped, and the work expression matches ApplyShards,
  // so inserting straight into fanout_ (no per-batch shard bitmaps) is
  // bit-identical to the sharded merge.
  rate_sum_ += SafeRate(in.sampling_rate);
  ++rate_batches_;
  double inserts = 0.0;
  for (const net::Packet& pkt : in.packets) {
    auto [it, inserted] = fanout_.try_emplace(pkt.rec->tuple.src_ip, 128u);
    if (inserted) {
      inserts += 1.0;
    }
    uint8_t key[4];
    std::memcpy(key, &pkt.rec->tuple.dst_ip, 4);
    it->second.Insert(dst_hash_.Hash(key, 4));
  }
  ChargeWork(work::kSuperSrcPkt * static_cast<double>(in.packets.size()) +
             work::kSuperSrcInsert * inserts);
}

std::unique_ptr<ShardState> SuperSourcesQuery::ForkShard() const {
  return std::make_unique<SuperSourcesShard>();
}

void SuperSourcesQuery::OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                                     size_t end) const {
  auto& s = static_cast<SuperSourcesShard&>(shard);
  s.pkts += static_cast<double>(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const net::Packet& pkt = in.packets[i];
    auto [it, inserted] = s.fanout.try_emplace(pkt.rec->tuple.src_ip, 128u);
    if (inserted) {
      s.order.push_back(pkt.rec->tuple.src_ip);
    }
    uint8_t key[4];
    std::memcpy(key, &pkt.rec->tuple.dst_ip, 4);
    it->second.Insert(dst_hash_.Hash(key, 4));
  }
}

void SuperSourcesQuery::MergeShard(ShardState& into, ShardState&& from) const {
  auto& a = static_cast<SuperSourcesShard&>(into);
  auto& b = static_cast<SuperSourcesShard&>(from);
  a.pkts += b.pkts;
  for (const uint32_t src : b.order) {
    auto [it, inserted] = a.fanout.try_emplace(src, 128u);
    it->second.Union(b.fanout.at(src));
    if (inserted) {
      a.order.push_back(src);
    }
  }
}

void SuperSourcesQuery::ApplyShards(const BatchInput& in, ShardState&& merged) {
  auto& s = static_cast<SuperSourcesShard&>(merged);
  rate_sum_ += SafeRate(in.sampling_rate);
  ++rate_batches_;
  double inserts = 0.0;
  for (const uint32_t src : s.order) {
    auto [it, inserted] = fanout_.try_emplace(src, 128u);
    if (inserted) {
      inserts += 1.0;
    }
    it->second.Union(s.fanout.at(src));
  }
  ChargeWork(work::kSuperSrcPkt * s.pkts + work::kSuperSrcInsert * inserts);
}

void SuperSourcesQuery::OnEndInterval(size_t /*interval_index*/) {
  Snapshot snap;
  const double rate =
      rate_batches_ > 0 ? rate_sum_ / static_cast<double>(rate_batches_) : 1.0;
  // lint: order-insensitive keyed assignment into snap.all commutes
  for (const auto& [src, bitmap] : fanout_) {
    snap.all[src] = bitmap.Estimate() / SafeRate(rate);
  }
  std::vector<std::pair<uint32_t, double>> sorted(snap.all.begin(), snap.all.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted.size() > top_n_) {
    sorted.resize(top_n_);
  }
  snap.top = std::move(sorted);
  snaps_.push_back(std::move(snap));
  fanout_.clear();
  rate_sum_ = 0.0;
  rate_batches_ = 0;
}

double SuperSourcesQuery::IntervalError(const Query& reference, size_t interval) const {
  const auto* ref = dynamic_cast<const SuperSourcesQuery*>(&reference);
  if (ref == nullptr || interval >= snaps_.size() || interval >= ref->snaps_.size()) {
    return 1.0;
  }
  const Snapshot& est = snaps_[interval];
  const Snapshot& truth = ref->snaps_[interval];
  if (truth.top.empty()) {
    return 0.0;
  }
  // Average relative fan-out error over the reference's top sources ([139]).
  util::RunningStats err;
  for (const auto& [src, true_fanout] : truth.top) {
    const auto it = est.all.find(src);
    const double estimate = it == est.all.end() ? 0.0 : it->second;
    err.Add(std::min(1.0, util::RelativeError(estimate, true_fanout)));
  }
  return err.mean();
}

// ---------------------------------------------------------------- factory --

std::unique_ptr<Query> MakeQuery(std::string_view name) {
  if (name == "counter") {
    return std::make_unique<CounterQuery>();
  }
  if (name == "application") {
    return std::make_unique<ApplicationQuery>();
  }
  if (name == "high-watermark") {
    return std::make_unique<HighWatermarkQuery>();
  }
  if (name == "flows") {
    return std::make_unique<FlowsQuery>();
  }
  if (name == "top-k") {
    return std::make_unique<TopKQuery>();
  }
  if (name == "trace") {
    return std::make_unique<TraceQuery>();
  }
  if (name == "pattern-search") {
    return std::make_unique<PatternSearchQuery>();
  }
  if (name == "p2p-detector") {
    return std::make_unique<P2pDetectorQuery>();
  }
  if (name == "autofocus") {
    return std::make_unique<AutofocusQuery>();
  }
  if (name == "super-sources") {
    return std::make_unique<SuperSourcesQuery>();
  }
  throw std::invalid_argument("MakeQuery: unknown query " + std::string(name));
}

std::vector<std::string> StandardSevenQueryNames() {
  return {"application", "counter", "flows", "high-watermark", "pattern-search", "top-k",
          "trace"};
}

std::vector<std::string> StandardNineQueryNames() {
  return {"application", "autofocus",    "counter",       "flows", "high-watermark",
          "pattern-search", "super-sources", "top-k",     "trace"};
}

std::vector<std::string> AllQueryNames() {
  return {"application",    "autofocus",     "counter", "flows", "high-watermark",
          "p2p-detector",   "pattern-search", "super-sources", "top-k", "trace"};
}

}  // namespace shedmon::query
