#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/batch.h"

namespace shedmon::query {

// Which shedding mechanism suits the query best (§4.2); each query picks the
// option that yields the best results at configuration time.
enum class SamplingMethod { kPacket, kFlow };

// What a query sees for one time bin: the (possibly sampled) packets plus the
// sampling rate that was applied so it can scale its estimates by 1/rate, the
// modification the thesis applied to the standard CoMo queries (§2.2).
struct BatchInput {
  const trace::PacketVec& packets;
  uint64_t start_us = 0;
  uint64_t duration_us = 100'000;
  double sampling_rate = 1.0;
};

// A monitoring application ("plug-in module" in CoMo terms). The load
// shedding system treats instances as black boxes: it only ever calls
// ProcessBatch / EndInterval and observes the cycles they consume.
//
// Accuracy evaluation follows §2.2.1: a second instance of the same query is
// run over the unsampled stream and IntervalError compares per-interval
// results. The base-class default implements the processed-packet-fraction
// error used for trace and pattern-search.
class Query {
 public:
  Query(std::string name, size_t interval_bins);
  virtual ~Query() = default;

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  const std::string& name() const { return name_; }
  // Measurement interval expressed in 100 ms time bins (§2.4).
  size_t interval_bins() const { return interval_bins_; }

  virtual SamplingMethod preferred_sampling() const { return SamplingMethod::kPacket; }

  // Processes one (possibly sampled) batch.
  void ProcessBatch(const BatchInput& in);

  // Closes the current measurement interval; results become available for
  // interval index completed_intervals() - 1 afterwards.
  void EndInterval();
  size_t completed_intervals() const { return intervals_done_; }

  // Relative error of this instance's results for `interval` against a
  // reference instance that processed the full stream (§2.2.1).
  virtual double IntervalError(const Query& reference, size_t interval) const;
  // Mean error across all intervals completed by both instances.
  double MeanError(const Query& reference) const;

  // ---- Custom load shedding (Ch. 6) ----
  // True if the query ships its own shedding method; the system may then
  // hand it the full batch and a target cost fraction instead of sampling.
  virtual bool supports_custom_shedding() const { return false; }
  // Processes `in` using at most ~`fraction` of the full processing cost.
  // Default falls through to full processing (a non-implementing query; the
  // enforcement policy of §6.1.1 is what keeps this safe).
  void ProcessCustom(const BatchInput& in, double fraction);

  // Raw packets examined in a completed interval (reference instances see
  // everything, so this doubles as the ground-truth packet count).
  double IntervalPacketsProcessed(size_t interval) const;

  // Monotonic counter of abstract work units the query has performed (packet
  // touches, bytes scanned, state insertions...). The deterministic cost
  // oracle charges the *delta* of this counter per batch, so a query that
  // sheds its own load (Ch. 6) is charged for what it actually did — and a
  // selfish one that ignores its budget is exposed by the same number.
  double work_units() const { return work_units_; }

 protected:
  virtual void OnBatch(const BatchInput& in) = 0;
  virtual void OnCustomBatch(const BatchInput& in, double fraction);
  virtual void OnEndInterval(size_t interval_index) = 0;

  // Concrete custom-shedding implementations report how many packets they
  // actually examined (base accounting assumes all of them otherwise).
  void AdjustProcessedCount(double delta) { cur_packets_ += delta; }

  void ChargeWork(double units) { work_units_ += units; }

 private:
  std::string name_;
  size_t interval_bins_;
  size_t intervals_done_ = 0;
  double cur_packets_ = 0.0;
  double work_units_ = 0.0;
  std::vector<double> interval_packets_;
};

}  // namespace shedmon::query
