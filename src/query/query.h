#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/batch.h"

namespace shedmon::query {

class ShardableQuery;

// Which shedding mechanism suits the query best (§4.2); each query picks the
// option that yields the best results at configuration time.
enum class SamplingMethod { kPacket, kFlow };

// What a query sees for one time bin: the (possibly sampled) packets plus the
// sampling rate that was applied so it can scale its estimates by 1/rate, the
// modification the thesis applied to the standard CoMo queries (§2.2).
struct BatchInput {
  const trace::PacketVec& packets;
  uint64_t start_us = 0;
  uint64_t duration_us = 100'000;
  double sampling_rate = 1.0;
};

// Worker-local partial state for one shard of a batch. Concrete shardable
// queries derive their own partial (counters, candidate key lists, shard-span
// match sets); the base is an opaque tag so the scheduler can carry partials
// without knowing the query type.
class ShardState {
 public:
  virtual ~ShardState() = default;
};

// Optional extension of the black-box query interface: intra-query data
// parallelism with a deterministic merge. A batch is divided into
// ShardUnits(in) abstract units (packets for most queries; scanned bytes for
// pattern-search, so seams may fall inside a payload); the scheduler forks
// one ShardState per shard, processes disjoint contiguous unit ranges on any
// workers in any order, then folds the partials back in ascending
// shard-index order via Query::ProcessShards.
//
// The discipline that makes sharded execution bit-identical to serial
// execution (not merely statistically equivalent) at every shard count:
//  - OnShardBatch accumulates only exactly-representable partials (packet /
//    byte / insertion counts as integer-valued doubles, candidate key lists,
//    bitmap unions), so MergeShard's fold is exact and associative;
//  - candidate keys keep first-touch order, and contiguous ascending ranges
//    make the merged order the batch's first-occurrence order — the order
//    the serial loop would have inserted them in;
//  - every floating-point rounding step (the 1/sampling_rate rescale, the
//    += into interval state) and every ChargeWork call happens exactly once
//    per batch, in ApplyShards, computed from the merged exact partials.
// OnBatch of a shardable query either runs the same fork/apply path with one
// shard, or — where the shard partial is heavier than a direct loop — a
// direct twin evaluating the identical arithmetic; the differential fuzz
// suite (query_shard_fuzz_test) pins serial and sharded results together.
class ShardableQuery {
 public:
  virtual ~ShardableQuery() = default;

  // Total shardable units in `in`. Defaults to the packet count; queries
  // whose work is byte-driven override it so shards balance by bytes.
  virtual size_t ShardUnits(const BatchInput& in) const { return in.packets.size(); }

  // Below this many units a batch is not worth splitting (scheduler hint; a
  // smaller range is still processed correctly).
  virtual size_t MinShardUnits() const { return 256; }

  // Creates an empty worker-local partial. Must be cheap: one is forked per
  // shard per batch.
  virtual std::unique_ptr<ShardState> ForkShard() const = 0;

  // Processes units [begin, end) of `in` into `shard`. Const on the query:
  // shards may read the query's pre-batch state (e.g. to classify a key as
  // already-known) but only mutate their own partial, so disjoint ranges are
  // safe to run concurrently.
  virtual void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                            size_t end) const = 0;

  // Exact associative fold of `from` into `into`; called with ascending
  // shard indices, on one thread.
  virtual void MergeShard(ShardState& into, ShardState&& from) const = 0;

  // Applies the fully merged partial to query state and charges the batch's
  // work — the single place where scaling/rounding and ChargeWork happen.
  virtual void ApplyShards(const BatchInput& in, ShardState&& merged) = 0;
};

// A monitoring application ("plug-in module" in CoMo terms). The load
// shedding system treats instances as black boxes: it only ever calls
// ProcessBatch / EndInterval and observes the cycles they consume.
//
// Accuracy evaluation follows §2.2.1: a second instance of the same query is
// run over the unsampled stream and IntervalError compares per-interval
// results. The base-class default implements the processed-packet-fraction
// error used for trace and pattern-search.
class Query {
 public:
  Query(std::string name, size_t interval_bins);
  virtual ~Query() = default;

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  const std::string& name() const { return name_; }
  // Measurement interval expressed in 100 ms time bins (§2.4).
  size_t interval_bins() const { return interval_bins_; }

  virtual SamplingMethod preferred_sampling() const { return SamplingMethod::kPacket; }

  // Processes one (possibly sampled) batch.
  void ProcessBatch(const BatchInput& in);

  // Intra-query data parallelism (mergeable-state discipline): non-null when
  // this query's batches may be split into shards processed on different
  // workers and folded back losslessly. Null (the default) means the query's
  // per-batch state is order-sensitive and batches must stay whole.
  virtual ShardableQuery* shardable() { return nullptr; }

  // Sharded twin of ProcessBatch: the scheduler forked `shards` via
  // ShardableQuery::ForkShard, ran OnShardBatch over a partition of the
  // batch's shard units on workers, and hands the partials back here on one
  // thread. Folds them in ascending shard-index order and applies the result;
  // query state, results and work_units() end up bit-identical to a plain
  // ProcessBatch(in) call, for any shard count and any shard execution order.
  void ProcessShards(const BatchInput& in, std::vector<std::unique_ptr<ShardState>> shards);

  // Closes the current measurement interval; results become available for
  // interval index completed_intervals() - 1 afterwards.
  void EndInterval();
  size_t completed_intervals() const { return intervals_done_; }

  // Relative error of this instance's results for `interval` against a
  // reference instance that processed the full stream (§2.2.1).
  virtual double IntervalError(const Query& reference, size_t interval) const;
  // Mean error across all intervals completed by both instances.
  double MeanError(const Query& reference) const;

  // ---- Custom load shedding (Ch. 6) ----
  // True if the query ships its own shedding method; the system may then
  // hand it the full batch and a target cost fraction instead of sampling.
  virtual bool supports_custom_shedding() const { return false; }
  // Processes `in` using at most ~`fraction` of the full processing cost.
  // Default falls through to full processing (a non-implementing query; the
  // enforcement policy of §6.1.1 is what keeps this safe).
  void ProcessCustom(const BatchInput& in, double fraction);

  // Raw packets examined in a completed interval (reference instances see
  // everything, so this doubles as the ground-truth packet count).
  double IntervalPacketsProcessed(size_t interval) const;

  // Monotonic counter of abstract work units the query has performed (packet
  // touches, bytes scanned, state insertions...). The deterministic cost
  // oracle charges the *delta* of this counter per batch, so a query that
  // sheds its own load (Ch. 6) is charged for what it actually did — and a
  // selfish one that ignores its budget is exposed by the same number.
  double work_units() const { return work_units_; }

 protected:
  virtual void OnBatch(const BatchInput& in) = 0;
  virtual void OnCustomBatch(const BatchInput& in, double fraction);
  virtual void OnEndInterval(size_t interval_index) = 0;

  // Concrete custom-shedding implementations report how many packets they
  // actually examined (base accounting assumes all of them otherwise).
  void AdjustProcessedCount(double delta) { cur_packets_ += delta; }

  void ChargeWork(double units) { work_units_ += units; }

 private:
  std::string name_;
  size_t interval_bins_;
  size_t intervals_done_ = 0;
  double cur_packets_ = 0.0;
  double work_units_ = 0.0;
  std::vector<double> interval_packets_;
};

}  // namespace shedmon::query
