#include "src/query/query.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/util/stats.h"

namespace shedmon::query {

Query::Query(std::string name, size_t interval_bins)
    : name_(std::move(name)), interval_bins_(interval_bins == 0 ? 1 : interval_bins) {}

void Query::ProcessBatch(const BatchInput& in) {
  cur_packets_ += static_cast<double>(in.packets.size());
  OnBatch(in);
}

void Query::ProcessShards(const BatchInput& in, std::vector<std::unique_ptr<ShardState>> shards) {
  ShardableQuery* sh = shardable();
  if (sh == nullptr || shards.empty()) {
    throw std::logic_error("Query::ProcessShards: query is not shardable or no shards given");
  }
  cur_packets_ += static_cast<double>(in.packets.size());
  std::unique_ptr<ShardState> merged = std::move(shards.front());
  for (size_t s = 1; s < shards.size(); ++s) {
    sh->MergeShard(*merged, std::move(*shards[s]));
  }
  sh->ApplyShards(in, std::move(*merged));
}

void Query::ProcessCustom(const BatchInput& in, double fraction) {
  cur_packets_ += static_cast<double>(in.packets.size());
  OnCustomBatch(in, fraction);
}

void Query::OnCustomBatch(const BatchInput& in, double /*fraction*/) { OnBatch(in); }

void Query::EndInterval() {
  interval_packets_.push_back(cur_packets_);
  cur_packets_ = 0.0;
  OnEndInterval(intervals_done_);
  ++intervals_done_;
}

double Query::IntervalPacketsProcessed(size_t interval) const {
  if (interval >= interval_packets_.size()) {
    return 0.0;
  }
  return interval_packets_[interval];
}

double Query::IntervalError(const Query& reference, size_t interval) const {
  // Generic error for queries without a recoverable unsampled output
  // (trace, pattern-search): one minus the fraction of packets processed.
  const double total = reference.IntervalPacketsProcessed(interval);
  if (total <= 0.0) {
    return 0.0;
  }
  const double mine = IntervalPacketsProcessed(interval);
  return std::clamp(1.0 - mine / total, 0.0, 1.0);
}

double Query::MeanError(const Query& reference) const {
  const size_t n = std::min(completed_intervals(), reference.completed_intervals());
  if (n == 0) {
    return 0.0;
  }
  util::RunningStats stats;
  for (size_t i = 0; i < n; ++i) {
    stats.Add(IntervalError(reference, i));
  }
  return stats.mean();
}

}  // namespace shedmon::query
