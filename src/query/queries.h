#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/net/packet.h"
#include "src/query/boyer_moore.h"
#include "src/query/query.h"
#include "src/sketch/bitmap.h"
#include "src/sketch/h3.h"
#include "src/util/rng.h"

namespace shedmon::query {

// ---------------------------------------------------------------------------
// counter — traffic load in packets and bytes (Table 2.2). Cost ~ packets.
// ---------------------------------------------------------------------------
class CounterQuery : public Query, public ShardableQuery {
 public:
  explicit CounterQuery(size_t interval_bins = 10);

  struct Snapshot {
    double pkts = 0.0;
    double bytes = 0.0;
  };
  const std::vector<Snapshot>& snapshots() const { return snaps_; }

  double IntervalError(const Query& reference, size_t interval) const override;
  // Error split used by Table 4.1 ("counter (pkts)" / "counter (bytes)").
  double IntervalErrorPackets(const Query& reference, size_t interval) const;
  double IntervalErrorBytes(const Query& reference, size_t interval) const;

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  Snapshot cur_;
  std::vector<Snapshot> snaps_;
};

// ---------------------------------------------------------------------------
// application — port-based application classification. Cost ~ packets.
// ---------------------------------------------------------------------------
class ApplicationQuery : public Query, public ShardableQuery {
 public:
  explicit ApplicationQuery(size_t interval_bins = 10);

  // Port-based classifier (never consults the generator's ground truth).
  static net::AppClass ClassifyPorts(const net::FiveTuple& tuple);

  struct Snapshot {
    std::array<double, net::kNumAppClasses> pkts{};
    std::array<double, net::kNumAppClasses> bytes{};
  };
  const std::vector<Snapshot>& snapshots() const { return snaps_; }

  double IntervalError(const Query& reference, size_t interval) const override;
  double IntervalErrorPackets(const Query& reference, size_t interval) const;
  double IntervalErrorBytes(const Query& reference, size_t interval) const;

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  Snapshot cur_;
  std::vector<Snapshot> snaps_;
};

// ---------------------------------------------------------------------------
// high-watermark — peak per-time-bin link utilization within the interval.
// Supports a custom shedding method: deterministic 1-in-k stride sampling
// with rescaling, a low-variance estimator for a max-of-sums statistic.
// ---------------------------------------------------------------------------
class HighWatermarkQuery : public Query, public ShardableQuery {
 public:
  explicit HighWatermarkQuery(size_t interval_bins = 10);

  const std::vector<double>& watermarks() const { return snaps_; }

  double IntervalError(const Query& reference, size_t interval) const override;

  bool supports_custom_shedding() const override { return true; }

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnCustomBatch(const BatchInput& in, double fraction) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  double cur_watermark_ = 0.0;
  std::vector<double> snaps_;
};

// ---------------------------------------------------------------------------
// flows — per-flow classification; reports the number of active 5-tuple
// flows per interval. Flow sampling preferred. Cost ~ packets + new flows.
// ---------------------------------------------------------------------------
class FlowsQuery : public Query, public ShardableQuery {
 public:
  explicit FlowsQuery(size_t interval_bins = 10);

  SamplingMethod preferred_sampling() const override { return SamplingMethod::kFlow; }

  const std::vector<double>& flow_counts() const { return snaps_; }

  double IntervalError(const Query& reference, size_t interval) const override;

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> flows_;
  double estimate_ = 0.0;
  std::vector<double> snaps_;
};

// ---------------------------------------------------------------------------
// top-k — ranking of the top-k destination IPs by bytes ([12] in the thesis).
// Error metric: misranked flow pairs. Custom shedding: Sample & Hold.
// ---------------------------------------------------------------------------
class TopKQuery : public Query, public ShardableQuery {
 public:
  explicit TopKQuery(size_t k = 10, size_t interval_bins = 10);

  struct Snapshot {
    std::vector<std::pair<uint32_t, double>> topk;  // (dst ip, bytes), sorted desc
    std::unordered_map<uint32_t, double> all;       // full per-key estimates
  };
  const std::vector<Snapshot>& snapshots() const { return snaps_; }
  size_t k() const { return k_; }

  // Raw misranked-pair count (Table 4.1 reports this un-normalized).
  double IntervalMisrankedPairs(const Query& reference, size_t interval) const;
  // Normalized to [0, 1] by k^2 for the accuracy plots of Ch. 5/6.
  double IntervalError(const Query& reference, size_t interval) const override;

  bool supports_custom_shedding() const override { return true; }

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnCustomBatch(const BatchInput& in, double fraction) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  size_t k_;
  std::unordered_map<uint32_t, double> bytes_;
  util::Rng admit_rng_;
  std::vector<Snapshot> snaps_;
  // Reused per-batch scratch for OnBatch's exact-integer accumulation
  // (cleared each batch, capacity kept so the serial hot path stays
  // allocation-free after warm-up).
  std::unordered_map<uint32_t, double> batch_bytes_;
  std::vector<uint32_t> batch_order_;
};

// ---------------------------------------------------------------------------
// trace — full-payload packet collection. Cost ~ bytes (storage copy).
// Accuracy: fraction of packets processed (no unsampled output exists).
// ---------------------------------------------------------------------------
class TraceQuery : public Query {
 public:
  explicit TraceQuery(size_t interval_bins = 10);

  struct Snapshot {
    double pkts_stored = 0.0;
    double bytes_stored = 0.0;
  };
  const std::vector<Snapshot>& snapshots() const { return snaps_; }

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  static constexpr size_t kStorageWindow = 1 << 20;  // rolling 1 MiB "disk"
  Snapshot cur_;
  std::vector<Snapshot> snaps_;
  std::vector<uint8_t> storage_;
  size_t storage_pos_ = 0;
};

// ---------------------------------------------------------------------------
// pattern-search — Boyer-Moore byte-sequence search in payloads ([23]).
// Cost ~ bytes scanned. Accuracy: fraction of packets processed.
// ---------------------------------------------------------------------------
class PatternSearchQuery : public Query, public ShardableQuery {
 public:
  explicit PatternSearchQuery(std::string pattern = "HTTP/1.1", size_t interval_bins = 10);

  const std::vector<double>& match_counts() const { return snaps_; }

  // Intra-query sharding over *scanned bytes*, not packets: shard units are
  // the concatenated effective payload stream, so a seam may fall inside a
  // payload. A shard owns occurrences *starting* in its unit range and scans
  // pattern.size() - 1 bytes past its seam (within the packet) so straddling
  // occurrences are found by exactly one shard.
  ShardableQuery* shardable() override { return this; }
  size_t ShardUnits(const BatchInput& in) const override;
  size_t MinShardUnits() const override { return 4096; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  BoyerMoore matcher_;
  double cur_matches_ = 0.0;
  std::vector<double> snaps_;
};

// ---------------------------------------------------------------------------
// p2p-detector — signature-based P2P flow detection ([121, 83] in the
// thesis): payload signatures on the first packets of each flow plus a port
// heuristic. Custom shedding: stop inspecting decided flows, admission-
// control new flows only when the budget requires it (§6.1).
// ---------------------------------------------------------------------------
class P2pDetectorQuery : public Query {
 public:
  explicit P2pDetectorQuery(size_t interval_bins = 10);

  SamplingMethod preferred_sampling() const override { return SamplingMethod::kFlow; }

  const std::vector<std::set<net::FiveTuple>>& p2p_flows() const { return snaps_; }

  double IntervalError(const Query& reference, size_t interval) const override;

  bool supports_custom_shedding() const override { return true; }

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnCustomBatch(const BatchInput& in, double fraction) override;
  void OnEndInterval(size_t interval_index) override;

  // Fraction of the full cost spent on first-packet inspection; the custom
  // method can cut to about this fraction before losing accuracy.
  static constexpr double kFirstPacketCostShare = 0.6;
  static constexpr int kInspectPackets = 2;

  struct FlowState {
    int pkts_seen = 0;
    int signature_hits = 0;
    bool is_p2p = false;
    bool decided = false;
  };

  void Inspect(const net::Packet& pkt, FlowState& state);

  std::unordered_map<net::FiveTuple, FlowState, net::FiveTupleHash> table_;
  sketch::H3Hash admit_hash_;
  std::vector<BoyerMoore> signatures_;
  std::vector<std::set<net::FiveTuple>> snaps_;
};

// Selfish variant (Fig. 6.10): claims custom shedding but ignores the budget
// and always processes everything, trying to grab extra cycles.
class SelfishP2pDetectorQuery : public P2pDetectorQuery {
 public:
  explicit SelfishP2pDetectorQuery(size_t interval_bins = 10);

 protected:
  void OnCustomBatch(const BatchInput& in, double fraction) override;
};

// Buggy variant (Fig. 6.11): an incorrect custom implementation whose cost
// bears no relation to the granted fraction (sometimes does double work).
class BuggyP2pDetectorQuery : public P2pDetectorQuery {
 public:
  explicit BuggyP2pDetectorQuery(size_t interval_bins = 10);

 protected:
  void OnCustomBatch(const BatchInput& in, double fraction) override;

 private:
  size_t batch_no_ = 0;
};

// ---------------------------------------------------------------------------
// autofocus — uni-dimensional high-volume traffic clusters per source subnet
// ([55] in the thesis): the most specific IP prefixes whose unreported
// traffic exceeds a threshold fraction of the total.
// ---------------------------------------------------------------------------
class AutofocusQuery : public Query, public ShardableQuery {
 public:
  explicit AutofocusQuery(double threshold_fraction = 0.02, size_t interval_bins = 10);

  // Clusters encoded as (prefix << 8) | prefix_len.
  const std::vector<std::set<uint64_t>>& reports() const { return snaps_; }

  static std::set<uint64_t> ComputeClusters(const std::unordered_map<uint32_t, double>& bytes,
                                            double threshold_fraction);

  double IntervalError(const Query& reference, size_t interval) const override;

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  double threshold_fraction_;
  std::unordered_map<uint32_t, double> src_bytes_;
  std::vector<std::set<uint64_t>> snaps_;
  // Reused per-batch scratch, as in TopKQuery.
  std::unordered_map<uint32_t, double> batch_bytes_;
  std::vector<uint32_t> batch_order_;
};

// ---------------------------------------------------------------------------
// super-sources — sources with the largest fan-out (distinct destinations,
// [139] in the thesis), counted per source with small direct bitmaps.
// ---------------------------------------------------------------------------
class SuperSourcesQuery : public Query, public ShardableQuery {
 public:
  explicit SuperSourcesQuery(size_t top_n = 10, size_t interval_bins = 10);

  SamplingMethod preferred_sampling() const override { return SamplingMethod::kFlow; }

  struct Snapshot {
    // (src ip, estimated fan-out), sorted by fan-out descending, top-N.
    std::vector<std::pair<uint32_t, double>> top;
    std::unordered_map<uint32_t, double> all;
  };
  const std::vector<Snapshot>& snapshots() const { return snaps_; }

  double IntervalError(const Query& reference, size_t interval) const override;

  // Intra-query sharding (mergeable state; see query::ShardableQuery).
  ShardableQuery* shardable() override { return this; }
  std::unique_ptr<ShardState> ForkShard() const override;
  void OnShardBatch(ShardState& shard, const BatchInput& in, size_t begin,
                    size_t end) const override;
  void MergeShard(ShardState& into, ShardState&& from) const override;
  void ApplyShards(const BatchInput& in, ShardState&& merged) override;

 protected:
  void OnBatch(const BatchInput& in) override;
  void OnEndInterval(size_t interval_index) override;

 private:
  size_t top_n_;
  sketch::H3Hash dst_hash_;
  std::unordered_map<uint32_t, sketch::DirectBitmap> fanout_;
  double rate_sum_ = 0.0;
  size_t rate_batches_ = 0;
  std::vector<Snapshot> snaps_;
};

// ---------------------------------------------------------------------------
// Factory for the standard query set (Table 2.2), by name.
// ---------------------------------------------------------------------------
std::unique_ptr<Query> MakeQuery(std::string_view name);
// The seven-query validation set of Ch. 3/4.
std::vector<std::string> StandardSevenQueryNames();
// The nine-query set of Table 5.2 (adds autofocus and super-sources).
std::vector<std::string> StandardNineQueryNames();
// All ten queries of Table 2.2.
std::vector<std::string> AllQueryNames();

}  // namespace shedmon::query
