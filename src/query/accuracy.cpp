#include "src/query/accuracy.h"

#include <algorithm>

#include "src/query/queries.h"
#include "src/trace/batch.h"
#include "src/util/stats.h"

namespace shedmon::query {

std::vector<std::unique_ptr<Query>> RunReference(const std::vector<std::string>& names,
                                                 const trace::Trace& trace, uint64_t bin_us) {
  std::vector<std::unique_ptr<Query>> queries;
  queries.reserve(names.size());
  for (const auto& name : names) {
    queries.push_back(MakeQuery(name));
  }

  trace::Batcher batcher(trace, bin_us);
  trace::Batch batch;
  std::vector<size_t> bins_in_interval(queries.size(), 0);
  while (batcher.Next(batch)) {
    BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
    for (size_t q = 0; q < queries.size(); ++q) {
      queries[q]->ProcessBatch(in);
      if (++bins_in_interval[q] >= queries[q]->interval_bins()) {
        queries[q]->EndInterval();
        bins_in_interval[q] = 0;
      }
    }
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    if (bins_in_interval[q] > 0) {
      queries[q]->EndInterval();
    }
  }
  return queries;
}

AccuracyRow SummarizeAccuracy(const Query& estimate, const Query& reference) {
  AccuracyRow row;
  row.query = estimate.name();
  util::RunningStats stats;
  const size_t n = std::min(estimate.completed_intervals(), reference.completed_intervals());
  for (size_t i = 0; i < n; ++i) {
    stats.Add(estimate.IntervalError(reference, i));
  }
  row.mean_error = stats.mean();
  row.stdev_error = stats.stdev();
  return row;
}

std::vector<double> ErrorSeries(const Query& estimate, const Query& reference) {
  std::vector<double> series;
  const size_t n = std::min(estimate.completed_intervals(), reference.completed_intervals());
  series.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    series.push_back(estimate.IntervalError(reference, i));
  }
  return series;
}

}  // namespace shedmon::query
