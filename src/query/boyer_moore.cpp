#include "src/query/boyer_moore.h"

#include <stdexcept>

namespace shedmon::query {

BoyerMoore::BoyerMoore(std::string pattern) : pattern_(std::move(pattern)) {
  if (pattern_.empty()) {
    throw std::invalid_argument("BoyerMoore: empty pattern");
  }
  const size_t m = pattern_.size();

  // Bad-character rule: shift so the mismatching text byte aligns with its
  // rightmost occurrence in the pattern.
  bad_char_.fill(m);
  for (size_t i = 0; i + 1 < m; ++i) {
    bad_char_[static_cast<uint8_t>(pattern_[i])] = m - 1 - i;
  }

  // Good-suffix rule (standard two-pass construction over pattern borders).
  good_suffix_.assign(m + 1, m);
  std::vector<size_t> border(m + 1, 0);
  size_t i = m;
  size_t j = m + 1;
  border[i] = j;
  while (i > 0) {
    while (j <= m && pattern_[i - 1] != pattern_[j - 1]) {
      if (good_suffix_[j] == m) {
        good_suffix_[j] = j - i;
      }
      j = border[j];
    }
    --i;
    --j;
    border[i] = j;
  }
  j = border[0];
  for (i = 0; i <= m; ++i) {
    if (good_suffix_[i] == m) {
      good_suffix_[i] = j;
    }
    if (i == j) {
      j = border[j];
    }
  }
}

size_t BoyerMoore::Find(const uint8_t* text, size_t len) const {
  const size_t m = pattern_.size();
  if (len < m) {
    return kNpos;
  }
  size_t s = 0;
  while (s <= len - m) {
    size_t j = m;
    while (j > 0 && static_cast<uint8_t>(pattern_[j - 1]) == text[s + j - 1]) {
      --j;
    }
    if (j == 0) {
      return s;
    }
    const size_t bc = bad_char_[text[s + j - 1]];
    const size_t gs = good_suffix_[j];
    const size_t bc_shift = bc > (m - j) ? bc - (m - j) : 1;
    s += std::max(gs, bc_shift);
  }
  return kNpos;
}

size_t BoyerMoore::CountOccurrences(const uint8_t* text, size_t len) const {
  size_t count = 0;
  size_t offset = 0;
  while (offset < len) {
    const size_t pos = Find(text + offset, len - offset);
    if (pos == kNpos) {
      break;
    }
    ++count;
    offset += pos + 1;
  }
  return count;
}

}  // namespace shedmon::query
