#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/query/query.h"
#include "src/trace/generator.h"

namespace shedmon::query {

// Runs fresh instances of the named queries over the full, unsampled trace;
// the returned instances hold the ground-truth per-interval results every
// accuracy comparison in the paper is measured against (§2.2.1: "the actual
// value in our experiments is obtained from a complete packet trace").
std::vector<std::unique_ptr<Query>> RunReference(const std::vector<std::string>& names,
                                                 const trace::Trace& trace,
                                                 uint64_t bin_us = 100'000);

// Per-query accuracy summary between a shed run and its reference.
struct AccuracyRow {
  std::string query;
  double mean_error = 0.0;
  double stdev_error = 0.0;
};

AccuracyRow SummarizeAccuracy(const Query& estimate, const Query& reference);

// Per-interval error series (Fig. 5.5-style time series).
std::vector<double> ErrorSeries(const Query& estimate, const Query& reference);

}  // namespace shedmon::query
