#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shedmon::query {

// Boyer-Moore exact string search (bad-character + good-suffix rules), the
// algorithm the pattern-search and p2p-detector queries use in the thesis
// ([23] in its bibliography). Cost is linear in the scanned bytes, which is
// exactly the property that makes those queries' CPU usage track the byte
// count feature (Table 3.2).
class BoyerMoore {
 public:
  explicit BoyerMoore(std::string pattern);

  // Byte offset of the first occurrence, or npos.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t Find(const uint8_t* text, size_t len) const;
  bool Contains(const uint8_t* text, size_t len) const { return Find(text, len) != kNpos; }

  // Number of (possibly overlapping) occurrences.
  size_t CountOccurrences(const uint8_t* text, size_t len) const;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
  std::array<size_t, 256> bad_char_;
  std::vector<size_t> good_suffix_;
};

}  // namespace shedmon::query
