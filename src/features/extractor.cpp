#include "src/features/extractor.h"

#include <algorithm>

namespace shedmon::features {

namespace {
template <size_t... I>
std::array<sketch::H3Hash, sizeof...(I)> MakeHashes(uint64_t seed, std::index_sequence<I...>) {
  return {sketch::H3Hash(AggregateHashSeed(seed, static_cast<Aggregate>(I)))...};
}

std::array<sketch::MultiResBitmap, kNumAggregates> MakeBitmaps(const FeatureExtractor::Config& c) {
  std::array<sketch::MultiResBitmap, kNumAggregates> out{
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits)};
  return out;
}
}  // namespace

FeatureExtractor::FeatureExtractor() : FeatureExtractor(Config()) {}

FeatureExtractor::FeatureExtractor(const Config& config)
    : config_(config),
      fused_(MakeAggregateHasher(config.seed)),
      batch_bm_(MakeBitmaps(config)),
      interval_bm_(MakeBitmaps(config)) {}

void FeatureExtractor::StartInterval() {
  for (auto& bm : interval_bm_) {
    bm.Clear();
  }
}

FeatureVector FeatureExtractor::Extract(const trace::PacketVec& packets) {
  double bytes = 0.0;
  for (auto& bm : batch_bm_) {
    bm.Clear();
  }

  // Size the batch-local tuple set to keep the load factor under one half.
  size_t cap = 64;
  while (cap < 2 * packets.size()) {
    cap <<= 1;
  }
  if (seen_.size() < cap) {
    seen_.assign(cap, DedupeSlot{});
  }
  const size_t mask = seen_.size() - 1;
  const uint64_t epoch = ++seen_epoch_;
  const net::FiveTupleHash fingerprint;

  std::array<uint64_t, kNumAggregates> h;
  for (const net::Packet& pkt : packets) {
    bytes += pkt.rec->wire_len;
    const net::FiveTuple& t = pkt.rec->tuple;

    size_t idx = fingerprint(t) & mask;
    bool repeated = false;
    while (seen_[idx].epoch == epoch) {
      if (seen_[idx].tuple == t) {
        repeated = true;
        break;
      }
      idx = (idx + 1) & mask;
    }
    if (repeated) {
      continue;  // every aggregate key of this packet is already counted
    }
    seen_[idx].epoch = epoch;
    seen_[idx].tuple = t;

    const auto key = t.Bytes();
    fused_.HashAllFixed<13, kNumAggregates>(key.data(), h);
    for (size_t a = 0; a < kNumAggregates; ++a) {
      batch_bm_[a].Insert(h[a]);
    }
  }
  return Finalize(static_cast<double>(packets.size()), bytes);
}

FeatureVector FeatureExtractor::ExtractReference(const trace::PacketVec& packets) {
  if (!ref_hashes_) {
    ref_hashes_ = std::make_unique<std::array<sketch::H3Hash, kNumAggregates>>(
        MakeHashes(config_.seed, std::make_index_sequence<kNumAggregates>()));
  }
  const auto& hashes = *ref_hashes_;
  double bytes = 0.0;
  for (auto& bm : batch_bm_) {
    bm.Clear();
  }

  uint8_t key[13];
  for (const net::Packet& pkt : packets) {
    bytes += pkt.rec->wire_len;
    const net::FiveTuple& t = pkt.rec->tuple;
    for (int a = 0; a < kNumAggregates; ++a) {
      const size_t len = AggregateKey(t, static_cast<Aggregate>(a), key);
      const uint64_t h = hashes[static_cast<size_t>(a)].Hash(key, len);
      batch_bm_[static_cast<size_t>(a)].Insert(h);
    }
  }
  return Finalize(static_cast<double>(packets.size()), bytes);
}

FeatureVector FeatureExtractor::Finalize(double pkts, double bytes) {
  FeatureVector f{};
  f[kFeatPackets] = pkts;
  f[kFeatBytes] = bytes;

  for (int a = 0; a < kNumAggregates; ++a) {
    const auto agg = static_cast<Aggregate>(a);
    const auto& batch = batch_bm_[static_cast<size_t>(a)];
    auto& interval = interval_bm_[static_cast<size_t>(a)];

    const double unique = std::min(batch.Estimate(), pkts);
    const double fresh = std::min(interval.CountNew(batch), unique);
    interval.Union(batch);

    f[FeatureIndex(agg, Counter::kUnique)] = unique;
    f[FeatureIndex(agg, Counter::kNew)] = fresh;
    f[FeatureIndex(agg, Counter::kRepeatedBatch)] = std::max(0.0, pkts - unique);
    f[FeatureIndex(agg, Counter::kRepeatedInterval)] = std::max(0.0, pkts - fresh);
  }
  return f;
}

}  // namespace shedmon::features
