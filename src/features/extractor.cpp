#include "src/features/extractor.h"

#include <algorithm>

namespace shedmon::features {

namespace {
template <size_t... I>
std::array<sketch::H3Hash, sizeof...(I)> MakeHashes(uint64_t seed, std::index_sequence<I...>) {
  return {sketch::H3Hash(seed + 0x9e37 * (I + 1))...};
}

std::array<sketch::MultiResBitmap, kNumAggregates> MakeBitmaps(const FeatureExtractor::Config& c) {
  std::array<sketch::MultiResBitmap, kNumAggregates> out{
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits),
      sketch::MultiResBitmap(c.mrb_components, c.mrb_bits)};
  return out;
}
}  // namespace

FeatureExtractor::FeatureExtractor() : FeatureExtractor(Config()) {}

FeatureExtractor::FeatureExtractor(const Config& config)
    : config_(config),
      hashes_(MakeHashes(config.seed, std::make_index_sequence<kNumAggregates>())),
      batch_bm_(MakeBitmaps(config)),
      interval_bm_(MakeBitmaps(config)) {}

void FeatureExtractor::StartInterval() {
  for (auto& bm : interval_bm_) {
    bm.Clear();
  }
}

FeatureVector FeatureExtractor::Extract(const trace::PacketVec& packets) {
  FeatureVector f{};
  double bytes = 0.0;
  for (auto& bm : batch_bm_) {
    bm.Clear();
  }

  uint8_t key[13];
  for (const net::Packet& pkt : packets) {
    bytes += pkt.rec->wire_len;
    const net::FiveTuple& t = pkt.rec->tuple;
    for (int a = 0; a < kNumAggregates; ++a) {
      const size_t len = AggregateKey(t, static_cast<Aggregate>(a), key);
      const uint64_t h = hashes_[static_cast<size_t>(a)].Hash(key, len);
      batch_bm_[static_cast<size_t>(a)].Insert(h);
    }
  }

  const double pkts = static_cast<double>(packets.size());
  f[kFeatPackets] = pkts;
  f[kFeatBytes] = bytes;

  for (int a = 0; a < kNumAggregates; ++a) {
    const auto agg = static_cast<Aggregate>(a);
    const auto& batch = batch_bm_[static_cast<size_t>(a)];
    auto& interval = interval_bm_[static_cast<size_t>(a)];

    const double unique = std::min(batch.Estimate(), pkts);
    const double fresh = std::min(interval.CountNew(batch), unique);
    interval.Union(batch);

    f[FeatureIndex(agg, Counter::kUnique)] = unique;
    f[FeatureIndex(agg, Counter::kNew)] = fresh;
    f[FeatureIndex(agg, Counter::kRepeatedBatch)] = std::max(0.0, pkts - unique);
    f[FeatureIndex(agg, Counter::kRepeatedInterval)] = std::max(0.0, pkts - fresh);
  }
  return f;
}

}  // namespace shedmon::features
