#pragma once

#include <array>
#include <memory>

#include "src/features/features.h"
#include "src/sketch/bitmap.h"
#include "src/sketch/h3.h"
#include "src/trace/batch.h"

namespace shedmon::features {

// Extracts the 42-feature vector from a batch of packets using
// multi-resolution bitmaps (§3.2.1): one bitmap per aggregate for the batch
// ("unique") and one persisting across the measurement interval ("new", via
// the bitwise-OR merge). Worst-case per-packet cost is deterministic: ten H3
// hashes and ten bitmap inserts.
class FeatureExtractor {
 public:
  struct Config {
    uint32_t mrb_components = 12;
    uint32_t mrb_bits = 512;
    uint64_t seed = 0x5eed;
  };

  FeatureExtractor();
  explicit FeatureExtractor(const Config& config);

  // Resets the per-interval state ("new"-item bitmaps). Call at every
  // measurement-interval boundary.
  void StartInterval();

  // Computes the feature vector for the given packets and folds their keys
  // into the interval state.
  FeatureVector Extract(const trace::PacketVec& packets);

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::array<sketch::H3Hash, kNumAggregates> hashes_;
  std::array<sketch::MultiResBitmap, kNumAggregates> batch_bm_;
  std::array<sketch::MultiResBitmap, kNumAggregates> interval_bm_;
};

}  // namespace shedmon::features
