#pragma once

#include <array>
#include <memory>
#include <vector>

#include "src/features/features.h"
#include "src/sketch/bitmap.h"
#include "src/sketch/fused_hash.h"
#include "src/sketch/h3.h"
#include "src/trace/batch.h"

namespace shedmon::features {

// Extracts the 42-feature vector from a batch of packets using
// multi-resolution bitmaps (§3.2.1): one bitmap per aggregate for the batch
// ("unique") and one persisting across the measurement interval ("new", via
// the bitwise-OR merge). Worst-case per-packet cost is deterministic: one
// fused table pass yielding all ten per-aggregate H3 hashes, plus ten bitmap
// inserts.
class FeatureExtractor {
 public:
  struct Config {
    uint32_t mrb_components = 12;
    uint32_t mrb_bits = 512;
    uint64_t seed = 0x5eed;
  };

  FeatureExtractor();
  explicit FeatureExtractor(const Config& config);

  // Resets the per-interval state ("new"-item bitmaps). Call at every
  // measurement-interval boundary.
  void StartInterval();

  // Computes the feature vector for the given packets and folds their keys
  // into the interval state. Uses the fused one-pass hasher, and skips the
  // hash-and-insert work entirely for packets whose 5-tuple already appeared
  // in this batch: all ten bitmaps are set-based, so re-inserting a seen key
  // cannot change any counter, and the packet/byte totals are accumulated
  // independently. Output is bit-identical to ExtractReference.
  FeatureVector Extract(const trace::PacketVec& packets);

  // Pre-fusion reference implementation: per-aggregate key materialization
  // and one H3 hash per aggregate per packet. Bit-identical to Extract();
  // kept for the equivalence tests and the fused-vs-unfused benchmark A/B.
  FeatureVector ExtractReference(const trace::PacketVec& packets);

  const Config& config() const { return config_; }

 private:
  // Counter computation + interval fold shared by both extraction paths.
  FeatureVector Finalize(double pkts, double bytes);

  // Open-addressing batch-local tuple set, epoch-stamped so it is reset by
  // bumping a counter instead of clearing the table. Worst case (all tuples
  // distinct) stays the deterministic hash+insert bound; repeated tuples
  // cost one probe.
  struct DedupeSlot {
    uint64_t epoch = 0;
    net::FiveTuple tuple;
  };

  Config config_;
  sketch::FusedTupleHasher fused_;
  // Per-aggregate H3 functions of the reference path, built on first
  // ExtractReference call: production extractors never pay for the ten
  // seeded tables only the tests and the benchmark A/B read.
  std::unique_ptr<std::array<sketch::H3Hash, kNumAggregates>> ref_hashes_;
  std::array<sketch::MultiResBitmap, kNumAggregates> batch_bm_;
  std::array<sketch::MultiResBitmap, kNumAggregates> interval_bm_;
  std::vector<DedupeSlot> seen_;
  uint64_t seen_epoch_ = 0;
};

}  // namespace shedmon::features
