#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "src/net/packet.h"
#include "src/sketch/fused_hash.h"

namespace shedmon::features {

// The paper extracts, per batch: packet and byte totals plus four counters
// ({unique, new, repeated-in-batch, repeated-in-interval}) over the ten
// TCP/IP header aggregates of Table 3.1 — 42 features in total.
inline constexpr int kNumAggregates = 10;
inline constexpr int kCountersPerAggregate = 4;
inline constexpr int kNumFeatures = 2 + kNumAggregates * kCountersPerAggregate;

inline constexpr int kFeatPackets = 0;
inline constexpr int kFeatBytes = 1;

enum class Counter : int { kUnique = 0, kNew = 1, kRepeatedBatch = 2, kRepeatedInterval = 3 };

// Aggregates of Table 3.1, in order.
enum class Aggregate : int {
  kSrcIp = 0,
  kDstIp,
  kProto,
  kSrcDstIp,
  kSrcPortProto,
  kDstPortProto,
  kSrcIpSrcPortProto,
  kDstIpDstPortProto,
  kSrcDstPortProto,
  kFiveTuple,
};

constexpr int FeatureIndex(Aggregate agg, Counter c) {
  return 2 + static_cast<int>(agg) * kCountersPerAggregate + static_cast<int>(c);
}

// Convenience indices used by predictors and tests.
inline constexpr int kFeatNewFiveTuple = FeatureIndex(Aggregate::kFiveTuple, Counter::kNew);
inline constexpr int kFeatUniqueFiveTuple = FeatureIndex(Aggregate::kFiveTuple, Counter::kUnique);
inline constexpr int kFeatNewDstIpPortProto =
    FeatureIndex(Aggregate::kDstIpDstPortProto, Counter::kNew);

using FeatureVector = std::array<double, kNumFeatures>;

std::string_view FeatureName(int index);
std::string_view AggregateName(Aggregate agg);

// Serializes the aggregate's key bytes for a tuple; returns the key length.
size_t AggregateKey(const net::FiveTuple& tuple, Aggregate agg, uint8_t out[13]);

// Byte positions of the aggregate's key inside the canonical 13-byte
// FiveTuple::Bytes() serialization, in AggregateKey order. Every aggregate
// key is a subsequence of the canonical serialization, which is what lets
// the fused hasher compute all ten per-aggregate hashes in one pass.
std::span<const uint8_t> AggregateByteIndices(Aggregate agg);

// Seed of the aggregate's H3 function, derived from the extractor's base
// seed. Single source of truth for the fused and per-aggregate paths.
constexpr uint64_t AggregateHashSeed(uint64_t base_seed, Aggregate agg) {
  return base_seed + 0x9e37 * (static_cast<uint64_t>(agg) + 1);
}

// One-pass hasher producing all kNumAggregates hash values of a tuple's
// canonical serialization, bit-identical to hashing AggregateKey(t, a) with
// H3Hash(AggregateHashSeed(base_seed, a)) for each aggregate a.
sketch::FusedTupleHasher MakeAggregateHasher(uint64_t base_seed);

}  // namespace shedmon::features
