#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "src/net/packet.h"

namespace shedmon::features {

// The paper extracts, per batch: packet and byte totals plus four counters
// ({unique, new, repeated-in-batch, repeated-in-interval}) over the ten
// TCP/IP header aggregates of Table 3.1 — 42 features in total.
inline constexpr int kNumAggregates = 10;
inline constexpr int kCountersPerAggregate = 4;
inline constexpr int kNumFeatures = 2 + kNumAggregates * kCountersPerAggregate;

inline constexpr int kFeatPackets = 0;
inline constexpr int kFeatBytes = 1;

enum class Counter : int { kUnique = 0, kNew = 1, kRepeatedBatch = 2, kRepeatedInterval = 3 };

// Aggregates of Table 3.1, in order.
enum class Aggregate : int {
  kSrcIp = 0,
  kDstIp,
  kProto,
  kSrcDstIp,
  kSrcPortProto,
  kDstPortProto,
  kSrcIpSrcPortProto,
  kDstIpDstPortProto,
  kSrcDstPortProto,
  kFiveTuple,
};

constexpr int FeatureIndex(Aggregate agg, Counter c) {
  return 2 + static_cast<int>(agg) * kCountersPerAggregate + static_cast<int>(c);
}

// Convenience indices used by predictors and tests.
inline constexpr int kFeatNewFiveTuple = FeatureIndex(Aggregate::kFiveTuple, Counter::kNew);
inline constexpr int kFeatUniqueFiveTuple = FeatureIndex(Aggregate::kFiveTuple, Counter::kUnique);
inline constexpr int kFeatNewDstIpPortProto =
    FeatureIndex(Aggregate::kDstIpDstPortProto, Counter::kNew);

using FeatureVector = std::array<double, kNumFeatures>;

std::string_view FeatureName(int index);
std::string_view AggregateName(Aggregate agg);

// Serializes the aggregate's key bytes for a tuple; returns the key length.
size_t AggregateKey(const net::FiveTuple& tuple, Aggregate agg, uint8_t out[13]);

}  // namespace shedmon::features
