#include "src/features/features.h"

#include <cstring>
#include <vector>

namespace shedmon::features {

std::string_view AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kSrcIp:
      return "src-ip";
    case Aggregate::kDstIp:
      return "dst-ip";
    case Aggregate::kProto:
      return "proto";
    case Aggregate::kSrcDstIp:
      return "src-dst-ip";
    case Aggregate::kSrcPortProto:
      return "src-port-proto";
    case Aggregate::kDstPortProto:
      return "dst-port-proto";
    case Aggregate::kSrcIpSrcPortProto:
      return "src-ip-port-proto";
    case Aggregate::kDstIpDstPortProto:
      return "dst-ip-port-proto";
    case Aggregate::kSrcDstPortProto:
      return "src-dst-port-proto";
    case Aggregate::kFiveTuple:
      return "5-tuple";
  }
  return "unknown";
}

namespace {
std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kUnique:
      return "unique";
    case Counter::kNew:
      return "new";
    case Counter::kRepeatedBatch:
      return "rep-batch";
    case Counter::kRepeatedInterval:
      return "rep-interval";
  }
  return "unknown";
}

// Static storage for composed feature names, built once.
const std::array<std::string, kNumFeatures>& AllNames() {
  static const std::array<std::string, kNumFeatures> names = [] {
    std::array<std::string, kNumFeatures> out;
    out[kFeatPackets] = "packets";
    out[kFeatBytes] = "bytes";
    for (int a = 0; a < kNumAggregates; ++a) {
      for (int c = 0; c < kCountersPerAggregate; ++c) {
        const auto agg = static_cast<Aggregate>(a);
        const auto cnt = static_cast<Counter>(c);
        out[FeatureIndex(agg, cnt)] =
            std::string(CounterName(cnt)) + "_" + std::string(AggregateName(agg));
      }
    }
    return out;
  }();
  return names;
}
}  // namespace

std::string_view FeatureName(int index) {
  if (index < 0 || index >= kNumFeatures) {
    return "invalid";
  }
  return AllNames()[static_cast<size_t>(index)];
}

namespace {
// Positions inside FiveTuple::Bytes(): src_ip 0-3, dst_ip 4-7, src_port 8-9,
// dst_port 10-11, proto 12 — mirroring the memcpy layout of AggregateKey.
constexpr uint8_t kSrcIpBytes[] = {0, 1, 2, 3};
constexpr uint8_t kDstIpBytes[] = {4, 5, 6, 7};
constexpr uint8_t kProtoBytes[] = {12};
constexpr uint8_t kSrcDstIpBytes[] = {0, 1, 2, 3, 4, 5, 6, 7};
constexpr uint8_t kSrcPortProtoBytes[] = {8, 9, 12};
constexpr uint8_t kDstPortProtoBytes[] = {10, 11, 12};
constexpr uint8_t kSrcIpSrcPortProtoBytes[] = {0, 1, 2, 3, 8, 9, 12};
constexpr uint8_t kDstIpDstPortProtoBytes[] = {4, 5, 6, 7, 10, 11, 12};
constexpr uint8_t kSrcDstPortProtoBytes[] = {8, 9, 10, 11, 12};
constexpr uint8_t kFiveTupleBytes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}  // namespace

std::span<const uint8_t> AggregateByteIndices(Aggregate agg) {
  switch (agg) {
    case Aggregate::kSrcIp:
      return kSrcIpBytes;
    case Aggregate::kDstIp:
      return kDstIpBytes;
    case Aggregate::kProto:
      return kProtoBytes;
    case Aggregate::kSrcDstIp:
      return kSrcDstIpBytes;
    case Aggregate::kSrcPortProto:
      return kSrcPortProtoBytes;
    case Aggregate::kDstPortProto:
      return kDstPortProtoBytes;
    case Aggregate::kSrcIpSrcPortProto:
      return kSrcIpSrcPortProtoBytes;
    case Aggregate::kDstIpDstPortProto:
      return kDstIpDstPortProtoBytes;
    case Aggregate::kSrcDstPortProto:
      return kSrcDstPortProtoBytes;
    case Aggregate::kFiveTuple:
      return kFiveTupleBytes;
  }
  return {};
}

sketch::FusedTupleHasher MakeAggregateHasher(uint64_t base_seed) {
  std::vector<sketch::FusedTupleHasher::SubHash> subs;
  subs.reserve(kNumAggregates);
  for (int a = 0; a < kNumAggregates; ++a) {
    const auto agg = static_cast<Aggregate>(a);
    const auto bytes = AggregateByteIndices(agg);
    subs.push_back({AggregateHashSeed(base_seed, agg),
                    std::vector<uint8_t>(bytes.begin(), bytes.end())});
  }
  return sketch::FusedTupleHasher(13, subs);
}

size_t AggregateKey(const net::FiveTuple& t, Aggregate agg, uint8_t out[13]) {
  switch (agg) {
    case Aggregate::kSrcIp:
      std::memcpy(out, &t.src_ip, 4);
      return 4;
    case Aggregate::kDstIp:
      std::memcpy(out, &t.dst_ip, 4);
      return 4;
    case Aggregate::kProto:
      out[0] = t.proto;
      return 1;
    case Aggregate::kSrcDstIp:
      std::memcpy(out, &t.src_ip, 4);
      std::memcpy(out + 4, &t.dst_ip, 4);
      return 8;
    case Aggregate::kSrcPortProto:
      std::memcpy(out, &t.src_port, 2);
      out[2] = t.proto;
      return 3;
    case Aggregate::kDstPortProto:
      std::memcpy(out, &t.dst_port, 2);
      out[2] = t.proto;
      return 3;
    case Aggregate::kSrcIpSrcPortProto:
      std::memcpy(out, &t.src_ip, 4);
      std::memcpy(out + 4, &t.src_port, 2);
      out[6] = t.proto;
      return 7;
    case Aggregate::kDstIpDstPortProto:
      std::memcpy(out, &t.dst_ip, 4);
      std::memcpy(out + 4, &t.dst_port, 2);
      out[6] = t.proto;
      return 7;
    case Aggregate::kSrcDstPortProto:
      std::memcpy(out, &t.src_port, 2);
      std::memcpy(out + 2, &t.dst_port, 2);
      out[4] = t.proto;
      return 5;
    case Aggregate::kFiveTuple: {
      const auto bytes = t.Bytes();
      std::memcpy(out, bytes.data(), bytes.size());
      return bytes.size();
    }
  }
  return 0;
}

}  // namespace shedmon::features
