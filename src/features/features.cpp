#include "src/features/features.h"

#include <cstring>

namespace shedmon::features {

std::string_view AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kSrcIp:
      return "src-ip";
    case Aggregate::kDstIp:
      return "dst-ip";
    case Aggregate::kProto:
      return "proto";
    case Aggregate::kSrcDstIp:
      return "src-dst-ip";
    case Aggregate::kSrcPortProto:
      return "src-port-proto";
    case Aggregate::kDstPortProto:
      return "dst-port-proto";
    case Aggregate::kSrcIpSrcPortProto:
      return "src-ip-port-proto";
    case Aggregate::kDstIpDstPortProto:
      return "dst-ip-port-proto";
    case Aggregate::kSrcDstPortProto:
      return "src-dst-port-proto";
    case Aggregate::kFiveTuple:
      return "5-tuple";
  }
  return "unknown";
}

namespace {
std::string_view CounterName(Counter c) {
  switch (c) {
    case Counter::kUnique:
      return "unique";
    case Counter::kNew:
      return "new";
    case Counter::kRepeatedBatch:
      return "rep-batch";
    case Counter::kRepeatedInterval:
      return "rep-interval";
  }
  return "unknown";
}

// Static storage for composed feature names, built once.
const std::array<std::string, kNumFeatures>& AllNames() {
  static const std::array<std::string, kNumFeatures> names = [] {
    std::array<std::string, kNumFeatures> out;
    out[kFeatPackets] = "packets";
    out[kFeatBytes] = "bytes";
    for (int a = 0; a < kNumAggregates; ++a) {
      for (int c = 0; c < kCountersPerAggregate; ++c) {
        const auto agg = static_cast<Aggregate>(a);
        const auto cnt = static_cast<Counter>(c);
        out[FeatureIndex(agg, cnt)] =
            std::string(CounterName(cnt)) + "_" + std::string(AggregateName(agg));
      }
    }
    return out;
  }();
  return names;
}
}  // namespace

std::string_view FeatureName(int index) {
  if (index < 0 || index >= kNumFeatures) {
    return "invalid";
  }
  return AllNames()[static_cast<size_t>(index)];
}

size_t AggregateKey(const net::FiveTuple& t, Aggregate agg, uint8_t out[13]) {
  switch (agg) {
    case Aggregate::kSrcIp:
      std::memcpy(out, &t.src_ip, 4);
      return 4;
    case Aggregate::kDstIp:
      std::memcpy(out, &t.dst_ip, 4);
      return 4;
    case Aggregate::kProto:
      out[0] = t.proto;
      return 1;
    case Aggregate::kSrcDstIp:
      std::memcpy(out, &t.src_ip, 4);
      std::memcpy(out + 4, &t.dst_ip, 4);
      return 8;
    case Aggregate::kSrcPortProto:
      std::memcpy(out, &t.src_port, 2);
      out[2] = t.proto;
      return 3;
    case Aggregate::kDstPortProto:
      std::memcpy(out, &t.dst_port, 2);
      out[2] = t.proto;
      return 3;
    case Aggregate::kSrcIpSrcPortProto:
      std::memcpy(out, &t.src_ip, 4);
      std::memcpy(out + 4, &t.src_port, 2);
      out[6] = t.proto;
      return 7;
    case Aggregate::kDstIpDstPortProto:
      std::memcpy(out, &t.dst_ip, 4);
      std::memcpy(out + 4, &t.dst_port, 2);
      out[6] = t.proto;
      return 7;
    case Aggregate::kSrcDstPortProto:
      std::memcpy(out, &t.src_port, 2);
      std::memcpy(out + 2, &t.dst_port, 2);
      out[4] = t.proto;
      return 5;
    case Aggregate::kFiveTuple: {
      const auto bytes = t.Bytes();
      std::memcpy(out, bytes.data(), bytes.size());
      return bytes.size();
    }
  }
  return 0;
}

}  // namespace shedmon::features
