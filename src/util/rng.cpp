#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shedmon::util {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashU64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) {
    s = SplitMix64(state);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  return NextU64() % n;
}

double Rng::NextExponential(double rate) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

double Rng::NextBoundedPareto(double lo, double hi, double alpha) {
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  return std::clamp(x, lo, hi);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler needs at least one item");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace shedmon::util
