#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace shedmon::util {

// SplitMix64: used for seeding and cheap stateless hashing of integers.
uint64_t SplitMix64(uint64_t& state);
uint64_t HashU64(uint64_t x);

// xoshiro256** — fast, high-quality PRNG; all randomness in the library flows
// through explicitly seeded instances so every experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n);
  // Exponential with the given rate (mean 1 / rate).
  double NextExponential(double rate);
  // Bounded Pareto on [lo, hi] with tail index alpha (heavy-tailed flow
  // lengths and on/off burst durations).
  double NextBoundedPareto(double lo, double hi, double alpha);
  // Standard normal via Box-Muller.
  double NextGaussian();

  // Raw xoshiro256** state, for snapshot/restore: SetState(State()) on a
  // second instance makes it emit the exact same sequence from here on.
  std::array<uint64_t, 4> State() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void SetState(const std::array<uint64_t, 4>& s) {
    for (size_t i = 0; i < 4; ++i) {
      s_[i] = s[i];
    }
  }

 private:
  uint64_t s_[4];
};

// Zipf-like categorical sampler over `n` items with exponent `s`, backed by a
// precomputed cumulative table (address and port popularity pools).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);
  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace shedmon::util
