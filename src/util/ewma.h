#pragma once

namespace shedmon::util {

// Exponentially weighted moving average: v <- alpha * x + (1 - alpha) * v.
// The first observation seeds the average, matching how the paper's error and
// overhead smoothers start from the first measured value (§4.3).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  Ewma(double alpha, double initial) : alpha_(alpha), value_(initial), seeded_(true) {}

  void Update(double x) {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  double value() const { return value_; }
  bool seeded() const { return seeded_; }
  double alpha() const { return alpha_; }

  void Reset() {
    value_ = 0.0;
    seeded_ = false;
  }

  // Snapshot/restore: reinstates a saved (value, seeded) pair so the smoother
  // continues exactly where the saved instance stopped.
  void Restore(double value, bool seeded) {
    value_ = value;
    seeded_ = seeded;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace shedmon::util
