#pragma once

// Clang thread-safety annotation macros (a compile-time race detector that
// complements the TSan CI leg). On clang builds the analysis is promoted to
// an error (-Werror=thread-safety in cmake/ShedmonCompileOptions.cmake); on
// other compilers every macro expands to nothing.
//
// libstdc++'s std::mutex/std::lock_guard carry no capability attributes, so
// annotating raw standard types buys nothing there. Mutex-protected state in
// shedmon therefore uses the annotated wrappers in src/util/sync.h
// (util::Mutex / util::MutexLock / util::CondVar), and these macros on the
// guarded members and on functions with locking contracts:
//
//   class Account {
//     util::Mutex mutex_;
//     double balance_ SHEDMON_GUARDED_BY(mutex_);
//     void RecomputeLocked() SHEDMON_REQUIRES(mutex_);
//     void Deposit(double amount) SHEDMON_EXCLUDES(mutex_);
//   };

#if defined(__clang__) && !defined(SWIG)
#define SHEDMON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SHEDMON_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// On a data member: may only be read or written while holding `x`.
#define SHEDMON_GUARDED_BY(x) SHEDMON_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer itself) is
// protected by `x`.
#define SHEDMON_PT_GUARDED_BY(x) SHEDMON_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: the caller must hold the listed capabilities on entry (and
// still holds them on exit).
#define SHEDMON_REQUIRES(...) \
  SHEDMON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed capabilities (the
// function acquires them itself; calling with them held would deadlock).
#define SHEDMON_EXCLUDES(...) SHEDMON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: acquires / releases the listed capabilities.
#define SHEDMON_ACQUIRE(...) SHEDMON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SHEDMON_RELEASE(...) SHEDMON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SHEDMON_TRY_ACQUIRE(...) \
  SHEDMON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On a class: instances are a capability (something that can be held).
#define SHEDMON_CAPABILITY(x) SHEDMON_THREAD_ANNOTATION(capability(x))

// On a class: RAII object that holds a capability for its lifetime.
#define SHEDMON_SCOPED_CAPABILITY SHEDMON_THREAD_ANNOTATION(scoped_lockable)

// On a member mutex: documents (and enforces) lock-ordering between mutexes.
#define SHEDMON_ACQUIRED_AFTER(...) \
  SHEDMON_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SHEDMON_ACQUIRED_BEFORE(...) \
  SHEDMON_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

// On a function: returns a reference to the given capability (accessors that
// expose a mutex for callers to lock).
#define SHEDMON_RETURN_CAPABILITY(x) SHEDMON_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot follow (e.g. adopting a lock
// held through a foreign handle). Use sparingly and leave a comment.
#define SHEDMON_NO_THREAD_SAFETY_ANALYSIS \
  SHEDMON_THREAD_ANNOTATION(no_thread_safety_analysis)
