#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shedmon::util {

// Streaming mean / standard deviation (Welford) with min/max tracking.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample standard deviation (n - 1 denominator), as reported in the paper's
  // "mean +/- stdev" tables.
  double stdev() const;
  double variance() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// p in [0, 1]; linear interpolation between closest ranks. Sorts a copy.
double Percentile(std::vector<double> values, double p);

// Empirical CDF evaluated at `points` equally spaced values between the min
// and max of the sample. Returns (x, F(x)) pairs; used by the Fig. 4.1 bench.
struct CdfPoint {
  double x;
  double f;
};
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values, size_t points);

// |1 - estimate/actual|, the paper's relative error (§2.2.1). Returns 0 when
// both are zero and 1 when only the actual is zero.
double RelativeError(double estimate, double actual);

// Pearson linear correlation coefficient (eq. 3.3). Returns 0 when either
// series is (numerically) constant.
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace shedmon::util
