#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

namespace shedmon::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (size_t c = 0; c < header_.size(); ++c) {
    rule += "  " + std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FmtSci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

}  // namespace shedmon::util
