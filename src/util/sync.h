#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace shedmon::util {

// Annotated wrappers over std::mutex / std::condition_variable so clang's
// thread-safety analysis (see thread_annotations.h) can see acquisitions.
// Zero-cost: every method is an inline forward to the standard primitive.
//
// CondVar deliberately has no predicate overload: the analysis cannot look
// inside a predicate lambda (it would warn on every guarded read there), so
// waits are written as explicit loops where the guarded reads are visibly
// under the caller's MutexLock:
//
//   util::MutexLock lock(mutex_);
//   while (queue_.empty() && !stop_) {
//     cv_.Wait(lock);
//   }

class SHEDMON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SHEDMON_ACQUIRE() { mu_.lock(); }
  void Unlock() SHEDMON_RELEASE() { mu_.unlock(); }
  bool TryLock() SHEDMON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; the analysis treats the scope of a MutexLock as "mutex held".
class SHEDMON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SHEDMON_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SHEDMON_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases the lock's mutex, blocks, and reacquires it before
  // returning. Spurious wakeups are possible; always wait in a loop. The
  // mutex is held across the call boundary from the analysis' point of view,
  // which matches how callers may treat it.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the MutexLock
  }

  // Timed variant: waits at most `us` microseconds. Returns false iff the
  // wait timed out; true means notified — or a spurious wakeup, so callers
  // re-check their predicate either way (poll loops simply fall through).
  bool WaitFor(MutexLock& lock, uint64_t us) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, std::chrono::microseconds(us));
    native.release();  // ownership stays with the MutexLock
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace shedmon::util
