#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace shedmon::util {

// Minimal aligned-column table printer for the bench harness output.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting helpers for table cells.
std::string Fmt(double value, int precision = 4);
std::string FmtPercent(double fraction, int precision = 2);
std::string FmtSci(double value, int precision = 3);

}  // namespace shedmon::util
