#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace shedmon::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values, size_t points) {
  std::vector<CdfPoint> cdf;
  if (values.empty() || points == 0) {
    return cdf;
  }
  std::sort(values.begin(), values.end());
  const double lo = values.front();
  const double hi = values.back();
  const double step = points > 1 ? (hi - lo) / static_cast<double>(points - 1) : 0.0;
  cdf.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const auto it = std::upper_bound(values.begin(), values.end(), x);
    const double f =
        static_cast<double>(it - values.begin()) / static_cast<double>(values.size());
    cdf.push_back({x, f});
  }
  return cdf;
}

double RelativeError(double estimate, double actual) {
  if (actual == 0.0) {
    return estimate == 0.0 ? 0.0 : 1.0;
  }
  return std::abs(1.0 - estimate / actual);
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) {
    return 0.0;
  }
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 1e-30 || syy <= 1e-30) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace shedmon::util
