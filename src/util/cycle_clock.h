#pragma once

#include <cstdint>

namespace shedmon::util {

// Reads the CPU time-stamp counter, the paper's cycle source (§3.2.4). On
// x86-64 this is `rdtsc`; elsewhere it falls back to the monotonic clock in
// nanoseconds, which preserves ordering and proportionality.
uint64_t ReadCycles();

// Approximate cycles per second of the cycle source. Calibrated once on first
// use against the steady clock; used to convert a real-time bin length into a
// per-bin cycle budget when running against live measurements.
double CyclesPerSecond();

// Monotonic wall-clock microseconds since an arbitrary per-process epoch.
// This is the one sanctioned wall-time source for observability-only
// measurement (task-duration histograms, trace span timestamps): values are
// written to metrics and traces but never read back by a decision path, so
// they cannot perturb a run. Anything that *decides* based on time (the
// deadline governor, retry backoff, bin pacing) must use the injectable
// rt::Clock instead — that is what keeps those decisions replayable under a
// ManualClock. Enforced by tools/lint/shedmon_lint.py's wall-clock rule.
uint64_t MonotonicNowUs();

// Scoped elapsed-cycle measurement around a region of code.
class CycleTimer {
 public:
  CycleTimer() : start_(ReadCycles()) {}

  uint64_t Elapsed() const {
    const uint64_t now = ReadCycles();
    return now >= start_ ? now - start_ : 0;
  }

  void Restart() { start_ = ReadCycles(); }

 private:
  uint64_t start_;
};

}  // namespace shedmon::util
