#include "src/util/cycle_clock.h"

#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define SHEDMON_HAVE_RDTSC 1
#endif

namespace shedmon::util {

uint64_t ReadCycles() {
#ifdef SHEDMON_HAVE_RDTSC
  return __rdtsc();
#else
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
#endif
}

namespace {

double CalibrateCyclesPerSecond() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const uint64_t c0 = ReadCycles();
  // Busy-wait a short, fixed wall-clock window; 5 ms keeps startup cheap while
  // giving a calibration error well below the noise of any experiment.
  while (Clock::now() - t0 < std::chrono::milliseconds(5)) {
  }
  const uint64_t c1 = ReadCycles();
  const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();
  if (dt <= 0.0 || c1 <= c0) {
    return 1e9;  // Nanosecond fallback source.
  }
  return static_cast<double>(c1 - c0) / dt;
}

}  // namespace

double CyclesPerSecond() {
  static const double rate = CalibrateCyclesPerSecond();
  return rate;
}

uint64_t MonotonicNowUs() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace shedmon::util
