#pragma once

#include <cstdint>

#include "src/sketch/h3.h"
#include "src/trace/batch.h"
#include "src/util/rng.h"

namespace shedmon::shed {

// Uniform random packet sampling (§4.2): each packet of the batch is kept
// independently with probability `rate`.
class PacketSampler {
 public:
  explicit PacketSampler(uint64_t seed) : rng_(seed) {}

  trace::PacketVec Sample(const trace::PacketVec& in, double rate);

 private:
  util::Rng rng_;
};

// Flowwise sampling ([43] + §4.2): a packet is kept iff the H3 hash of its
// 5-tuple falls below the sampling rate, so entire flows are kept or dropped
// coherently without caching flow keys. The hash function is redrawn every
// measurement interval to avoid bias and deliberate evasion.
class FlowSampler {
 public:
  explicit FlowSampler(uint64_t seed);

  void Reseed(uint64_t seed);

  trace::PacketVec Sample(const trace::PacketVec& in, double rate) const;

 private:
  sketch::H3Hash hash_;
};

}  // namespace shedmon::shed
