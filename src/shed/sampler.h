#pragma once

#include <array>
#include <cstdint>

#include "src/sketch/fused_hash.h"
#include "src/trace/batch.h"
#include "src/util/rng.h"

namespace shedmon::shed {

// Thread-safety contract (src/exec/ parallel pipelines): a sampler instance
// belongs to exactly one query runtime and is only ever driven by the worker
// executing that query's bin, so no internal locking is needed. PacketSampler
// advances its own RNG per call; FlowSampler::SampleInto is const (selection
// is a pure function of seed, tuple and rate) and Reseed happens on the
// coordinating thread between bins.

// Uniform random packet sampling (§4.2): each packet of the batch is kept
// independently with probability `rate`.
class PacketSampler {
 public:
  explicit PacketSampler(uint64_t seed) : rng_(seed) {}

  // In-place API: clears `out` (capacity is kept, so a caller-owned buffer
  // reused across bins stops allocating after warm-up) and appends the kept
  // packets. Consumes the same RNG sequence as the copying overload, so both
  // APIs select identical packet sets for identical seeds and rates.
  void SampleInto(const trace::PacketVec& in, double rate, trace::PacketVec& out);

  // Copying convenience API; allocates a fresh vector per call.
  trace::PacketVec Sample(const trace::PacketVec& in, double rate);

  // Snapshot/restore of the RNG position, so a restored sampler continues
  // the exact selection sequence of the saved one.
  std::array<uint64_t, 4> RngState() const { return rng_.State(); }
  void SetRngState(const std::array<uint64_t, 4>& s) { rng_.SetState(s); }

 private:
  util::Rng rng_;
};

// Flowwise sampling ([43] + §4.2): a packet is kept iff the H3 hash of its
// 5-tuple falls below the sampling rate, so entire flows are kept or dropped
// coherently without caching flow keys. The hash function is redrawn every
// measurement interval to avoid bias and deliberate evasion. The hash is a
// single-sub-hash FusedTupleHasher over the canonical 13-byte serialization,
// bit-identical to the H3Hash it replaces.
class FlowSampler {
 public:
  explicit FlowSampler(uint64_t seed);

  void Reseed(uint64_t seed);
  // The seed behind the current hash function; selection is a pure function
  // of it, so Reseed(seed()) on another instance clones the sampler.
  uint64_t seed() const { return seed_; }

  // In-place API; see PacketSampler::SampleInto. Selection is a pure
  // function of (seed, tuple, rate), so both APIs always agree.
  void SampleInto(const trace::PacketVec& in, double rate, trace::PacketVec& out) const;

  trace::PacketVec Sample(const trace::PacketVec& in, double rate) const;

 private:
  sketch::FusedTupleHasher hash_;
  uint64_t seed_;
};

}  // namespace shedmon::shed
