#include "src/shed/sampler.h"

namespace shedmon::shed {

trace::PacketVec PacketSampler::Sample(const trace::PacketVec& in, double rate) {
  if (rate >= 1.0) {
    return in;
  }
  trace::PacketVec out;
  if (rate <= 0.0) {
    return out;
  }
  out.reserve(static_cast<size_t>(static_cast<double>(in.size()) * rate * 1.2) + 8);
  for (const net::Packet& pkt : in) {
    if (rng_.NextDouble() < rate) {
      out.push_back(pkt);
    }
  }
  return out;
}

FlowSampler::FlowSampler(uint64_t seed) : hash_(seed) {}

void FlowSampler::Reseed(uint64_t seed) { hash_ = sketch::H3Hash(seed); }

trace::PacketVec FlowSampler::Sample(const trace::PacketVec& in, double rate) const {
  if (rate >= 1.0) {
    return in;
  }
  trace::PacketVec out;
  if (rate <= 0.0) {
    return out;
  }
  out.reserve(static_cast<size_t>(static_cast<double>(in.size()) * rate * 1.2) + 8);
  for (const net::Packet& pkt : in) {
    const auto key = pkt.rec->tuple.Bytes();
    if (hash_.HashUnit(key.data(), key.size()) < rate) {
      out.push_back(pkt);
    }
  }
  return out;
}

}  // namespace shedmon::shed
