#include "src/shed/sampler.h"

#include <algorithm>

namespace shedmon::shed {

namespace {
// Capacity hint for the kept set: generous enough that a realloc mid-loop is
// rare even when the batch is bursty, never more than the full batch.
size_t ReserveHint(size_t in_size, double rate) {
  const size_t want =
      static_cast<size_t>(static_cast<double>(in_size) * rate * 1.25) + 16;
  return std::min(in_size, want);
}
}  // namespace

void PacketSampler::SampleInto(const trace::PacketVec& in, double rate,
                               trace::PacketVec& out) {
  if (rate >= 1.0) {
    out = in;
    return;
  }
  out.clear();
  if (rate <= 0.0) {
    return;
  }
  out.reserve(ReserveHint(in.size(), rate));
  for (const net::Packet& pkt : in) {
    if (rng_.NextDouble() < rate) {
      out.push_back(pkt);
    }
  }
}

trace::PacketVec PacketSampler::Sample(const trace::PacketVec& in, double rate) {
  trace::PacketVec out;
  SampleInto(in, rate, out);
  return out;
}

FlowSampler::FlowSampler(uint64_t seed)
    : hash_(13, {{seed, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}}}), seed_(seed) {}

void FlowSampler::Reseed(uint64_t seed) {
  hash_ = sketch::FusedTupleHasher(13, {{seed, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}}});
  seed_ = seed;
}

void FlowSampler::SampleInto(const trace::PacketVec& in, double rate,
                             trace::PacketVec& out) const {
  if (rate >= 1.0) {
    out = in;
    return;
  }
  out.clear();
  if (rate <= 0.0) {
    return;
  }
  out.reserve(ReserveHint(in.size(), rate));
  for (const net::Packet& pkt : in) {
    const auto key = pkt.rec->tuple.Bytes();
    if (hash_.HashUnit1Fixed<13>(key.data()) < rate) {
      out.push_back(pkt);
    }
  }
}

trace::PacketVec FlowSampler::Sample(const trace::PacketVec& in, double rate) const {
  trace::PacketVec out;
  SampleInto(in, rate, out);
  return out;
}

}  // namespace shedmon::shed
