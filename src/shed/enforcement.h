#pragma once

#include <cstddef>
#include <cstdint>

#include "src/util/ewma.h"

namespace shedmon::shed {

// Parameters of the custom-load-shedding enforcement policy (§6.1.1).
struct EnforcementConfig {
  double ewma_alpha = 0.9;
  // Overuse tolerated before correction scales the query's demand.
  double over_tolerance = 0.10;
  // A bin counts as a gross violation when used > factor * granted. The
  // default leaves room for the transient overshoot an honest custom method
  // shows at interval boundaries (its per-flow state is cold there).
  double gross_violation_factor = 2.0;
  // Consecutive gross violations before the query is policed (disabled).
  int strikes_to_disable = 5;
  // Bins a policed query stays disabled.
  int penalty_bins = 50;
};

// Tracks one query's actual vs. granted resource consumption. Two outputs:
//  - a multiplicative correction factor the system applies to the query's
//    future demand (Fig. 6.3: "actual versus expected consumption ... before
//    correction"), so persistent moderate overuse costs the query its own
//    sampling rate rather than its neighbours' cycles; and
//  - a policing decision: queries whose usage grossly ignores the granted
//    budget for several consecutive bins are disabled for a penalty period
//    (selfish/buggy queries, §6.3.4-6.3.5).
class EnforcementPolicy {
 public:
  explicit EnforcementPolicy(const EnforcementConfig& config = EnforcementConfig());

  // Records one bin. `granted` is the cycle budget implied by the allocation
  // (rate * predicted demand); `used` is the measured consumption.
  void Observe(double granted, double used);

  // Demand multiplier (>= 1) the system applies before allocating.
  double correction() const;

  // True while the query is serving a penalty; Tick() advances the clock.
  bool InPenalty() const { return penalty_left_ > 0; }
  void Tick();

  int strikes() const { return strikes_; }
  size_t times_policed() const { return times_policed_; }

  // Snapshot/restore of the mutable policy state (the config travels
  // separately, with the rest of the SystemConfig).
  struct State {
    double usage_ratio = 1.0;
    bool usage_ratio_seeded = true;
    int strikes = 0;
    int penalty_left = 0;
    uint64_t times_policed = 0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  EnforcementConfig config_;
  util::Ewma usage_ratio_;
  int strikes_ = 0;
  int penalty_left_ = 0;
  size_t times_policed_ = 0;
};

}  // namespace shedmon::shed
