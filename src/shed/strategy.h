#pragma once

#include <memory>
#include <string_view>
#include <vector>

namespace shedmon::shed {

// Per-query inputs to the allocation decision.
struct QueryDemand {
  // Predicted cycles to process the full batch (d_hat_q), already inflated by
  // the prediction-error safety margin where applicable.
  double predicted_cycles = 0.0;
  // Minimum sampling rate the query tolerates (m_q, Ch. 5). 0 = no floor.
  double min_sampling_rate = 0.0;
};

// Outcome: one sampling rate per query; disabled queries get rate 0.
struct Allocation {
  std::vector<double> rate;
  std::vector<bool> disabled;

  double TotalCycles(const std::vector<QueryDemand>& demands) const;
};

// A load shedding *strategy* (§2.4): decides where to shed — which sampling
// rate each query receives — once the system has decided shedding is needed.
class ShedStrategy {
 public:
  virtual ~ShedStrategy() = default;
  virtual Allocation Allocate(const std::vector<QueryDemand>& demands,
                              double capacity) const = 0;
  virtual std::string_view name() const = 0;
};

// Ch. 4 baseline: one common sampling rate for every query. Queries whose
// minimum rate exceeds the common rate are disabled for this batch and the
// rate is recomputed over the remaining ones (§5.5.3, "eq_srates").
class EqSratesStrategy : public ShedStrategy {
 public:
  Allocation Allocate(const std::vector<QueryDemand>& demands, double capacity) const override;
  std::string_view name() const override { return "eq_srates"; }
};

// Max-min fair share of CPU cycles (§5.2.1): every query is guaranteed its
// minimum demand m_q * d_q; spare cycles are water-filled so the smallest
// allocations rise first, capped at each query's full demand.
class MmfsCpuStrategy : public ShedStrategy {
 public:
  Allocation Allocate(const std::vector<QueryDemand>& demands, double capacity) const override;
  std::string_view name() const override { return "mmfs_cpu"; }
};

// Max-min fair share of packet access (§5.2.2): the water level is a common
// sampling rate; queries whose floors bind keep m_q, the rest share the rate
// that exhausts capacity. Maximizes the *minimum* rate any query receives.
class MmfsPktStrategy : public ShedStrategy {
 public:
  Allocation Allocate(const std::vector<QueryDemand>& demands, double capacity) const override;
  std::string_view name() const override { return "mmfs_pkt"; }
};

enum class StrategyKind { kEqSrates, kMmfsCpu, kMmfsPkt };
std::unique_ptr<ShedStrategy> MakeStrategy(StrategyKind kind);

// Shared phase 1 (§5.2.3): while the summed minimum demands exceed capacity,
// disable the query with the largest m_q * d_q (ties broken by index).
// Returns the disabled mask.
std::vector<bool> DisableLargestMinDemands(const std::vector<QueryDemand>& demands,
                                           double capacity);

}  // namespace shedmon::shed
