#include "src/shed/enforcement.h"

#include <algorithm>

namespace shedmon::shed {

EnforcementPolicy::EnforcementPolicy(const EnforcementConfig& config)
    : config_(config), usage_ratio_(config.ewma_alpha, 1.0) {}

void EnforcementPolicy::Observe(double granted, double used) {
  if (granted <= 0.0) {
    return;
  }
  const double ratio = used / granted;
  usage_ratio_.Update(ratio);
  if (ratio > config_.gross_violation_factor) {
    ++strikes_;
    if (strikes_ >= config_.strikes_to_disable) {
      penalty_left_ = config_.penalty_bins;
      strikes_ = 0;
      ++times_policed_;
    }
  } else {
    strikes_ = 0;
  }
}

double EnforcementPolicy::correction() const {
  const double ratio = usage_ratio_.value();
  if (ratio <= 1.0 + config_.over_tolerance) {
    return 1.0;
  }
  return ratio;
}

void EnforcementPolicy::Tick() {
  if (penalty_left_ > 0) {
    --penalty_left_;
  }
}

EnforcementPolicy::State EnforcementPolicy::GetState() const {
  State state;
  state.usage_ratio = usage_ratio_.value();
  state.usage_ratio_seeded = usage_ratio_.seeded();
  state.strikes = strikes_;
  state.penalty_left = penalty_left_;
  state.times_policed = times_policed_;
  return state;
}

void EnforcementPolicy::SetState(const State& state) {
  usage_ratio_.Restore(state.usage_ratio, state.usage_ratio_seeded);
  strikes_ = state.strikes;
  penalty_left_ = state.penalty_left;
  times_policed_ = static_cast<size_t>(state.times_policed);
}

}  // namespace shedmon::shed
