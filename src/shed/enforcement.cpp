#include "src/shed/enforcement.h"

#include <algorithm>

namespace shedmon::shed {

EnforcementPolicy::EnforcementPolicy(const EnforcementConfig& config)
    : config_(config), usage_ratio_(config.ewma_alpha, 1.0) {}

void EnforcementPolicy::Observe(double granted, double used) {
  if (granted <= 0.0) {
    return;
  }
  const double ratio = used / granted;
  usage_ratio_.Update(ratio);
  if (ratio > config_.gross_violation_factor) {
    ++strikes_;
    if (strikes_ >= config_.strikes_to_disable) {
      penalty_left_ = config_.penalty_bins;
      strikes_ = 0;
      ++times_policed_;
    }
  } else {
    strikes_ = 0;
  }
}

double EnforcementPolicy::correction() const {
  const double ratio = usage_ratio_.value();
  if (ratio <= 1.0 + config_.over_tolerance) {
    return 1.0;
  }
  return ratio;
}

void EnforcementPolicy::Tick() {
  if (penalty_left_ > 0) {
    --penalty_left_;
  }
}

}  // namespace shedmon::shed
