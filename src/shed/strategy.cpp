#include "src/shed/strategy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace shedmon::shed {

namespace {
constexpr double kEps = 1e-12;
}

double Allocation::TotalCycles(const std::vector<QueryDemand>& demands) const {
  double total = 0.0;
  for (size_t q = 0; q < demands.size() && q < rate.size(); ++q) {
    total += rate[q] * demands[q].predicted_cycles;
  }
  return total;
}

std::vector<bool> DisableLargestMinDemands(const std::vector<QueryDemand>& demands,
                                           double capacity) {
  const size_t n = demands.size();
  std::vector<bool> disabled(n, false);
  double min_total = 0.0;
  for (const auto& d : demands) {
    min_total += d.min_sampling_rate * d.predicted_cycles;
  }
  while (min_total > capacity + kEps) {
    // Disable the active query with the largest minimum demand.
    size_t worst = n;
    double worst_demand = -1.0;
    for (size_t q = 0; q < n; ++q) {
      if (disabled[q]) {
        continue;
      }
      const double min_demand = demands[q].min_sampling_rate * demands[q].predicted_cycles;
      if (min_demand > worst_demand) {
        worst_demand = min_demand;
        worst = q;
      }
    }
    if (worst == n || worst_demand <= 0.0) {
      break;  // Nothing left to disable (all remaining have zero floors).
    }
    disabled[worst] = true;
    min_total -= worst_demand;
  }
  return disabled;
}

Allocation EqSratesStrategy::Allocate(const std::vector<QueryDemand>& demands,
                                      double capacity) const {
  const size_t n = demands.size();
  Allocation alloc;
  alloc.rate.assign(n, 0.0);
  alloc.disabled.assign(n, false);

  // Iterate: compute the single common rate; disable queries whose minimum
  // exceeds it; recompute over the survivors (§5.5.3).
  while (true) {
    double total = 0.0;
    for (size_t q = 0; q < n; ++q) {
      if (!alloc.disabled[q]) {
        total += demands[q].predicted_cycles;
      }
    }
    if (total <= kEps) {
      break;
    }
    const double rate = std::clamp(capacity / total, 0.0, 1.0);
    // Find the unsatisfiable query with the largest floor.
    size_t worst = n;
    double worst_floor = rate;
    for (size_t q = 0; q < n; ++q) {
      if (!alloc.disabled[q] && demands[q].min_sampling_rate > worst_floor + kEps) {
        worst_floor = demands[q].min_sampling_rate;
        worst = q;
      }
    }
    if (worst == n) {
      for (size_t q = 0; q < n; ++q) {
        alloc.rate[q] = alloc.disabled[q] ? 0.0 : rate;
      }
      return alloc;
    }
    alloc.disabled[worst] = true;
  }
  return alloc;
}

namespace {

// Water-filling by bisection on the level L: each active query receives
// clamp(L, lo_q, hi_q); the level is chosen so the total matches the target.
// Monotonicity in L makes bisection exact to machine precision, and the fixed
// iteration count keeps the allocation cost deterministic (a requirement for
// a per-batch decision, §5.1).
std::vector<double> WaterFill(const std::vector<double>& lo, const std::vector<double>& hi,
                              double target) {
  const size_t n = lo.size();
  double lo_sum = 0.0;
  double hi_sum = 0.0;
  double level_hi = 0.0;
  for (size_t q = 0; q < n; ++q) {
    lo_sum += lo[q];
    hi_sum += hi[q];
    level_hi = std::max(level_hi, hi[q]);
  }
  std::vector<double> out(n);
  if (target >= hi_sum) {
    return hi;
  }
  if (target <= lo_sum) {
    return lo;
  }
  double a = 0.0;
  double b = level_hi;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (a + b);
    double total = 0.0;
    for (size_t q = 0; q < n; ++q) {
      total += std::clamp(mid, lo[q], hi[q]);
    }
    if (total > target) {
      b = mid;
    } else {
      a = mid;
    }
  }
  const double level = 0.5 * (a + b);
  for (size_t q = 0; q < n; ++q) {
    out[q] = std::clamp(level, lo[q], hi[q]);
  }
  return out;
}

}  // namespace

Allocation MmfsCpuStrategy::Allocate(const std::vector<QueryDemand>& demands,
                                     double capacity) const {
  const size_t n = demands.size();
  Allocation alloc;
  alloc.rate.assign(n, 0.0);
  alloc.disabled = DisableLargestMinDemands(demands, capacity);

  // Active queries: water-fill allocated cycles in [m_q d_q, d_q].
  std::vector<size_t> active;
  std::vector<double> lo, hi;
  for (size_t q = 0; q < n; ++q) {
    if (alloc.disabled[q] || demands[q].predicted_cycles <= kEps) {
      continue;
    }
    active.push_back(q);
    lo.push_back(demands[q].min_sampling_rate * demands[q].predicted_cycles);
    hi.push_back(demands[q].predicted_cycles);
  }
  const std::vector<double> cycles = WaterFill(lo, hi, capacity);
  for (size_t i = 0; i < active.size(); ++i) {
    const size_t q = active[i];
    alloc.rate[q] = std::clamp(cycles[i] / demands[q].predicted_cycles, 0.0, 1.0);
  }
  return alloc;
}

Allocation MmfsPktStrategy::Allocate(const std::vector<QueryDemand>& demands,
                                     double capacity) const {
  const size_t n = demands.size();
  Allocation alloc;
  alloc.rate.assign(n, 0.0);
  alloc.disabled = DisableLargestMinDemands(demands, capacity);

  // Bisection on the common sampling-rate level r: query q receives
  // clamp(r, m_q, 1) and consumes that fraction of its demand. This is the
  // fixed point the iterative algorithm of §5.2.3 converges to.
  std::vector<size_t> active;
  for (size_t q = 0; q < n; ++q) {
    if (!alloc.disabled[q] && demands[q].predicted_cycles > kEps) {
      active.push_back(q);
    }
  }
  if (active.empty()) {
    return alloc;
  }
  auto total_at = [&](double r) {
    double total = 0.0;
    for (const size_t q : active) {
      total += std::clamp(r, demands[q].min_sampling_rate, 1.0) *
               demands[q].predicted_cycles;
    }
    return total;
  };
  double rate = 1.0;
  if (total_at(1.0) > capacity) {
    double a = 0.0;
    double b = 1.0;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (a + b);
      if (total_at(mid) > capacity) {
        b = mid;
      } else {
        a = mid;
      }
    }
    rate = a;
  }
  for (const size_t q : active) {
    alloc.rate[q] = std::clamp(rate, demands[q].min_sampling_rate, 1.0);
  }
  return alloc;
}

std::unique_ptr<ShedStrategy> MakeStrategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kEqSrates:
      return std::make_unique<EqSratesStrategy>();
    case StrategyKind::kMmfsCpu:
      return std::make_unique<MmfsCpuStrategy>();
    case StrategyKind::kMmfsPkt:
      return std::make_unique<MmfsPktStrategy>();
  }
  return nullptr;
}

}  // namespace shedmon::shed
