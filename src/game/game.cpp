#include "src/game/game.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace shedmon::game {

namespace {
constexpr double kEps = 1e-12;

// Returns the active set (players whose minimum demands are satisfied):
// sort by demand ascending; the largest demands are dropped first until the
// cumulative sum fits the capacity (§5.2.1's disabling rule).
std::vector<bool> ActiveSet(const std::vector<double>& actions, double capacity) {
  const size_t n = actions.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (actions[a] != actions[b]) {
      return actions[a] < actions[b];
    }
    return a < b;
  });
  std::vector<bool> active(n, false);
  double total = 0.0;
  for (const size_t q : order) {
    if (total + actions[q] <= capacity + kEps) {
      active[q] = true;
      total += actions[q];
    } else {
      break;  // everything at or above this demand is disabled
    }
  }
  return active;
}

// Max-min fair split of `spare` among active players with per-player caps
// (their remaining demand). For the CPU game this is plain water-filling of
// cycles; the packet-access variant levels sampling rates instead.
std::vector<double> ShareSpare(const GameConfig& config, const std::vector<double>& actions,
                               const std::vector<bool>& active, double spare) {
  const size_t n = actions.size();
  std::vector<double> share(n, 0.0);
  if (spare <= kEps) {
    return share;
  }
  std::vector<double> cap(n, 0.0);
  for (size_t q = 0; q < n; ++q) {
    if (!active[q]) {
      continue;
    }
    const double full =
        q < config.full_demand.size() ? config.full_demand[q] : config.capacity * 1e6;
    cap[q] = std::max(0.0, full - actions[q]);
  }

  if (config.share == shed::StrategyKind::kMmfsPkt) {
    // Level in sampling-rate space: player q absorbs r * d_q spare cycles.
    double lo = 0.0;
    double hi = 1.0;
    auto total_at = [&](double r) {
      double total = 0.0;
      for (size_t q = 0; q < n; ++q) {
        if (active[q]) {
          const double full =
              q < config.full_demand.size() ? config.full_demand[q] : config.capacity * 1e6;
          total += std::min(cap[q], r * full);
        }
      }
      return total;
    };
    if (total_at(1.0) <= spare) {
      for (size_t q = 0; q < n; ++q) {
        share[q] = active[q] ? cap[q] : 0.0;
      }
      return share;
    }
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (total_at(mid) > spare) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    for (size_t q = 0; q < n; ++q) {
      if (active[q]) {
        const double full =
            q < config.full_demand.size() ? config.full_demand[q] : config.capacity * 1e6;
        share[q] = std::min(cap[q], lo * full);
      }
    }
    return share;
  }

  // CPU water-filling with caps.
  double cap_sum = 0.0;
  double cap_max = 0.0;
  for (size_t q = 0; q < n; ++q) {
    if (active[q]) {
      cap_sum += cap[q];
      cap_max = std::max(cap_max, cap[q]);
    }
  }
  if (cap_sum <= spare) {
    for (size_t q = 0; q < n; ++q) {
      share[q] = active[q] ? cap[q] : 0.0;
    }
    return share;
  }
  double lo = 0.0;
  double hi = cap_max;
  auto total_at = [&](double level) {
    double total = 0.0;
    for (size_t q = 0; q < n; ++q) {
      if (active[q]) {
        total += std::min(cap[q], level);
      }
    }
    return total;
  };
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total_at(mid) > spare) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  for (size_t q = 0; q < n; ++q) {
    if (active[q]) {
      share[q] = std::min(cap[q], lo);
    }
  }
  return share;
}

}  // namespace

std::vector<double> AllPayoffs(const GameConfig& config, const std::vector<double>& actions) {
  const size_t n = actions.size();
  const std::vector<bool> active = ActiveSet(actions, config.capacity);
  double committed = 0.0;
  for (size_t q = 0; q < n; ++q) {
    if (active[q]) {
      committed += actions[q];
    }
  }
  const std::vector<double> spare =
      ShareSpare(config, actions, active, config.capacity - committed);
  std::vector<double> payoff(n, 0.0);
  for (size_t q = 0; q < n; ++q) {
    payoff[q] = active[q] ? actions[q] + spare[q] : 0.0;
  }
  return payoff;
}

double Payoff(const GameConfig& config, const std::vector<double>& actions, size_t player) {
  return AllPayoffs(config, actions)[player];
}

double BestResponse(const GameConfig& config, const std::vector<double>& actions, size_t player,
                    size_t grid) {
  std::vector<double> trial = actions;
  double best_action = actions[player];
  double best_payoff = -1.0;
  for (size_t g = 0; g < grid; ++g) {
    const double a = config.capacity * static_cast<double>(g) / static_cast<double>(grid - 1);
    trial[player] = a;
    const double u = Payoff(config, trial, player);
    if (u > best_payoff + kEps) {
      best_payoff = u;
      best_action = a;
    }
  }
  return best_action;
}

bool IsNashEquilibrium(const GameConfig& config, const std::vector<double>& actions, size_t grid,
                       double tol) {
  std::vector<double> trial = actions;
  for (size_t q = 0; q < actions.size(); ++q) {
    const double current = Payoff(config, actions, q);
    for (size_t g = 0; g < grid; ++g) {
      const double a = config.capacity * static_cast<double>(g) / static_cast<double>(grid - 1);
      trial[q] = a;
      if (Payoff(config, trial, q) > current + tol) {
        return false;
      }
    }
    trial[q] = actions[q];
  }
  return true;
}

std::vector<double> BestResponseDynamics(const GameConfig& config, std::vector<double> actions,
                                         size_t rounds, size_t grid) {
  for (size_t r = 0; r < rounds; ++r) {
    bool changed = false;
    for (size_t q = 0; q < actions.size(); ++q) {
      const double best = BestResponse(config, actions, q, grid);
      if (std::abs(best - actions[q]) > 1e-9) {
        actions[q] = best;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  return actions;
}

double LightAccuracy(double rate) {
  return rate > 0.0 ? 1.0 - (1.0 - rate) * 0.05 : 0.0;
}

double HeavyAccuracy(double rate) { return std::clamp(rate, 0.0, 1.0); }

MmfsSimPoint SimulateLightHeavy(double min_rate, double overload, size_t n_light,
                                double heavy_cost_ratio) {
  // Demands: n_light light queries of unit cost, one heavy query of
  // heavy_cost_ratio. Capacity scales with (1 - K).
  const size_t n = n_light + 1;
  std::vector<shed::QueryDemand> demands(n);
  double total = 0.0;
  for (size_t q = 0; q < n_light; ++q) {
    demands[q].predicted_cycles = 1.0;
    demands[q].min_sampling_rate = min_rate;
    total += 1.0;
  }
  demands[n_light].predicted_cycles = heavy_cost_ratio;
  demands[n_light].min_sampling_rate = min_rate;
  total += heavy_cost_ratio;
  const double capacity = (1.0 - overload) * total;

  MmfsSimPoint point;
  const auto eval = [&](shed::StrategyKind kind, double& avg, double& min_acc) {
    const auto strategy = shed::MakeStrategy(kind);
    const shed::Allocation alloc = strategy->Allocate(demands, capacity);
    double sum = 0.0;
    min_acc = 1.0;
    for (size_t q = 0; q < n; ++q) {
      const double rate = alloc.disabled[q] ? 0.0 : alloc.rate[q];
      const double acc = q < n_light ? LightAccuracy(rate) : HeavyAccuracy(rate);
      sum += acc;
      min_acc = std::min(min_acc, acc);
    }
    avg = sum / static_cast<double>(n);
  };
  eval(shed::StrategyKind::kMmfsCpu, point.avg_accuracy_cpu, point.min_accuracy_cpu);
  eval(shed::StrategyKind::kMmfsPkt, point.avg_accuracy_pkt, point.min_accuracy_pkt);
  return point;
}

}  // namespace shedmon::game
