#pragma once

#include <cstddef>
#include <vector>

#include "src/shed/strategy.h"

namespace shedmon::game {

// Strategic game of §5.3: each query (player) declares a minimum cycle
// demand a_q = m_q * d_q; the system satisfies the smallest demands first,
// disabling the largest ones when capacity is exceeded, and shares spare
// capacity max-min fairly among the surviving queries.
struct GameConfig {
  double capacity = 1.0;
  // Full demand d_q per player: the upper bound on what spare allocation a
  // player can absorb. Use a large value to reproduce the unbounded game of
  // the thesis's Nash-equilibrium analysis.
  std::vector<double> full_demand;
  shed::StrategyKind share = shed::StrategyKind::kMmfsCpu;
};

// Payoff u_q(a) per eq. (5.7): allocated cycles, or 0 if the player's
// minimum demand cannot be satisfied.
double Payoff(const GameConfig& config, const std::vector<double>& actions, size_t player);
std::vector<double> AllPayoffs(const GameConfig& config, const std::vector<double>& actions);

// Best response of `player` to the others' actions, by grid search over
// [0, capacity] with `grid` points.
double BestResponse(const GameConfig& config, const std::vector<double>& actions, size_t player,
                    size_t grid = 2001);

// True if no player can improve by more than `tol` with any grid deviation.
bool IsNashEquilibrium(const GameConfig& config, const std::vector<double>& actions,
                       size_t grid = 2001, double tol = 1e-9);

// Iterated best-response dynamics from a starting profile; returns the final
// profile (converges to C/|Q| for this game).
std::vector<double> BestResponseDynamics(const GameConfig& config, std::vector<double> actions,
                                         size_t rounds = 64, size_t grid = 2001);

// ---------------------------------------------------------------------------
// Simulation of Fig. 5.1: 1 heavy + n light queries under mmfs_cpu vs
// mmfs_pkt. Accuracy functions follow §5.4: the light query behaves like
// `counter` (accuracy 1 - (1 - p) * 0.05 when sampled, 0 when disabled) and
// the heavy query like `trace` (accuracy = sampling rate).
// ---------------------------------------------------------------------------
struct MmfsSimPoint {
  double avg_accuracy_cpu = 0.0;
  double min_accuracy_cpu = 0.0;
  double avg_accuracy_pkt = 0.0;
  double min_accuracy_pkt = 0.0;

  double avg_diff() const { return avg_accuracy_pkt - avg_accuracy_cpu; }
  double min_diff() const { return min_accuracy_pkt - min_accuracy_cpu; }
};

// `min_rate` = m_q (same for all queries), `overload` = K in [0, 1]:
// capacity = (1 - K) * total demand.
MmfsSimPoint SimulateLightHeavy(double min_rate, double overload, size_t n_light = 10,
                                double heavy_cost_ratio = 10.0);

double LightAccuracy(double rate);
double HeavyAccuracy(double rate);

}  // namespace shedmon::game
