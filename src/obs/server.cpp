#include "src/obs/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace shedmon::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

ObsServer::ObsServer(uint16_t port, Handler handler) : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("obs server: socket() failed: " + std::string(std::strerror(errno)));
  }
  // Deliberately no SO_REUSEADDR: a port already held by another process (or
  // a dying one) must fail loudly here so Build() can reject the config.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("obs server: cannot listen on 127.0.0.1:" + std::to_string(port) +
                             ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { AcceptLoop(); });
}

ObsServer::~ObsServer() { Stop(); }

void ObsServer::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  // shutdown() wakes the blocking accept(); close() alone is not guaranteed
  // to on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ObsServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listening socket shut down (Stop) or unrecoverable
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void ObsServer::HandleConnection(int fd) {
  // Read until the blank-line header terminator, a hard cap, or a timeout so
  // a stuck client cannot wedge the accept loop. The loop must not stop at
  // the first newline: a GET split across TCP segments (tiny congestion
  // windows, deliberate trickling) delivers the request line in pieces, and
  // bailing early parsed the fragment as garbage and answered 400.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[2048];
  while (request.size() < 16384 && request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      break;  // peer closed, errored, or SO_RCVTIMEO expired
    }
    request.append(buffer, static_cast<size_t>(n));
  }

  Response response;
  std::istringstream line(request.substr(0, request.find('\n')));
  std::string method;
  std::string path;
  std::string version;
  line >> method >> path >> version;
  if (method.empty() || path.empty() || version.rfind("HTTP/", 0) != 0) {
    response = Response{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (method != "GET") {
    response = Response{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    response = handler_ ? handler_(path)
                        : Response{404, "text/plain; charset=utf-8", "not found\n"};
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << StatusText(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  WriteAll(fd, out.str());
}

}  // namespace shedmon::obs
