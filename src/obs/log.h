#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <string_view>

#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace shedmon::obs {

// One structured event as a JSON object under construction. Build with the
// chainable field setters, then hand to JsonlLogger::Write. Keys must be
// plain identifiers (they are emitted verbatim); values are escaped.
class LogEvent {
 public:
  explicit LogEvent(std::string_view event);

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Num(std::string_view key, double value);
  LogEvent& Int(std::string_view key, uint64_t value);
  LogEvent& Bool(std::string_view key, bool value);

 private:
  friend class JsonlLogger;
  void AppendKey(std::string_view key);

  std::string line_;
};

// Structured JSONL event log, the observability twin of api::JsonlBinSink:
// one JSON object per line, file-path constructor owns the stream and throws
// std::runtime_error when it cannot be opened. Write is mutex-guarded so
// events from a scrape helper thread interleave whole-line with the
// coordinator's; the pipeline itself only logs from the coordinator.
class JsonlLogger {
 public:
  explicit JsonlLogger(std::ostream& out);
  explicit JsonlLogger(const std::string& path);

  void Write(const LogEvent& event) SHEDMON_EXCLUDES(mutex_);
  void Flush() SHEDMON_EXCLUDES(mutex_);

 private:
  std::ofstream file_;
  // The pointee (the stream) is what the mutex protects; the pointer itself
  // is set once at construction and never reassigned.
  std::ostream* out_ SHEDMON_PT_GUARDED_BY(mutex_);
  util::Mutex mutex_;
};

}  // namespace shedmon::obs
