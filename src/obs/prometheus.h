#pragma once

#include <ostream>
#include <string>

#include "src/obs/metrics.h"

namespace shedmon::obs {

// Prometheus text exposition format (version 0.0.4) over a MetricsSnapshot:
// one `# HELP` / `# TYPE` header per family, `_bucket{le=...}` / `_sum` /
// `_count` expansion for histograms, label values escaped per the spec.
class PrometheusEncoder {
 public:
  static void Encode(const MetricsSnapshot& snapshot, std::ostream& out);
  static std::string Encode(const MetricsSnapshot& snapshot);
};

}  // namespace shedmon::obs
