#include "src/obs/metrics.h"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

namespace shedmon::obs {

namespace internal {

size_t StripeIndex() {
  // Hash once per thread; the id itself is stable for the thread's lifetime.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMetricStripes;
  return stripe;
}

}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("Histogram: bucket bounds must be ascending");
  }
  shards_.reserve(kMetricStripes);
  for (size_t s = 0; s < kMetricStripes; ++s) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper edge holds the value; the trailing +Inf bucket
  // absorbs everything beyond the last bound.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  Shard& shard = *shards_[internal::StripeIndex()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.Add(value);
}

Histogram::Data Histogram::Read() const {
  Data data;
  data.bounds = bounds_;
  data.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < shard->counts.size(); ++b) {
      data.counts[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
    data.sum += shard->sum.value.load(std::memory_order_relaxed);
  }
  for (const uint64_t c : data.counts) {
    data.count += c;
  }
  return data;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(std::string_view name, MetricType type,
                                                    std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.type = type;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else if (it->second.type != type) {
    throw std::logic_error("MetricsRegistry: '" + std::string(name) +
                           "' already registered with a different type");
  }
  return it->second;
}

MetricsRegistry::Series* MetricsRegistry::FindSeries(Family& family, const LabelSet& labels) {
  for (Series& series : family.series) {
    if (series.labels == labels) {
      return &series;
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, const LabelSet& labels,
                                     std::string_view help) {
  util::MutexLock lock(mutex_);
  Family& family = FamilyFor(name, MetricType::kCounter, help);
  if (Series* series = FindSeries(family, labels)) {
    return *series->counter;
  }
  Series series;
  series.labels = labels;
  series.counter = std::make_unique<Counter>();
  family.series.push_back(std::move(series));
  return *family.series.back().counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, const LabelSet& labels,
                                 std::string_view help) {
  util::MutexLock lock(mutex_);
  Family& family = FamilyFor(name, MetricType::kGauge, help);
  if (Series* series = FindSeries(family, labels)) {
    return *series->gauge;
  }
  Series series;
  series.labels = labels;
  series.gauge = std::make_unique<Gauge>();
  family.series.push_back(std::move(series));
  return *family.series.back().gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name, std::vector<double> bounds,
                                         const LabelSet& labels, std::string_view help) {
  util::MutexLock lock(mutex_);
  Family& family = FamilyFor(name, MetricType::kHistogram, help);
  if (Series* series = FindSeries(family, labels)) {
    return *series->histogram;
  }
  Series series;
  series.labels = labels;
  series.histogram = std::make_unique<Histogram>(std::move(bounds));
  family.series.push_back(std::move(series));
  return *family.series.back().histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  util::MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, family] : families_) {
    for (const Series& series : family.series) {
      MetricSample sample;
      sample.name = name;
      sample.type = family.type;
      sample.help = family.help;
      sample.labels = series.labels;
      switch (family.type) {
        case MetricType::kCounter:
          sample.value = series.counter->Value();
          break;
        case MetricType::kGauge:
          sample.value = series.gauge->Value();
          break;
        case MetricType::kHistogram:
          sample.histogram = series.histogram->Read();
          break;
      }
      snapshot.samples.push_back(std::move(sample));
    }
  }
  return snapshot;
}

}  // namespace shedmon::obs
