#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace shedmon::obs {

// Span tracing for the per-bin pipeline, built on the same stripe discipline
// as MetricsRegistry: writers append to per-stripe lock-free bounded rings
// chosen by thread identity, readers fold the stripes at export time. Like
// the metrics, tracing is strictly one-way — spans are written, never read
// back by the pipeline — so an attached tracer (or a scraper exporting the
// trace mid-run) cannot perturb any shedding decision: BinLogs stay
// bit-identical with tracing on or off.
//
// Capacity is bounded and overflow is explicit: once a stripe's ring is
// full, further spans on that stripe are counted (dropped() and, when
// metrics are attached, shedmon_obs_trace_dropped_total) and discarded —
// never silently lost, never blocking the hot path.

// Every instrumented pipeline stage. StageName() is the single naming
// source for trace events and the shedmon_stage_wall_us{stage=...} series.
enum class Stage : uint8_t {
  kBinClose = 0,     // whole bin-close critical path (api::Pipeline)
  kExtraction,       // shared feature extraction (prediction phase 1)
  kPrediction,       // per-query cycle prediction
  kShedDecision,     // resource allocation + sampling-rate selection
  kQuery,            // one per-query execution task (wave 1)
  kShard,            // one shard-unit task (waves 2/3)
  kMerge,            // ordered merge replay on the coordinator
  kReference,        // reference (unsampled) instance execution
  kSink,             // one sink write (CSV/JSONL row)
  kCheckpoint,       // crash-safe checkpoint write
  kDegrade,          // rt ladder transition (instant event)
  kCapture,          // capture front-end drain burst (src/capture)
};
inline constexpr size_t kStageCount = 12;

const char* StageName(Stage stage);

// One completed span. `arg` is a stage-specific index (query slot, shard
// unit, ladder rung); negative means "no argument".
struct SpanRecord {
  uint64_t ts_us = 0;   // start, relative to the tracer's epoch
  uint64_t dur_us = 0;  // 0 for instant events
  int64_t arg = -1;
  uint32_t bin = 0;
  uint32_t lane = 0;  // recording thread's stripe; the Chrome-trace tid
  Stage stage = Stage::kBinClose;
};

class Tracer {
 public:
  // Sized so a stripe's first-touch allocation stays cheap (~200 KB) while
  // holding several hundred bins of coordinator spans; longer windows
  // overflow into the explicit drop counter, by design.
  static constexpr size_t kDefaultSpansPerStripe = 1 << 12;

  explicit Tracer(size_t spans_per_stripe = kDefaultSpansPerStripe);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Optionally mirror span durations into shedmon_stage_wall_us{stage=...}
  // histograms and expose the drop counter. Instrument pointers are cached
  // here once; the registry must outlive the tracer.
  void AttachMetrics(MetricsRegistry* metrics);

  // Microseconds since this tracer was constructed (util::MonotonicNowUs,
  // the sanctioned observability-only wall clock).
  uint64_t NowUs() const;

  // Record a completed span [start_us, start_us + dur_us). Lock-free; safe
  // from any thread concurrently with Snapshot()/export.
  void Record(Stage stage, uint64_t start_us, uint64_t dur_us, uint32_t bin, int64_t arg = -1);

  // Zero-duration marker (rt ladder transitions).
  void Instant(Stage stage, uint32_t bin, int64_t arg = -1) { Record(stage, NowUs(), 0, bin, arg); }

  // Spans recorded so far, folded across stripes and sorted by start time.
  // Safe concurrently with writers: slots still being filled are skipped.
  std::vector<SpanRecord> Snapshot() const;

  // Spans that did not fit a ring. Explicit, never silent.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Chrome trace-event JSON ({"traceEvents":[...]}): complete "X" events
  // (instant "i" for zero-duration markers), ts/dur in microseconds, one
  // tid per stripe. Loadable in Perfetto / chrome://tracing.
  void ExportChromeTrace(std::ostream& out) const;
  std::string ExportChromeTrace() const;
  bool WriteChromeTrace(const std::string& path) const;

 private:
  // A slot is published by setting `ready` with release order after the
  // record is fully written; readers acquire-load it and skip stragglers.
  struct Slot {
    SpanRecord record;
    std::atomic<bool> ready{false};
  };
  // Slot storage is allocated lazily on a stripe's first Record: threads
  // that never trace (and a tracer that is constructed but idle) cost no
  // memory, and construction stays off any hot path.
  struct alignas(64) Ring {
    std::atomic<uint64_t> head{0};  // total claims, may exceed capacity
    std::atomic<Slot*> slots{nullptr};
  };

  Slot* EnsureSlots(Ring& ring);

  const size_t capacity_;
  const uint64_t epoch_us_;
  std::array<Ring, kMetricStripes> rings_;
  std::atomic<uint64_t> dropped_{0};

  std::array<Histogram*, kStageCount> stage_wall_us_{};
  Counter* dropped_total_ = nullptr;
};

// RAII span: captures the start at construction, records at destruction.
// A null tracer disables it entirely, so call sites read the same whether
// tracing is on or off (the cached-pointer idiom of the metrics layer).
class Span {
 public:
  Span(Tracer* tracer, Stage stage, uint32_t bin, int64_t arg = -1)
      : tracer_(tracer), stage_(stage), bin_(bin), arg_(arg),
        start_us_(tracer ? tracer->NowUs() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->Record(stage_, start_us_, tracer_->NowUs() - start_us_, bin_, arg_);
    }
  }

 private:
  Tracer* tracer_;
  Stage stage_;
  uint32_t bin_;
  int64_t arg_;
  uint64_t start_us_;
};

}  // namespace shedmon::obs
