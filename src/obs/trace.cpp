#include "src/obs/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/util/cycle_clock.h"

namespace shedmon::obs {

namespace {

// Upper bucket edges (microseconds) for shedmon_stage_wall_us: stage work
// ranges from single-digit-us merges to whole bins of hundreds of ms.
const std::vector<double>& StageWallBounds() {
  static const std::vector<double> bounds = {10,     25,     50,      100,     250,    500,
                                             1000,   2500,   5000,    10000,   25000,  50000,
                                             100000, 250000, 500000,  1000000};
  return bounds;
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kBinClose:
      return "bin_close";
    case Stage::kExtraction:
      return "extraction";
    case Stage::kPrediction:
      return "prediction";
    case Stage::kShedDecision:
      return "shed_decision";
    case Stage::kQuery:
      return "query";
    case Stage::kShard:
      return "shard";
    case Stage::kMerge:
      return "merge";
    case Stage::kReference:
      return "reference";
    case Stage::kSink:
      return "sink";
    case Stage::kCheckpoint:
      return "checkpoint";
    case Stage::kDegrade:
      return "degrade";
    case Stage::kCapture:
      return "capture";
  }
  return "unknown";
}

Tracer::Tracer(size_t spans_per_stripe)
    : capacity_(spans_per_stripe == 0 ? 1 : spans_per_stripe),
      epoch_us_(util::MonotonicNowUs()) {}

Tracer::~Tracer() {
  for (Ring& ring : rings_) {
    delete[] ring.slots.load(std::memory_order_acquire);
  }
}

Tracer::Slot* Tracer::EnsureSlots(Ring& ring) {
  Slot* slots = ring.slots.load(std::memory_order_acquire);
  if (slots == nullptr) {
    Slot* fresh = new Slot[capacity_];
    if (ring.slots.compare_exchange_strong(slots, fresh, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      slots = fresh;
    } else {
      delete[] fresh;  // a stripe-sharing thread won the allocation race
    }
  }
  return slots;
}

void Tracer::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  for (size_t s = 0; s < kStageCount; ++s) {
    stage_wall_us_[s] =
        &metrics->GetHistogram("shedmon_stage_wall_us", StageWallBounds(),
                               {{"stage", StageName(static_cast<Stage>(s))}},
                               "Wall-clock microseconds spent per pipeline stage");
  }
  dropped_total_ = &metrics->GetCounter("shedmon_obs_trace_dropped_total", {},
                                        "Spans discarded because a trace ring was full");
}

uint64_t Tracer::NowUs() const { return util::MonotonicNowUs() - epoch_us_; }

void Tracer::Record(Stage stage, uint64_t start_us, uint64_t dur_us, uint32_t bin, int64_t arg) {
  Histogram* histogram = stage_wall_us_[static_cast<size_t>(stage)];
  if (histogram != nullptr && dur_us > 0) {
    histogram->Observe(static_cast<double>(dur_us));
  }
  const size_t lane = internal::StripeIndex();
  Ring& ring = rings_[lane];
  const uint64_t slot = ring.head.fetch_add(1, std::memory_order_relaxed);
  if (slot >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_total_ != nullptr) {
      dropped_total_->Increment();
    }
    return;
  }
  Slot* slots = EnsureSlots(ring);
  SpanRecord& record = slots[slot].record;
  record.ts_us = start_us;
  record.dur_us = dur_us;
  record.arg = arg;
  record.bin = bin;
  record.lane = static_cast<uint32_t>(lane);
  record.stage = stage;
  slots[slot].ready.store(true, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> spans;
  for (const Ring& ring : rings_) {
    const Slot* slots = ring.slots.load(std::memory_order_acquire);
    if (slots == nullptr) {
      continue;  // stripe never recorded
    }
    const uint64_t used = std::min<uint64_t>(ring.head.load(std::memory_order_relaxed), capacity_);
    for (uint64_t i = 0; i < used; ++i) {
      if (slots[i].ready.load(std::memory_order_acquire)) {
        spans.push_back(slots[i].record);
      }
    }
  }
  std::sort(spans.begin(), spans.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.ts_us != b.ts_us) {
      return a.ts_us < b.ts_us;
    }
    return a.lane < b.lane;
  });
  return spans;
}

void Tracer::ExportChromeTrace(std::ostream& out) const {
  const std::vector<SpanRecord> spans = Snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n{\"name\":\"" << StageName(span.stage) << "\",\"cat\":\"shedmon\",\"ph\":\""
        << (span.dur_us == 0 ? "i" : "X") << "\",\"ts\":" << span.ts_us;
    if (span.dur_us != 0) {
      out << ",\"dur\":" << span.dur_us;
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"pid\":1,\"tid\":" << span.lane << ",\"args\":{\"bin\":" << span.bin;
    if (span.arg >= 0) {
      out << ",\"arg\":" << span.arg;
    }
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_spans\":" << dropped() << "}}\n";
}

std::string Tracer::ExportChromeTrace() const {
  std::ostringstream out;
  ExportChromeTrace(out);
  return out.str();
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  ExportChromeTrace(out);
  return static_cast<bool>(out);
}

}  // namespace shedmon::obs
