#include "src/obs/log.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace shedmon::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

LogEvent::LogEvent(std::string_view event) {
  line_ = "{\"event\":\"";
  AppendEscaped(line_, event);
  line_ += '"';
}

void LogEvent::AppendKey(std::string_view key) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  AppendKey(key);
  line_ += '"';
  AppendEscaped(line_, value);
  line_ += '"';
  return *this;
}

LogEvent& LogEvent::Num(std::string_view key, double value) {
  AppendKey(key);
  if (std::isfinite(value)) {
    std::ostringstream text;
    text << value;
    line_ += text.str();
  } else {
    line_ += "null";  // JSON has no Inf/NaN literals
  }
  return *this;
}

LogEvent& LogEvent::Int(std::string_view key, uint64_t value) {
  AppendKey(key);
  line_ += std::to_string(value);
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  AppendKey(key);
  line_ += value ? "true" : "false";
  return *this;
}

JsonlLogger::JsonlLogger(std::ostream& out) : out_(&out) {}

JsonlLogger::JsonlLogger(const std::string& path)
    : file_(path, std::ios::out | std::ios::trunc), out_(&file_) {
  if (!file_.is_open()) {
    throw std::runtime_error("JsonlLogger: cannot open '" + path + "' for writing");
  }
}

void JsonlLogger::Write(const LogEvent& event) {
  util::MutexLock lock(mutex_);
  *out_ << event.line_ << "}\n";
}

void JsonlLogger::Flush() {
  util::MutexLock lock(mutex_);
  out_->flush();
}

}  // namespace shedmon::obs
