#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace shedmon::obs {

// Minimal embedded HTTP/1.1 endpoint for scraping observability state: a
// blocking accept loop on its own thread, one request per connection, no
// third-party dependencies. The server knows nothing about pipelines — it
// routes every GET to a caller-supplied handler, so this layer stays at the
// bottom of the dependency graph (api wires pipeline routes on top).
//
// Protocol surface is deliberately tiny: GET only (anything else is 405),
// requests that do not parse as `METHOD SP PATH SP HTTP/x.y` are 400, and
// the handler decides 200/404 per path. Responses always close the
// connection, which is exactly what curl / Prometheus scrapers expect.
class ObsServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response(const std::string& path)>;

  // Binds 127.0.0.1:<port> and starts the accept thread. Port 0 picks an
  // ephemeral port (read it back with port()). Throws std::runtime_error if
  // the socket cannot be bound — e.g. the port is already in use.
  ObsServer(uint16_t port, Handler handler);
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  // The bound port (resolves ephemeral port 0). Stable after construction.
  uint16_t port() const { return port_; }

  // Stops accepting, closes the listening socket and joins the accept
  // thread. Idempotent; also run by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace shedmon::obs
