#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace shedmon::obs {

// Lock-free instruments for the hot path plus a mutex-guarded registry for
// registration and scraping. The design mirrors the exact-merge discipline of
// the parallel pipelines (src/exec/): writers update per-stripe atomic cells
// chosen by thread identity, and a scrape folds the stripes into one value.
// Updates never take a lock, never allocate, and never feed back into any
// shedding decision, so instrumentation cannot perturb determinism: BinLogs
// are bit-identical with or without a scraper hammering the registry.
//
// Thread-safety contract: instrument updates and reads may come from any
// thread at any time. Registration (Get*) is mutex-guarded and expected at
// setup time; returned references stay valid for the registry's lifetime, so
// hot paths cache them once and never touch the registry again.

inline constexpr size_t kMetricStripes = 16;

namespace internal {

// Index of the calling thread's stripe: a cheap hash of the thread id.
// Collisions only cost contention, never correctness.
size_t StripeIndex();

// One cache line per cell so stripes on different workers never false-share.
struct alignas(64) AtomicCell {
  std::atomic<double> value{0.0};

  void Add(double delta) {
    double current = value.load(std::memory_order_relaxed);
    while (!value.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace internal

// Monotonically increasing sum. Double-valued because shedmon counts
// fractional quantities (e.g. deliberately unsampled packets are attributed
// to queries in fractional shares).
class Counter {
 public:
  void Add(double delta) { stripes_[internal::StripeIndex()].Add(delta); }
  void Increment() { Add(1.0); }

  double Value() const {
    double sum = 0.0;
    for (const internal::AtomicCell& cell : stripes_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  std::array<internal::AtomicCell, kMetricStripes> stripes_{};
};

// Current value. One atomic cell, not striped: gauges are either set from
// the coordinating thread (per bin) or adjusted by coarse deltas (queue
// depth), so the CAS contention of multi-writer Add is negligible.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: cumulative-style buckets are derived at scrape
// time from per-bucket counts. Bounds are upper edges; an implicit +Inf
// bucket catches the tail. Buckets and the sum are striped like Counter.
class Histogram {
 public:
  struct Data {
    std::vector<double> bounds;    // upper bucket edges, ascending
    std::vector<uint64_t> counts;  // per-bucket (not cumulative), bounds+1 long
    double sum = 0.0;
    uint64_t count = 0;
  };

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  // Folds the stripes. Counts, sum and count are each internally exact, but
  // a scrape concurrent with writers may see a sum slightly ahead of the
  // counts (or vice versa) — standard Prometheus semantics.
  Data Read() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Shard {
    explicit Shard(size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<uint64_t>> counts;
    internal::AtomicCell sum;
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

// Sorted so scrape output (and therefore the Prometheus exposition) is
// stable across runs regardless of registration order.
using LabelSet = std::map<std::string, std::string>;

// One time-series as read at scrape time.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string help;
  LabelSet labels;
  double value = 0.0;        // counter / gauge
  Histogram::Data histogram;  // histogram only
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;
};

// Get-or-create registry keyed by (name, labels). A family (one name) has a
// single type and help string; asking for an existing series with a
// different type throws std::logic_error, and a histogram's bounds are fixed
// by its first registration.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(std::string_view name, const LabelSet& labels = {},
                      std::string_view help = "") SHEDMON_EXCLUDES(mutex_);
  Gauge& GetGauge(std::string_view name, const LabelSet& labels = {}, std::string_view help = "")
      SHEDMON_EXCLUDES(mutex_);
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds,
                          const LabelSet& labels = {}, std::string_view help = "")
      SHEDMON_EXCLUDES(mutex_);

  // Reads every registered series, grouped by family name (sorted), series
  // in registration order within a family. Safe to call from any thread at
  // any time, including while writers are active.
  MetricsSnapshot Snapshot() const SHEDMON_EXCLUDES(mutex_);

 private:
  struct Series {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<Series> series;
  };

  Family& FamilyFor(std::string_view name, MetricType type, std::string_view help)
      SHEDMON_REQUIRES(mutex_);
  Series* FindSeries(Family& family, const LabelSet& labels) SHEDMON_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::map<std::string, Family, std::less<>> families_ SHEDMON_GUARDED_BY(mutex_);
};

}  // namespace shedmon::obs
