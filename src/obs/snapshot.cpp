#include "src/obs/snapshot.h"

#include <bit>
#include <cstring>

namespace shedmon::obs {

namespace {
// Strings in a snapshot are query names and format tags; anything longer
// than this means the stream is corrupt, not that a name is long.
constexpr uint64_t kMaxStringLen = 1 << 20;
}  // namespace

namespace {
uint64_t Fnv1a(uint64_t sum, const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    sum = (sum ^ bytes[i]) * kSnapshotFnvPrime;
  }
  return sum;
}
}  // namespace

void SnapshotWriter::Bytes(const void* data, size_t len) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  if (!out_) {
    throw SnapshotError("snapshot: write failed");
  }
  sum_ = Fnv1a(sum_, data, len);
}

void SnapshotWriter::Magic() {
  Bytes(kSnapshotMagic.data(), kSnapshotMagic.size());
  U32(kSnapshotVersion);
}

void SnapshotWriter::U8(uint8_t v) { Bytes(&v, 1); }

void SnapshotWriter::U32(uint32_t v) {
  uint8_t b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  Bytes(b, sizeof(b));
}

void SnapshotWriter::U64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  Bytes(b, sizeof(b));
}

void SnapshotWriter::I64(int64_t v) { U64(static_cast<uint64_t>(v)); }

void SnapshotWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void SnapshotWriter::Str(std::string_view v) {
  U64(v.size());
  if (!v.empty()) {
    Bytes(v.data(), v.size());
  }
}

void SnapshotWriter::RngState(const std::array<uint64_t, 4>& s) {
  for (const uint64_t word : s) {
    U64(word);
  }
}

void SnapshotWriter::Trailer() {
  // Capture before the write: the trailer seals the stream, it is not part
  // of the checksummed payload.
  const uint64_t sum = sum_;
  U64(sum);
}

void SnapshotReader::Bytes(void* data, size_t len) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  if (static_cast<size_t>(in_.gcount()) != len) {
    throw SnapshotError("snapshot: truncated stream");
  }
  sum_ = Fnv1a(sum_, data, len);
}

void SnapshotReader::Magic() {
  char magic[8];
  Bytes(magic, sizeof(magic));
  if (std::string_view(magic, sizeof(magic)) != kSnapshotMagic) {
    throw SnapshotError("snapshot: bad magic (not a shedmon snapshot)");
  }
  const uint32_t version = U32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot: unsupported version " + std::to_string(version) +
                        " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
}

uint8_t SnapshotReader::U8() {
  uint8_t v = 0;
  Bytes(&v, 1);
  return v;
}

uint32_t SnapshotReader::U32() {
  uint8_t b[4];
  Bytes(b, sizeof(b));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(b[i]) << (8 * i);
  }
  return v;
}

uint64_t SnapshotReader::U64() {
  uint8_t b[8];
  Bytes(b, sizeof(b));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

int64_t SnapshotReader::I64() { return static_cast<int64_t>(U64()); }

double SnapshotReader::F64() { return std::bit_cast<double>(U64()); }

std::string SnapshotReader::Str() {
  const uint64_t len = U64();
  if (len > kMaxStringLen) {
    throw SnapshotError("snapshot: string length " + std::to_string(len) +
                        " exceeds sanity bound");
  }
  std::string v(len, '\0');
  if (len > 0) {
    Bytes(v.data(), len);
  }
  return v;
}

std::array<uint64_t, 4> SnapshotReader::RngState() {
  std::array<uint64_t, 4> s{};
  for (uint64_t& word : s) {
    word = U64();
  }
  return s;
}

void SnapshotReader::Trailer() {
  const uint64_t expected = sum_;  // before the trailer folds itself in
  const uint64_t stored = U64();
  if (stored != expected) {
    throw SnapshotError(
        "snapshot: checksum mismatch — the stream is corrupt (bit flip or torn write)");
  }
}

}  // namespace shedmon::obs
