#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace shedmon::obs {

// Errors from writing, reading or validating a pipeline snapshot: bad magic,
// version mismatch, truncated stream, or a pipeline state that cannot be
// snapshotted (mid-interval, custom queries, custom oracle).
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::string_view kSnapshotMagic = "SHEDSNAP";
// v2 appends an FNV-1a checksum trailer so a torn or bit-flipped snapshot is
// rejected with a clear SnapshotError instead of silently restoring garbage.
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint64_t kSnapshotFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kSnapshotFnvPrime = 0x100000001b3ULL;

// Little-endian binary primitives for the versioned snapshot format. The
// encoding is explicitly byte-ordered (not memcpy-of-struct) so snapshots
// written on one machine restore on any other, and doubles round-trip
// bit-exactly via their IEEE-754 payload — the foundation of the
// snapshot -> restore -> snapshot byte-identity guarantee.
//
// Both sides maintain a running FNV-1a 64 checksum over every byte written /
// read (magic and version included). The writer seals a stream with
// Trailer(); the reader verifies the trailer as its final call.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::ostream& out) : out_(out) {}

  void Magic();  // magic + version header
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v);
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view v);
  void RngState(const std::array<uint64_t, 4>& s);
  // Appends the running checksum; must be the last write of the stream.
  void Trailer();

 private:
  void Bytes(const void* data, size_t len);

  std::ostream& out_;
  uint64_t sum_ = kSnapshotFnvOffset;  // running FNV-1a over the stream
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {}

  // Validates magic + version; throws SnapshotError on mismatch.
  void Magic();
  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64();
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();
  std::array<uint64_t, 4> RngState();
  // Reads the checksum trailer and throws SnapshotError when it does not
  // match the bytes consumed so far; must be the reader's final call.
  void Trailer();

 private:
  void Bytes(void* data, size_t len);

  std::istream& in_;
  uint64_t sum_ = kSnapshotFnvOffset;  // running FNV-1a over the stream
};

}  // namespace shedmon::obs
