#include "src/obs/prometheus.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace shedmon::obs {

namespace {

std::string_view TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void WriteEscapedLabelValue(std::ostream& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        out << "\\\\";
        break;
      case '"':
        out << "\\\"";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

// Labels including an optional extra pair (used for the histogram `le`).
void WriteLabels(std::ostream& out, const LabelSet& labels, std::string_view extra_key,
                 std::string_view extra_value) {
  if (labels.empty() && extra_key.empty()) {
    return;
  }
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << key << "=\"";
    WriteEscapedLabelValue(out, value);
    out << '"';
  }
  if (!extra_key.empty()) {
    if (!first) {
      out << ',';
    }
    out << extra_key << "=\"";
    WriteEscapedLabelValue(out, extra_value);
    out << '"';
  }
  out << '}';
}

void WriteNumber(std::ostream& out, double value) {
  if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else if (std::isnan(value)) {
    out << "NaN";
  } else {
    out << value;
  }
}

std::string BoundLabel(double bound) {
  std::ostringstream text;
  WriteNumber(text, bound);
  return text.str();
}

}  // namespace

void PrometheusEncoder::Encode(const MetricsSnapshot& snapshot, std::ostream& out) {
  std::string_view current_family;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != current_family) {
      current_family = sample.name;
      if (!sample.help.empty()) {
        out << "# HELP " << sample.name << ' ' << sample.help << '\n';
      }
      out << "# TYPE " << sample.name << ' ' << TypeName(sample.type) << '\n';
    }
    if (sample.type == MetricType::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t b = 0; b < sample.histogram.counts.size(); ++b) {
        cumulative += sample.histogram.counts[b];
        const double bound = b < sample.histogram.bounds.size()
                                 ? sample.histogram.bounds[b]
                                 : std::numeric_limits<double>::infinity();
        out << sample.name << "_bucket";
        WriteLabels(out, sample.labels, "le", BoundLabel(bound));
        out << ' ' << cumulative << '\n';
      }
      out << sample.name << "_sum";
      WriteLabels(out, sample.labels, {}, {});
      out << ' ';
      WriteNumber(out, sample.histogram.sum);
      out << '\n';
      out << sample.name << "_count";
      WriteLabels(out, sample.labels, {}, {});
      out << ' ' << sample.histogram.count << '\n';
    } else {
      out << sample.name;
      WriteLabels(out, sample.labels, {}, {});
      out << ' ';
      WriteNumber(out, sample.value);
      out << '\n';
    }
  }
}

std::string PrometheusEncoder::Encode(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  Encode(snapshot, out);
  return out.str();
}

}  // namespace shedmon::obs
