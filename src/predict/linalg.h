#pragma once

#include <cstddef>
#include <vector>

namespace shedmon::predict {

// Minimal dense row-major matrix, sized for regression problems of at most a
// few hundred rows by a few dozen columns.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

struct LeastSquaresResult {
  std::vector<double> coef;  // size = a.cols()
  int rank = 0;
  bool ok = false;
};

// Solves min ||A x - y||_2 through the singular value decomposition, the
// paper's choice (§3.2.2) because it returns the best approximation even for
// rank-deficient or under-determined systems (e.g. collinear features during
// a SYN flood). Implemented with one-sided Jacobi rotations; singular values
// below rcond * max_sv are truncated, yielding the minimum-norm solution.
LeastSquaresResult SolveLeastSquaresSvd(const Matrix& a, const std::vector<double>& y,
                                        double rcond = 1e-10);

}  // namespace shedmon::predict
