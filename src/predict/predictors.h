#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/features/features.h"
#include "src/obs/snapshot.h"
#include "src/predict/fcbf.h"

namespace shedmon::predict {

// Predicts the CPU cycles a query will need for a batch with the given
// feature vector, learning online from (features, measured cycles) pairs.
class CostPredictor {
 public:
  virtual ~CostPredictor() = default;

  virtual double Predict(const features::FeatureVector& f) = 0;
  virtual void Observe(const features::FeatureVector& f, double cycles) = 0;
  virtual std::string_view name() const = 0;
  // Number of observations currently backing the model (0 = cold).
  virtual size_t history_size() const = 0;

  // Snapshot/restore of the learned state. Each implementation writes a
  // name tag first and LoadState verifies it, so restoring into the wrong
  // predictor kind fails loudly instead of misreading the stream. The
  // contract is behavioral identity: after LoadState, Predict/Observe emit
  // exactly the sequence the saved instance would have, and a second
  // SaveState produces byte-identical output (round-trip identity).
  virtual void SaveState(obs::SnapshotWriter& w) const = 0;
  virtual void LoadState(obs::SnapshotReader& r) = 0;
};

// §3.4.1: exponentially weighted moving average of past cycle usage. Blind to
// the input traffic, so it trails every workload change.
class EwmaPredictor : public CostPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3);

  double Predict(const features::FeatureVector& f) override;
  void Observe(const features::FeatureVector& f, double cycles) override;
  std::string_view name() const override { return "ewma"; }
  size_t history_size() const override { return count_; }
  void SaveState(obs::SnapshotWriter& w) const override;
  void LoadState(obs::SnapshotReader& r) override;

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
  size_t count_ = 0;
};

// §3.4.1: simple linear regression on one fixed feature (packets by default,
// the best single predictor for most queries in Table 3.2).
class SlrPredictor : public CostPredictor {
 public:
  explicit SlrPredictor(int feature_index = features::kFeatPackets, size_t history = 60);

  double Predict(const features::FeatureVector& f) override;
  void Observe(const features::FeatureVector& f, double cycles) override;
  std::string_view name() const override { return "slr"; }
  size_t history_size() const override { return window_.size(); }
  void SaveState(obs::SnapshotWriter& w) const override;
  void LoadState(obs::SnapshotReader& r) override;

 private:
  int feature_;
  size_t history_;
  std::deque<std::pair<double, double>> window_;  // (x, y)
};

// §3.2.2-3.2.3: FCBF feature selection + multiple linear regression with an
// intercept over a sliding window of n batches, refit on every observation.
class MlrPredictor : public CostPredictor {
 public:
  struct Config {
    size_t history = 60;          // n observations (6 s of 100 ms batches)
    double fcbf_threshold = 0.6;  // relevance cutoff (Fig. 3.5 sweet spot)
    // Relative singular-value cutoff of the (standardized) design matrix.
    // Traffic features are strongly collinear (e.g. packets vs repeated
    // counts); truncating weak directions keeps the out-of-sample variance
    // bounded — the multicollinearity concern of §3.2.3 handled numerically.
    double svd_rcond = 1e-3;
    size_t min_history = 5;  // below this, fall back to mean cost
    // §3.2.4-style measurement scrubbing: an observation that deviates from
    // the model's own prediction *at the same features* by more than this
    // factor is treated as corrupted (context switch, bus contention) and
    // replaced by the prediction. 0 disables scrubbing.
    double scrub_factor = 8.0;
  };

  MlrPredictor();
  explicit MlrPredictor(const Config& config);

  double Predict(const features::FeatureVector& f) override;
  void Observe(const features::FeatureVector& f, double cycles) override;
  std::string_view name() const override { return "mlr+fcbf"; }
  size_t history_size() const override { return window_.size(); }

  // Features used by the most recent fit (after FCBF), for Table 3.2.
  const std::vector<int>& last_selected() const { return last_selected_; }
  // How often each feature has been selected across the run.
  const std::map<int, size_t>& selection_counts() const { return selection_counts_; }

  // Replaces the most recent observation's response value; the system uses
  // this to scrub context-switch-corrupted measurements (§3.2.4).
  void AmendLastObservation(double cycles);

  // Saves the observation window plus scrub/selection bookkeeping; the fit
  // itself (coefficients, selected features) is recomputed deterministically
  // from the window on load, then the selection counts are reinstated so the
  // refit's own increments don't inflate them past the saved run's.
  void SaveState(obs::SnapshotWriter& w) const override;
  void LoadState(obs::SnapshotReader& r) override;

 private:
  void Refit();

  Config config_;
  std::deque<std::pair<features::FeatureVector, double>> window_;
  std::vector<int> last_selected_;
  std::vector<double> coef_;      // intercept followed by per-selected weights
  std::vector<double> col_mean_;  // standardization of the selected columns
  std::vector<double> col_scale_;
  int consecutive_outliers_ = 0;
  bool model_valid_ = false;
  std::map<int, size_t> selection_counts_;
};

enum class PredictorKind { kMlr, kSlr, kEwma };

struct PredictorConfig {
  PredictorKind kind = PredictorKind::kMlr;
  size_t history = 60;
  double fcbf_threshold = 0.6;
  double ewma_alpha = 0.3;
  int slr_feature = features::kFeatPackets;
};

std::unique_ptr<CostPredictor> MakePredictor(const PredictorConfig& config);

}  // namespace shedmon::predict
