#include "src/predict/linalg.h"

#include <cmath>
#include <stdexcept>

namespace shedmon::predict {

LeastSquaresResult SolveLeastSquaresSvd(const Matrix& a, const std::vector<double>& y,
                                        double rcond) {
  LeastSquaresResult result;
  const size_t p = a.cols();
  if (p == 0 || a.rows() == 0) {
    return result;
  }
  if (y.size() != a.rows()) {
    throw std::invalid_argument("SolveLeastSquaresSvd: y size mismatch");
  }

  // Work on W = A padded with zero rows up to max(rows, cols); padding does
  // not change the normal equations, and one-sided Jacobi wants n >= p.
  const size_t n = a.rows() < p ? p : a.rows();
  std::vector<double> w(n * p, 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < p; ++c) {
      w[r * p + c] = a.At(r, c);
    }
  }
  std::vector<double> yy(n, 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    yy[r] = y[r];
  }

  // V accumulates the right singular vectors (p x p, row-major).
  std::vector<double> v(p * p, 0.0);
  for (size_t i = 0; i < p; ++i) {
    v[i * p + i] = 1.0;
  }

  auto col_dot = [&](size_t i, size_t j) {
    double s = 0.0;
    for (size_t r = 0; r < n; ++r) {
      s += w[r * p + i] * w[r * p + j];
    }
    return s;
  };

  // One-sided Jacobi: rotate column pairs of W until all pairs are
  // (numerically) orthogonal; the same rotations applied to V give A = U S V^T.
  constexpr int kMaxSweeps = 40;
  constexpr double kOrthTol = 1e-13;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (size_t i = 0; i + 1 < p; ++i) {
      for (size_t j = i + 1; j < p; ++j) {
        const double alpha = col_dot(i, i);
        const double beta = col_dot(j, j);
        const double gamma = col_dot(i, j);
        if (std::abs(gamma) <= kOrthTol * std::sqrt(alpha * beta) || gamma == 0.0) {
          continue;
        }
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t r = 0; r < n; ++r) {
          const double wi = w[r * p + i];
          const double wj = w[r * p + j];
          w[r * p + i] = c * wi - s * wj;
          w[r * p + j] = s * wi + c * wj;
        }
        for (size_t r = 0; r < p; ++r) {
          const double vi = v[r * p + i];
          const double vj = v[r * p + j];
          v[r * p + i] = c * vi - s * vj;
          v[r * p + j] = s * vi + c * vj;
        }
      }
    }
    if (!rotated) {
      break;
    }
  }

  // Singular values are the column norms of the rotated W.
  std::vector<double> sv(p, 0.0);
  double sv_max = 0.0;
  for (size_t i = 0; i < p; ++i) {
    sv[i] = std::sqrt(col_dot(i, i));
    sv_max = std::max(sv_max, sv[i]);
  }
  const double cutoff = sv_max * rcond;

  // x = V * diag(1/sv) * U^T * y, truncating negligible singular values.
  // U^T y for column i equals (W_i . y) / sv_i.
  result.coef.assign(p, 0.0);
  for (size_t i = 0; i < p; ++i) {
    if (sv[i] <= cutoff || sv[i] == 0.0) {
      continue;
    }
    ++result.rank;
    double uy = 0.0;
    for (size_t r = 0; r < n; ++r) {
      uy += w[r * p + i] * yy[r];
    }
    const double scale = uy / (sv[i] * sv[i]);
    for (size_t c = 0; c < p; ++c) {
      result.coef[c] += v[c * p + i] * scale;
    }
  }
  result.ok = result.rank > 0;
  return result;
}

}  // namespace shedmon::predict
