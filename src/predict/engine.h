#pragma once

#include <memory>

#include "src/features/extractor.h"
#include "src/predict/predictors.h"

namespace shedmon::predict {

// Per-query prediction state: the cost predictor plus the query's own
// feature extractor. The extractor is re-run on the post-sampling batch so
// the regression history pairs the cycles a query actually spent with the
// features of the packets it actually processed (Alg. 1 lines 12 & 16).
class PredictionEngine {
 public:
  PredictionEngine(const PredictorConfig& predictor_config,
                   const features::FeatureExtractor::Config& extractor_config);

  // Predicted cycles for processing all packets described by `full_features`.
  double PredictCycles(const features::FeatureVector& full_features);

  // Records the measured cost of the processed (possibly sampled) batch.
  void ObserveActual(const features::FeatureVector& processed_features, double cycles);

  // Marks the current interval boundary (resets "new"-item state).
  void StartInterval();

  features::FeatureExtractor& extractor() { return extractor_; }
  CostPredictor& predictor() { return *predictor_; }
  const CostPredictor& predictor() const { return *predictor_; }

  // Returns the MLR predictor if that is what backs this engine, else null.
  const MlrPredictor* mlr() const;

 private:
  std::unique_ptr<CostPredictor> predictor_;
  features::FeatureExtractor extractor_;
};

}  // namespace shedmon::predict
