#include "src/predict/engine.h"

namespace shedmon::predict {

PredictionEngine::PredictionEngine(const PredictorConfig& predictor_config,
                                   const features::FeatureExtractor::Config& extractor_config)
    : predictor_(MakePredictor(predictor_config)), extractor_(extractor_config) {}

double PredictionEngine::PredictCycles(const features::FeatureVector& full_features) {
  return predictor_->Predict(full_features);
}

void PredictionEngine::ObserveActual(const features::FeatureVector& processed_features,
                                     double cycles) {
  predictor_->Observe(processed_features, cycles);
}

void PredictionEngine::StartInterval() { extractor_.StartInterval(); }

const MlrPredictor* PredictionEngine::mlr() const {
  return dynamic_cast<const MlrPredictor*>(predictor_.get());
}

}  // namespace shedmon::predict
