#pragma once

#include <vector>

#include "src/predict/linalg.h"

namespace shedmon::predict {

struct FcbfResult {
  // Indices of selected columns of X, ordered by decreasing relevance.
  std::vector<int> selected;
  // |corr(X_i, y)| for every column (0 for constant columns).
  std::vector<double> relevance;
};

// Fast Correlation-Based Filter, the thesis variant (§3.2.3): predictor
// goodness is the absolute linear correlation coefficient instead of the
// original symmetrical uncertainty. Phase 1 drops columns whose relevance is
// below `threshold`; phase 2 walks the relevance-ranked survivors and removes
// any predictor whose correlation with a better-ranked one exceeds its own
// correlation with the response (redundancy). If nothing clears the
// threshold, the single most relevant predictor is kept so the regression
// never runs empty.
FcbfResult SelectFeatures(const Matrix& x, const std::vector<double>& y, double threshold);

}  // namespace shedmon::predict
