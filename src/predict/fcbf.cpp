#include "src/predict/fcbf.h"

#include <algorithm>
#include <cmath>

#include "src/util/stats.h"

namespace shedmon::predict {

namespace {
std::vector<double> Column(const Matrix& x, size_t c) {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    out[r] = x.At(r, c);
  }
  return out;
}
}  // namespace

FcbfResult SelectFeatures(const Matrix& x, const std::vector<double>& y, double threshold) {
  FcbfResult result;
  const size_t p = x.cols();
  result.relevance.assign(p, 0.0);
  if (p == 0 || x.rows() < 2) {
    return result;
  }

  std::vector<std::vector<double>> cols(p);
  for (size_t c = 0; c < p; ++c) {
    cols[c] = Column(x, c);
    result.relevance[c] = std::abs(util::PearsonCorrelation(cols[c], y));
  }

  // Phase 1: relevance filtering, ranked by decreasing |corr(X_i, y)|.
  std::vector<int> ranked;
  for (size_t c = 0; c < p; ++c) {
    if (result.relevance[c] >= threshold && result.relevance[c] > 0.0) {
      ranked.push_back(static_cast<int>(c));
    }
  }
  std::sort(ranked.begin(), ranked.end(), [&](int a, int b) {
    return result.relevance[static_cast<size_t>(a)] > result.relevance[static_cast<size_t>(b)];
  });

  if (ranked.empty()) {
    // Fall back to the best single predictor so MLR degrades to SLR rather
    // than to an intercept-only model.
    const auto best = std::max_element(result.relevance.begin(), result.relevance.end());
    if (*best > 0.0) {
      result.selected.push_back(static_cast<int>(best - result.relevance.begin()));
    }
    return result;
  }

  // Phase 2: redundancy elimination.
  std::vector<bool> removed(ranked.size(), false);
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (removed[i]) {
      continue;
    }
    const auto fi = static_cast<size_t>(ranked[i]);
    for (size_t j = i + 1; j < ranked.size(); ++j) {
      if (removed[j]) {
        continue;
      }
      const auto fj = static_cast<size_t>(ranked[j]);
      const double between = std::abs(util::PearsonCorrelation(cols[fi], cols[fj]));
      if (between >= result.relevance[fj]) {
        removed[j] = true;
      }
    }
  }
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (!removed[i]) {
      result.selected.push_back(ranked[i]);
    }
  }
  return result;
}

}  // namespace shedmon::predict
