#include "src/predict/predictors.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace shedmon::predict {

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {}

double EwmaPredictor::Predict(const features::FeatureVector& /*f*/) { return value_; }

void EwmaPredictor::Observe(const features::FeatureVector& /*f*/, double cycles) {
  ++count_;
  if (!seeded_) {
    value_ = cycles;
    seeded_ = true;
  } else {
    value_ = alpha_ * cycles + (1.0 - alpha_) * value_;
  }
}

SlrPredictor::SlrPredictor(int feature_index, size_t history)
    : feature_(feature_index), history_(history) {}

double SlrPredictor::Predict(const features::FeatureVector& f) {
  const size_t n = window_.size();
  if (n == 0) {
    return 0.0;
  }
  if (n == 1) {
    return window_.back().second;
  }
  double sx = 0.0, sy = 0.0;
  for (const auto& [x, y] : window_) {
    sx += x;
    sy += y;
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (const auto& [x, y] : window_) {
    sxx += (x - mx) * (x - mx);
    sxy += (x - mx) * (y - my);
  }
  if (sxx <= 1e-12) {
    return my;
  }
  const double slope = sxy / sxx;
  const double intercept = my - slope * mx;
  return std::max(0.0, intercept + slope * f[static_cast<size_t>(feature_)]);
}

void SlrPredictor::Observe(const features::FeatureVector& f, double cycles) {
  window_.emplace_back(f[static_cast<size_t>(feature_)], cycles);
  while (window_.size() > history_) {
    window_.pop_front();
  }
}

MlrPredictor::MlrPredictor() : MlrPredictor(Config()) {}

MlrPredictor::MlrPredictor(const Config& config) : config_(config) {}

void MlrPredictor::Refit() {
  model_valid_ = false;
  const size_t n = window_.size();
  if (n < config_.min_history) {
    return;
  }

  // FCBF over the full 42-feature matrix.
  Matrix x(n, features::kNumFeatures);
  std::vector<double> y(n);
  size_t r = 0;
  for (const auto& [f, cycles] : window_) {
    for (int c = 0; c < features::kNumFeatures; ++c) {
      x.At(r, static_cast<size_t>(c)) = f[static_cast<size_t>(c)];
    }
    y[r] = cycles;
    ++r;
  }
  const FcbfResult fcbf = SelectFeatures(x, y, config_.fcbf_threshold);
  last_selected_ = fcbf.selected;
  for (int idx : last_selected_) {
    ++selection_counts_[idx];
  }

  // OLS with intercept over the selected predictors (eq. 3.1 / 3.2). The
  // columns are standardized first so the singular-value truncation acts on
  // comparable scales; near-collinear feature combinations then fall below
  // rcond and are dropped from the fit instead of producing huge canceling
  // coefficients that explode out of sample.
  const size_t p = last_selected_.size();
  col_mean_.assign(p, 0.0);
  col_scale_.assign(p, 1.0);
  for (size_t c = 0; c < p; ++c) {
    double mean = 0.0;
    for (size_t row = 0; row < n; ++row) {
      mean += x.At(row, static_cast<size_t>(last_selected_[c]));
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t row = 0; row < n; ++row) {
      const double d = x.At(row, static_cast<size_t>(last_selected_[c])) - mean;
      var += d * d;
    }
    col_mean_[c] = mean;
    col_scale_[c] = std::sqrt(var / static_cast<double>(n));
    if (col_scale_[c] <= 1e-12) {
      col_scale_[c] = 1.0;  // constant column: contributes via the intercept
    }
  }
  Matrix design(n, p + 1);
  for (size_t row = 0; row < n; ++row) {
    design.At(row, 0) = 1.0;
    for (size_t c = 0; c < p; ++c) {
      design.At(row, c + 1) =
          (x.At(row, static_cast<size_t>(last_selected_[c])) - col_mean_[c]) / col_scale_[c];
    }
  }
  const LeastSquaresResult ls = SolveLeastSquaresSvd(design, y, config_.svd_rcond);
  if (!ls.ok) {
    return;
  }
  coef_ = ls.coef;
  model_valid_ = true;
}

double MlrPredictor::Predict(const features::FeatureVector& f) {
  if (!model_valid_) {
    // Cold start: mean of whatever history exists.
    if (window_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (const auto& [feat, cycles] : window_) {
      sum += cycles;
    }
    return sum / static_cast<double>(window_.size());
  }
  double pred = coef_[0];
  for (size_t c = 0; c < last_selected_.size(); ++c) {
    pred += coef_[c + 1] *
            (f[static_cast<size_t>(last_selected_[c])] - col_mean_[c]) / col_scale_[c];
  }
  return std::max(0.0, pred);
}

void MlrPredictor::Observe(const features::FeatureVector& f, double cycles) {
  // Scrub measurements corrupted by events unrelated to the traffic
  // (§3.2.4: the thesis replaces context-switch-polluted readings with the
  // prediction so one bad sample cannot poison the regression window).
  // Corruption is sporadic while genuine cost-regime changes persist, so a
  // run of consecutive out-of-range observations is accepted as real.
  if (config_.scrub_factor > 0.0 && model_valid_) {
    const double expected = Predict(f);
    const bool out_of_range =
        expected > 0.0 && (cycles > expected * config_.scrub_factor ||
                           cycles < expected / config_.scrub_factor);
    if (out_of_range && consecutive_outliers_ < 2) {
      ++consecutive_outliers_;
      cycles = expected;
    } else {
      consecutive_outliers_ = 0;
    }
  }
  window_.emplace_back(f, cycles);
  while (window_.size() > config_.history) {
    window_.pop_front();
  }
  Refit();
}

void MlrPredictor::AmendLastObservation(double cycles) {
  if (window_.empty()) {
    return;
  }
  window_.back().second = cycles;
  Refit();
}

namespace {

// Every predictor opens its state section with a name tag so a stream saved
// by one kind can never be silently misread by another.
void CheckTag(obs::SnapshotReader& r, std::string_view expected) {
  const std::string tag = r.Str();
  if (tag != expected) {
    throw obs::SnapshotError("predictor state tagged '" + tag + "', expected '" +
                             std::string(expected) + "'");
  }
}

}  // namespace

void EwmaPredictor::SaveState(obs::SnapshotWriter& w) const {
  w.Str(name());
  w.F64(value_);
  w.Bool(seeded_);
  w.U64(count_);
}

void EwmaPredictor::LoadState(obs::SnapshotReader& r) {
  CheckTag(r, name());
  value_ = r.F64();
  seeded_ = r.Bool();
  count_ = static_cast<size_t>(r.U64());
}

void SlrPredictor::SaveState(obs::SnapshotWriter& w) const {
  w.Str(name());
  w.U64(window_.size());
  for (const auto& [x, y] : window_) {
    w.F64(x);
    w.F64(y);
  }
}

void SlrPredictor::LoadState(obs::SnapshotReader& r) {
  CheckTag(r, name());
  window_.clear();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    const double x = r.F64();
    const double y = r.F64();
    window_.emplace_back(x, y);
  }
}

void MlrPredictor::SaveState(obs::SnapshotWriter& w) const {
  w.Str(name());
  w.U64(window_.size());
  for (const auto& [f, cycles] : window_) {
    for (const double v : f) {
      w.F64(v);
    }
    w.F64(cycles);
  }
  w.I64(consecutive_outliers_);
  w.U64(selection_counts_.size());
  for (const auto& [feature, count] : selection_counts_) {
    w.I64(feature);
    w.U64(count);
  }
}

void MlrPredictor::LoadState(obs::SnapshotReader& r) {
  CheckTag(r, name());
  window_.clear();
  const uint64_t n = r.U64();
  for (uint64_t i = 0; i < n; ++i) {
    features::FeatureVector f{};
    for (double& v : f) {
      v = r.F64();
    }
    const double cycles = r.F64();
    window_.emplace_back(f, cycles);
  }
  const int64_t outliers = r.I64();
  // The fit is a pure function of the window; recompute it instead of
  // serializing coefficients so the model can never disagree with its own
  // history. Refit() increments selection_counts_, so the saved counts are
  // reinstated afterwards to keep save -> load -> save byte-identical.
  Refit();
  consecutive_outliers_ = static_cast<int>(outliers);
  selection_counts_.clear();
  const uint64_t counts = r.U64();
  for (uint64_t i = 0; i < counts; ++i) {
    const int64_t feature = r.I64();
    const uint64_t count = r.U64();
    selection_counts_[static_cast<int>(feature)] = static_cast<size_t>(count);
  }
}

std::unique_ptr<CostPredictor> MakePredictor(const PredictorConfig& config) {
  switch (config.kind) {
    case PredictorKind::kEwma:
      return std::make_unique<EwmaPredictor>(config.ewma_alpha);
    case PredictorKind::kSlr:
      return std::make_unique<SlrPredictor>(config.slr_feature, config.history);
    case PredictorKind::kMlr: {
      MlrPredictor::Config c;
      c.history = config.history;
      c.fcbf_threshold = config.fcbf_threshold;
      return std::make_unique<MlrPredictor>(c);
    }
  }
  return nullptr;
}

}  // namespace shedmon::predict
