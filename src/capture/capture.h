#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/packet.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rt/bounded_queue.h"
#include "src/rt/clock.h"

namespace shedmon::capture {

// Live capture front-end: socket/file sources fill pre-allocated slots, a
// ring of slot indices carries them to one consumer thread, and the consumer
// decodes each Ethernet frame in place and pushes a *pinned* packet view into
// the pipeline — zero per-packet payload copies between the wire and the
// query batch. The consumer also drives the pipeline clock (AdvanceTime)
// from an injectable rt::Clock, so bins close on wall time even when the
// sources go quiet; with a ManualClock the wall contribution is zero and
// binning is driven purely by embedded timestamps, which makes the whole
// path bit-identical to an offline replay of the same records.

// Replay framing. A datagram or stream record may carry the original trace
// timestamp so live binning reproduces the offline one exactly. Big-endian.
//
//   UDP datagram:  [u32 kDatagramMagic][u64 ts_us][Ethernet frame]
//                  (no magic: the whole payload is a frame, stamped with
//                  the capture timeline on arrival)
//   TCP stream:    repeated [u32 kStreamMagic][u32 frame_len][u64 ts_us]
//                  [frame_len bytes of Ethernet frame]
inline constexpr uint32_t kDatagramMagic = 0x53484d44;  // "SHMD"
inline constexpr size_t kDatagramHeaderLen = 12;
inline constexpr uint32_t kStreamMagic = 0x53484d53;  // "SHMS"
inline constexpr size_t kStreamHeaderLen = 16;

// Hard ceiling on a framed record, mirroring the pcap importer's cap: a
// frame_len above this is a protocol error (desynced or hostile stream),
// not a buffer to allocate.
inline constexpr uint32_t kMaxFrameBytes = 256 * 1024;

// One ingest endpoint.
struct SourceSpec {
  enum class Kind : uint8_t { kUdp = 0, kTcp, kPcapFile };

  Kind kind = Kind::kUdp;
  uint16_t port = 0;  // listeners bind 127.0.0.1:<port>; 0 picks a free port
  std::string path;   // kPcapFile: capture file to follow (tail -f style)

  static SourceSpec Udp(uint16_t port) {
    SourceSpec spec;
    spec.kind = Kind::kUdp;
    spec.port = port;
    return spec;
  }
  static SourceSpec Tcp(uint16_t port) {
    SourceSpec spec;
    spec.kind = Kind::kTcp;
    spec.port = port;
    return spec;
  }
  static SourceSpec PcapFile(std::string path) {
    SourceSpec spec;
    spec.kind = Kind::kPcapFile;
    spec.path = std::move(path);
    return spec;
  }
};

const char* SourceKindName(SourceSpec::Kind kind);

struct CaptureConfig {
  std::vector<SourceSpec> sources;

  // Slot ring geometry. snap_bytes is the per-slot capture length; frames
  // longer than it are truncated (and counted), like a pcap snaplen.
  size_t slots = 2048;
  uint32_t snap_bytes = 2048;
  size_t queue_capacity = 1024;
  rt::OverflowPolicy overflow = rt::OverflowPolicy::kBlock;

  // The consumer advances the pipeline clock to (wall elapsed - late_slack),
  // so a packet may arrive up to late_slack_us behind real time before it is
  // dropped as late.
  uint64_t late_slack_us = 200'000;

  // Consumer ring-poll granularity: the longest the loop sleeps before
  // re-checking wall time when no frames arrive.
  uint64_t poll_us = 2'000;

  // Wall clock driving AdvanceTime. Null: the owning pipeline's rt clock
  // (injectable — a ManualClock freezes the wall contribution entirely).
  std::shared_ptr<rt::Clock> clock;
};

// What the capture loop needs from the pipeline. api::Pipeline adapts itself
// to this interface (see PipelineBuilder::CaptureFrom); tests substitute
// recorders. All calls are made from the single consumer thread, matching
// Pipeline's single-coordinator contract.
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  // Push a packet whose payload pointer stays valid until the packet's bin
  // closes (the capture loop guarantees slot lifetime; see CaptureLoop).
  virtual void PushPinned(const net::Packet& packet) = 0;

  // Close every bin strictly before target_us (api::Pipeline::AdvanceTime).
  virtual void AdvanceTime(uint64_t target_us) = 0;

  // Index of the currently open (next-to-close) bin.
  virtual uint64_t NextBin() const = 0;

  // Start timestamp of the open bin; packets older than this are late.
  virtual uint64_t OpenBinStartUs() const = 0;
};

// Counter snapshot (see slots.h for the live cells).
struct CaptureStats {
  uint64_t frames = 0;           // frames accepted off the wire
  uint64_t bytes = 0;            // captured frame bytes
  uint64_t packets = 0;          // decoded and pushed into the sink
  uint64_t truncated = 0;        // frames longer than snap_bytes
  uint64_t dropped_queue = 0;    // lost to ring overflow
  uint64_t dropped_no_slot = 0;  // lost because no capture slot was free
  uint64_t dropped_late = 0;     // behind the open bin on arrival
  uint64_t dropped_decode = 0;   // not decodable as Ethernet/IPv4

  uint64_t dropped() const {
    return dropped_queue + dropped_no_slot + dropped_late + dropped_decode;
  }
};

class CaptureSource;
struct CaptureShared;

// Owns the sources, the slot pool/ring, and the consumer thread. Single-shot:
// Start once, Stop once (idempotent). Stop is a clean drain — sources are
// stopped and joined first, then the ring is closed and the consumer
// processes everything already captured before exiting. Slot memory lives as
// long as the loop object, so payload views pinned into a still-open
// pipeline bin remain valid until the owner calls Pipeline::Finish.
class CaptureLoop {
 public:
  // `metrics` and `tracer` may be null. Throws std::invalid_argument on a
  // config with no sources or a pcap source without a path.
  CaptureLoop(CaptureConfig config, IngestSink* sink, obs::MetricsRegistry* metrics,
              obs::Tracer* tracer);
  ~CaptureLoop();
  CaptureLoop(const CaptureLoop&) = delete;
  CaptureLoop& operator=(const CaptureLoop&) = delete;

  // Opens every source (throws std::runtime_error if a bind/open fails —
  // nothing is left running), then starts the source threads and the
  // consumer.
  void Start();

  // Stops sources, drains the ring through the sink, joins everything.
  void Stop();

  bool running() const { return running_; }
  size_t num_sources() const;
  // Bound port of source `index` (valid after Start; 0 for pcap sources).
  uint16_t port(size_t index) const;
  CaptureStats stats() const;
  const CaptureConfig& config() const { return config_; }

 private:
  void ConsumerLoop();

  CaptureConfig config_;
  IngestSink* sink_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;
  std::unique_ptr<CaptureShared> shared_;
  std::vector<std::unique_ptr<CaptureSource>> sources_;
  std::thread consumer_;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace shedmon::capture
