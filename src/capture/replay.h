#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/rt/clock.h"
#include "src/trace/generator.h"

namespace shedmon::capture {

// Trace replay senders: the loopback feeders for the capture front-end.
// Each record is synthesized into wire bytes (trace::SynthesizeFrame) and
// sent with the replay framing from capture.h, carrying the record's
// trace-relative timestamp — so the receiver bins live traffic exactly as an
// offline Pipeline::Push of the same trace would.

struct ReplayOptions {
  // Send rate in packets per second; 0 replays as fast as the socket takes
  // them. Pacing sleeps on `clock` (null: the shared rt::DefaultClock), so
  // an injected ManualClock makes a paced replay free of real wall time.
  uint64_t pps = 0;
  std::shared_ptr<rt::Clock> clock;
};

// One datagram per record to 127.0.0.1:port. Lossy transport: the kernel
// may drop under burst. Returns packets sent; throws std::runtime_error if
// the socket cannot be created.
size_t ReplayTraceUdp(const trace::Trace& trace, uint16_t port, const ReplayOptions& options = {});

// One length-framed record per packet over a single connection to
// 127.0.0.1:port. Lossless transport. Returns packets sent; throws
// std::runtime_error if the connection fails.
size_t ReplayTraceTcp(const trace::Trace& trace, uint16_t port, const ReplayOptions& options = {});

}  // namespace shedmon::capture
