#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/rt/bounded_queue.h"

namespace shedmon::capture {

// One pre-allocated capture buffer. A source fills `bytes` once per frame
// and the consumer pins the decoded payload view straight out of it, so a
// packet's payload bytes are written exactly once between the socket and
// the query batch. The slot index (not the slot) travels through the ring.
struct CaptureSlot {
  std::vector<uint8_t> bytes;
  uint32_t frame_off = 0;  // where the Ethernet frame starts inside bytes
  uint32_t frame_len = 0;  // captured frame bytes (may be < wire length)
  uint64_t ts_us = 0;      // embedded trace timestamp (valid iff has_ts)
  bool has_ts = false;
};

// Fixed set of CaptureSlots plus a free-list. The free-list is a kBlock
// BoundedQueue sized exactly to the slot count, so Release can never block:
// at most every slot is free at once. Close() unblocks sources parked in
// AcquireBlocking during shutdown.
class SlotPool {
 public:
  SlotPool(size_t count, uint32_t snap_bytes)
      : slots_(count == 0 ? 1 : count),
        free_(slots_.size(), rt::OverflowPolicy::kBlock) {
    for (CaptureSlot& slot : slots_) {
      slot.bytes.resize(snap_bytes == 0 ? 2048 : snap_bytes);
    }
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      free_.Push(i);
    }
  }

  CaptureSlot& at(uint32_t index) { return slots_[index]; }
  std::optional<uint32_t> TryAcquire() { return free_.TryPop(); }
  std::optional<uint32_t> AcquireBlocking() { return free_.Pop(); }
  void Release(uint32_t index) { free_.Push(index); }
  void Close() { free_.Close(); }
  size_t size() const { return slots_.size(); }
  uint32_t snap_bytes() const { return static_cast<uint32_t>(slots_[0].bytes.size()); }

 private:
  std::vector<CaptureSlot> slots_;
  rt::BoundedQueue<uint32_t> free_;
};

// Shared drop/throughput accounting. Atomics are the source of truth (reads
// back into CaptureStats); the obs counters mirror them when a registry is
// attached, cached-pointer style like the rest of the pipeline.
struct CaptureCounters {
  std::atomic<uint64_t> frames{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> packets{0};
  std::atomic<uint64_t> truncated{0};
  std::atomic<uint64_t> dropped_queue{0};
  std::atomic<uint64_t> dropped_no_slot{0};
  std::atomic<uint64_t> dropped_late{0};
  std::atomic<uint64_t> dropped_decode{0};

  obs::Counter* m_packets = nullptr;
  obs::Counter* m_truncated = nullptr;
  obs::Counter* m_dropped_queue = nullptr;
  obs::Counter* m_dropped_no_slot = nullptr;
  obs::Counter* m_dropped_late = nullptr;
  obs::Counter* m_dropped_decode = nullptr;

  static void Bump(std::atomic<uint64_t>& cell, obs::Counter* mirror) {
    cell.fetch_add(1, std::memory_order_relaxed);
    if (mirror != nullptr) {
      mirror->Increment();
    }
  }
};

// Everything the source threads and the consumer thread share: the slot
// pool, the filled-slot ring, and the counters. Owned by CaptureLoop.
struct CaptureShared {
  CaptureShared(size_t slots, uint32_t snap_bytes, size_t queue_capacity,
                rt::OverflowPolicy policy)
      : pool(slots, snap_bytes), ring(queue_capacity, policy), overflow(policy) {}

  SlotPool pool;
  rt::BoundedQueue<uint32_t> ring;
  const rt::OverflowPolicy overflow;
  CaptureCounters counters;
};

}  // namespace shedmon::capture
