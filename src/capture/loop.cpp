#include "src/capture/capture.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "src/capture/slots.h"
#include "src/capture/source.h"
#include "src/net/frame.h"

namespace shedmon::capture {

namespace {

void Validate(const CaptureConfig& config) {
  if (config.sources.empty()) {
    throw std::invalid_argument("capture: config has no sources");
  }
  for (const SourceSpec& spec : config.sources) {
    if (spec.kind == SourceSpec::Kind::kPcapFile && spec.path.empty()) {
      throw std::invalid_argument("capture: pcap source needs a path");
    }
  }
}

std::unique_ptr<CaptureSource> MakeSource(const SourceSpec& spec, CaptureShared* shared) {
  switch (spec.kind) {
    case SourceSpec::Kind::kUdp:
      return std::make_unique<UdpSource>(spec, shared);
    case SourceSpec::Kind::kTcp:
      return std::make_unique<TcpSource>(spec, shared);
    case SourceSpec::Kind::kPcapFile:
      return std::make_unique<PcapFollowSource>(spec, shared);
  }
  throw std::invalid_argument("capture: unknown source kind");
}

}  // namespace

CaptureLoop::CaptureLoop(CaptureConfig config, IngestSink* sink, obs::MetricsRegistry* metrics,
                         obs::Tracer* tracer)
    : config_(std::move(config)), sink_(sink), tracer_(tracer), metrics_(metrics) {
  Validate(config_);
  if (config_.clock == nullptr) {
    config_.clock = rt::DefaultClock();
  }
}

CaptureLoop::~CaptureLoop() { Stop(); }

void CaptureLoop::Start() {
  if (running_ || stopped_) {
    throw std::logic_error("CaptureLoop::Start: single-shot; already started");
  }
  shared_ = std::make_unique<CaptureShared>(config_.slots, config_.snap_bytes,
                                            config_.queue_capacity, config_.overflow);
  if (metrics_ != nullptr) {
    CaptureCounters& c = shared_->counters;
    c.m_packets = &metrics_->GetCounter("shedmon_capture_packets_total", {},
                                        "Frames decoded and pushed into the pipeline");
    c.m_truncated = &metrics_->GetCounter("shedmon_capture_truncated_total", {},
                                          "Frames longer than the capture snaplen");
    const std::string_view drop_help = "Capture frames lost before ingestion, by reason";
    c.m_dropped_queue =
        &metrics_->GetCounter("shedmon_capture_dropped_total", {{"reason", "queue_full"}}, drop_help);
    c.m_dropped_no_slot =
        &metrics_->GetCounter("shedmon_capture_dropped_total", {{"reason", "no_slot"}}, drop_help);
    c.m_dropped_late =
        &metrics_->GetCounter("shedmon_capture_dropped_total", {{"reason", "late"}}, drop_help);
    c.m_dropped_decode =
        &metrics_->GetCounter("shedmon_capture_dropped_total", {{"reason", "decode"}}, drop_help);
  }
  // Open everything before starting anything: a bind failure must surface
  // synchronously with no threads to unwind.
  try {
    for (const SourceSpec& spec : config_.sources) {
      sources_.push_back(MakeSource(spec, shared_.get()));
      if (metrics_ != nullptr) {
        sources_.back()->SetThroughputCounters(
            &metrics_->GetCounter("shedmon_capture_frames_total",
                                  {{"source", SourceKindName(spec.kind)}},
                                  "Frames accepted off the wire, by source kind"),
            &metrics_->GetCounter("shedmon_capture_bytes_total",
                                  {{"source", SourceKindName(spec.kind)}},
                                  "Captured frame bytes, by source kind"));
      }
      sources_.back()->Open();
    }
  } catch (...) {
    sources_.clear();
    shared_.reset();
    throw;
  }
  for (std::unique_ptr<CaptureSource>& source : sources_) {
    source->Start();
  }
  consumer_ = std::thread([this] { ConsumerLoop(); });
  running_ = true;
}

void CaptureLoop::Stop() {
  if (!running_) {
    return;
  }
  // Clean drain: stop the producers first (closing the pool unblocks any
  // source parked waiting for a slot), then close the ring so the consumer
  // processes everything already captured before exiting.
  for (std::unique_ptr<CaptureSource>& source : sources_) {
    source->SignalStop();
  }
  shared_->pool.Close();
  for (std::unique_ptr<CaptureSource>& source : sources_) {
    source->Join();
  }
  shared_->ring.Close();
  if (consumer_.joinable()) {
    consumer_.join();
  }
  running_ = false;
  stopped_ = true;
}

size_t CaptureLoop::num_sources() const { return sources_.size(); }

uint16_t CaptureLoop::port(size_t index) const {
  return index < sources_.size() ? sources_[index]->port() : 0;
}

CaptureStats CaptureLoop::stats() const {
  CaptureStats stats;
  if (shared_ == nullptr) {
    return stats;
  }
  const CaptureCounters& c = shared_->counters;
  stats.frames = c.frames.load(std::memory_order_relaxed);
  stats.bytes = c.bytes.load(std::memory_order_relaxed);
  stats.packets = c.packets.load(std::memory_order_relaxed);
  stats.truncated = c.truncated.load(std::memory_order_relaxed);
  stats.dropped_queue = c.dropped_queue.load(std::memory_order_relaxed);
  stats.dropped_no_slot = c.dropped_no_slot.load(std::memory_order_relaxed);
  stats.dropped_late = c.dropped_late.load(std::memory_order_relaxed);
  stats.dropped_decode = c.dropped_decode.load(std::memory_order_relaxed);
  return stats;
}

void CaptureLoop::ConsumerLoop() {
  rt::Clock* clock = config_.clock.get();

  // The capture timeline is anchored at the first decoded packet: its
  // embedded timestamp maps to "now". From then on the sink's clock is
  // advanced to (elapsed wall time - late_slack), so bins close even when
  // the wire goes quiet. Under a ManualClock elapsed stays 0 and binning is
  // driven purely by embedded timestamps — bit-identical to offline replay.
  bool have_anchor = false;
  uint64_t anchor_trace_us = 0;
  uint64_t anchor_wall_us = 0;
  uint64_t advanced_us = 0;

  // Slots pinned into the pipeline's open bin, oldest first, tagged with the
  // bin they entered. A slot recycles only once its bin has closed — that is
  // the zero-copy contract: the batch's payload views alias slot memory.
  std::deque<std::pair<uint64_t, uint32_t>> inflight;

  const auto release_completed = [&] {
    const uint64_t next_bin = sink_->NextBin();
    while (!inflight.empty() && inflight.front().first < next_bin) {
      shared_->pool.Release(inflight.front().second);
      inflight.pop_front();
    }
  };

  const auto advance_wall = [&] {
    if (!have_anchor) {
      return;
    }
    const uint64_t now = clock->NowUs();
    const uint64_t elapsed = now > anchor_wall_us ? now - anchor_wall_us : 0;
    const uint64_t lag = config_.late_slack_us;
    const uint64_t target = anchor_trace_us + (elapsed > lag ? elapsed - lag : 0);
    if (target > advanced_us) {
      advanced_us = target;
      sink_->AdvanceTime(target);
      release_completed();
    }
  };

  const auto handle_slot = [&](uint32_t index) {
    CaptureSlot& slot = shared_->pool.at(index);
    net::DecodedFrame decoded;
    const net::FrameDecodeStatus status = net::DecodeEthernetFrame(
        slot.bytes.data() + slot.frame_off, slot.frame_len, &decoded);
    if (status != net::FrameDecodeStatus::kOk) {
      CaptureCounters::Bump(shared_->counters.dropped_decode,
                            shared_->counters.m_dropped_decode);
      shared_->pool.Release(index);
      return;
    }
    uint64_t ts_us;
    if (slot.has_ts) {
      ts_us = slot.ts_us;
    } else if (have_anchor) {
      // Raw frame with no embedded timestamp: stamp with the capture
      // timeline's current position.
      const uint64_t now = clock->NowUs();
      ts_us = anchor_trace_us + (now > anchor_wall_us ? now - anchor_wall_us : 0);
    } else {
      ts_us = 0;
    }
    decoded.rec.ts_us = ts_us;
    // Pin only bytes that exist: a snaplen-truncated payload shrinks the
    // record, it never yields a view past the captured data.
    decoded.rec.payload_len = decoded.payload_captured;
    if (!have_anchor) {
      have_anchor = true;
      anchor_trace_us = ts_us;
      anchor_wall_us = clock->NowUs();
    }
    if (ts_us < sink_->OpenBinStartUs()) {
      CaptureCounters::Bump(shared_->counters.dropped_late, shared_->counters.m_dropped_late);
      shared_->pool.Release(index);
      return;
    }
    const net::Packet packet{&decoded.rec, decoded.payload, decoded.payload_captured};
    sink_->PushPinned(packet);
    CaptureCounters::Bump(shared_->counters.packets, shared_->counters.m_packets);
    inflight.emplace_back(sink_->NextBin(), index);
    release_completed();
  };

  for (;;) {
    std::optional<uint32_t> index = shared_->ring.PopFor(config_.poll_us);
    if (!index.has_value()) {
      if (shared_->ring.closed() && shared_->ring.Size() == 0) {
        break;
      }
      advance_wall();
      continue;
    }
    // Drain the burst under one span: per-packet spans would dwarf the work.
    {
      obs::Span span(tracer_, obs::Stage::kCapture, static_cast<uint32_t>(sink_->NextBin()));
      do {
        handle_slot(*index);
        index = shared_->ring.TryPop();
      } while (index.has_value());
    }
    advance_wall();
  }
  // Exiting with slots still inflight is correct: their payload views live
  // in the pipeline's open bin, and slot memory persists until the loop
  // object is destroyed (after Pipeline::Finish closes that bin).
}

}  // namespace shedmon::capture
