#include "src/capture/source.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/net/frame.h"

namespace shedmon::capture {

namespace {

// Listener bind shared by the UDP and TCP sources: loopback only (the
// capture front-end ingests replay/feed traffic, it is not an exposed
// service) and, like ObsServer, deliberately no SO_REUSEADDR so a port
// already in use fails loudly at Open time.
uint16_t BindLoopback(int fd, uint16_t port, const char* what) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    throw std::runtime_error("capture: cannot bind " + std::string(what) + " 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return ntohs(addr.sin_port);
}

// Reader threads poll with a short real-time tick so SignalStop is observed
// promptly without waking per-packet.
constexpr int kPollMs = 100;

}  // namespace

const char* SourceKindName(SourceSpec::Kind kind) {
  switch (kind) {
    case SourceSpec::Kind::kUdp:
      return "udp";
    case SourceSpec::Kind::kTcp:
      return "tcp";
    case SourceSpec::Kind::kPcapFile:
      return "pcap";
  }
  return "unknown";
}

CaptureSource::CaptureSource(const SourceSpec& spec, CaptureShared* shared)
    : spec_(spec), shared_(shared) {}

CaptureSource::~CaptureSource() {
  if (thread_.joinable()) {
    SignalStop();
    thread_.join();
  }
}

void CaptureSource::Start() { thread_ = std::thread([this] { Run(); }); }

void CaptureSource::SignalStop() {
  {
    util::MutexLock lock(stop_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  stop_cv_.NotifyAll();
}

void CaptureSource::Join() {
  if (thread_.joinable()) {
    thread_.join();
  }
}

bool CaptureSource::WaitStop(uint64_t us) {
  util::MutexLock lock(stop_mutex_);
  if (!stop_.load(std::memory_order_relaxed)) {
    stop_cv_.WaitFor(lock, us);
  }
  return stop_.load(std::memory_order_relaxed);
}

bool CaptureSource::AcquireSlot(uint32_t* index) {
  std::optional<uint32_t> slot;
  if (shared_->overflow == rt::OverflowPolicy::kBlock) {
    slot = shared_->pool.AcquireBlocking();  // nullopt only once the pool closes
  } else {
    slot = shared_->pool.TryAcquire();
    if (!slot.has_value()) {
      CaptureCounters::Bump(shared_->counters.dropped_no_slot,
                            shared_->counters.m_dropped_no_slot);
    }
  }
  if (!slot.has_value()) {
    return false;
  }
  *index = *slot;
  return true;
}

void CaptureSource::Emit(uint32_t index) {
  std::optional<uint32_t> evicted;
  if (!shared_->ring.Push(index, &evicted)) {
    shared_->pool.Release(index);
    CaptureCounters::Bump(shared_->counters.dropped_queue, shared_->counters.m_dropped_queue);
  }
  if (evicted.has_value()) {
    shared_->pool.Release(*evicted);
    CaptureCounters::Bump(shared_->counters.dropped_queue, shared_->counters.m_dropped_queue);
  }
}

void CaptureSource::CountFrame(uint64_t frame_bytes) {
  shared_->counters.frames.fetch_add(1, std::memory_order_relaxed);
  shared_->counters.bytes.fetch_add(frame_bytes, std::memory_order_relaxed);
  if (m_frames_ != nullptr) {
    m_frames_->Increment();
  }
  if (m_bytes_ != nullptr) {
    m_bytes_->Add(static_cast<double>(frame_bytes));
  }
}

// ---------------------------------------------------------------- UdpSource

UdpSource::~UdpSource() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void UdpSource::Open() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("capture: udp socket() failed: " + std::string(std::strerror(errno)));
  }
  // A burst of replayed datagrams lands faster than the consumer paces bins;
  // a deep kernel buffer keeps the lossless (kBlock) path actually lossless.
  const int rcvbuf = 8 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  try {
    port_ = BindLoopback(fd_, spec().port, "udp");
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

void UdpSource::Run() {
  std::vector<uint8_t> scratch(shared().pool.snap_bytes());
  while (!stopping()) {
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, kPollMs) <= 0) {
      continue;
    }
    uint32_t index = 0;
    if (!AcquireSlot(&index)) {
      if (stopping()) {
        break;
      }
      // No slot under a drop policy: the datagram is lost either way, but it
      // must still leave the socket buffer or poll() spins hot forever.
      (void)::recv(fd_, scratch.data(), scratch.size(), 0);
      continue;
    }
    CaptureSlot& slot = shared().pool.at(index);
    // MSG_TRUNC makes recv report the datagram's full length even when the
    // slot is shorter, so snaplen truncation is detected, not silent.
    const ssize_t n = ::recv(fd_, slot.bytes.data(), slot.bytes.size(), MSG_TRUNC);
    if (n <= 0) {
      shared().pool.Release(index);
      continue;
    }
    const uint32_t have =
        static_cast<uint32_t>(std::min<size_t>(static_cast<size_t>(n), slot.bytes.size()));
    if (static_cast<size_t>(n) > slot.bytes.size()) {
      CaptureCounters::Bump(shared().counters.truncated, shared().counters.m_truncated);
    }
    const uint8_t* data = slot.bytes.data();
    if (have >= kDatagramHeaderLen && net::ReadBe32(data) == kDatagramMagic) {
      slot.ts_us = net::ReadBe64(data + 4);
      slot.has_ts = true;
      slot.frame_off = static_cast<uint32_t>(kDatagramHeaderLen);
      slot.frame_len = have - static_cast<uint32_t>(kDatagramHeaderLen);
    } else {
      // Raw frame with no replay header; the consumer stamps arrival time.
      slot.has_ts = false;
      slot.frame_off = 0;
      slot.frame_len = have;
    }
    CountFrame(slot.frame_len);
    Emit(index);
  }
}

// ---------------------------------------------------------------- TcpSource

TcpSource::~TcpSource() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

void TcpSource::Open() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("capture: tcp socket() failed: " + std::string(std::strerror(errno)));
  }
  try {
    port_ = BindLoopback(listen_fd_, spec().port, "tcp");
    if (::listen(listen_fd_, 4) != 0) {
      throw std::runtime_error("capture: tcp listen() failed: " +
                               std::string(std::strerror(errno)));
    }
  } catch (...) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw;
  }
}

void TcpSource::Run() {
  while (!stopping()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, kPollMs) <= 0) {
      continue;
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    ServeClient(client);
    ::close(client);
  }
}

bool TcpSource::ReadFull(int fd, uint8_t* dst, size_t len) {
  size_t got = 0;
  while (got < len) {
    if (stopping()) {
      return false;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      return false;
    }
    if (ready == 0) {
      continue;
    }
    const ssize_t n = ::recv(fd, dst + got, len - got, 0);
    if (n <= 0) {
      return false;
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

bool TcpSource::Discard(int fd, size_t len) {
  uint8_t scratch[4096];
  while (len > 0) {
    const size_t chunk = std::min(len, sizeof(scratch));
    if (!ReadFull(fd, scratch, chunk)) {
      return false;
    }
    len -= chunk;
  }
  return true;
}

void TcpSource::ServeClient(int fd) {
  uint8_t header[kStreamHeaderLen];
  while (!stopping()) {
    if (!ReadFull(fd, header, sizeof(header))) {
      return;  // clean EOF at a record boundary, peer error, or stopping
    }
    if (net::ReadBe32(header) != kStreamMagic) {
      // A desynced (or foreign) length-framed stream cannot be resynced;
      // drop the connection rather than ingest garbage.
      CaptureCounters::Bump(shared().counters.dropped_decode,
                            shared().counters.m_dropped_decode);
      return;
    }
    const uint32_t frame_len = net::ReadBe32(header + 4);
    const uint64_t ts_us = net::ReadBe64(header + 8);
    if (frame_len == 0 || frame_len > kMaxFrameBytes) {
      CaptureCounters::Bump(shared().counters.dropped_decode,
                            shared().counters.m_dropped_decode);
      return;
    }
    uint32_t index = 0;
    if (!AcquireSlot(&index)) {
      if (stopping()) {
        return;
      }
      // Drop policies: the frame is lost, but its bytes must leave the
      // stream so the next record header lines up.
      if (!Discard(fd, frame_len)) {
        return;
      }
      continue;
    }
    CaptureSlot& slot = shared().pool.at(index);
    const uint32_t keep = static_cast<uint32_t>(std::min<size_t>(frame_len, slot.bytes.size()));
    if (!ReadFull(fd, slot.bytes.data(), keep)) {
      shared().pool.Release(index);
      return;
    }
    bool stream_ok = true;
    if (keep < frame_len) {
      CaptureCounters::Bump(shared().counters.truncated, shared().counters.m_truncated);
      stream_ok = Discard(fd, frame_len - keep);
    }
    slot.ts_us = ts_us;
    slot.has_ts = true;
    slot.frame_off = 0;
    slot.frame_len = keep;
    CountFrame(keep);
    Emit(index);
    if (!stream_ok) {
      return;
    }
  }
}

// --------------------------------------------------------- PcapFollowSource

void PcapFollowSource::Open() {
  reader_ = std::make_unique<trace::PcapReader>(spec().path);  // throws on a bad file
}

void PcapFollowSource::Run() {
  trace::PcapReader::RecordInfo info;
  bool have_first = false;
  uint64_t first_ts = 0;
  while (!stopping()) {
    // The file is durable, so a full pool is never a drop for this source:
    // wait for a slot (briefly, under drop policies) and re-read.
    std::optional<uint32_t> index;
    if (shared().overflow == rt::OverflowPolicy::kBlock) {
      index = shared().pool.AcquireBlocking();
      if (!index.has_value()) {
        return;  // pool closed: shutting down
      }
    } else {
      index = shared().pool.TryAcquire();
      if (!index.has_value()) {
        WaitStop(1000);
        continue;
      }
    }
    CaptureSlot& slot = shared().pool.at(*index);
    const trace::PcapReader::Status status =
        reader_->Next(slot.bytes.data(), slot.bytes.size(), &info);
    switch (status) {
      case trace::PcapReader::Status::kRecord: {
        if (!have_first) {
          have_first = true;
          first_ts = info.ts_us;
        }
        // Rebase to the first record, exactly like trace::ImportPcap.
        slot.ts_us = info.ts_us >= first_ts ? info.ts_us - first_ts : 0;
        slot.has_ts = true;
        slot.frame_off = 0;
        slot.frame_len = info.captured;
        if (info.captured < info.incl_len) {
          CaptureCounters::Bump(shared().counters.truncated, shared().counters.m_truncated);
        }
        CountFrame(info.captured);
        Emit(*index);
        break;
      }
      case trace::PcapReader::Status::kEof:
      case trace::PcapReader::Status::kAwait:
        // Caught up with the writer (or mid-record); wait for growth.
        shared().pool.Release(*index);
        WaitStop(5000);
        break;
      case trace::PcapReader::Status::kCorrupt:
        // An impossible record length means the file is damaged from here
        // on; following further would ingest garbage. Stop this source.
        shared().pool.Release(*index);
        CaptureCounters::Bump(shared().counters.dropped_decode,
                              shared().counters.m_dropped_decode);
        return;
    }
  }
}

}  // namespace shedmon::capture
