#include "src/capture/replay.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/capture/capture.h"
#include "src/trace/pcap.h"

namespace shedmon::capture {

namespace {

void PutBe32(std::vector<uint8_t>& out, size_t at, uint32_t value) {
  out[at] = static_cast<uint8_t>(value >> 24);
  out[at + 1] = static_cast<uint8_t>(value >> 16);
  out[at + 2] = static_cast<uint8_t>(value >> 8);
  out[at + 3] = static_cast<uint8_t>(value);
}

void PutBe64(std::vector<uint8_t>& out, size_t at, uint64_t value) {
  PutBe32(out, at, static_cast<uint32_t>(value >> 32));
  PutBe32(out, at + 4, static_cast<uint32_t>(value));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

// Paces packet `index` against the replay start: sleeps until the record's
// scheduled send time. Checked in small strides so the sleep error stays
// bounded without a syscall per packet.
class Pacer {
 public:
  Pacer(uint64_t pps, rt::Clock* clock) : pps_(pps), clock_(clock) {
    if (pps_ > 0) {
      start_us_ = clock_->NowUs();
    }
  }

  void Tick(size_t index) {
    if (pps_ == 0 || (index & 31) != 0) {
      return;
    }
    const uint64_t target = start_us_ + index * 1'000'000 / pps_;
    const uint64_t now = clock_->NowUs();
    if (target > now) {
      clock_->SleepUs(target - now);
    }
  }

 private:
  const uint64_t pps_;
  rt::Clock* clock_;
  uint64_t start_us_ = 0;
};

bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

size_t ReplayTraceUdp(const trace::Trace& trace, uint16_t port, const ReplayOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    throw std::runtime_error("replay: udp socket() failed: " + std::string(std::strerror(errno)));
  }
  const sockaddr_in addr = LoopbackAddr(port);
  std::shared_ptr<rt::Clock> clock = options.clock ? options.clock : rt::DefaultClock();
  Pacer pacer(options.pps, clock.get());
  size_t sent = 0;
  std::vector<uint8_t> datagram;
  for (size_t i = 0; i < trace.packets.size(); ++i) {
    pacer.Tick(i);
    const std::vector<uint8_t> frame = trace::SynthesizeFrame(trace.packets[i]);
    datagram.resize(kDatagramHeaderLen + frame.size());
    PutBe32(datagram, 0, kDatagramMagic);
    PutBe64(datagram, 4, trace.packets[i].ts_us);
    std::memcpy(datagram.data() + kDatagramHeaderLen, frame.data(), frame.size());
    const ssize_t n = ::sendto(fd, datagram.data(), datagram.size(), 0,
                               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (n == static_cast<ssize_t>(datagram.size())) {
      ++sent;
    }
  }
  ::close(fd);
  return sent;
}

size_t ReplayTraceTcp(const trace::Trace& trace, uint16_t port, const ReplayOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("replay: tcp socket() failed: " + std::string(std::strerror(errno)));
  }
  const sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("replay: cannot connect to 127.0.0.1:" + std::to_string(port) +
                             ": " + why);
  }
  std::shared_ptr<rt::Clock> clock = options.clock ? options.clock : rt::DefaultClock();
  Pacer pacer(options.pps, clock.get());
  size_t sent = 0;
  std::vector<uint8_t> record;
  for (size_t i = 0; i < trace.packets.size(); ++i) {
    pacer.Tick(i);
    const std::vector<uint8_t> frame = trace::SynthesizeFrame(trace.packets[i]);
    record.resize(kStreamHeaderLen + frame.size());
    PutBe32(record, 0, kStreamMagic);
    PutBe32(record, 4, static_cast<uint32_t>(frame.size()));
    PutBe64(record, 8, trace.packets[i].ts_us);
    std::memcpy(record.data() + kStreamHeaderLen, frame.data(), frame.size());
    if (!SendAll(fd, record.data(), record.size())) {
      break;  // receiver gone; report what made it out
    }
    ++sent;
  }
  ::close(fd);
  return sent;
}

}  // namespace shedmon::capture
