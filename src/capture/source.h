#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/capture/capture.h"
#include "src/capture/slots.h"
#include "src/trace/pcap.h"
#include "src/util/sync.h"

namespace shedmon::capture {

// One capture endpoint running its own reader thread. Sources never decode:
// they move bytes from the transport into a slot, stamp the embedded replay
// timestamp if present, and hand the slot index to the ring. Decode and
// binning live on the single consumer thread.
class CaptureSource {
 public:
  CaptureSource(const SourceSpec& spec, CaptureShared* shared);
  virtual ~CaptureSource();
  CaptureSource(const CaptureSource&) = delete;
  CaptureSource& operator=(const CaptureSource&) = delete;

  // Bind/listen/open the transport. Throws std::runtime_error on failure;
  // called before any thread starts so errors surface synchronously.
  virtual void Open() = 0;

  void Start();       // spawn the reader thread (Open must have succeeded)
  void SignalStop();  // flag + wake; does not join
  void Join();        // join the reader thread (SignalStop first)

  // Bound local port (listeners; 0 for file sources). Valid after Open.
  virtual uint16_t port() const { return 0; }
  const SourceSpec& spec() const { return spec_; }

  // Mirror counters for shedmon_capture_{frames,bytes}_total{source=...};
  // may stay null when no registry is attached.
  void SetThroughputCounters(obs::Counter* frames, obs::Counter* bytes) {
    m_frames_ = frames;
    m_bytes_ = bytes;
  }

 protected:
  virtual void Run() = 0;

  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  // Sleeps up to `us` real microseconds, returning early (true) if stopped.
  // Deliberately NOT the injected rt clock: a ManualClock's SleepUs advances
  // virtual time, and source retry pacing must never move the bin timeline.
  bool WaitStop(uint64_t us);

  // Pulls a free slot according to the overflow policy: kBlock parks until
  // one frees (or the pool closes), the drop policies fail fast and count
  // dropped_no_slot. False means the caller must discard the frame.
  bool AcquireSlot(uint32_t* index);

  // Accounts the filled slot and pushes its index to the ring, recycling the
  // slot (and counting dropped_queue) on overflow or eviction.
  void Emit(uint32_t index);

  // Throughput accounting for one accepted frame.
  void CountFrame(uint64_t frame_bytes);

  CaptureShared& shared() { return *shared_; }

 private:
  const SourceSpec spec_;
  CaptureShared* shared_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  util::Mutex stop_mutex_;
  util::CondVar stop_cv_;
  obs::Counter* m_frames_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
};

// Datagram listener on 127.0.0.1. One frame per datagram, optionally
// prefixed with the kDatagramMagic replay header. Datagrams longer than the
// slot are truncated (MSG_TRUNC) and counted.
class UdpSource final : public CaptureSource {
 public:
  UdpSource(const SourceSpec& spec, CaptureShared* shared) : CaptureSource(spec, shared) {}
  ~UdpSource() override;

  void Open() override;
  uint16_t port() const override { return port_; }

 protected:
  void Run() override;

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Stream listener on 127.0.0.1 carrying length-framed records (kStreamMagic).
// Lossless transport: with the kBlock policy nothing is dropped, which is
// what makes the TCP path bit-identical to offline replay. Serves one client
// at a time — the framing is a replay/feed protocol, not a general server.
class TcpSource final : public CaptureSource {
 public:
  TcpSource(const SourceSpec& spec, CaptureShared* shared) : CaptureSource(spec, shared) {}
  ~TcpSource() override;

  void Open() override;
  uint16_t port() const override { return port_; }

 protected:
  void Run() override;

 private:
  // All return false when the connection should be dropped (peer gone,
  // protocol error) or the source is stopping.
  bool ReadFull(int fd, uint8_t* dst, size_t len);
  bool Discard(int fd, size_t len);
  void ServeClient(int fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

// Follows a pcap file as it grows (live `tail -f` over trace::PcapReader):
// kAwait from a half-written record rewinds and retries, kEof waits for more
// bytes. Timestamps are rebased to the first record, matching ImportPcap.
class PcapFollowSource final : public CaptureSource {
 public:
  PcapFollowSource(const SourceSpec& spec, CaptureShared* shared) : CaptureSource(spec, shared) {}
  ~PcapFollowSource() override = default;

  void Open() override;

 protected:
  void Run() override;

 private:
  std::unique_ptr<trace::PcapReader> reader_;
};

}  // namespace shedmon::capture
