#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/api/pipeline.h"
#include "src/core/runner.h"
#include "src/exec/thread_pool.h"
#include "src/trace/generator.h"

namespace shedmon::api {

// Runs one core::RunSpec end-to-end through the facade: builds a Pipeline
// from the spec, registers its queries (per-query configs, else the default
// min-rate policy), pushes the whole trace and finishes. The returned
// pipeline holds the system log and the live reference instances;
// core::RunSystemOnTrace is a thin wrapper over this function.
std::unique_ptr<Pipeline> RunTrace(const core::RunSpec& spec, const trace::Trace& trace);

// Facade twin of exec::ParallelTraceRunner::RunGrid: fans `cells`
// independent pipeline runs over `pool` (serially when null). make_spec must
// be safe to call concurrently; result i corresponds to cell i and is
// bit-identical to running that cell alone.
std::vector<std::unique_ptr<Pipeline>> RunPipelineGrid(
    size_t cells, const std::function<core::RunSpec(size_t)>& make_spec,
    const trace::Trace& trace, exec::ThreadPool* pool);

}  // namespace shedmon::api
