// Pipeline snapshot/restore: the versioned binary format behind
// Pipeline::Snapshot and PipelineBuilder::Restore.
//
// Layout (all primitives via obs::SnapshotWriter, little-endian):
//   magic + version
//   SystemConfig (every field, fixed order)
//   oracle kind, track_accuracy, default_min_rates
//   query roster: count, then per query (name, QueryConfig)
//   MonitoringSystem::SaveState (RNG, smoothers, buffer/threshold, per-query
//     sampler/enforcement/predictor state, oracle state)
//   pipeline scalars (open_bin, bins_processed, next handle id)
//
// The format captures exactly the state that determines future BinLogs.
// Query *results* are not serialized: snapshots are only legal on a
// measurement-interval boundary, where per-interval query state is empty and
// a freshly constructed query instance produces the same work-unit deltas
// (and therefore the same model-oracle charges) as the veteran it replaces.
// Accuracy references, the metrics registry and PipelineStats restart from
// zero on restore — they describe the restoring process, not the run.

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/api/pipeline.h"
#include "src/obs/snapshot.h"
#include "src/query/queries.h"
#include "src/rt/atomic_file.h"

namespace shedmon::api {

namespace {

void WriteSystemConfig(obs::SnapshotWriter& w, const core::SystemConfig& c) {
  w.U64(c.time_bin_us);
  w.F64(c.cycles_per_bin);
  w.U8(static_cast<uint8_t>(c.shedder));
  w.U8(static_cast<uint8_t>(c.strategy));
  w.U8(static_cast<uint8_t>(c.predictor.kind));
  w.U64(c.predictor.history);
  w.F64(c.predictor.fcbf_threshold);
  w.F64(c.predictor.ewma_alpha);
  w.I64(c.predictor.slr_feature);
  w.U32(c.extractor.mrb_components);
  w.U32(c.extractor.mrb_bits);
  w.U64(c.extractor.seed);
  w.F64(c.buffer_bins);
  w.F64(c.ewma_alpha);
  w.Bool(c.error_margin_enabled);
  w.F64(c.como_overhead_fraction);
  w.F64(c.reactive_min_rate);
  w.U64(c.system_interval_bins);
  w.Bool(c.rtthresh_enabled);
  w.U64(c.warmup_observations);
  w.F64(c.bootstrap_rate);
  w.Bool(c.enable_custom_shedding);
  w.F64(c.enforcement.ewma_alpha);
  w.F64(c.enforcement.over_tolerance);
  w.F64(c.enforcement.gross_violation_factor);
  w.I64(c.enforcement.strikes_to_disable);
  w.I64(c.enforcement.penalty_bins);
  w.U64(c.seed);
  w.U64(c.num_threads);
  w.U64(c.max_shards_per_query);
}

uint8_t CheckedEnum(uint8_t value, uint8_t max, const char* what) {
  if (value > max) {
    throw obs::SnapshotError(std::string("snapshot holds an unknown ") + what + " value");
  }
  return value;
}

core::SystemConfig ReadSystemConfig(obs::SnapshotReader& r) {
  core::SystemConfig c;
  c.time_bin_us = r.U64();
  c.cycles_per_bin = r.F64();
  c.shedder = static_cast<core::ShedderKind>(CheckedEnum(r.U8(), 2, "shedder"));
  c.strategy = static_cast<shed::StrategyKind>(CheckedEnum(r.U8(), 2, "strategy"));
  c.predictor.kind = static_cast<predict::PredictorKind>(CheckedEnum(r.U8(), 2, "predictor"));
  c.predictor.history = static_cast<size_t>(r.U64());
  c.predictor.fcbf_threshold = r.F64();
  c.predictor.ewma_alpha = r.F64();
  c.predictor.slr_feature = static_cast<int>(r.I64());
  c.extractor.mrb_components = r.U32();
  c.extractor.mrb_bits = r.U32();
  c.extractor.seed = r.U64();
  c.buffer_bins = r.F64();
  c.ewma_alpha = r.F64();
  c.error_margin_enabled = r.Bool();
  c.como_overhead_fraction = r.F64();
  c.reactive_min_rate = r.F64();
  c.system_interval_bins = static_cast<size_t>(r.U64());
  c.rtthresh_enabled = r.Bool();
  c.warmup_observations = static_cast<size_t>(r.U64());
  c.bootstrap_rate = r.F64();
  c.enable_custom_shedding = r.Bool();
  c.enforcement.ewma_alpha = r.F64();
  c.enforcement.over_tolerance = r.F64();
  c.enforcement.gross_violation_factor = r.F64();
  c.enforcement.strikes_to_disable = static_cast<int>(r.I64());
  c.enforcement.penalty_bins = static_cast<int>(r.I64());
  c.seed = r.U64();
  c.num_threads = static_cast<size_t>(r.U64());
  c.max_shards_per_query = static_cast<size_t>(r.U64());
  return c;
}

}  // namespace

void Pipeline::Snapshot(std::ostream& out) const {
  if (!records_.empty()) {
    throw obs::SnapshotError(
        "Pipeline::Snapshot: the open bin holds packets; snapshot between bins "
        "(after AdvanceTime to a bin boundary)");
  }
  if (!system_->AtIntervalBoundary()) {
    throw obs::SnapshotError(
        "Pipeline::Snapshot: not on a measurement-interval boundary; per-interval "
        "query state would be lost");
  }
  for (size_t q = 0; q < system_->num_queries(); ++q) {
    // Only the standard roster restores by name; user-supplied instances
    // cannot be reconstructed from a stream.
    try {
      (void)query::MakeQuery(system_->query(q).name());
    } catch (const std::invalid_argument&) {
      throw obs::SnapshotError("Pipeline::Snapshot: query '" + system_->query(q).name() +
                               "' is not a standard query and cannot be serialized");
    }
  }

  obs::SnapshotWriter w(out);
  w.Magic();
  WriteSystemConfig(w, system_->config());
  w.U8(static_cast<uint8_t>(oracle_kind_));
  w.Bool(track_accuracy_);
  w.Bool(default_min_rates_);
  w.U64(system_->num_queries());
  for (size_t q = 0; q < system_->num_queries(); ++q) {
    w.Str(system_->query(q).name());
    const core::QueryConfig& qc = system_->query_config(q);
    w.F64(qc.min_sampling_rate);
    w.Bool(qc.allow_custom_shedding);
  }
  system_->SaveState(w);
  w.U64(open_bin_);
  w.U64(bins_processed_);
  w.U64(next_id_);
  w.Trailer();
  if (!out) {
    throw obs::SnapshotError("Pipeline::Snapshot: write failed");
  }
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("snapshot").Int("bin", open_bin_).Int("queries",
                                                                       system_->num_queries()));
  }
}

void Pipeline::Snapshot(const std::string& path) const {
  // Serialize fully in memory, then publish via write-to-temp + fsync +
  // rename: readers either see the old file or the complete new one, never
  // a torn snapshot — a crash mid-write cannot destroy the previous state.
  std::ostringstream buf(std::ios::binary);
  Snapshot(buf);
  try {
    rt::WriteFileAtomic(path, buf.str());
  } catch (const std::runtime_error& e) {
    throw obs::SnapshotError("Pipeline::Snapshot: write to '" + path +
                             "' failed: " + e.what());
  }
}

std::unique_ptr<Pipeline> PipelineBuilder::Restore(std::istream& in) {
  obs::SnapshotReader r(in);
  r.Magic();
  const core::SystemConfig config = ReadSystemConfig(r);
  const auto oracle = static_cast<core::OracleKind>(CheckedEnum(r.U8(), 1, "oracle"));
  const bool track_accuracy = r.Bool();
  const bool default_min_rates = r.Bool();

  auto pipeline = std::unique_ptr<Pipeline>(
      new Pipeline(config, oracle, track_accuracy, default_min_rates));

  // Recreate the roster in registration order. AddQuery consumes system RNG
  // draws for the samplers, but LoadState below overwrites the RNG and every
  // sampler state wholesale, so the draw count here is irrelevant.
  const uint64_t n = r.U64();
  for (uint64_t q = 0; q < n; ++q) {
    const std::string name = r.Str();
    core::QueryConfig qc;
    qc.min_sampling_rate = r.F64();
    qc.allow_custom_shedding = r.Bool();
    try {
      pipeline->AddQuery(name, qc);
    } catch (const std::invalid_argument& e) {
      throw obs::SnapshotError("PipelineBuilder::Restore: cannot recreate query '" + name +
                               "': " + e.what());
    }
  }

  pipeline->system_->LoadState(r);
  pipeline->open_bin_ = r.U64();
  pipeline->bins_processed_ = static_cast<size_t>(r.U64());
  pipeline->next_id_ = r.U64();
  r.Trailer();
  return pipeline;
}

std::unique_ptr<Pipeline> PipelineBuilder::Restore(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw obs::SnapshotError("PipelineBuilder::Restore: cannot open '" + path + "'");
  }
  return Restore(in);
}

}  // namespace shedmon::api
