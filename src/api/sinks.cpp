#include "src/api/sinks.h"

#include <stdexcept>

namespace shedmon::api {

namespace {

std::ofstream OpenOrThrow(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    throw std::runtime_error("bin sink: cannot open '" + path + "' for writing");
  }
  return file;
}

// Query names are plain identifiers today, but a user query can be named
// anything; escape the characters that would break a JSON string.
void WriteJsonString(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

CsvBinSink::CsvBinSink(std::ostream& out) : out_(&out) {}

CsvBinSink::CsvBinSink(const std::string& path) : file_(OpenOrThrow(path)), out_(&file_) {}

void CsvBinSink::OnBin(const core::BinLog& log, const BinStats& stats) {
  if (!header_written_) {
    *out_ << "bin,start_us,num_queries,packets_in,packets_dropped,packets_unsampled,"
             "batch_dropped,overload,predicted_cycles,avail_cycles,query_cycles,ps_cycles,"
             "ls_cycles,como_cycles,backlog_cycles,rtthresh,utilization,drop_fraction,"
             "shed_fraction\n";
    header_written_ = true;
  }
  *out_ << stats.bin_index << ',' << log.start_us << ',' << stats.num_queries << ','
        << log.packets_in << ',' << log.packets_dropped << ',' << log.packets_unsampled << ','
        << (log.batch_dropped ? 1 : 0) << ',' << (log.overload ? 1 : 0) << ','
        << log.predicted_cycles << ',' << log.avail_cycles << ',' << log.query_cycles << ','
        << log.ps_cycles << ',' << log.ls_cycles << ',' << log.como_cycles << ','
        << log.backlog_cycles << ',' << log.rtthresh << ',' << stats.utilization << ','
        << stats.drop_fraction << ',' << stats.shed_fraction << '\n';
}

void CsvBinSink::OnRunEnd() { out_->flush(); }

JsonlBinSink::JsonlBinSink(std::ostream& out) : out_(&out) {}

JsonlBinSink::JsonlBinSink(const std::string& path) : file_(OpenOrThrow(path)), out_(&file_) {}

void JsonlBinSink::OnBin(const core::BinLog& log, const BinStats& stats) {
  std::ostream& out = *out_;
  out << "{\"bin\":" << stats.bin_index << ",\"start_us\":" << log.start_us
      << ",\"packets_in\":" << log.packets_in
      << ",\"packets_dropped\":" << log.packets_dropped
      << ",\"packets_unsampled\":" << log.packets_unsampled
      << ",\"batch_dropped\":" << (log.batch_dropped ? "true" : "false")
      << ",\"overload\":" << (log.overload ? "true" : "false")
      << ",\"predicted_cycles\":" << log.predicted_cycles
      << ",\"avail_cycles\":" << log.avail_cycles << ",\"query_cycles\":" << log.query_cycles
      << ",\"ps_cycles\":" << log.ps_cycles << ",\"ls_cycles\":" << log.ls_cycles
      << ",\"como_cycles\":" << log.como_cycles << ",\"backlog_cycles\":" << log.backlog_cycles
      << ",\"utilization\":" << stats.utilization << ",\"queries\":[";
  for (size_t q = 0; q < stats.query_names.size(); ++q) {
    if (q > 0) {
      out << ',';
    }
    WriteJsonString(out, stats.query_names[q]);
  }
  out << "],\"rate\":[";
  for (size_t q = 0; q < log.rate.size(); ++q) {
    out << (q > 0 ? "," : "") << log.rate[q];
  }
  out << "],\"per_query_cycles\":[";
  for (size_t q = 0; q < log.per_query_cycles.size(); ++q) {
    out << (q > 0 ? "," : "") << log.per_query_cycles[q];
  }
  out << "],\"disabled\":[";
  for (size_t q = 0; q < log.disabled.size(); ++q) {
    out << (q > 0 ? "," : "") << (log.disabled[q] ? "true" : "false");
  }
  out << "]}\n";
}

void JsonlBinSink::OnRunEnd() { out_->flush(); }

}  // namespace shedmon::api
