#include "src/api/sinks.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/rt/governor.h"

namespace shedmon::api {

namespace {

std::ofstream OpenOrThrow(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    throw std::runtime_error("bin sink: cannot open '" + path + "' for writing");
  }
  return file;
}

// Query names are plain identifiers today, but a user query can be named
// anything; escape the characters that would break a JSON string.
void WriteJsonString(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

ResilientSinkBase::ResilientSinkBase(std::ostream& out, std::string name)
    : out_(&out), name_(std::move(name)) {}

ResilientSinkBase::ResilientSinkBase(const std::string& path, std::string name)
    : file_(OpenOrThrow(path)), out_(&file_), name_(std::move(name)) {}

void ResilientSinkBase::EnableResilience(const rt::RetryPolicy& policy,
                                         std::shared_ptr<rt::Clock> clock) {
  if (clock == nullptr) {
    clock = rt::DefaultClock();
  }
  writer_ = std::make_unique<rt::ResilientWriter>(*out_, policy, std::move(clock));
  writer_->SetFaultInjector(injector_);
  writer_->Attach(metrics_, logger_, name_);
}

void ResilientSinkBase::AttachRt(rt::FaultInjector* injector, obs::MetricsRegistry* metrics,
                                 obs::JsonlLogger* logger) {
  injector_ = injector;
  metrics_ = metrics;
  logger_ = logger;
  if (writer_ != nullptr) {
    writer_->SetFaultInjector(injector_);
    writer_->Attach(metrics_, logger_, name_);
  }
}

void ResilientSinkBase::WriteRow(const std::string& row) {
  if (writer_ != nullptr) {
    writer_->Write(row);
  } else {
    out_->write(row.data(), static_cast<std::streamsize>(row.size()));
  }
}

void ResilientSinkBase::OnRunEnd() {
  if (writer_ != nullptr) {
    writer_->Flush();
  } else {
    out_->flush();
  }
}

CsvBinSink::CsvBinSink(std::ostream& out) : ResilientSinkBase(out, "csv") {}

CsvBinSink::CsvBinSink(const std::string& path) : ResilientSinkBase(path, "csv") {}

void CsvBinSink::OnBin(const core::BinLog& log, const BinStats& stats) {
  std::ostringstream row;
  if (!header_written_) {
    row << "bin,start_us,num_queries,packets_in,packets_dropped,packets_unsampled,"
           "batch_dropped,overload,predicted_cycles,avail_cycles,query_cycles,ps_cycles,"
           "ls_cycles,como_cycles,backlog_cycles,rtthresh,utilization,drop_fraction,"
           "shed_fraction,degradation,degradation_rung,deadline_missed,deadline_overrun_us\n";
    header_written_ = true;
  }
  row << stats.bin_index << ',' << log.start_us << ',' << stats.num_queries << ','
      << log.packets_in << ',' << log.packets_dropped << ',' << log.packets_unsampled << ','
      << (log.batch_dropped ? 1 : 0) << ',' << (log.overload ? 1 : 0) << ','
      << log.predicted_cycles << ',' << log.avail_cycles << ',' << log.query_cycles << ','
      << log.ps_cycles << ',' << log.ls_cycles << ',' << log.como_cycles << ','
      << log.backlog_cycles << ',' << log.rtthresh << ',' << stats.utilization << ','
      << stats.drop_fraction << ',' << stats.shed_fraction << ','
      << static_cast<int>(log.degradation) << ',' << rt::DegradeActionName(log.degradation) << ','
      << (log.deadline_missed ? 1 : 0) << ',' << log.deadline_overrun_us << '\n';
  WriteRow(row.str());
}

JsonlBinSink::JsonlBinSink(std::ostream& out) : ResilientSinkBase(out, "jsonl") {}

JsonlBinSink::JsonlBinSink(const std::string& path) : ResilientSinkBase(path, "jsonl") {}

void JsonlBinSink::OnBin(const core::BinLog& log, const BinStats& stats) {
  std::ostringstream buf;
  std::ostream& out = buf;
  out << "{\"bin\":" << stats.bin_index << ",\"start_us\":" << log.start_us
      << ",\"packets_in\":" << log.packets_in
      << ",\"packets_dropped\":" << log.packets_dropped
      << ",\"packets_unsampled\":" << log.packets_unsampled
      << ",\"batch_dropped\":" << (log.batch_dropped ? "true" : "false")
      << ",\"overload\":" << (log.overload ? "true" : "false")
      << ",\"predicted_cycles\":" << log.predicted_cycles
      << ",\"avail_cycles\":" << log.avail_cycles << ",\"query_cycles\":" << log.query_cycles
      << ",\"ps_cycles\":" << log.ps_cycles << ",\"ls_cycles\":" << log.ls_cycles
      << ",\"como_cycles\":" << log.como_cycles << ",\"backlog_cycles\":" << log.backlog_cycles
      << ",\"utilization\":" << stats.utilization
      << ",\"degradation\":" << static_cast<int>(log.degradation) << ",\"degradation_rung\":\""
      << rt::DegradeActionName(log.degradation) << "\",\"deadline_missed\":" << (log.deadline_missed ? "true" : "false")
      << ",\"deadline_overrun_us\":" << log.deadline_overrun_us << ",\"queries\":[";
  for (size_t q = 0; q < stats.query_names.size(); ++q) {
    if (q > 0) {
      out << ',';
    }
    WriteJsonString(out, stats.query_names[q]);
  }
  out << "],\"rate\":[";
  for (size_t q = 0; q < log.rate.size(); ++q) {
    out << (q > 0 ? "," : "") << log.rate[q];
  }
  out << "],\"per_query_cycles\":[";
  for (size_t q = 0; q < log.per_query_cycles.size(); ++q) {
    out << (q > 0 ? "," : "") << log.per_query_cycles[q];
  }
  out << "],\"disabled\":[";
  for (size_t q = 0; q < log.disabled.size(); ++q) {
    out << (q > 0 ? "," : "") << (log.disabled[q] ? "true" : "false");
  }
  out << "]}\n";
  WriteRow(buf.str());
}

}  // namespace shedmon::api
