#pragma once

#include <istream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cost.h"
#include "src/core/system.h"

namespace shedmon::api {

// Thrown for invalid pipeline configuration: by PipelineBuilder::Build()'s
// eager validation and by the config-file parser. Derives from
// std::invalid_argument so pre-existing callers that caught the old exception
// type keep working.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// A fully parsed pipeline config file: the system configuration plus the
// builder-level knobs (oracle, accuracy tracking, query roster, sinks) that
// live outside core::SystemConfig.
struct FileConfig {
  core::SystemConfig system;
  core::OracleKind oracle = core::OracleKind::kModel;
  bool track_accuracy = true;
  bool default_min_rates = true;
  std::vector<std::string> queries;  // standard query names, in add order
  std::string csv_path;              // per-bin CSV sink ("" = none)
  std::string jsonl_path;            // per-bin JSONL sink ("" = none)
  std::string log_path;              // structured JSONL event log ("" = none)
};

// Parses the INI-style pipeline config format:
//
//   [system]
//   time_bin_us = 100000
//   cycles_per_bin = 2.5e6
//   shedder = predictive        ; predictive | reactive | noshed
//   strategy = mmfs_cpu         ; eq_srates | mmfs_cpu | mmfs_pkt
//   threads = 4
//   shards = 8
//   seed = 42
//   buffer_bins = 5
//   ewma_alpha = 0.9
//   como_overhead = 0.05
//   custom_shedding = false
//   oracle = model              ; model | measured
//   track_accuracy = true
//   default_min_rates = true
//
//   [predictor]
//   kind = mlr                  ; mlr | slr | ewma
//   history = 60
//   fcbf_threshold = 0.6
//   ewma_alpha = 0.3
//
//   [queries]
//   add = counter               ; repeat per query, Table 2.2 names
//   add = flows
//
//   [sinks]
//   csv = bins.csv
//   jsonl = bins.jsonl
//   log = events.jsonl
//
// Lines starting with '#' or ';' (or anything after those characters) are
// comments; whitespace around keys and values is ignored. Unknown sections,
// keys, or enum values throw ConfigError naming the offending line, as does
// an unreadable file. Values are *parsed* strictly here but *validated*
// (ranges, cross-field rules, query names) by PipelineBuilder::Build(), so
// there is exactly one validation path no matter where a config comes from.
FileConfig ParseConfig(std::istream& in, std::string_view origin = "<stream>");
FileConfig ParseConfigFile(const std::string& path);

}  // namespace shedmon::api

namespace shedmon {
using api::ConfigError;
using api::FileConfig;
}  // namespace shedmon
