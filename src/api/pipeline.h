#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/api/config.h"
#include "src/capture/capture.h"
#include "src/core/cost.h"
#include "src/core/runner.h"
#include "src/core/system.h"
#include "src/net/packet.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/server.h"
#include "src/obs/trace.h"
#include "src/query/accuracy.h"
#include "src/query/query.h"
#include "src/rt/bounded_queue.h"
#include "src/rt/clock.h"
#include "src/rt/fault.h"
#include "src/rt/governor.h"
#include "src/rt/resilient.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace shedmon::api {

class Pipeline;

// Derived per-bin quantities delivered to observers next to the raw BinLog.
// The name views point at the live queries in registration order; they are
// valid only for the duration of the OnBin call.
struct BinStats {
  size_t bin_index = 0;
  size_t num_queries = 0;
  double capacity = 0.0;
  double spent_cycles = 0.0;   // query + prediction + shedding + CoMo overhead
  double utilization = 0.0;    // spent_cycles / capacity
  double drop_fraction = 0.0;  // uncontrolled drops / packets_in
  double shed_fraction = 0.0;  // deliberately unsampled / packets_in
  std::vector<std::string_view> query_names;
};

// Typed whole-run summary, cheap to read at any point of a run (all fields
// are running tallies, no log scan). A restored pipeline starts these from
// zero: like the metrics registry, stats describe this process's activity.
struct PipelineStats {
  size_t bins = 0;             // closed time bins
  size_t queries = 0;          // currently registered
  uint64_t packets = 0;        // offered to the system
  uint64_t dropped = 0;        // uncontrolled (capture buffer overflow)
  double shed = 0.0;           // deliberately unsampled (query-averaged)
  size_t overload_bins = 0;    // bins with predicted demand over budget
  size_t batches_dropped = 0;  // whole batches lost to a full buffer
  double capacity = 0.0;       // cycle budget per bin
  double last_utilization = 0.0;
  double mean_utilization = 0.0;  // across closed bins
  double prediction_error_ewma = 0.0;
  double backlog_cycles = 0.0;
  // Real-time robustness tallies (all zero unless the rt features are on).
  uint64_t ingest_dropped = 0;   // records rejected by the bounded ingest buffer
  uint64_t deadline_misses = 0;  // bins that overran their wall-clock budget
  int degradation_level = 0;     // current ladder rung (0 = none)
  size_t checkpoints = 0;        // crash-safe checkpoints written
  // Live-capture front-end tallies (all zero without CaptureFrom).
  uint64_t capture_packets = 0;  // frames decoded and pushed by the capture loop
  uint64_t capture_dropped = 0;  // capture-side losses (queue/slot/late/decode)
  // Payload bytes memcpy'd out of caller buffers at ingestion. The pinned
  // capture path keeps this at zero — the measurable form of "zero
  // per-packet copies between the wire and the query batch".
  uint64_t ingest_copied_bytes = 0;
};

// Streaming result sink: OnBin fires once per closed time bin, in bin order,
// on the thread that called Push/AdvanceTime/Finish (the coordinator), at any
// SystemConfig::num_threads — worker threads never touch observers.
class BinObserver {
 public:
  virtual ~BinObserver() = default;

  virtual void OnBin(const core::BinLog& log, const BinStats& stats) = 0;
  // Called once from Pipeline::Finish after the final bin; sinks flush here.
  virtual void OnRunEnd() {}
};

// Stable reference to a query registered with a Pipeline. Handles survive
// additions and removals of *other* queries (today's raw size_t indices do
// not); a handle dies only when its own query is removed. Copyable value
// type; all accessors throw std::logic_error once the handle is stale.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const;
  // Current registration index — the query's column in BinLog::rate and
  // friends. Shifts when earlier queries are removed, which is exactly why
  // callers should hold handles, not indices.
  size_t index() const;
  const std::string& name() const;
  query::Query& query() const;
  // Null when the pipeline does not track accuracy for this query.
  const query::Query* reference() const;
  bool has_reference() const { return reference() != nullptr; }

  // Live accuracy against the pipeline-managed reference instance, over the
  // intervals both instances have completed so far (§2.2.1 metric). Throws
  // std::logic_error when no reference is tracked.
  query::AccuracyRow Accuracy() const;
  // 1 - mean error, clamped to [0, 1] — the "accuracy" of the Ch. 5/6 plots.
  double MeanAccuracy() const;

 private:
  friend class Pipeline;
  QueryHandle(Pipeline* pipeline, uint64_t id) : pipeline_(pipeline), id_(id) {}

  Pipeline* pipeline_ = nullptr;
  uint64_t id_ = 0;  // 0 = never attached
};

// What Pipeline::Detach hands back: the live query instance (snapshots and
// all) plus its reference twin when accuracy was tracked.
struct DetachedQuery {
  std::unique_ptr<query::Query> query;
  std::unique_ptr<query::Query> reference;
};

// Fluent configuration for a Pipeline. A builder is reusable: Build() can be
// called repeatedly and every pipeline gets its own system and cost oracle.
class PipelineBuilder {
 public:
  PipelineBuilder() = default;

  // Wholesale escape hatch; the fluent setters below edit the same config.
  PipelineBuilder& Config(const core::SystemConfig& config);
  PipelineBuilder& TimeBin(uint64_t bin_us);
  PipelineBuilder& CyclesPerBin(double cycles);
  PipelineBuilder& Shedder(core::ShedderKind kind);
  PipelineBuilder& Strategy(shed::StrategyKind kind);
  PipelineBuilder& BufferBins(double bins);
  PipelineBuilder& CustomShedding(bool enable = true);
  PipelineBuilder& Threads(size_t num_threads);
  // Upper bound on intra-query data parallelism: split one query's bin batch
  // into up to `n` shards across the worker pool (no-op without Threads).
  // Results stay bit-identical at any value; see SystemConfig.
  PipelineBuilder& MaxShardsPerQuery(size_t n);
  PipelineBuilder& Seed(uint64_t seed);
  PipelineBuilder& Oracle(core::OracleKind kind);
  // Run pipeline-managed reference instances over the unsampled stream so
  // per-query accuracy is queryable live from a handle (default on).
  PipelineBuilder& TrackAccuracy(bool enable = true);
  // Apply core::DefaultMinRate to queries added by name without an explicit
  // QueryConfig (default on, matching core::RunSpec::use_default_min_rates).
  PipelineBuilder& DefaultMinRates(bool enable = true);

  // ---- Declarative roster & sinks ----------------------------------------
  // Standard queries (Table 2.2) registered automatically by Build(), with
  // the builder's min-rate policy (or an explicit config). Validated eagerly:
  // Build() throws ConfigError on an unknown name, before any system exists.
  PipelineBuilder& AddQuery(std::string_view name);
  PipelineBuilder& AddQuery(std::string_view name, const core::QueryConfig& config);
  // Per-bin result sinks attached by Build() (CSV / JSONL rows, one per
  // closed bin) and the structured JSONL event log (see Pipeline::SetLogger).
  // Empty path = none. Build() throws ConfigError when a path cannot be
  // opened for writing.
  PipelineBuilder& CsvTo(std::string path);
  PipelineBuilder& JsonlTo(std::string path);
  PipelineBuilder& LogTo(std::string path);

  // ---- Tracing & HTTP endpoint (src/obs) ----------------------------------
  // Per-stage span tracing (extraction, prediction, shedding decision,
  // per-query and per-shard execution, merges, references, sinks, rt ladder
  // transitions). One-way like the metrics: BinLogs are bit-identical with
  // tracing on or off. Export with Pipeline::DumpTrace (Chrome trace-event
  // JSON, loadable in Perfetto) or scrape GET /trace.
  PipelineBuilder& Tracing(bool enable = true);
  // Embedded HTTP observability endpoint on 127.0.0.1:<port> serving
  // GET /metrics (Prometheus), /healthz, /stats and /trace. Port 0 picks an
  // ephemeral port — read it back with Pipeline::serve_port(). Build()
  // throws ConfigError when the port cannot be bound (e.g. already in use).
  PipelineBuilder& ServeOn(uint16_t port);

  // ---- Live capture (src/capture) -----------------------------------------
  // Attaches the live capture front-end: Build() opens the configured
  // sources (UDP/TCP listeners, pcap file follow) and starts a consumer
  // thread that decodes frames in pre-allocated slots and pushes pinned
  // packet views into the pipeline — zero per-packet payload copies — while
  // driving AdvanceTime from the capture clock (the pipeline's rt clock
  // unless the capture config injects its own). Build() throws ConfigError
  // when a listener cannot bind or a pcap file cannot be opened.
  PipelineBuilder& CaptureFrom(capture::CaptureConfig config);

  // ---- Real-time robustness (src/rt) --------------------------------------
  // Per-bin wall-clock deadline enforcement: each closed bin must finish
  // processing within budget_fraction x the bin duration; overruns escalate
  // the degradation ladder (boost shedding -> truncate low-priority queries
  // -> drop bins) one rung at a time and decay back after clean bins. 0
  // disables (the default). Runs where the governor never fires produce
  // BinLogs bit-identical to a governor-less pipeline.
  PipelineBuilder& Deadline(double budget_fraction);
  PipelineBuilder& Deadline(const rt::GovernorConfig& config);
  // Time source for the governor, sink retry backoff and fault injection;
  // inject a rt::ManualClock for deterministic tests. Defaults to the
  // steady-clock rt::SystemClock.
  PipelineBuilder& RtClock(std::shared_ptr<rt::Clock> clock);
  // Bounds the open-bin ingest buffer to `max_records` packets. kDropNewest
  // rejects arrivals while full; kDropOldest evicts the oldest buffered
  // record; kBlock (the default policy) means backpressure — which at this
  // synchronous facade is simply Push's own synchrony, i.e. unbounded. 0
  // disables (the default). Drops are tallied in PipelineStats and
  // shedmon_rt_ingest_dropped_total, never in BinLog packet fields.
  PipelineBuilder& IngestCap(size_t max_records,
                             rt::OverflowPolicy policy = rt::OverflowPolicy::kDropNewest);
  // Attaches a seeded deterministic fault plan (see rt::FaultPlan) injected
  // into the coordinator loop, exec workers, sinks and checkpoint writes.
  PipelineBuilder& InjectFaults(const rt::FaultPlan& plan);
  // Periodic crash-safe checkpoints: every `bins` closed bins (at the next
  // measurement-interval boundary, where snapshots are legal) the pipeline
  // snapshots itself to `path` via write-to-temp + fsync + atomic rename.
  // CheckpointEvery defaults to the system's measurement interval.
  PipelineBuilder& CheckpointTo(std::string path);
  PipelineBuilder& CheckpointEvery(size_t bins);
  // Retry/backoff policy for the CSV/JSONL sinks (see rt::ResilientWriter);
  // a sink that exhausts its retries is quarantined instead of failing the
  // run.
  PipelineBuilder& SinkRetry(const rt::RetryPolicy& policy);

  // Restore-on-restart: restores from `path` when it holds a readable
  // snapshot; a missing, torn or corrupt file (e.g. a crash mid-checkpoint,
  // though the atomic checkpoint writer makes that exceedingly unlikely)
  // falls back to building fresh from this builder's configuration. The rt
  // options above are re-applied to the restored pipeline either way.
  std::unique_ptr<Pipeline> RestoreOrBuild(const std::string& path) const;

  // Mirrors a core::RunSpec (system config, oracle, min-rate policy); the
  // spec's queries are added by the caller, e.g. via api::RunTrace.
  static PipelineBuilder FromRunSpec(const core::RunSpec& spec);
  // Loads a parsed config file (see api::ParseConfigFile for the format):
  // system knobs, query roster, and sinks. The fluent setters still apply on
  // top, so a file can serve as a base that code overrides.
  static PipelineBuilder FromConfig(const FileConfig& config);
  static PipelineBuilder FromConfigFile(const std::string& path);

  const core::SystemConfig& config() const { return config_; }

  // Validates the full configuration (ranges, cross-field rules, query
  // names, sink paths) and throws ConfigError on the first violation.
  // Build() calls this; exposed so tools can check a config without
  // constructing a system.
  void Validate() const;

  // Build() relies on guaranteed copy elision: Pipeline is neither copyable
  // nor movable so outstanding QueryHandles can never dangle.
  Pipeline Build() const;
  std::unique_ptr<Pipeline> BuildUnique() const;

  // Reconstructs a pipeline from a Pipeline::Snapshot stream: rebuilds the
  // serialized configuration and query roster, then reinstates the numeric
  // state (RNG, smoothers, buffer/threshold, samplers, predictors, oracle)
  // so that replaying the remaining input produces BinLogs field-identical
  // to the uninterrupted run. Accuracy references, the metrics registry and
  // PipelineStats restart from zero — they describe this process. The
  // builder's own settings are ignored (the snapshot is authoritative);
  // Restore is static so call sites read as PipelineBuilder::Restore(path).
  // Throws obs::SnapshotError on a malformed or incompatible stream.
  static std::unique_ptr<Pipeline> Restore(std::istream& in);
  static std::unique_ptr<Pipeline> Restore(const std::string& path);

 private:
  friend class Pipeline;  // Build() hands the whole builder to the ctor

  struct PendingQuery {
    std::string name;
    core::QueryConfig config;
    bool has_config = false;  // false: apply the builder's min-rate policy
  };

  core::SystemConfig config_;
  core::OracleKind oracle_ = core::OracleKind::kModel;
  bool track_accuracy_ = true;
  bool default_min_rates_ = true;
  std::vector<PendingQuery> queries_;
  std::string csv_path_;
  std::string jsonl_path_;
  std::string log_path_;
  // rt options; applied by Build() and re-applied after RestoreOrBuild().
  bool deadline_enabled_ = false;
  rt::GovernorConfig governor_config_;
  std::shared_ptr<rt::Clock> clock_;
  size_t ingest_cap_ = 0;
  rt::OverflowPolicy ingest_policy_ = rt::OverflowPolicy::kDropNewest;
  bool has_fault_plan_ = false;
  rt::FaultPlan fault_plan_;
  std::string checkpoint_path_;
  size_t checkpoint_every_ = 0;  // 0 = the system's measurement interval
  bool has_sink_retry_ = false;
  rt::RetryPolicy sink_retry_;
  // obs options; applied like the rt options.
  bool tracing_ = false;
  bool serve_enabled_ = false;
  uint16_t serve_port_ = 0;
  // capture option; started by Build()/RestoreOrBuild() after rt and obs.
  bool has_capture_ = false;
  capture::CaptureConfig capture_config_;

  // Shared by Build() and RestoreOrBuild(): arms the rt options on a
  // freshly built or freshly restored pipeline.
  void ApplyRtOptions(Pipeline& pipeline) const;
  // Same for the tracing/HTTP-endpoint options.
  void ApplyObsOptions(Pipeline& pipeline) const;
};

// The supported public entry point to shedmon: a long-lived, online
// monitoring pipeline. Callers push raw packets (no pre-batching); the
// pipeline bins them into SystemConfig::time_bin_us batches, runs the load
// shedding system as each bin closes, feeds pipeline-managed reference
// instances for live accuracy, and delivers every closed bin to the attached
// observers. Queries arrive and leave mid-run through stable QueryHandles
// (Fig. 6.9's arrivals, plus the removal today's index-based API forbids).
//
// Determinism: pushing a time-sorted trace through Push produces BinLogs and
// accuracies field-identical to the historical batch path (Batcher +
// MonitoringSystem::ProcessBatch + query::RunReference) at any num_threads.
//
// Not thread-safe: Push/AddQuery/Detach/Finish must come from one thread
// (the coordinator). Worker parallelism lives behind SystemConfig::
// num_threads inside the system and never reaches observers.
class Pipeline {
 public:
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  Pipeline(Pipeline&&) = delete;
  Pipeline& operator=(Pipeline&&) = delete;

  // ---- Queries -----------------------------------------------------------
  // Registers a standard query (Table 2.2) by name, with the builder's
  // min-rate policy. Queries may be added before any packet or mid-run; a
  // mid-run addition joins the bin that is open at call time.
  QueryHandle AddQuery(std::string_view name);
  QueryHandle AddQuery(std::string_view name, const core::QueryConfig& config);
  // Registers a user-supplied query. Accuracy tracking needs a second,
  // caller-supplied instance to run over the unsampled stream (user queries
  // cannot be cloned); pass nullptr to skip tracking for this query.
  QueryHandle AddQuery(std::unique_ptr<query::Query> query,
                       const core::QueryConfig& config = {},
                       std::unique_ptr<query::Query> reference = nullptr);

  // Removes the query from the system and returns it (plus its reference)
  // so final results stay readable. Takes effect immediately: the currently
  // open bin is processed without it. The handle and any copies become
  // stale; other handles stay valid (their index() shifts).
  DetachedQuery Detach(QueryHandle handle);
  void Remove(QueryHandle handle) { (void)Detach(handle); }

  // ---- Observers ---------------------------------------------------------
  // Borrowed observer: caller keeps it alive until Finish() returns.
  void AddObserver(BinObserver* observer);
  // Owning overload for fire-and-forget sinks.
  void AddObserver(std::unique_ptr<BinObserver> observer);

  // ---- Ingestion ---------------------------------------------------------
  // Pushes one packet. Timestamps must be non-decreasing across bins: a
  // packet older than the open bin throws std::invalid_argument. A packet in
  // a later bin first closes the open bin (and any empty bins in between),
  // firing observers, then starts the new bin.
  //
  // Packet is the one ingestion currency: it carries the record plus
  // (optionally) materialized payload bytes, and the pipeline copies both so
  // the caller's batch/arena may be recycled right after the call. A caller
  // holding bare PacketRecords wraps them for free with net::Packet::View.
  void Push(const net::Packet& packet);
  void Push(std::span<const net::Packet> packets);
  // Convenience: pushes a whole time-sorted trace record by record.
  void Push(const trace::Trace& trace);

  // Zero-copy variant for callers that guarantee packet.payload stays valid
  // until the packet's bin has closed (the capture front-end's slot
  // contract). The record is still copied; only the payload bytes are
  // borrowed instead of landing in the arena. A null payload with
  // payload_len > 0 falls back to deterministic materialization, exactly
  // like Push.
  void PushPinned(const net::Packet& packet);

  // Raw-record compatibility shims. Deprecated: the record-vs-packet split
  // made payload handling ambiguous at the API surface (records materialize
  // payloads downstream, packets carry them), so ingestion converges on
  // Packet. Equivalent to Push(net::Packet::View(record)).
  [[deprecated("use Push(net::Packet::View(record)) — Packet is the ingestion currency")]]
  void Push(const net::PacketRecord& record);
  [[deprecated("wrap each record with net::Packet::View and use the Packet span overload")]]
  void Push(std::span<const net::PacketRecord> records);

  // Declares that the clock reached `ts_us`: closes every bin that ends at
  // or before it (empty bins included) without pushing a packet. This is how
  // live drivers close idle bins and how mid-run arrivals are sequenced
  // ("AdvanceTime(bin_start); AddQuery(...)" adds the query exactly at that
  // bin, Fig. 6.9 style).
  void AdvanceTime(uint64_t ts_us);

  // Closes the open bin (if it holds packets), flushes partially filled
  // measurement intervals, and fires OnRunEnd on the observers. Idempotent;
  // no packets may be pushed afterwards.
  void Finish();
  bool finished() const { return finished_; }

  // ---- Introspection -----------------------------------------------------
  const core::MonitoringSystem& system() const { return *system_; }
  const std::vector<core::BinLog>& log() const { return system_->log(); }
  size_t bins_processed() const { return bins_processed_; }
  size_t num_queries() const { return system_->num_queries(); }
  uint64_t total_packets() const { return system_->total_packets(); }
  uint64_t total_dropped() const { return system_->total_dropped(); }
  uint64_t time_bin_us() const { return bin_us_; }

  // ---- Observability -----------------------------------------------------
  // The live metrics registry (counters, gauges, histograms over the whole
  // system: shedding, prediction, execution). Scrape from any thread at any
  // time — e.g. obs::PrometheusEncoder::Encode(pipeline.Metrics().Snapshot())
  // — without perturbing results: instruments are updated lock-free and
  // never read back by the pipeline.
  obs::MetricsRegistry& Metrics() { return system_->metrics(); }
  const obs::MetricsRegistry& Metrics() const { return system_->metrics(); }

  // Typed whole-run summary. Returns the copy published when the last bin
  // closed (plus registration changes), guarded by a mutex, so any thread —
  // in particular the HTTP endpoint's — may call this mid-run without racing
  // the coordinator. Within the coordinator thread it is exact: every
  // mutation path republishes before returning to the caller.
  PipelineStats Stats() const;

  // ---- Tracing & HTTP endpoint (src/obs) ----------------------------------
  // Arms per-stage span tracing (idempotent; normally via
  // PipelineBuilder::Tracing). Spans land in bounded lock-free rings; once
  // full, further spans are counted in shedmon_obs_trace_dropped_total and
  // discarded. Also registers the shedmon_stage_wall_us{stage=...}
  // histograms, fed from the same spans.
  obs::Tracer& EnableTracing();
  const obs::Tracer* tracer() const { return tracer_.get(); }

  // Writes the trace so far as Chrome trace-event JSON (Perfetto /
  // chrome://tracing). Throws std::logic_error when tracing is not enabled,
  // std::runtime_error when the file cannot be written.
  void DumpTrace(const std::string& path) const;

  // Starts the embedded HTTP endpoint on 127.0.0.1:<port> (0 = ephemeral)
  // serving GET /metrics, /healthz, /stats and /trace; returns the bound
  // port. Normally via PipelineBuilder::ServeOn. Throws ConfigError when the
  // port cannot be bound. One server per pipeline: calling again replaces it.
  uint16_t ServeOn(uint16_t port);
  // The bound port, 0 when not serving.
  uint16_t serve_port() const { return server_ != nullptr ? server_->port() : 0; }
  // Stops the endpoint (idempotent; Finish and destruction also stop it).
  void StopServing() { server_.reset(); }

  // Attaches a structured JSONL event log: query_added / query_removed /
  // bin_closed / snapshot / finish events, one JSON object per line. Pass
  // null to detach. The logger is owned by the pipeline and written only
  // from the coordinator thread.
  void SetLogger(std::unique_ptr<obs::JsonlLogger> logger);

  // ---- Live capture (src/capture) -----------------------------------------
  // Starts the live capture front-end feeding this pipeline (normally via
  // PipelineBuilder::CaptureFrom). The capture consumer thread becomes the
  // coordinator: do not call Push/AdvanceTime/Finish from other threads
  // while capture runs. Enable tracing before starting capture — the loop
  // caches the tracer once. Single-shot; throws ConfigError when a source
  // cannot open or capture was already started.
  void StartCapture(capture::CaptureConfig config);
  // Stops the sources and drains everything already captured into the
  // pipeline (idempotent; Finish and destruction also stop capture). The
  // open bin stays open — Finish or AdvanceTime closes it.
  void StopCapture();
  // The running loop, null before StartCapture. Ephemeral listener ports
  // are read back through capture()->port(i).
  const capture::CaptureLoop* capture() const { return capture_.get(); }
  capture::CaptureStats capture_stats() const;

  // ---- Real-time robustness (src/rt) --------------------------------------
  // Attach (or replace) the deadline governor mid-run; the rt configuration
  // is process-local and deliberately not serialized into snapshots, so a
  // restored pipeline re-arms through these setters (RestoreOrBuild does it
  // from the builder's options automatically).
  void SetDeadline(const rt::GovernorConfig& config);
  void ClearDeadline();
  void SetFaultPlan(const rt::FaultPlan& plan);
  void SetIngestCap(size_t max_records, rt::OverflowPolicy policy);
  void SetSinkRetry(const rt::RetryPolicy& policy);
  // Arms periodic crash-safe checkpoints (empty path disarms). Checkpoints
  // fire after every `every_bins`-th closed bin, at the next
  // measurement-interval boundary; failures are logged and counted, never
  // thrown — losing a checkpoint must not kill the measurement.
  void SetCheckpoint(std::string path, size_t every_bins);

  const rt::DeadlineGovernor* governor() const { return governor_.get(); }
  const rt::FaultInjector* fault_injector() const { return injector_.get(); }
  const std::shared_ptr<rt::Clock>& rt_clock() const { return clock_; }
  // First bin a packet may land in: everything before it is already closed.
  // A driver replaying input into a restored pipeline skips packets whose
  // bin is older than this.
  uint64_t next_bin() const { return open_bin_; }
  uint64_t ingest_dropped() const { return ingest_dropped_; }
  size_t checkpoints_written() const { return checkpoints_written_; }

  // ---- Snapshot ----------------------------------------------------------
  // Serializes the run state (versioned binary format) so that
  // PipelineBuilder::Restore + replaying the remaining input reproduces the
  // uninterrupted run's BinLogs field-exactly. Only valid between bins on a
  // measurement-interval boundary (every interval_bins-th closed bin, before
  // any packet of the next bin): per-interval query state is empty there, so
  // the numeric state is a complete description. Throws obs::SnapshotError
  // when called mid-bin or mid-interval, when the pipeline holds a
  // non-standard (user-supplied) query, or on I/O failure.
  void Snapshot(std::ostream& out) const;
  void Snapshot(const std::string& path) const;

  // Index-based accuracy twins of the QueryHandle accessors (index = current
  // registration order), for whole-run summaries.
  query::AccuracyRow AccuracyAt(size_t index) const;
  double MeanAccuracyAt(size_t index) const;
  double AverageAccuracy() const;  // across accuracy-tracked queries
  double MinimumAccuracy() const;  // worst accuracy-tracked query

  // ---- Compatibility extraction ------------------------------------------
  // Moves the finished run's guts out for core::RunResult (the thin
  // RunSystemOnTrace wrapper). Only valid after Finish(); the pipeline is
  // dead afterwards.
  std::unique_ptr<core::MonitoringSystem> ReleaseSystem();
  std::vector<std::unique_ptr<query::Query>> ReleaseReferences();

 private:
  friend class PipelineBuilder;
  friend class QueryHandle;

  // Pipeline-side state for one registered query, parallel to the system's
  // registration order (slots_[i] <-> system query i).
  struct Slot {
    uint64_t id = 0;
    std::unique_ptr<query::Query> reference;  // null when not tracked
    size_t ref_bins_in_interval = 0;
  };

  Pipeline(const core::SystemConfig& config, core::OracleKind oracle_kind,
           bool track_accuracy, bool default_min_rates);
  // The Build() path: validates, constructs, then registers the builder's
  // pending queries and sinks. Builder stays const — it is reusable.
  explicit Pipeline(const PipelineBuilder& builder);

  size_t FindSlot(uint64_t id) const noexcept;  // npos when unknown/removed
  size_t SlotIndex(uint64_t id) const;          // throws std::logic_error when stale
  QueryHandle Register(const core::QueryConfig& config, std::unique_ptr<query::Query> query,
                       std::unique_ptr<query::Query> reference);
  // Appends one record to the open bin, closing earlier bins first; null
  // payload bytes mean "materialize deterministically from the record".
  // pin_payload borrows the payload bytes instead of copying them into the
  // arena (PushPinned's contract: they outlive the bin).
  void AppendRecord(const net::PacketRecord& record, const uint8_t* payload_bytes,
                    bool pin_payload = false);
  // Closes bins until `bin_index` is the open one.
  void FlushThrough(uint64_t bin_index);
  // Processes the open bin's packets (possibly none), advances the reference
  // instances, and fires the observers.
  void CloseOpenBin();
  void RunReferences();
  void NotifyObservers();
  void EnsureOpen(std::string_view op) const;
  void UpdateTallies(const core::BinLog& log);
  void MaybeCheckpoint();
  void AttachSinkRt();
  // Recomputes the coordinator-side tallies into the mutex-guarded published
  // copy behind Stats() / the HTTP endpoint.
  PipelineStats ComputeStats() const;
  void RefreshStats();
  obs::ObsServer::Response HandleHttp(const std::string& raw_path) const;
  size_t open_records() const { return records_.size() - ingest_head_; }

  bool track_accuracy_;
  bool default_min_rates_;
  core::OracleKind oracle_kind_;  // remembered for Snapshot()
  std::unique_ptr<core::MonitoringSystem> system_;
  std::vector<Slot> slots_;
  uint64_t next_id_ = 1;

  // Open-bin assembler: records and payload bytes accumulate in push order;
  // Packet views are fixed up against the final buffer addresses when the
  // bin closes, so mid-bin reallocation is harmless. With a bounded ingest
  // buffer, ingest_head_ indexes the oldest record still alive: kDropOldest
  // evicts by advancing it (the evicted payload bytes idle in the arena
  // until the bin closes), so records_[ingest_head_..] is the open bin.
  uint64_t bin_us_;
  uint64_t open_bin_ = 0;
  std::vector<net::PacketRecord> records_;
  std::vector<size_t> payload_offsets_;
  std::vector<uint8_t> arena_;
  // Parallel to records_: a non-null entry is a borrowed (pinned) payload
  // view that replaces the arena bytes for that record (PushPinned).
  std::vector<const uint8_t*> pinned_;
  size_t ingest_head_ = 0;
  uint64_t wire_bytes_ = 0;
  trace::Batch batch_;  // reused scratch; views point into records_/arena_

  // Real-time robustness state (see src/rt). The clock is shared by the
  // governor, fault injector and sink retry backoff so one ManualClock
  // drives every rt decision in tests.
  std::shared_ptr<rt::Clock> clock_;
  std::unique_ptr<rt::DeadlineGovernor> governor_;
  std::unique_ptr<rt::FaultInjector> injector_;
  size_t ingest_cap_ = 0;
  rt::OverflowPolicy ingest_policy_ = rt::OverflowPolicy::kDropNewest;
  uint64_t ingest_dropped_ = 0;
  uint64_t ingest_copied_bytes_ = 0;
  obs::Counter* m_ingest_dropped_ = nullptr;
  std::string checkpoint_path_;
  size_t checkpoint_every_ = 0;
  size_t checkpoints_written_ = 0;
  rt::RetryPolicy sink_retry_;
  // Owned sinks created from builder paths, remembered so rt attachments
  // (retry policy, fault injector, metrics) can be re-applied by setters.
  std::vector<class ResilientSinkBase*> rt_sinks_;

  std::vector<BinObserver*> observers_;
  std::vector<std::unique_ptr<BinObserver>> owned_observers_;
  size_t bins_processed_ = 0;
  bool finished_ = false;

  // Running tallies behind Stats(); updated once per closed bin. Kept apart
  // from bins_processed_ (which a restore carries over for bin numbering):
  // tallies restart at restore, so the mean needs its own denominator.
  size_t tally_bins_ = 0;
  double shed_packets_ = 0.0;
  size_t overload_bins_ = 0;
  size_t batches_dropped_ = 0;
  double util_sum_ = 0.0;
  double last_util_ = 0.0;

  std::unique_ptr<obs::JsonlLogger> logger_;

  // Tracing & HTTP endpoint. The published stats are the only pipeline state
  // the server thread reads besides the (internally thread-safe) metrics
  // registry and tracer rings; the coordinator republishes them after every
  // mutation. tracer_view_ mirrors tracer_.get() atomically so a mid-run
  // EnableTracing cannot race a concurrent GET /trace. server_ is declared
  // last on purpose: it is destroyed (accept thread joined) before anything
  // its handler dereferences.
  mutable util::Mutex stats_mutex_;
  PipelineStats published_stats_ SHEDMON_GUARDED_BY(stats_mutex_);
  size_t published_quarantined_sinks_ SHEDMON_GUARDED_BY(stats_mutex_) = 0;
  std::unique_ptr<obs::Tracer> tracer_;
  std::atomic<obs::Tracer*> tracer_view_{nullptr};
  // Capture front-end, declared just before server_ so destruction stops
  // the HTTP endpoint first, then drains capture, and only then tears down
  // the state both of them read. The loop (and thus slot memory backing any
  // still-pinned payload views) outlives every open bin.
  std::unique_ptr<capture::IngestSink> capture_sink_;
  std::unique_ptr<capture::CaptureLoop> capture_;
  std::unique_ptr<obs::ObsServer> server_;
};

}  // namespace shedmon::api

namespace shedmon {
// The facade is the supported public surface; hoist it to the top-level
// namespace so consumers write shedmon::Pipeline.
using api::BinObserver;
using api::BinStats;
using api::DetachedQuery;
using api::Pipeline;
using api::PipelineBuilder;
using api::PipelineStats;
using api::QueryHandle;
}  // namespace shedmon
