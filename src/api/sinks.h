#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "src/api/pipeline.h"
#include "src/rt/clock.h"
#include "src/rt/fault.h"
#include "src/rt/resilient.h"

namespace shedmon::api {

// Ready-made BinObservers that stream every closed bin to a file or ostream.
// Both write on the coordinator thread (Pipeline guarantees OnBin runs
// there, in bin order) and flush from OnRunEnd; the file-path constructors
// own the stream and throw std::runtime_error when the file cannot be
// opened.
//
// Sinks are fault-tolerant on demand: EnableResilience routes every row
// through a rt::ResilientWriter, which retries transient write failures
// with exponential backoff + jitter and — when one row exhausts its retries
// — quarantines the sink (rows are counted and discarded) instead of
// failing the monitoring run. Pipeline arms this from
// PipelineBuilder::SinkRetry / InjectFaults.

// Shared machinery: row formatting stays in the derived sinks; this base
// owns the stream and the optional resilient writer in front of it.
class ResilientSinkBase : public BinObserver {
 public:
  void EnableResilience(const rt::RetryPolicy& policy, std::shared_ptr<rt::Clock> clock);
  // Fault-injection + observability hooks for the resilient writer; no-op
  // until EnableResilience was called. Borrowed pointers, null detaches.
  void AttachRt(rt::FaultInjector* injector, obs::MetricsRegistry* metrics,
                obs::JsonlLogger* logger);

  bool quarantined() const { return writer_ != nullptr && writer_->quarantined(); }
  uint64_t write_retries() const { return writer_ != nullptr ? writer_->retries() : 0; }
  uint64_t dropped_rows() const { return writer_ != nullptr ? writer_->dropped_writes() : 0; }

  void OnRunEnd() override;

 protected:
  explicit ResilientSinkBase(std::ostream& out, std::string name);
  ResilientSinkBase(const std::string& path, std::string name);

  // One formatted row; goes through the resilient writer when enabled.
  void WriteRow(const std::string& row);

 private:
  std::ofstream file_;
  std::ostream* out_;
  std::string name_;
  std::unique_ptr<rt::ResilientWriter> writer_;
  rt::FaultInjector* injector_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::JsonlLogger* logger_ = nullptr;
};

// One CSV row per bin with the BinLog's scalar fields plus derived stats.
// Per-query columns would change arity on mid-run add/remove, so per-query
// detail is the JSONL sink's job; CSV stays fixed-width for spreadsheets.
class CsvBinSink : public ResilientSinkBase {
 public:
  explicit CsvBinSink(std::ostream& out);
  explicit CsvBinSink(const std::string& path);

  void OnBin(const core::BinLog& log, const BinStats& stats) override;

 private:
  bool header_written_ = false;
};

// One JSON object per line per bin, including the per-query arrays (names,
// rates, cycles, disabled flags) so mid-run arrivals and removals are
// visible as changing array lengths.
class JsonlBinSink : public ResilientSinkBase {
 public:
  explicit JsonlBinSink(std::ostream& out);
  explicit JsonlBinSink(const std::string& path);

  void OnBin(const core::BinLog& log, const BinStats& stats) override;
};

}  // namespace shedmon::api

namespace shedmon {
using api::CsvBinSink;
using api::JsonlBinSink;
}  // namespace shedmon
