#pragma once

#include <fstream>
#include <ostream>
#include <string>

#include "src/api/pipeline.h"

namespace shedmon::api {

// Ready-made BinObservers that stream every closed bin to a file or ostream.
// Both write on the coordinator thread (Pipeline guarantees OnBin runs
// there, in bin order) and flush from OnRunEnd; the file-path constructors
// own the stream and throw std::runtime_error when the file cannot be
// opened.

// One CSV row per bin with the BinLog's scalar fields plus derived stats.
// Per-query columns would change arity on mid-run add/remove, so per-query
// detail is the JSONL sink's job; CSV stays fixed-width for spreadsheets.
class CsvBinSink : public BinObserver {
 public:
  explicit CsvBinSink(std::ostream& out);
  explicit CsvBinSink(const std::string& path);

  void OnBin(const core::BinLog& log, const BinStats& stats) override;
  void OnRunEnd() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
  bool header_written_ = false;
};

// One JSON object per line per bin, including the per-query arrays (names,
// rates, cycles, disabled flags) so mid-run arrivals and removals are
// visible as changing array lengths.
class JsonlBinSink : public BinObserver {
 public:
  explicit JsonlBinSink(std::ostream& out);
  explicit JsonlBinSink(const std::string& path);

  void OnBin(const core::BinLog& log, const BinStats& stats) override;
  void OnRunEnd() override;

 private:
  std::ofstream file_;
  std::ostream* out_;
};

}  // namespace shedmon::api

namespace shedmon {
using api::CsvBinSink;
using api::JsonlBinSink;
}  // namespace shedmon
