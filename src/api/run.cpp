#include "src/api/run.h"

namespace shedmon::api {

std::unique_ptr<Pipeline> RunTrace(const core::RunSpec& spec, const trace::Trace& trace) {
  auto pipeline = PipelineBuilder::FromRunSpec(spec).BuildUnique();
  for (size_t i = 0; i < spec.query_names.size(); ++i) {
    if (i < spec.query_configs.size()) {
      pipeline->AddQuery(spec.query_names[i], spec.query_configs[i]);
    } else {
      // Falls back to DefaultMinRate when the spec asks for it (the builder
      // carried use_default_min_rates over from the spec).
      pipeline->AddQuery(spec.query_names[i]);
    }
  }
  pipeline->Push(trace);
  pipeline->Finish();
  return pipeline;
}

std::vector<std::unique_ptr<Pipeline>> RunPipelineGrid(
    size_t cells, const std::function<core::RunSpec(size_t)>& make_spec,
    const trace::Trace& trace, exec::ThreadPool* pool) {
  std::vector<std::unique_ptr<Pipeline>> results(cells);
  const auto run_one = [&](size_t i) { results[i] = RunTrace(make_spec(i), trace); };
  if (pool != nullptr && cells > 1) {
    pool->ParallelFor(0, cells, 1, run_one);
  } else {
    for (size_t i = 0; i < cells; ++i) {
      run_one(i);
    }
  }
  return results;
}

}  // namespace shedmon::api

namespace shedmon::core {

// Historical batch-mode entry point, kept for the figure drivers and tests:
// now a thin wrapper that drives the api::Pipeline facade and hands its guts
// back as a RunResult. Declared in src/core/runner.h; defined here because
// the facade sits above core in the dependency DAG.
RunResult RunSystemOnTrace(const RunSpec& spec, const trace::Trace& trace) {
  auto pipeline = api::RunTrace(spec, trace);
  RunResult result;
  result.reference = pipeline->ReleaseReferences();
  result.system = pipeline->ReleaseSystem();
  return result;
}

}  // namespace shedmon::core
