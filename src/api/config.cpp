#include "src/api/config.h"

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>

namespace shedmon::api {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void Fail(std::string_view origin, size_t line_no, const std::string& what) {
  throw ConfigError(std::string(origin) + ":" + std::to_string(line_no) + ": " + what);
}

uint64_t ParseU64(std::string_view origin, size_t line_no, std::string_view key,
                  const std::string& value) {
  try {
    size_t consumed = 0;
    const uint64_t parsed = std::stoull(value, &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    Fail(origin, line_no, std::string(key) + ": expected an unsigned integer, got '" + value + "'");
  }
}

double ParseF64(std::string_view origin, size_t line_no, std::string_view key,
                const std::string& value) {
  try {
    size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    Fail(origin, line_no, std::string(key) + ": expected a number, got '" + value + "'");
  }
}

bool ParseBool(std::string_view origin, size_t line_no, std::string_view key,
               const std::string& value) {
  if (value == "true" || value == "1" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "off" || value == "no") {
    return false;
  }
  Fail(origin, line_no, std::string(key) + ": expected a boolean, got '" + value + "'");
}

}  // namespace

FileConfig ParseConfig(std::istream& in, std::string_view origin) {
  FileConfig config;
  std::string section;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = line;
    if (const size_t comment = text.find_first_of("#;"); comment != std::string_view::npos) {
      text = text.substr(0, comment);
    }
    text = Trim(text);
    if (text.empty()) {
      continue;
    }
    if (text.front() == '[') {
      if (text.back() != ']' || text.size() < 3) {
        Fail(origin, line_no, "malformed section header '" + std::string(text) + "'");
      }
      section = std::string(Trim(text.substr(1, text.size() - 2)));
      if (section != "system" && section != "predictor" && section != "queries" &&
          section != "sinks") {
        Fail(origin, line_no, "unknown section [" + section + "]");
      }
      continue;
    }
    const size_t eq = text.find('=');
    if (eq == std::string_view::npos) {
      Fail(origin, line_no, "expected 'key = value', got '" + std::string(text) + "'");
    }
    const std::string key(Trim(text.substr(0, eq)));
    const std::string value(Trim(text.substr(eq + 1)));
    if (key.empty()) {
      Fail(origin, line_no, "empty key");
    }
    if (section.empty()) {
      Fail(origin, line_no, "key '" + key + "' appears before any [section]");
    }

    if (section == "system") {
      core::SystemConfig& sys = config.system;
      if (key == "time_bin_us") {
        sys.time_bin_us = ParseU64(origin, line_no, key, value);
      } else if (key == "cycles_per_bin") {
        sys.cycles_per_bin = ParseF64(origin, line_no, key, value);
      } else if (key == "shedder") {
        if (value == "predictive") {
          sys.shedder = core::ShedderKind::kPredictive;
        } else if (value == "reactive") {
          sys.shedder = core::ShedderKind::kReactive;
        } else if (value == "noshed") {
          sys.shedder = core::ShedderKind::kNoShed;
        } else {
          Fail(origin, line_no, "shedder: expected predictive|reactive|noshed, got '" + value + "'");
        }
      } else if (key == "strategy") {
        if (value == "eq_srates") {
          sys.strategy = shed::StrategyKind::kEqSrates;
        } else if (value == "mmfs_cpu") {
          sys.strategy = shed::StrategyKind::kMmfsCpu;
        } else if (value == "mmfs_pkt") {
          sys.strategy = shed::StrategyKind::kMmfsPkt;
        } else {
          Fail(origin, line_no, "strategy: expected eq_srates|mmfs_cpu|mmfs_pkt, got '" + value + "'");
        }
      } else if (key == "threads") {
        sys.num_threads = static_cast<size_t>(ParseU64(origin, line_no, key, value));
      } else if (key == "shards") {
        sys.max_shards_per_query = static_cast<size_t>(ParseU64(origin, line_no, key, value));
      } else if (key == "seed") {
        sys.seed = ParseU64(origin, line_no, key, value);
      } else if (key == "buffer_bins") {
        sys.buffer_bins = ParseF64(origin, line_no, key, value);
      } else if (key == "ewma_alpha") {
        sys.ewma_alpha = ParseF64(origin, line_no, key, value);
      } else if (key == "como_overhead") {
        sys.como_overhead_fraction = ParseF64(origin, line_no, key, value);
      } else if (key == "custom_shedding") {
        sys.enable_custom_shedding = ParseBool(origin, line_no, key, value);
      } else if (key == "oracle") {
        if (value == "model") {
          config.oracle = core::OracleKind::kModel;
        } else if (value == "measured") {
          config.oracle = core::OracleKind::kMeasured;
        } else {
          Fail(origin, line_no, "oracle: expected model|measured, got '" + value + "'");
        }
      } else if (key == "track_accuracy") {
        config.track_accuracy = ParseBool(origin, line_no, key, value);
      } else if (key == "default_min_rates") {
        config.default_min_rates = ParseBool(origin, line_no, key, value);
      } else {
        Fail(origin, line_no, "unknown [system] key '" + key + "'");
      }
    } else if (section == "predictor") {
      predict::PredictorConfig& pred = config.system.predictor;
      if (key == "kind") {
        if (value == "mlr") {
          pred.kind = predict::PredictorKind::kMlr;
        } else if (value == "slr") {
          pred.kind = predict::PredictorKind::kSlr;
        } else if (value == "ewma") {
          pred.kind = predict::PredictorKind::kEwma;
        } else {
          Fail(origin, line_no, "kind: expected mlr|slr|ewma, got '" + value + "'");
        }
      } else if (key == "history") {
        pred.history = static_cast<size_t>(ParseU64(origin, line_no, key, value));
      } else if (key == "fcbf_threshold") {
        pred.fcbf_threshold = ParseF64(origin, line_no, key, value);
      } else if (key == "ewma_alpha") {
        pred.ewma_alpha = ParseF64(origin, line_no, key, value);
      } else {
        Fail(origin, line_no, "unknown [predictor] key '" + key + "'");
      }
    } else if (section == "queries") {
      if (key == "add") {
        config.queries.push_back(value);
      } else {
        Fail(origin, line_no, "unknown [queries] key '" + key + "' (use 'add = <name>')");
      }
    } else {  // sinks
      if (key == "csv") {
        config.csv_path = value;
      } else if (key == "jsonl") {
        config.jsonl_path = value;
      } else if (key == "log") {
        config.log_path = value;
      } else {
        Fail(origin, line_no, "unknown [sinks] key '" + key + "'");
      }
    }
  }
  return config;
}

FileConfig ParseConfigFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("cannot open config file: " + path);
  }
  return ParseConfig(in, path);
}

}  // namespace shedmon::api
