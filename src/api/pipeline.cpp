#include "src/api/pipeline.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/api/sinks.h"
#include "src/core/runner.h"
#include "src/exec/thread_pool.h"
#include "src/obs/prometheus.h"
#include "src/obs/snapshot.h"
#include "src/query/queries.h"
#include "src/rt/atomic_file.h"

namespace shedmon::api {

namespace {
constexpr size_t kNpos = static_cast<size_t>(-1);

// Sink-path probe for eager validation: Build() must fail before a system
// exists, not after the first bin, so the path is opened (append, to not
// clobber an existing file) and closed again.
void CheckWritable(const std::string& path, std::string_view what) {
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw ConfigError(std::string(what) + ": cannot open '" + path + "' for writing");
  }
}

// Adapts a Pipeline to the capture loop's sink interface. A plain borrowing
// adapter (not a Pipeline base class) keeps the facade non-virtual; every
// call arrives on the capture consumer thread, which is the coordinator
// while capture runs.
class PipelineIngestSink final : public capture::IngestSink {
 public:
  explicit PipelineIngestSink(Pipeline* pipeline) : pipeline_(pipeline) {}

  void PushPinned(const net::Packet& packet) override { pipeline_->PushPinned(packet); }
  void AdvanceTime(uint64_t target_us) override { pipeline_->AdvanceTime(target_us); }
  uint64_t NextBin() const override { return pipeline_->next_bin(); }
  uint64_t OpenBinStartUs() const override {
    return pipeline_->next_bin() * pipeline_->time_bin_us();
  }

 private:
  Pipeline* pipeline_;
};
}  // namespace

// ---------------------------------------------------------------------------
// QueryHandle
// ---------------------------------------------------------------------------

bool QueryHandle::valid() const {
  return pipeline_ != nullptr && id_ != 0 && pipeline_->system_ != nullptr &&
         pipeline_->FindSlot(id_) != kNpos;
}

size_t QueryHandle::index() const {
  if (pipeline_ == nullptr || id_ == 0) {
    throw std::logic_error("QueryHandle: not attached to a Pipeline");
  }
  if (pipeline_->system_ == nullptr) {
    throw std::logic_error("QueryHandle: the Pipeline's system was released");
  }
  return pipeline_->SlotIndex(id_);
}

const std::string& QueryHandle::name() const { return query().name(); }

query::Query& QueryHandle::query() const {
  const size_t i = index();  // validates the handle before any dereference
  return pipeline_->system_->query(i);
}

const query::Query* QueryHandle::reference() const {
  const size_t i = index();
  return pipeline_->slots_[i].reference.get();
}

query::AccuracyRow QueryHandle::Accuracy() const { return pipeline_->AccuracyAt(index()); }

double QueryHandle::MeanAccuracy() const { return pipeline_->MeanAccuracyAt(index()); }

// ---------------------------------------------------------------------------
// PipelineBuilder
// ---------------------------------------------------------------------------

PipelineBuilder& PipelineBuilder::Config(const core::SystemConfig& config) {
  config_ = config;
  return *this;
}

PipelineBuilder& PipelineBuilder::TimeBin(uint64_t bin_us) {
  config_.time_bin_us = bin_us;
  return *this;
}

PipelineBuilder& PipelineBuilder::CyclesPerBin(double cycles) {
  config_.cycles_per_bin = cycles;
  return *this;
}

PipelineBuilder& PipelineBuilder::Shedder(core::ShedderKind kind) {
  config_.shedder = kind;
  return *this;
}

PipelineBuilder& PipelineBuilder::Strategy(shed::StrategyKind kind) {
  config_.strategy = kind;
  return *this;
}

PipelineBuilder& PipelineBuilder::BufferBins(double bins) {
  config_.buffer_bins = bins;
  return *this;
}

PipelineBuilder& PipelineBuilder::CustomShedding(bool enable) {
  config_.enable_custom_shedding = enable;
  return *this;
}

PipelineBuilder& PipelineBuilder::Threads(size_t num_threads) {
  config_.num_threads = num_threads;
  return *this;
}

PipelineBuilder& PipelineBuilder::MaxShardsPerQuery(size_t n) {
  config_.max_shards_per_query = n;
  return *this;
}

PipelineBuilder& PipelineBuilder::Seed(uint64_t seed) {
  config_.seed = seed;
  return *this;
}

PipelineBuilder& PipelineBuilder::Oracle(core::OracleKind kind) {
  oracle_ = kind;
  return *this;
}

PipelineBuilder& PipelineBuilder::TrackAccuracy(bool enable) {
  track_accuracy_ = enable;
  return *this;
}

PipelineBuilder& PipelineBuilder::DefaultMinRates(bool enable) {
  default_min_rates_ = enable;
  return *this;
}

PipelineBuilder& PipelineBuilder::AddQuery(std::string_view name) {
  queries_.push_back({std::string(name), {}, /*has_config=*/false});
  return *this;
}

PipelineBuilder& PipelineBuilder::AddQuery(std::string_view name,
                                           const core::QueryConfig& config) {
  queries_.push_back({std::string(name), config, /*has_config=*/true});
  return *this;
}

PipelineBuilder& PipelineBuilder::CsvTo(std::string path) {
  csv_path_ = std::move(path);
  return *this;
}

PipelineBuilder& PipelineBuilder::JsonlTo(std::string path) {
  jsonl_path_ = std::move(path);
  return *this;
}

PipelineBuilder& PipelineBuilder::LogTo(std::string path) {
  log_path_ = std::move(path);
  return *this;
}

PipelineBuilder& PipelineBuilder::Deadline(double budget_fraction) {
  rt::GovernorConfig config;
  config.budget_fraction = budget_fraction;
  return Deadline(config);
}

PipelineBuilder& PipelineBuilder::Deadline(const rt::GovernorConfig& config) {
  deadline_enabled_ = config.budget_fraction > 0.0;
  governor_config_ = config;
  return *this;
}

PipelineBuilder& PipelineBuilder::RtClock(std::shared_ptr<rt::Clock> clock) {
  clock_ = std::move(clock);
  return *this;
}

PipelineBuilder& PipelineBuilder::IngestCap(size_t max_records, rt::OverflowPolicy policy) {
  ingest_cap_ = max_records;
  ingest_policy_ = policy;
  return *this;
}

PipelineBuilder& PipelineBuilder::InjectFaults(const rt::FaultPlan& plan) {
  has_fault_plan_ = true;
  fault_plan_ = plan;
  return *this;
}

PipelineBuilder& PipelineBuilder::CheckpointTo(std::string path) {
  checkpoint_path_ = std::move(path);
  return *this;
}

PipelineBuilder& PipelineBuilder::CheckpointEvery(size_t bins) {
  checkpoint_every_ = bins;
  return *this;
}

PipelineBuilder& PipelineBuilder::SinkRetry(const rt::RetryPolicy& policy) {
  has_sink_retry_ = true;
  sink_retry_ = policy;
  return *this;
}

PipelineBuilder& PipelineBuilder::Tracing(bool enable) {
  tracing_ = enable;
  return *this;
}

PipelineBuilder& PipelineBuilder::ServeOn(uint16_t port) {
  serve_enabled_ = true;
  serve_port_ = port;
  return *this;
}

PipelineBuilder& PipelineBuilder::CaptureFrom(capture::CaptureConfig config) {
  has_capture_ = true;
  capture_config_ = std::move(config);
  return *this;
}

void PipelineBuilder::ApplyObsOptions(Pipeline& pipeline) const {
  if (tracing_) {
    pipeline.EnableTracing();
  }
  if (serve_enabled_) {
    pipeline.ServeOn(serve_port_);
  }
}

void PipelineBuilder::ApplyRtOptions(Pipeline& pipeline) const {
  if (clock_ != nullptr) {
    pipeline.clock_ = clock_;
  }
  if (has_fault_plan_) {
    pipeline.SetFaultPlan(fault_plan_);
  }
  if (deadline_enabled_) {
    pipeline.SetDeadline(governor_config_);
  }
  if (ingest_cap_ > 0) {
    pipeline.SetIngestCap(ingest_cap_, ingest_policy_);
  }
  if (has_sink_retry_) {
    pipeline.SetSinkRetry(sink_retry_);
  }
  if (!checkpoint_path_.empty()) {
    pipeline.SetCheckpoint(checkpoint_path_, checkpoint_every_);
  }
}

std::unique_ptr<Pipeline> PipelineBuilder::RestoreOrBuild(const std::string& path) const {
  std::unique_ptr<Pipeline> pipeline;
  std::ifstream in(path, std::ios::binary);
  if (in) {
    try {
      pipeline = Restore(in);
    } catch (const obs::SnapshotError&) {
      // Torn or corrupt checkpoint: the atomic writer makes this unlikely,
      // but an operator-truncated file must not keep the monitor down.
      pipeline = nullptr;
    }
  }
  if (pipeline == nullptr) {
    return BuildUnique();  // the Pipeline ctor applies the rt/obs options
  }
  ApplyRtOptions(*pipeline);
  ApplyObsOptions(*pipeline);
  if (has_capture_) {
    pipeline->StartCapture(capture_config_);
  }
  return pipeline;
}

PipelineBuilder PipelineBuilder::FromRunSpec(const core::RunSpec& spec) {
  PipelineBuilder builder;
  builder.config_ = spec.system;
  builder.oracle_ = spec.oracle;
  builder.default_min_rates_ = spec.use_default_min_rates;
  return builder;
}

PipelineBuilder PipelineBuilder::FromConfig(const FileConfig& config) {
  PipelineBuilder builder;
  builder.config_ = config.system;
  builder.oracle_ = config.oracle;
  builder.track_accuracy_ = config.track_accuracy;
  builder.default_min_rates_ = config.default_min_rates;
  for (const std::string& name : config.queries) {
    builder.AddQuery(name);
  }
  builder.csv_path_ = config.csv_path;
  builder.jsonl_path_ = config.jsonl_path;
  builder.log_path_ = config.log_path;
  return builder;
}

PipelineBuilder PipelineBuilder::FromConfigFile(const std::string& path) {
  return FromConfig(ParseConfigFile(path));
}

void PipelineBuilder::Validate() const {
  if (config_.time_bin_us == 0) {
    throw ConfigError("time_bin_us must be positive");
  }
  if (config_.cycles_per_bin < 0.0) {
    throw ConfigError("cycles_per_bin must be >= 0 (0 = oracle's real-time budget)");
  }
  if (!(config_.buffer_bins > 0.0)) {
    throw ConfigError("buffer_bins must be positive");
  }
  if (!(config_.ewma_alpha > 0.0) || config_.ewma_alpha > 1.0) {
    throw ConfigError("ewma_alpha must be in (0, 1]");
  }
  if (config_.como_overhead_fraction < 0.0 || config_.como_overhead_fraction >= 1.0) {
    throw ConfigError("como_overhead_fraction must be in [0, 1)");
  }
  if (config_.bootstrap_rate < 0.0 || config_.bootstrap_rate > 1.0) {
    throw ConfigError("bootstrap_rate must be in [0, 1]");
  }
  if (config_.reactive_min_rate < 0.0 || config_.reactive_min_rate > 1.0) {
    throw ConfigError("reactive_min_rate must be in [0, 1]");
  }
  if (config_.system_interval_bins == 0) {
    throw ConfigError("system_interval_bins must be positive");
  }
  if (config_.max_shards_per_query == 0) {
    throw ConfigError("max_shards_per_query must be >= 1 (1 = no intra-query sharding)");
  }
  if (config_.max_shards_per_query > 1 && config_.num_threads == 0) {
    throw ConfigError(
        "max_shards_per_query > 1 requires num_threads > 0: shards fan out over the worker pool");
  }
  for (const PendingQuery& pending : queries_) {
    // MakeQuery is the authority on the standard roster; a cheap construction
    // here turns a typo into a ConfigError before any system exists.
    try {
      (void)query::MakeQuery(pending.name);
    } catch (const std::invalid_argument& e) {
      throw ConfigError(std::string("unknown query '") + pending.name + "': " + e.what());
    }
    if (pending.has_config && (pending.config.min_sampling_rate < 0.0 ||
                               pending.config.min_sampling_rate > 1.0)) {
      throw ConfigError("query '" + pending.name + "': min_sampling_rate must be in [0, 1]");
    }
  }
  if (deadline_enabled_ && !(governor_config_.budget_fraction > 0.0)) {
    throw ConfigError("deadline budget_fraction must be positive");
  }
  if (has_capture_) {
    if (capture_config_.sources.empty()) {
      throw ConfigError("CaptureFrom: config has no sources");
    }
    for (const capture::SourceSpec& spec : capture_config_.sources) {
      if (spec.kind == capture::SourceSpec::Kind::kPcapFile && spec.path.empty()) {
        throw ConfigError("CaptureFrom: pcap source needs a path");
      }
    }
  }
  if (checkpoint_every_ > 0 && checkpoint_path_.empty()) {
    throw ConfigError("CheckpointEvery without CheckpointTo: no checkpoint path set");
  }
  if (!csv_path_.empty()) {
    CheckWritable(csv_path_, "csv sink");
  }
  if (!jsonl_path_.empty()) {
    CheckWritable(jsonl_path_, "jsonl sink");
  }
  if (!log_path_.empty()) {
    CheckWritable(log_path_, "event log");
  }
  if (!checkpoint_path_.empty()) {
    CheckWritable(checkpoint_path_, "checkpoint");
  }
}

Pipeline PipelineBuilder::Build() const {
  Validate();
  return Pipeline(*this);
}

std::unique_ptr<Pipeline> PipelineBuilder::BuildUnique() const {
  Validate();
  return std::unique_ptr<Pipeline>(new Pipeline(*this));
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

Pipeline::Pipeline(const core::SystemConfig& config, core::OracleKind oracle_kind,
                   bool track_accuracy, bool default_min_rates)
    : track_accuracy_(track_accuracy),
      default_min_rates_(default_min_rates),
      oracle_kind_(oracle_kind),
      bin_us_(config.time_bin_us) {
  if (config.time_bin_us == 0) {
    // ConfigError derives from std::invalid_argument, the contract callers
    // relied on before eager builder validation existed.
    throw ConfigError("Pipeline: time_bin_us must be positive");
  }
  system_ = std::make_unique<core::MonitoringSystem>(config, core::MakeOracle(oracle_kind));
  RefreshStats();
}

Pipeline::Pipeline(const PipelineBuilder& builder)
    : Pipeline(builder.config_, builder.oracle_, builder.track_accuracy_,
               builder.default_min_rates_) {
  for (const PipelineBuilder::PendingQuery& pending : builder.queries_) {
    if (pending.has_config) {
      AddQuery(pending.name, pending.config);
    } else {
      AddQuery(pending.name);
    }
  }
  if (!builder.csv_path_.empty()) {
    auto sink = std::make_unique<CsvBinSink>(builder.csv_path_);
    rt_sinks_.push_back(sink.get());
    AddObserver(std::move(sink));
  }
  if (!builder.jsonl_path_.empty()) {
    auto sink = std::make_unique<JsonlBinSink>(builder.jsonl_path_);
    rt_sinks_.push_back(sink.get());
    AddObserver(std::move(sink));
  }
  if (!builder.log_path_.empty()) {
    SetLogger(std::make_unique<obs::JsonlLogger>(builder.log_path_));
  }
  builder.ApplyRtOptions(*this);
  builder.ApplyObsOptions(*this);
  if (builder.has_capture_) {
    StartCapture(builder.capture_config_);
  }
  RefreshStats();
}

Pipeline::~Pipeline() = default;

size_t Pipeline::FindSlot(uint64_t id) const noexcept {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].id == id) {
      return i;
    }
  }
  return kNpos;
}

size_t Pipeline::SlotIndex(uint64_t id) const {
  const size_t index = FindSlot(id);
  if (index == kNpos) {
    throw std::logic_error("QueryHandle: query was removed from the Pipeline");
  }
  return index;
}

void Pipeline::EnsureOpen(std::string_view op) const {
  if (finished_) {
    throw std::logic_error(std::string(op) + " called after Pipeline::Finish()");
  }
}

QueryHandle Pipeline::AddQuery(std::string_view name) {
  core::QueryConfig config;
  if (default_min_rates_) {
    config.min_sampling_rate = core::DefaultMinRate(name);
  }
  return AddQuery(name, config);
}

QueryHandle Pipeline::AddQuery(std::string_view name, const core::QueryConfig& config) {
  return Register(config, query::MakeQuery(name),
                  track_accuracy_ ? query::MakeQuery(name) : nullptr);
}

QueryHandle Pipeline::AddQuery(std::unique_ptr<query::Query> query,
                               const core::QueryConfig& config,
                               std::unique_ptr<query::Query> reference) {
  if (query == nullptr) {
    throw std::invalid_argument("Pipeline::AddQuery: query must not be null");
  }
  return Register(config, std::move(query), std::move(reference));
}

QueryHandle Pipeline::Register(const core::QueryConfig& config,
                               std::unique_ptr<query::Query> query,
                               std::unique_ptr<query::Query> reference) {
  EnsureOpen("AddQuery");
  system_->AddQuery(std::move(query), config);
  Slot slot;
  slot.id = next_id_++;
  slot.reference = std::move(reference);
  slots_.push_back(std::move(slot));
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("query_added")
                       .Str("query", system_->query(slots_.size() - 1).name())
                       .Int("bin", open_bin_)
                       .Num("min_sampling_rate", config.min_sampling_rate));
  }
  RefreshStats();
  return QueryHandle(this, slots_.back().id);
}

DetachedQuery Pipeline::Detach(QueryHandle handle) {
  EnsureOpen("Detach");
  if (handle.pipeline_ != this) {
    throw std::logic_error("Pipeline::Detach: handle belongs to another Pipeline");
  }
  const size_t index = SlotIndex(handle.id_);
  DetachedQuery detached;
  detached.reference = std::move(slots_[index].reference);
  slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(index));
  detached.query = system_->RemoveQuery(index);
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("query_removed")
                       .Str("query", detached.query->name())
                       .Int("bin", open_bin_));
  }
  RefreshStats();
  return detached;
}

void Pipeline::AddObserver(BinObserver* observer) {
  if (observer != nullptr) {
    observers_.push_back(observer);
  }
}

void Pipeline::AddObserver(std::unique_ptr<BinObserver> observer) {
  if (observer != nullptr) {
    observers_.push_back(observer.get());
    owned_observers_.push_back(std::move(observer));
  }
}

void Pipeline::Push(const net::Packet& packet) {
  net::PacketRecord record = *packet.rec;
  record.payload_len = packet.payload_len;
  AppendRecord(record, packet.payload);
}

void Pipeline::PushPinned(const net::Packet& packet) {
  net::PacketRecord record = *packet.rec;
  record.payload_len = packet.payload_len;
  AppendRecord(record, packet.payload, /*pin_payload=*/true);
}

void Pipeline::Push(std::span<const net::Packet> packets) {
  for (const net::Packet& packet : packets) {
    Push(packet);
  }
}

void Pipeline::Push(const trace::Trace& trace) {
  for (const net::PacketRecord& record : trace.packets) {
    AppendRecord(record, nullptr);
  }
}

// Deprecated raw-record shims; bodies go straight to AppendRecord so the
// library builds without tripping its own deprecation warnings.
void Pipeline::Push(const net::PacketRecord& record) { AppendRecord(record, nullptr); }

void Pipeline::Push(std::span<const net::PacketRecord> records) {
  for (const net::PacketRecord& record : records) {
    AppendRecord(record, nullptr);
  }
}

void Pipeline::AppendRecord(const net::PacketRecord& record, const uint8_t* payload_bytes,
                            bool pin_payload) {
  EnsureOpen("Push");
  const uint64_t bin = record.ts_us / bin_us_;
  if (bin < open_bin_) {
    throw std::invalid_argument("Pipeline::Push: packet is older than the open time bin");
  }
  if (bin > open_bin_) {
    FlushThrough(bin);
  }
  if (ingest_cap_ > 0 && open_records() >= ingest_cap_) {
    switch (ingest_policy_) {
      case rt::OverflowPolicy::kDropNewest:
        ++ingest_dropped_;
        if (m_ingest_dropped_ != nullptr) {
          m_ingest_dropped_->Increment();
        }
        return;
      case rt::OverflowPolicy::kDropOldest:
        // Evict by advancing the head; the evicted payload bytes idle in the
        // arena until the bin closes (see the ingest_head_ comment).
        wire_bytes_ -= records_[ingest_head_].wire_len;
        ++ingest_head_;
        ++ingest_dropped_;
        if (m_ingest_dropped_ != nullptr) {
          m_ingest_dropped_->Increment();
        }
        break;
      case rt::OverflowPolicy::kBlock:
        // Backpressure at a synchronous facade is Push's own synchrony: the
        // caller is already blocked for the duration of the call, so a full
        // buffer simply keeps absorbing (i.e. the cap is advisory here).
        break;
    }
  }
  records_.push_back(record);
  const bool pin = pin_payload && payload_bytes != nullptr && record.payload_len > 0;
  pinned_.push_back(pin ? payload_bytes : nullptr);
  payload_offsets_.push_back(arena_.size());
  if (record.payload_len > 0 && !pin) {
    arena_.resize(arena_.size() + record.payload_len);
    uint8_t* dst = arena_.data() + payload_offsets_.back();
    if (payload_bytes != nullptr) {
      std::copy_n(payload_bytes, record.payload_len, dst);
      ingest_copied_bytes_ += record.payload_len;
    } else {
      trace::MaterializePayload(record, dst);
    }
  }
  wire_bytes_ += record.wire_len;
}

void Pipeline::AdvanceTime(uint64_t ts_us) {
  EnsureOpen("AdvanceTime");
  const uint64_t bin = ts_us / bin_us_;
  if (bin > open_bin_) {
    FlushThrough(bin);
  }
}

void Pipeline::FlushThrough(uint64_t bin_index) {
  while (open_bin_ < bin_index) {
    CloseOpenBin();
  }
}

void Pipeline::CloseOpenBin() {
  batch_.start_us = open_bin_ * bin_us_;
  batch_.duration_us = bin_us_;
  batch_.wire_bytes = wire_bytes_;
  batch_.packets.clear();
  batch_.packets.reserve(open_records());
  for (size_t i = ingest_head_; i < records_.size(); ++i) {
    net::Packet packet;
    packet.rec = &records_[i];
    packet.payload_len = records_[i].payload_len;
    // Pinned payloads alias the producer's buffer (capture slots, alive
    // until this bin closes); everything else lives in the arena.
    packet.payload = records_[i].payload_len == 0 ? nullptr
                     : pinned_[i] != nullptr      ? pinned_[i]
                                                  : arena_.data() + payload_offsets_[i];
    batch_.packets.push_back(packet);
  }

  // Deadline bracket: the directive shaped by bin N-1's overrun applies to
  // this bin, and this bin's wall-clock verdict shapes bin N+1 — never the
  // bin being measured, so deadline-clean runs stay bit-identical.
  {
    const uint32_t bin = static_cast<uint32_t>(open_bin_);
    obs::Span bin_span(tracer_.get(), obs::Stage::kBinClose, bin);
    if (governor_ != nullptr) {
      system_->SetDegradation(governor_->Begin());
    }
    system_->ProcessBatch(batch_);
    UpdateTallies(system_->log().back());
    {
      obs::Span ref_span(tracer_.get(), obs::Stage::kReference, bin);
      RunReferences();
    }
    if (governor_ != nullptr) {
      governor_->End(bin_us_, open_bin_);
      system_->MarkDeadline(governor_->last_deadline_missed(), governor_->last_overrun_us());
    }
    {
      obs::Span sink_span(tracer_.get(), obs::Stage::kSink, bin);
      NotifyObservers();
    }
  }

  batch_.packets.clear();
  records_.clear();
  payload_offsets_.clear();
  arena_.clear();
  pinned_.clear();
  ingest_head_ = 0;
  wire_bytes_ = 0;
  ++bins_processed_;
  ++open_bin_;
  MaybeCheckpoint();
  RefreshStats();
}

void Pipeline::RunReferences() {
  const query::BatchInput in{batch_.packets, batch_.start_us, batch_.duration_us, 1.0};
  const auto run_one = [&](size_t i) {
    Slot& slot = slots_[i];
    if (slot.reference == nullptr) {
      return;
    }
    slot.reference->ProcessBatch(in);
    if (++slot.ref_bins_in_interval >= slot.reference->interval_bins()) {
      slot.reference->EndInterval();
      slot.ref_bins_in_interval = 0;
    }
  };
  exec::ThreadPool* pool = system_->pool();
  if (pool != nullptr && slots_.size() > 1) {
    pool->ParallelFor(0, slots_.size(), 1, run_one);
  } else {
    for (size_t i = 0; i < slots_.size(); ++i) {
      run_one(i);
    }
  }
}

void Pipeline::NotifyObservers() {
  if (observers_.empty()) {
    return;
  }
  const core::BinLog& log = system_->log().back();
  BinStats stats;
  stats.bin_index = bins_processed_;
  stats.num_queries = system_->num_queries();
  stats.capacity = system_->capacity();
  stats.spent_cycles = log.query_cycles + log.ps_cycles + log.ls_cycles + log.como_cycles;
  stats.utilization = stats.capacity > 0.0 ? stats.spent_cycles / stats.capacity : 0.0;
  const double in_pkts = static_cast<double>(log.packets_in);
  stats.drop_fraction = in_pkts > 0.0 ? static_cast<double>(log.packets_dropped) / in_pkts : 0.0;
  stats.shed_fraction = in_pkts > 0.0 ? log.packets_unsampled / in_pkts : 0.0;
  stats.query_names.reserve(system_->num_queries());
  for (size_t q = 0; q < system_->num_queries(); ++q) {
    stats.query_names.push_back(system_->query(q).name());
  }
  for (BinObserver* observer : observers_) {
    observer->OnBin(log, stats);
  }
}

void Pipeline::Finish() {
  if (finished_) {
    return;
  }
  StopCapture();  // drain everything already captured into the open bin
  if (open_records() > 0) {
    CloseOpenBin();
  }
  system_->Finish();
  for (Slot& slot : slots_) {
    if (slot.reference != nullptr && slot.ref_bins_in_interval > 0) {
      slot.reference->EndInterval();
      slot.ref_bins_in_interval = 0;
    }
  }
  finished_ = true;
  for (BinObserver* observer : observers_) {
    observer->OnRunEnd();
  }
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("finish")
                       .Int("bins", bins_processed_)
                       .Int("packets", system_->total_packets())
                       .Int("dropped", system_->total_dropped()));
    logger_->Flush();
  }
  RefreshStats();
}

void Pipeline::UpdateTallies(const core::BinLog& log) {
  ++tally_bins_;
  shed_packets_ += log.packets_unsampled;
  if (log.overload) {
    ++overload_bins_;
  }
  if (log.batch_dropped) {
    ++batches_dropped_;
  }
  const double capacity = system_->capacity();
  const double spent = log.query_cycles + log.ps_cycles + log.ls_cycles + log.como_cycles;
  last_util_ = capacity > 0.0 ? spent / capacity : 0.0;
  util_sum_ += last_util_;
  if (logger_ != nullptr) {
    logger_->Write(obs::LogEvent("bin_closed")
                       .Int("bin", open_bin_)
                       .Int("packets", log.packets_in)
                       .Int("dropped", log.packets_dropped)
                       .Num("shed", log.packets_unsampled)
                       .Bool("overload", log.overload)
                       .Num("utilization", last_util_)
                       .Num("backlog_cycles", log.backlog_cycles));
  }
}

PipelineStats Pipeline::Stats() const {
  util::MutexLock lock(stats_mutex_);
  return published_stats_;
}

PipelineStats Pipeline::ComputeStats() const {
  PipelineStats stats;
  stats.bins = bins_processed_;
  stats.queries = system_->num_queries();
  stats.packets = system_->total_packets();
  stats.dropped = system_->total_dropped();
  stats.shed = shed_packets_;
  stats.overload_bins = overload_bins_;
  stats.batches_dropped = batches_dropped_;
  stats.capacity = system_->capacity();
  stats.last_utilization = last_util_;
  stats.mean_utilization = tally_bins_ > 0 ? util_sum_ / static_cast<double>(tally_bins_) : 0.0;
  stats.prediction_error_ewma = system_->error_ewma_value();
  stats.backlog_cycles = system_->backlog_cycles();
  stats.ingest_dropped = ingest_dropped_;
  stats.deadline_misses = governor_ != nullptr ? governor_->deadline_misses() : 0;
  stats.degradation_level = governor_ != nullptr ? governor_->level() : 0;
  stats.checkpoints = checkpoints_written_;
  stats.ingest_copied_bytes = ingest_copied_bytes_;
  if (capture_ != nullptr) {
    const capture::CaptureStats capture_stats = capture_->stats();
    stats.capture_packets = capture_stats.packets;
    stats.capture_dropped = capture_stats.dropped();
  }
  return stats;
}

void Pipeline::RefreshStats() {
  PipelineStats stats = ComputeStats();
  size_t quarantined = 0;
  for (ResilientSinkBase* sink : rt_sinks_) {
    quarantined += sink->quarantined() ? 1 : 0;
  }
  util::MutexLock lock(stats_mutex_);
  published_stats_ = stats;
  published_quarantined_sinks_ = quarantined;
}

void Pipeline::StartCapture(capture::CaptureConfig config) {
  EnsureOpen("StartCapture");
  if (capture_ != nullptr) {
    throw ConfigError("Pipeline::StartCapture: capture was already started");
  }
  if (config.clock == nullptr) {
    config.clock = clock_;  // may still be null; the loop falls back to DefaultClock
  }
  capture_sink_ = std::make_unique<PipelineIngestSink>(this);
  try {
    auto loop = std::make_unique<capture::CaptureLoop>(std::move(config), capture_sink_.get(),
                                                       &system_->metrics(), tracer_.get());
    loop->Start();
    capture_ = std::move(loop);
  } catch (const std::exception& e) {
    capture_sink_.reset();
    throw ConfigError(std::string("capture: ") + e.what());
  }
  RefreshStats();
}

void Pipeline::StopCapture() {
  if (capture_ != nullptr && capture_->running()) {
    capture_->Stop();
    RefreshStats();
  }
}

capture::CaptureStats Pipeline::capture_stats() const {
  return capture_ != nullptr ? capture_->stats() : capture::CaptureStats{};
}

void Pipeline::SetLogger(std::unique_ptr<obs::JsonlLogger> logger) {
  logger_ = std::move(logger);
  // The governor and resilient sinks hold a borrowed logger pointer;
  // re-attach so their events follow the replacement (or detach on null).
  if (governor_ != nullptr) {
    governor_->Attach(&system_->metrics(), logger_.get());
  }
  AttachSinkRt();
}

// ---------------------------------------------------------------------------
// Real-time robustness
// ---------------------------------------------------------------------------

void Pipeline::SetDeadline(const rt::GovernorConfig& config) {
  if (clock_ == nullptr) {
    clock_ = rt::DefaultClock();
  }
  governor_ = std::make_unique<rt::DeadlineGovernor>(config, clock_);
  governor_->Attach(&system_->metrics(), logger_.get());
  governor_->SetTracer(tracer_.get());
}

void Pipeline::ClearDeadline() {
  governor_.reset();
  system_->SetDegradation(rt::Directive{});
}

void Pipeline::SetFaultPlan(const rt::FaultPlan& plan) {
  if (clock_ == nullptr) {
    clock_ = rt::DefaultClock();
  }
  injector_ = std::make_unique<rt::FaultInjector>(plan, clock_);
  system_->SetFaultInjector(injector_.get());
  AttachSinkRt();
}

void Pipeline::SetIngestCap(size_t max_records, rt::OverflowPolicy policy) {
  ingest_cap_ = max_records;
  ingest_policy_ = policy;
  if (ingest_cap_ > 0 && m_ingest_dropped_ == nullptr) {
    m_ingest_dropped_ = &system_->metrics().GetCounter(
        "shedmon_rt_ingest_dropped_total", {},
        "Records rejected or evicted by the bounded ingest buffer");
  }
}

void Pipeline::SetSinkRetry(const rt::RetryPolicy& policy) {
  sink_retry_ = policy;
  if (clock_ == nullptr) {
    clock_ = rt::DefaultClock();
  }
  for (ResilientSinkBase* sink : rt_sinks_) {
    sink->EnableResilience(sink_retry_, clock_);
  }
  AttachSinkRt();
}

void Pipeline::SetCheckpoint(std::string path, size_t every_bins) {
  checkpoint_path_ = std::move(path);
  checkpoint_every_ = every_bins;
}

void Pipeline::AttachSinkRt() {
  for (ResilientSinkBase* sink : rt_sinks_) {
    sink->AttachRt(injector_.get(), &system_->metrics(), logger_.get());
  }
}

void Pipeline::MaybeCheckpoint() {
  if (checkpoint_path_.empty()) {
    return;
  }
  const size_t every =
      checkpoint_every_ > 0 ? checkpoint_every_ : system_->config().system_interval_bins;
  if (bins_processed_ == 0 || bins_processed_ % every != 0) {
    return;
  }
  // Snapshots are only legal on measurement-interval boundaries; off-cadence
  // configurations simply skip until the two align.
  if (!system_->AtIntervalBoundary() || open_records() > 0) {
    return;
  }
  try {
    obs::Span span(tracer_.get(), obs::Stage::kCheckpoint, static_cast<uint32_t>(open_bin_));
    std::ostringstream buf(std::ios::binary);
    Snapshot(buf);
    std::string bytes = buf.str();
    if (injector_ != nullptr && injector_->TakeSnapshotCorruption() && !bytes.empty()) {
      bytes[bytes.size() / 2] ^= 0x20;  // injected torn/corrupt checkpoint
    }
    rt::WriteFileAtomic(checkpoint_path_, bytes);
    ++checkpoints_written_;
    if (logger_ != nullptr) {
      logger_->Write(obs::LogEvent("rt_checkpoint")
                         .Str("path", checkpoint_path_)
                         .Int("bin", open_bin_)
                         .Int("bytes", bytes.size()));
    }
  } catch (const std::exception& e) {
    // Losing a checkpoint must not kill the measurement: log and move on.
    if (logger_ != nullptr) {
      logger_->Write(obs::LogEvent("rt_checkpoint_failed")
                         .Str("path", checkpoint_path_)
                         .Int("bin", open_bin_)
                         .Str("error", e.what()));
    }
  }
}

query::AccuracyRow Pipeline::AccuracyAt(size_t index) const {
  if (index >= slots_.size()) {
    throw std::out_of_range("Pipeline::AccuracyAt: no query at this index");
  }
  if (slots_[index].reference == nullptr) {
    throw std::logic_error("Pipeline::AccuracyAt: no reference tracked for this query");
  }
  return query::SummarizeAccuracy(system_->query(index), *slots_[index].reference);
}

double Pipeline::MeanAccuracyAt(size_t index) const {
  return std::clamp(1.0 - AccuracyAt(index).mean_error, 0.0, 1.0);
}

double Pipeline::AverageAccuracy() const {
  double sum = 0.0;
  size_t tracked = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].reference != nullptr) {
      sum += MeanAccuracyAt(i);
      ++tracked;
    }
  }
  return tracked == 0 ? 0.0 : sum / static_cast<double>(tracked);
}

double Pipeline::MinimumAccuracy() const {
  double min = 1.0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].reference != nullptr) {
      min = std::min(min, MeanAccuracyAt(i));
    }
  }
  return min;
}

std::unique_ptr<core::MonitoringSystem> Pipeline::ReleaseSystem() {
  if (!finished_) {
    throw std::logic_error("Pipeline::ReleaseSystem: call Finish() first");
  }
  // The HTTP handler dereferences system_ (metrics snapshots); join the
  // accept thread before the system leaves this pipeline.
  server_.reset();
  return std::move(system_);
}

std::vector<std::unique_ptr<query::Query>> Pipeline::ReleaseReferences() {
  if (!finished_) {
    throw std::logic_error("Pipeline::ReleaseReferences: call Finish() first");
  }
  std::vector<std::unique_ptr<query::Query>> references;
  references.reserve(slots_.size());
  for (Slot& slot : slots_) {
    references.push_back(std::move(slot.reference));
  }
  return references;
}

// ---------------------------------------------------------------------------
// Tracing & HTTP endpoint
// ---------------------------------------------------------------------------

obs::Tracer& Pipeline::EnableTracing() {
  if (tracer_ == nullptr) {
    tracer_ = std::make_unique<obs::Tracer>();
    tracer_->AttachMetrics(&system_->metrics());
    system_->SetTracer(tracer_.get());
    if (governor_ != nullptr) {
      governor_->SetTracer(tracer_.get());
    }
    // Published last: once the HTTP thread can see the tracer, it is fully
    // attached and safe to snapshot.
    tracer_view_.store(tracer_.get(), std::memory_order_release);
  }
  return *tracer_;
}

void Pipeline::DumpTrace(const std::string& path) const {
  if (tracer_ == nullptr) {
    throw std::logic_error("Pipeline::DumpTrace: tracing is not enabled");
  }
  if (!tracer_->WriteChromeTrace(path)) {
    throw std::runtime_error("Pipeline::DumpTrace: cannot write '" + path + "'");
  }
}

uint16_t Pipeline::ServeOn(uint16_t port) {
  server_.reset();  // rebinding replaces any previous endpoint
  RefreshStats();   // the handler must see valid stats before the first bin
  try {
    server_ = std::make_unique<obs::ObsServer>(
        port, [this](const std::string& path) { return HandleHttp(path); });
  } catch (const std::runtime_error& e) {
    // Port squatting is a deployment error the operator must see at Build(),
    // not a silent fallback; the listen socket deliberately avoids
    // SO_REUSEADDR so the bind fails loudly here.
    throw ConfigError(e.what());
  }
  return server_->port();
}

namespace {

void AppendJsonKey(std::ostream& out, bool& first, std::string_view key) {
  out << (first ? "" : ",") << '"' << key << "\":";
  first = false;
}

void StatsToJson(const PipelineStats& stats, size_t quarantined_sinks, std::ostream& out) {
  bool first = true;
  out << '{';
  AppendJsonKey(out, first, "bins");
  out << stats.bins;
  AppendJsonKey(out, first, "queries");
  out << stats.queries;
  AppendJsonKey(out, first, "packets");
  out << stats.packets;
  AppendJsonKey(out, first, "dropped");
  out << stats.dropped;
  AppendJsonKey(out, first, "shed");
  out << stats.shed;
  AppendJsonKey(out, first, "overload_bins");
  out << stats.overload_bins;
  AppendJsonKey(out, first, "batches_dropped");
  out << stats.batches_dropped;
  AppendJsonKey(out, first, "capacity");
  out << stats.capacity;
  AppendJsonKey(out, first, "last_utilization");
  out << stats.last_utilization;
  AppendJsonKey(out, first, "mean_utilization");
  out << stats.mean_utilization;
  AppendJsonKey(out, first, "prediction_error_ewma");
  out << stats.prediction_error_ewma;
  AppendJsonKey(out, first, "backlog_cycles");
  out << stats.backlog_cycles;
  AppendJsonKey(out, first, "ingest_dropped");
  out << stats.ingest_dropped;
  AppendJsonKey(out, first, "deadline_misses");
  out << stats.deadline_misses;
  AppendJsonKey(out, first, "degradation_level");
  out << stats.degradation_level;
  AppendJsonKey(out, first, "degradation_rung");
  out << '"' << rt::DegradeActionName(static_cast<uint8_t>(stats.degradation_level)) << '"';
  AppendJsonKey(out, first, "checkpoints");
  out << stats.checkpoints;
  AppendJsonKey(out, first, "capture_packets");
  out << stats.capture_packets;
  AppendJsonKey(out, first, "capture_dropped");
  out << stats.capture_dropped;
  AppendJsonKey(out, first, "ingest_copied_bytes");
  out << stats.ingest_copied_bytes;
  AppendJsonKey(out, first, "quarantined_sinks");
  out << quarantined_sinks;
  out << '}';
}

}  // namespace

obs::ObsServer::Response Pipeline::HandleHttp(const std::string& raw_path) const {
  // Scrapers commonly append query strings ("/metrics?format=..."); route on
  // the path alone.
  const std::string path = raw_path.substr(0, raw_path.find('?'));

  PipelineStats stats;
  size_t quarantined = 0;
  {
    util::MutexLock lock(stats_mutex_);
    stats = published_stats_;
    quarantined = published_quarantined_sinks_;
  }

  obs::ObsServer::Response response;
  if (path == "/metrics") {
    response.body = obs::PrometheusEncoder::Encode(system_->metrics().Snapshot());
    return response;
  }
  if (path == "/healthz") {
    const bool degraded = stats.degradation_level > 0 || quarantined > 0;
    std::ostringstream body;
    body << "{\"status\":\"" << (degraded ? "degraded" : "ok") << "\",\"degradation_level\":"
         << stats.degradation_level << ",\"degradation_rung\":\""
         << rt::DegradeActionName(static_cast<uint8_t>(stats.degradation_level))
         << "\",\"deadline_misses\":" << stats.deadline_misses
         << ",\"quarantined_sinks\":" << quarantined << ",\"bins\":" << stats.bins << "}\n";
    response.content_type = "application/json";
    response.body = body.str();
    return response;
  }
  if (path == "/stats") {
    std::ostringstream body;
    StatsToJson(stats, quarantined, body);
    body << '\n';
    response.content_type = "application/json";
    response.body = body.str();
    return response;
  }
  if (path == "/trace") {
    obs::Tracer* tracer = tracer_view_.load(std::memory_order_acquire);
    if (tracer == nullptr) {
      response.status = 404;
      response.body = "tracing disabled; build the pipeline with Tracing()\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = tracer->ExportChromeTrace();
    return response;
  }
  if (path == "/" || path.empty()) {
    response.body = "shedmon observability endpoint\n/metrics\n/healthz\n/stats\n/trace\n";
    return response;
  }
  response.status = 404;
  response.body = "not found: " + path + "\n";
  return response;
}

}  // namespace shedmon::api
