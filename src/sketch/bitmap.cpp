#include "src/sketch/bitmap.h"

#include <cmath>
#include <stdexcept>

namespace shedmon::sketch {

namespace {
// Linear counting over one bitmap of `bits` bits with `set` bits set; the
// saturated case returns the (large) estimate for one remaining zero bit.
double LinearCount(uint32_t bits, uint32_t set) {
  const uint32_t zeros = bits - set;
  if (zeros == 0) {
    return static_cast<double>(bits) * std::log(static_cast<double>(bits));
  }
  return -static_cast<double>(bits) *
         std::log(static_cast<double>(zeros) / static_cast<double>(bits));
}
}  // namespace

DirectBitmap::DirectBitmap(uint32_t bits) : size_bits_(bits), mask_(bits - 1) {
  if (bits == 0 || (bits & (bits - 1)) != 0) {
    throw std::invalid_argument("DirectBitmap size must be a power of two");
  }
  words_.resize((bits + 63) / 64, 0);
}

double DirectBitmap::Estimate() const { return LinearCount(size_bits_, bits_set_); }

void DirectBitmap::Clear() {
  for (auto& w : words_) {
    w = 0;
  }
  bits_set_ = 0;
}

void DirectBitmap::Union(const DirectBitmap& other) {
  if (other.size_bits_ != size_bits_) {
    throw std::invalid_argument("DirectBitmap::Union size mismatch");
  }
  bits_set_ = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
    bits_set_ += static_cast<uint32_t>(std::popcount(words_[i]));
  }
}

MultiResBitmap::MultiResBitmap(uint32_t components, uint32_t component_bits)
    : components_(components),
      component_bits_(component_bits),
      comp_words_((component_bits + 63) / 64),
      mask_(component_bits - 1) {
  if (components < 2 || components > kMaxComponents) {
    throw std::invalid_argument("MultiResBitmap components out of range");
  }
  if (component_bits == 0 || (component_bits & (component_bits - 1)) != 0) {
    throw std::invalid_argument("MultiResBitmap component size must be a power of two");
  }
  words_.assign(static_cast<size_t>(components_) * comp_words_, 0);
  bits_set_.assign(components_, 0);
}

double MultiResBitmap::EstimateFrom(const uint32_t* bits_set) const {
  const uint32_t c = components_;
  // First component whose occupancy is trustworthy.
  const uint32_t setmax =
      static_cast<uint32_t>(kSetMaxFraction * static_cast<double>(component_bits_));
  uint32_t base = 0;
  while (base + 1 < c && bits_set[base] > setmax) {
    ++base;
  }
  double estimate_sum = 0.0;
  double probability_sum = 0.0;
  for (uint32_t i = base; i < c; ++i) {
    estimate_sum += LinearCount(component_bits_, bits_set[i]);
    const double p = (i < c - 1) ? std::ldexp(1.0, -static_cast<int>(i + 1))
                                 : std::ldexp(1.0, -static_cast<int>(c - 1));
    probability_sum += p;
  }
  if (probability_sum <= 0.0) {
    return 0.0;
  }
  return estimate_sum / probability_sum;
}

double MultiResBitmap::Estimate() const { return EstimateFrom(bits_set_.data()); }

void MultiResBitmap::Clear() {
  for (auto& w : words_) {
    w = 0;
  }
  for (auto& s : bits_set_) {
    s = 0;
  }
}

void MultiResBitmap::Union(const MultiResBitmap& other) {
  if (other.components_ != components_ || other.component_bits_ != component_bits_) {
    throw std::invalid_argument("MultiResBitmap::Union shape mismatch");
  }
  for (uint32_t comp = 0; comp < components_; ++comp) {
    uint32_t set = 0;
    const size_t off = static_cast<size_t>(comp) * comp_words_;
    for (uint32_t w = 0; w < comp_words_; ++w) {
      words_[off + w] |= other.words_[off + w];
      set += static_cast<uint32_t>(std::popcount(words_[off + w]));
    }
    bits_set_[comp] = set;
  }
}

double MultiResBitmap::CountNew(const MultiResBitmap& other) const {
  if (other.components_ != components_ || other.component_bits_ != component_bits_) {
    throw std::invalid_argument("MultiResBitmap::CountNew shape mismatch");
  }
  // Occupancy of (this | other) per component, without building the merged
  // bitmap: CountNew runs once per aggregate per batch and used to be the
  // only allocating operation left in the extraction path.
  uint32_t merged[kMaxComponents];
  for (uint32_t comp = 0; comp < components_; ++comp) {
    uint32_t set = 0;
    const size_t off = static_cast<size_t>(comp) * comp_words_;
    for (uint32_t w = 0; w < comp_words_; ++w) {
      set += static_cast<uint32_t>(std::popcount(words_[off + w] | other.words_[off + w]));
    }
    merged[comp] = set;
  }
  const double before = EstimateFrom(bits_set_.data());
  const double after = EstimateFrom(merged);
  return after > before ? after - before : 0.0;
}

}  // namespace shedmon::sketch
