#include "src/sketch/bitmap.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace shedmon::sketch {

DirectBitmap::DirectBitmap(uint32_t bits) : size_bits_(bits), mask_(bits - 1) {
  if (bits == 0 || (bits & (bits - 1)) != 0) {
    throw std::invalid_argument("DirectBitmap size must be a power of two");
  }
  words_.resize((bits + 63) / 64, 0);
}

void DirectBitmap::Insert(uint64_t hash) {
  const uint32_t bit = static_cast<uint32_t>(hash) & mask_;
  uint64_t& word = words_[bit >> 6];
  const uint64_t m = 1ULL << (bit & 63);
  if ((word & m) == 0) {
    word |= m;
    ++bits_set_;
  }
}

bool DirectBitmap::Test(uint64_t hash) const {
  const uint32_t bit = static_cast<uint32_t>(hash) & mask_;
  return (words_[bit >> 6] & (1ULL << (bit & 63))) != 0;
}

double DirectBitmap::Estimate() const {
  const uint32_t zeros = size_bits_ - bits_set_;
  if (zeros == 0) {
    // Saturated; return the (large) estimate for one remaining zero bit.
    return static_cast<double>(size_bits_) * std::log(static_cast<double>(size_bits_));
  }
  return -static_cast<double>(size_bits_) *
         std::log(static_cast<double>(zeros) / static_cast<double>(size_bits_));
}

void DirectBitmap::Clear() {
  for (auto& w : words_) {
    w = 0;
  }
  bits_set_ = 0;
}

void DirectBitmap::Union(const DirectBitmap& other) {
  if (other.size_bits_ != size_bits_) {
    throw std::invalid_argument("DirectBitmap::Union size mismatch");
  }
  bits_set_ = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
    bits_set_ += static_cast<uint32_t>(std::popcount(words_[i]));
  }
}

MultiResBitmap::MultiResBitmap(uint32_t components, uint32_t component_bits) {
  if (components < 2 || components > 30) {
    throw std::invalid_argument("MultiResBitmap components out of range");
  }
  comps_.reserve(components);
  for (uint32_t i = 0; i < components; ++i) {
    comps_.emplace_back(component_bits);
  }
}

uint32_t MultiResBitmap::ComponentFor(uint64_t hash) const {
  // Leading ones of the top bits give a geometric component choice:
  // P(component i) = 2^-(i+1), capped at the last component.
  const uint32_t c = static_cast<uint32_t>(comps_.size());
  const int ones = std::countl_one(hash);
  const uint32_t comp = static_cast<uint32_t>(ones);
  return comp < c - 1 ? comp : c - 1;
}

void MultiResBitmap::Insert(uint64_t hash) {
  const uint32_t comp = ComponentFor(hash);
  // Use low bits for the position inside the component; they are independent
  // of the leading-ones pattern for any reasonable component count.
  comps_[comp].Insert(hash);
}

double MultiResBitmap::Estimate() const {
  const uint32_t c = static_cast<uint32_t>(comps_.size());
  // First component whose occupancy is trustworthy.
  uint32_t base = 0;
  while (base + 1 < c &&
         comps_[base].bits_set() >
             static_cast<uint32_t>(kSetMaxFraction *
                                   static_cast<double>(comps_[base].size_bits()))) {
    ++base;
  }
  double estimate_sum = 0.0;
  double probability_sum = 0.0;
  for (uint32_t i = base; i < c; ++i) {
    estimate_sum += comps_[i].Estimate();
    const double p = (i < c - 1) ? std::ldexp(1.0, -static_cast<int>(i + 1))
                                 : std::ldexp(1.0, -static_cast<int>(c - 1));
    probability_sum += p;
  }
  if (probability_sum <= 0.0) {
    return 0.0;
  }
  return estimate_sum / probability_sum;
}

void MultiResBitmap::Clear() {
  for (auto& comp : comps_) {
    comp.Clear();
  }
}

void MultiResBitmap::Union(const MultiResBitmap& other) {
  if (other.comps_.size() != comps_.size()) {
    throw std::invalid_argument("MultiResBitmap::Union shape mismatch");
  }
  for (size_t i = 0; i < comps_.size(); ++i) {
    comps_[i].Union(other.comps_[i]);
  }
}

double MultiResBitmap::CountNew(const MultiResBitmap& other) const {
  MultiResBitmap merged = *this;
  merged.Union(other);
  const double before = Estimate();
  const double after = merged.Estimate();
  return after > before ? after - before : 0.0;
}

}  // namespace shedmon::sketch
