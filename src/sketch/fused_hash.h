#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sketch/h3.h"

namespace shedmon::sketch {

// Evaluates several H3 hash functions over (sub-keys of) one short key in a
// single table pass, exploiting H3's linearity: the hash of a key is the XOR
// of one seeded table word per key byte, so the contributions of every
// sub-hash that reads a given key byte can be precomputed side by side. One
// pass over the key then yields all hash values at once, with no per-sub-hash
// key materialization and perfectly sequential table reads.
//
// Each sub-hash is defined by an H3 seed and the list of key-byte positions
// that form its sub-key (in sub-key order). The result is bit-identical to
// constructing H3Hash(seed) and hashing the extracted sub-key bytes, which is
// exactly the per-aggregate path the feature extractor used to take (§3.2.1).
class FusedTupleHasher {
 public:
  struct SubHash {
    uint64_t seed = 0;
    // Positions into the fused key, in sub-key byte order. A sub-key over all
    // key bytes in order reproduces H3Hash(seed).Hash(key, key_len) exactly.
    std::vector<uint8_t> key_bytes;
  };

  // `key_len` is the length every hashed key must have, at most
  // H3Hash::kMaxKeyBytes. Throws std::invalid_argument on an empty sub-hash
  // list, an oversized key, or a sub-key position outside the key.
  FusedTupleHasher(size_t key_len, const std::vector<SubHash>& subs);

  size_t key_len() const { return key_len_; }
  size_t num_hashes() const { return num_hashes_; }

  // Writes num_hashes() values to `out`; `key` must hold key_len() bytes.
  void HashAll(const uint8_t* key, uint64_t* out) const {
    const size_t n = num_hashes_;
    uint64_t acc[kMaxFusedHashes] = {};
    for (size_t i = 0; i < key_len_; ++i) {
      const uint64_t* row = RowFor(i, key[i]);
      for (size_t k = 0; k < n; ++k) {
        acc[k] ^= row[k];
      }
    }
    for (size_t k = 0; k < n; ++k) {
      out[k] = acc[k];
    }
  }

  // Fixed-arity fast path: N must equal num_hashes(). The compile-time trip
  // count lets the compiler unroll and vectorize the XOR accumulation, which
  // is what makes the per-packet cost of the 10-aggregate extraction small
  // and deterministic.
  template <size_t N>
  void HashAll(const uint8_t* key, std::array<uint64_t, N>& out) const {
    assert(N == num_hashes_);
    HashAll(key, out.data());
  }

  // Fully static fast path: both the key length and the hash count are
  // compile-time constants (KeyLen must equal key_len()), so the whole
  // accumulation is a branch-free straight line of vectorizable XORs. This is
  // the per-packet path of the feature extractor (KeyLen 13, N 10).
  template <size_t KeyLen, size_t N>
  void HashAllFixed(const uint8_t* key, std::array<uint64_t, N>& out) const {
    assert(KeyLen == key_len_ && N == num_hashes_);
    std::array<uint64_t, N> acc{};
    for (size_t i = 0; i < KeyLen; ++i) {
      const uint64_t* row = RowFor(i, key[i]);
      for (size_t k = 0; k < N; ++k) {
        acc[k] ^= row[k];
      }
    }
    out = acc;
  }

  // Single-sub-hash conveniences (num_hashes() == 1), the FlowSampler path.
  uint64_t Hash1(const uint8_t* key) const {
    assert(num_hashes_ == 1);
    uint64_t h = 0;
    for (size_t i = 0; i < key_len_; ++i) {
      h ^= *RowFor(i, key[i]);
    }
    return h;
  }

  template <size_t KeyLen>
  uint64_t Hash1Fixed(const uint8_t* key) const {
    assert(KeyLen == key_len_ && num_hashes_ == 1);
    uint64_t h = 0;
    for (size_t i = 0; i < KeyLen; ++i) {
      h ^= fused_[i * 256 + key[i]];
    }
    return h;
  }

  // Hash mapped to [0, 1); bit-identical to H3Hash::HashUnit.
  double HashUnit1(const uint8_t* key) const {
    return static_cast<double>(Hash1(key) >> 11) * 0x1.0p-53;
  }

  template <size_t KeyLen>
  double HashUnit1Fixed(const uint8_t* key) const {
    return static_cast<double>(Hash1Fixed<KeyLen>(key) >> 11) * 0x1.0p-53;
  }

  static constexpr size_t kMaxFusedHashes = 16;

 private:
  const uint64_t* RowFor(size_t pos, uint8_t value) const {
    return fused_.data() + (pos * 256 + value) * num_hashes_;
  }

  size_t key_len_;
  size_t num_hashes_;
  // [key_len][256][num_hashes]: XOR contribution of key byte `pos` having
  // value `v` to each sub-hash (zero for sub-hashes that skip that byte).
  std::vector<uint64_t> fused_;
};

}  // namespace shedmon::sketch
