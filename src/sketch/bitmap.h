#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace shedmon::sketch {

// Plain bitmap with the linear-counting cardinality estimator
// (Whang et al.): n_hat = -b * ln(z / b) with z the number of zero bits.
class DirectBitmap {
 public:
  explicit DirectBitmap(uint32_t bits);

  // Sets the bit addressed by the low log2(bits) hash bits. Inline: this is
  // per-packet work in queries and must stay a handful of instructions.
  void Insert(uint64_t hash) {
    const uint32_t bit = static_cast<uint32_t>(hash) & mask_;
    uint64_t& word = words_[bit >> 6];
    const uint64_t m = 1ULL << (bit & 63);
    if ((word & m) == 0) {
      word |= m;
      ++bits_set_;
    }
  }

  bool Test(uint64_t hash) const {
    const uint32_t bit = static_cast<uint32_t>(hash) & mask_;
    return (words_[bit >> 6] & (1ULL << (bit & 63))) != 0;
  }

  double Estimate() const;
  uint32_t bits_set() const { return bits_set_; }
  uint32_t size_bits() const { return size_bits_; }
  bool Saturated() const { return bits_set_ == size_bits_; }

  void Clear();
  // OR-merge; both bitmaps must have the same size.
  void Union(const DirectBitmap& other);

 private:
  uint32_t size_bits_;
  uint32_t mask_;
  uint32_t bits_set_ = 0;
  std::vector<uint64_t> words_;
};

// Multi-resolution bitmap after Estan, Varghese and Fisk, the counting
// structure the paper uses for all per-aggregate feature counters (§3.2.1).
// A key's hash selects component i with probability 2^-(i+1) (the last
// component absorbs the tail with probability 2^-(c-1)); within a component
// the key sets one of b bits. Cardinality is estimated from the first
// unsaturated component onward: the components partition the key space, so
// the summed linear-counting estimates divided by the summed sampling
// probabilities give an unbiased estimate with bounded memory.
//
// All components live in one flat word array (rather than one heap-allocated
// bitmap per component) so the per-packet Insert is a single indexed access
// with no pointer chasing, and Union/CountNew are linear sweeps.
class MultiResBitmap {
 public:
  static constexpr uint32_t kMaxComponents = 30;

  // `component_bits` must be a power of two. Defaults cover ~1% error up to
  // millions of distinct keys in under 1 KB, matching the paper's sizing.
  explicit MultiResBitmap(uint32_t components = 12, uint32_t component_bits = 512);

  // Per-packet hot path: component choice from the leading-one run of the
  // hash, bit position from the low bits (independent for any reasonable
  // component count).
  void Insert(uint64_t hash) {
    const uint32_t comp = ComponentFor(hash);
    const uint32_t bit = static_cast<uint32_t>(hash) & mask_;
    uint64_t& word = words_[comp * comp_words_ + (bit >> 6)];
    const uint64_t m = 1ULL << (bit & 63);
    if ((word & m) == 0) {
      word |= m;
      ++bits_set_[comp];
    }
  }

  double Estimate() const;

  void Clear();
  void Union(const MultiResBitmap& other);

  // Estimate of |this ∪ other| - |this|: how many keys of `other` are new
  // with respect to this bitmap. Implemented with the bitwise-OR trick of
  // §3.2.1 (the batch bitmap is OR-ed into the interval bitmap), computed on
  // the fly without materializing the merged bitmap.
  double CountNew(const MultiResBitmap& other) const;

  uint32_t components() const { return components_; }

 private:
  // Occupancy threshold above which a component is considered saturated; the
  // EVF paper's "setmax" knob.
  static constexpr double kSetMaxFraction = 0.93;

  uint32_t ComponentFor(uint64_t hash) const {
    // Leading ones of the top bits give a geometric component choice:
    // P(component i) = 2^-(i+1), capped at the last component.
    const uint32_t comp = static_cast<uint32_t>(std::countl_one(hash));
    return comp < components_ - 1 ? comp : components_ - 1;
  }

  // The estimator over an arbitrary per-component occupancy vector; shared
  // by Estimate() (own occupancy) and CountNew() (merged occupancy).
  double EstimateFrom(const uint32_t* bits_set) const;

  uint32_t components_;
  uint32_t component_bits_;
  uint32_t comp_words_;  // 64-bit words per component
  uint32_t mask_;
  std::vector<uint64_t> words_;     // components_ * comp_words_
  std::vector<uint32_t> bits_set_;  // per-component occupancy
};

}  // namespace shedmon::sketch
