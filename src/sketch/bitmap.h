#pragma once

#include <cstdint>
#include <vector>

namespace shedmon::sketch {

// Plain bitmap with the linear-counting cardinality estimator
// (Whang et al.): n_hat = -b * ln(z / b) with z the number of zero bits.
class DirectBitmap {
 public:
  explicit DirectBitmap(uint32_t bits);

  // Sets the bit addressed by the low log2(bits) hash bits.
  void Insert(uint64_t hash);
  bool Test(uint64_t hash) const;

  double Estimate() const;
  uint32_t bits_set() const { return bits_set_; }
  uint32_t size_bits() const { return size_bits_; }
  bool Saturated() const { return bits_set_ == size_bits_; }

  void Clear();
  // OR-merge; both bitmaps must have the same size.
  void Union(const DirectBitmap& other);

 private:
  uint32_t size_bits_;
  uint32_t mask_;
  uint32_t bits_set_ = 0;
  std::vector<uint64_t> words_;
};

// Multi-resolution bitmap after Estan, Varghese and Fisk, the counting
// structure the paper uses for all per-aggregate feature counters (§3.2.1).
// A key's hash selects component i with probability 2^-(i+1) (the last
// component absorbs the tail with probability 2^-(c-1)); within a component
// the key sets one of b bits. Cardinality is estimated from the first
// unsaturated component onward: the components partition the key space, so
// the summed linear-counting estimates divided by the summed sampling
// probabilities give an unbiased estimate with bounded memory.
class MultiResBitmap {
 public:
  // `component_bits` must be a power of two. Defaults cover ~1% error up to
  // millions of distinct keys in under 1 KB, matching the paper's sizing.
  explicit MultiResBitmap(uint32_t components = 12, uint32_t component_bits = 512);

  void Insert(uint64_t hash);
  double Estimate() const;

  void Clear();
  void Union(const MultiResBitmap& other);

  // Estimate of |this ∪ other| - |this|: how many keys of `other` are new
  // with respect to this bitmap. Implemented with the bitwise-OR trick of
  // §3.2.1 (the batch bitmap is OR-ed into the interval bitmap).
  double CountNew(const MultiResBitmap& other) const;

  uint32_t components() const { return static_cast<uint32_t>(comps_.size()); }

 private:
  // Occupancy threshold above which a component is considered saturated; the
  // EVF paper's "setmax" knob.
  static constexpr double kSetMaxFraction = 0.93;

  uint32_t ComponentFor(uint64_t hash) const;

  std::vector<DirectBitmap> comps_;
};

}  // namespace shedmon::sketch
