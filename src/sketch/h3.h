#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace shedmon::sketch {

// H3 universal hash family over byte strings (tabulation form): each input
// byte position selects a random 64-bit word from a seeded table and the
// words are XORed together. The paper draws a fresh H3 function per query and
// measurement interval for flowwise sampling (§4.2) so that flow selection is
// uniform and cannot be predicted or evaded.
class H3Hash {
 public:
  static constexpr size_t kMaxKeyBytes = 16;

  explicit H3Hash(uint64_t seed);

  uint64_t Hash(const uint8_t* key, size_t len) const;

  template <size_t N>
  uint64_t Hash(const std::array<uint8_t, N>& key) const {
    static_assert(N <= kMaxKeyBytes);
    return Hash(key.data(), N);
  }

  // Hash mapped to [0, 1), for threshold-based sampling decisions.
  double HashUnit(const uint8_t* key, size_t len) const;

  // The seeded table word XOR-ed in when key byte `pos` has value `value`.
  // Exposed so FusedTupleHasher can fold several H3 functions into one
  // precomputed table while staying bit-identical to this implementation.
  uint64_t TableWord(size_t pos, uint8_t value) const { return table_[pos][value]; }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  std::array<std::array<uint64_t, 256>, kMaxKeyBytes> table_;
};

}  // namespace shedmon::sketch
