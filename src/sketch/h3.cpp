#include "src/sketch/h3.h"

#include "src/util/rng.h"

namespace shedmon::sketch {

H3Hash::H3Hash(uint64_t seed) : seed_(seed) {
  uint64_t state = seed ^ 0x5851f42d4c957f2dULL;
  for (auto& row : table_) {
    for (auto& word : row) {
      word = util::SplitMix64(state);
    }
  }
}

uint64_t H3Hash::Hash(const uint8_t* key, size_t len) const {
  uint64_t h = 0;
  const size_t n = len < kMaxKeyBytes ? len : kMaxKeyBytes;
  for (size_t i = 0; i < n; ++i) {
    h ^= table_[i][key[i]];
  }
  return h;
}

double H3Hash::HashUnit(const uint8_t* key, size_t len) const {
  return static_cast<double>(Hash(key, len) >> 11) * 0x1.0p-53;
}

}  // namespace shedmon::sketch
