#include "src/sketch/fused_hash.h"

#include <stdexcept>

namespace shedmon::sketch {

FusedTupleHasher::FusedTupleHasher(size_t key_len, const std::vector<SubHash>& subs)
    : key_len_(key_len), num_hashes_(subs.size()) {
  if (key_len == 0 || key_len > H3Hash::kMaxKeyBytes) {
    throw std::invalid_argument("FusedTupleHasher key length out of range");
  }
  if (subs.empty() || subs.size() > kMaxFusedHashes) {
    throw std::invalid_argument("FusedTupleHasher sub-hash count out of range");
  }
  fused_.assign(key_len_ * 256 * num_hashes_, 0);
  for (size_t s = 0; s < subs.size(); ++s) {
    // Materialize the real H3 function so the folded table is bit-identical
    // to hashing the extracted sub-key with H3Hash(seed).
    const H3Hash h3(subs[s].seed);
    const auto& positions = subs[s].key_bytes;
    if (positions.empty() || positions.size() > H3Hash::kMaxKeyBytes) {
      throw std::invalid_argument("FusedTupleHasher sub-key length out of range");
    }
    for (size_t j = 0; j < positions.size(); ++j) {
      const size_t pos = positions[j];
      if (pos >= key_len_) {
        throw std::invalid_argument("FusedTupleHasher sub-key position out of range");
      }
      uint64_t* col = fused_.data() + pos * 256 * num_hashes_ + s;
      for (size_t v = 0; v < 256; ++v) {
        // XOR (not assign) so a position listed twice in a sub-key behaves
        // exactly like the duplicated byte in the materialized sub-key.
        col[v * num_hashes_] ^= h3.TableWord(j, static_cast<uint8_t>(v));
      }
    }
  }
}

}  // namespace shedmon::sketch
