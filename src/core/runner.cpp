#include "src/core/runner.h"

#include <algorithm>

#include "src/features/extractor.h"
#include "src/query/queries.h"
#include "src/util/stats.h"

// RunSystemOnTrace lives in src/api/run.cpp: it is a thin wrapper over the
// api::Pipeline facade, which sits above core in the dependency DAG.

namespace shedmon::core {

double DefaultMinRate(std::string_view query_name) {
  if (query_name == "application") {
    return 0.03;
  }
  if (query_name == "autofocus") {
    return 0.69;
  }
  if (query_name == "counter") {
    return 0.03;
  }
  if (query_name == "flows") {
    return 0.05;
  }
  if (query_name == "high-watermark") {
    return 0.15;
  }
  if (query_name == "pattern-search") {
    return 0.10;
  }
  if (query_name == "super-sources") {
    return 0.93;
  }
  if (query_name == "top-k") {
    return 0.57;
  }
  if (query_name == "trace") {
    return 0.10;
  }
  if (query_name == "p2p-detector") {
    return 0.10;
  }
  return 0.0;
}

query::AccuracyRow RunResult::Accuracy(size_t i) const {
  return query::SummarizeAccuracy(system->query(i), *reference[i]);
}

double RunResult::MeanAccuracy(size_t i) const {
  return std::clamp(1.0 - Accuracy(i).mean_error, 0.0, 1.0);
}

double RunResult::AverageAccuracy() const {
  if (system->num_queries() == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (size_t i = 0; i < system->num_queries(); ++i) {
    sum += MeanAccuracy(i);
  }
  return sum / static_cast<double>(system->num_queries());
}

double RunResult::MinimumAccuracy() const {
  double min = 1.0;
  for (size_t i = 0; i < system->num_queries(); ++i) {
    min = std::min(min, MeanAccuracy(i));
  }
  return min;
}

double MeasureMeanDemand(const std::vector<std::string>& names, const trace::Trace& trace,
                         OracleKind oracle_kind, uint64_t bin_us) {
  auto oracle = MakeOracle(oracle_kind);
  std::vector<std::unique_ptr<query::Query>> queries;
  for (const auto& name : names) {
    queries.push_back(query::MakeQuery(name));
  }

  // The demand of a no-shedding bin also includes the prediction subsystem:
  // one shared extraction plus a per-query re-extraction and model fit
  // (Alg. 1). Measure one real extraction and scale it.
  features::FeatureExtractor extractor;

  trace::Batcher batcher(trace, bin_us);
  trace::Batch batch;
  util::RunningStats per_bin;
  std::vector<size_t> bins(queries.size(), 0);
  while (batcher.Next(batch)) {
    double bin_cycles = 0.0;
    WorkHint extract_hint{nullptr, &batch.packets, 0.0};
    const double extract = oracle->Run(WorkKind::kFeatureExtraction, extract_hint,
                                       [&] { (void)extractor.Extract(batch.packets); });
    bin_cycles += extract * static_cast<double>(1 + queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
      WorkHint hint{queries[q].get(), &batch.packets, 0.0};
      bin_cycles +=
          oracle->Run(WorkKind::kQuery, hint, [&] { queries[q]->ProcessBatch(in); });
      WorkHint fit_hint{queries[q].get(), nullptr, 60.0};
      bin_cycles += oracle->Run(WorkKind::kFcbfMlr, fit_hint, [] {});
      if (++bins[q] >= queries[q]->interval_bins()) {
        queries[q]->EndInterval();
        bins[q] = 0;
      }
    }
    per_bin.Add(bin_cycles);
  }
  return per_bin.mean();
}

}  // namespace shedmon::core
