#include "src/core/system.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "src/obs/trace.h"
#include "src/util/cycle_clock.h"

namespace shedmon::core {

namespace {
constexpr double kEps = 1e-9;
// Above this rate the batch is considered unsampled and the history can be
// updated with full-cost observations on the custom-shedding path.
constexpr double kNearFullRate = 0.95;
}  // namespace

MonitoringSystem::MonitoringSystem(const SystemConfig& config,
                                   std::unique_ptr<CostOracle> oracle)
    : config_(config),
      registry_(std::make_unique<obs::MetricsRegistry>()),
      oracle_(std::move(oracle)),
      pool_(config.num_threads > 0 ? std::make_unique<exec::ThreadPool>(config.num_threads)
                                   : nullptr),
      executor_(pool_.get()),
      strategy_(shed::MakeStrategy(config.strategy)),
      sys_extractor_(config.extractor),
      rng_(config.seed),
      error_ewma_(config.ewma_alpha, 0.0),
      ls_ewma_(config.ewma_alpha, 0.0),
      ps_ewma_(config.ewma_alpha, 0.0) {
  capacity_ = config_.cycles_per_bin > 0.0 ? config_.cycles_per_bin
                                           : oracle_->DefaultBinBudget(config_.time_bin_us);
  ssthresh_ = config_.buffer_bins * capacity_;  // "initialized to infinity" (§4.1)
  InitInstruments();
}

void MonitoringSystem::InitInstruments() {
  obs::MetricsRegistry& reg = *registry_;
  ins_.bins_total = &reg.GetCounter("shedmon_bins_total", {}, "Time bins processed");
  ins_.packets_total =
      &reg.GetCounter("shedmon_packets_total", {}, "Packets offered to the system");
  ins_.packets_dropped_total = &reg.GetCounter(
      "shedmon_packets_dropped_total", {}, "Packets lost to capture buffer overflow (uncontrolled)");
  ins_.packets_shed_total = &reg.GetCounter(
      "shedmon_packets_shed_total", {}, "Packets shed deliberately via sampling (query-averaged)");
  ins_.batches_dropped_total =
      &reg.GetCounter("shedmon_batches_dropped_total", {}, "Whole batches lost to a full buffer");
  ins_.overload_bins_total = &reg.GetCounter("shedmon_overload_bins_total", {},
                                             "Bins where predicted demand exceeded budget");
  ins_.capacity_cycles = &reg.GetGauge("shedmon_capacity_cycles", {}, "Cycle budget per time bin");
  ins_.backlog_cycles =
      &reg.GetGauge("shedmon_backlog_cycles", {}, "Capture buffer occupancy after the last bin");
  ins_.rtthresh_cycles =
      &reg.GetGauge("shedmon_rtthresh_cycles", {}, "Buffer-discovery slack threshold (section 4.1)");
  ins_.avail_cycles =
      &reg.GetGauge("shedmon_avail_cycles", {}, "Cycles available to queries in the last bin");
  ins_.utilization =
      &reg.GetGauge("shedmon_utilization", {}, "Cycles spent over capacity in the last bin");
  ins_.prediction_error_ewma = &reg.GetGauge("shedmon_prediction_error_ewma", {},
                                             "Smoothed relative prediction error (Alg. 1)");
  ins_.bin_utilization =
      &reg.GetHistogram("shedmon_bin_utilization", {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0},
                        {}, "Per-bin cycles spent over capacity");
  ins_.prediction_error_ratio = &reg.GetHistogram(
      "shedmon_prediction_error_ratio", {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}, {},
      "Per-bin |predicted - actual| / actual query cycles");
  for (uint8_t rung = 1; rung <= 3; ++rung) {
    ins_.rt_degraded_bins[rung] = &reg.GetCounter(
        "shedmon_rt_degraded_bins_total", {{"rung", rt::DegradeActionName(rung)}},
        "Bins processed under a degradation directive, by ladder rung");
  }
  ins_.rt_dropped_bins = &reg.GetCounter("shedmon_rt_dropped_bins_total", {},
                                         "Bins dropped whole by the deadline ladder");
  ins_.rt_truncated_queries = &reg.GetCounter(
      "shedmon_rt_truncated_queries_total", {},
      "Query executions skipped by the truncation rung of the deadline ladder");
  ins_.capacity_cycles->Set(capacity_);

  if (pool_ != nullptr) {
    exec::PoolMetricsHooks hooks;
    hooks.queue_depth =
        &reg.GetGauge("shedmon_exec_queue_depth", {}, "Tasks waiting in the pool queue");
    hooks.tasks_total =
        &reg.GetCounter("shedmon_exec_tasks_total", {}, "Tasks executed by pool workers");
    hooks.task_seconds =
        &reg.GetHistogram("shedmon_exec_task_seconds", {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0}, {},
                          "Per-task wall time in seconds");
    pool_->SetMetrics(hooks);
    executor_.SetMetrics(
        &reg.GetHistogram("shedmon_exec_wave_seconds", {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0}, {},
                          "Per-bin shard-wave fan-out wall time in seconds"));
  }
}

void MonitoringSystem::UpdateBinInstruments(const BinLog& log) {
  ins_.bins_total->Increment();
  ins_.packets_total->Add(static_cast<double>(log.packets_in));
  ins_.packets_dropped_total->Add(static_cast<double>(log.packets_dropped));
  ins_.packets_shed_total->Add(log.packets_unsampled);
  if (log.batch_dropped) {
    ins_.batches_dropped_total->Increment();
  }
  if (log.overload) {
    ins_.overload_bins_total->Increment();
  }
  ins_.capacity_cycles->Set(capacity_);
  ins_.backlog_cycles->Set(backlog_cycles_);
  ins_.rtthresh_cycles->Set(rtthresh_);
  ins_.avail_cycles->Set(log.avail_cycles);
  const double spent = log.query_cycles + log.ps_cycles + log.ls_cycles + log.como_cycles;
  const double util = capacity_ > kEps ? spent / capacity_ : 0.0;
  ins_.utilization->Set(util);
  ins_.bin_utilization->Observe(util);
  ins_.prediction_error_ewma->Set(error_ewma_.value());
  if (log.query_cycles > kEps && log.predicted_cycles > kEps) {
    ins_.prediction_error_ratio->Observe(
        std::abs(log.predicted_cycles - log.query_cycles) / log.query_cycles);
  }
  for (size_t q = 0; q < queries_.size(); ++q) {
    QueryRuntime& qr = *queries_[q];
    if (qr.m_rate == nullptr) {
      continue;
    }
    qr.m_rate->Set(q < log.rate.size() ? log.rate[q] : 0.0);
    qr.m_cycles->Add(q < log.per_query_cycles.size() ? log.per_query_cycles[q] : 0.0);
    if (q < log.disabled.size() && log.disabled[q]) {
      qr.m_disabled_bins->Increment();
    }
    qr.m_times_policed->Set(static_cast<double>(qr.enforcement.GetState().times_policed));
  }
}

MonitoringSystem::~MonitoringSystem() = default;

query::Query& MonitoringSystem::AddQuery(std::unique_ptr<query::Query> query,
                                         const QueryConfig& config) {
  auto runtime = std::make_unique<QueryRuntime>(QueryRuntime{
      std::move(query), config,
      predict::PredictionEngine(config_.predictor, config_.extractor),
      shed::PacketSampler(rng_.NextU64()), shed::FlowSampler(rng_.NextU64()),
      shed::EnforcementPolicy(config_.enforcement), 0, 0.0, {}});
  queries_.push_back(std::move(runtime));
  // Baseline the oracle's per-query bookkeeping: a no-op for fresh
  // instances, and what keeps a re-registered veteran instance charged only
  // for its new work.
  oracle_->OnQueryAdded(queries_.back()->query.get());
  QueryRuntime& qr = *queries_.back();
  const obs::LabelSet labels{{"query", qr.query->name()}};
  qr.m_rate = &registry_->GetGauge("shedmon_query_sampling_rate", labels,
                                   "Sampling rate granted in the last bin");
  qr.m_cycles =
      &registry_->GetCounter("shedmon_query_cycles_total", labels, "Measured query cycles");
  qr.m_disabled_bins = &registry_->GetCounter("shedmon_query_disabled_bins_total", labels,
                                              "Bins where the query was disabled");
  qr.m_times_policed = &registry_->GetGauge("shedmon_query_times_policed", labels,
                                            "Enforcement policing actions against the query");
  return *qr.query;
}

std::unique_ptr<query::Query> MonitoringSystem::RemoveQuery(size_t index) {
  if (index >= queries_.size()) {
    throw std::out_of_range("MonitoringSystem::RemoveQuery: no query at this index");
  }
  std::unique_ptr<query::Query> query = std::move(queries_[index]->query);
  queries_.erase(queries_.begin() + static_cast<std::ptrdiff_t>(index));
  // Drop the oracle's baseline for this instance so a future allocation
  // reusing the address can never inherit a stale work counter.
  oracle_->OnQueryRemoved(query.get());
  return query;
}

void MonitoringSystem::SetFaultInjector(rt::FaultInjector* injector) {
  injector_ = injector;
  executor_.SetFaultInjector(injector);
}

void MonitoringSystem::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  executor_.SetTracer(tracer);
}

void MonitoringSystem::MarkDeadline(bool missed, double overrun_us) {
  if (log_.empty()) {
    return;
  }
  log_.back().deadline_missed = missed;
  log_.back().deadline_overrun_us = overrun_us;
}

// Accounts a bin whose batch is lost in its entirety before any query work:
// the capture-buffer overflow of Fig. 4.2 and the kDropBin rung of the
// deadline ladder share this path. The bin still drains capacity.
void MonitoringSystem::RecordDroppedBin(const trace::Batch& batch, BinLog& log) {
  log.batch_dropped = true;
  log.packets_dropped = batch.size();
  total_dropped_ += batch.size();
  backlog_cycles_ = std::max(0.0, backlog_cycles_ - capacity_);
  log.backlog_cycles = backlog_cycles_;
  log.rtthresh = rtthresh_;
  TickIntervals();
  UpdateBinInstruments(log);
  log_.push_back(std::move(log));
}

void MonitoringSystem::ProcessBatch(const trace::Batch& batch) {
  if (injector_ != nullptr) {
    injector_->OnBinStart(log_.size());
  }
  executor_.SetBinIndex(log_.size());
  executor_.SetTraceStage(obs::Stage::kQuery);  // wave-1 default; shard waves override

  BinLog log;
  log.start_us = batch.start_us;
  log.packets_in = batch.size();
  log.rate.assign(queries_.size(), 0.0);
  log.per_query_cycles.assign(queries_.size(), 0.0);
  log.disabled.assign(queries_.size(), false);
  log.como_cycles = config_.como_overhead_fraction * capacity_;
  log.degradation = static_cast<uint8_t>(degrade_.action);
  if (degrade_.action != rt::DegradeAction::kNone) {
    ins_.rt_degraded_bins[log.degradation]->Increment();
  }
  total_packets_ += batch.size();

  const double buffer_cap = config_.buffer_bins * capacity_;

  // Capture-buffer emulation: when the backlog has filled the buffer, the
  // incoming batch is lost in its entirety before any processing — these are
  // the uncontrolled "DAG drops" of Fig. 4.2.
  if (backlog_cycles_ >= buffer_cap - kEps) {
    RecordDroppedBin(batch, log);
    return;
  }

  // Final rung of the deadline ladder: processing keeps missing its
  // real-time budget even truncated, so sacrifice the whole bin to let the
  // system catch up — a controlled, accounted version of what a live probe
  // would otherwise suffer as capture-buffer overflow.
  if (degrade_.action == rt::DegradeAction::kDropBin) {
    ins_.rt_dropped_bins->Increment();
    RecordDroppedBin(batch, log);
    return;
  }

  switch (config_.shedder) {
    case ShedderKind::kPredictive:
      RunPredictive(batch, log);
      break;
    case ShedderKind::kReactive:
      RunReactive(batch, log);
      break;
    case ShedderKind::kNoShed:
      RunNoShed(batch, log);
      break;
  }

  const double spent =
      log.query_cycles + log.ps_cycles + log.ls_cycles + log.como_cycles;
  UpdateBufferAndThreshold(spent);
  log.backlog_cycles = backlog_cycles_;
  log.rtthresh = rtthresh_;

  TickIntervals();
  UpdateBinInstruments(log);
  log_.push_back(std::move(log));
}

void MonitoringSystem::ApplyDegradation(std::vector<double>& rate,
                                        std::vector<bool>& disabled) {
  if (degrade_.action == rt::DegradeAction::kNone) {
    return;
  }
  if (degrade_.rate_scale < 1.0) {
    for (size_t q = 0; q < rate.size(); ++q) {
      if (disabled[q]) {
        continue;
      }
      // Scale the grant but keep the user's declared minimum (m_q is a
      // contract, §5.2) as long as it was being honoured: if the floors
      // alone still bust the wall-clock budget, the ladder's next rungs —
      // truncation and whole-bin drops — break the contract explicitly and
      // observably instead of this rung eroding it silently.
      const double floor = std::min(rate[q], queries_[q]->config.min_sampling_rate);
      rate[q] = std::max(rate[q] * degrade_.rate_scale, floor);
    }
  }
  int left = degrade_.truncate_queries;
  for (size_t q = rate.size(); q-- > 0 && left > 0;) {
    if (disabled[q] || rate[q] <= kEps) {
      continue;
    }
    rate[q] = 0.0;
    disabled[q] = true;
    --left;
    ins_.rt_truncated_queries->Increment();
  }
}

uint64_t MonitoringSystem::PlanOracleCalls(double rate, bool update_history,
                                           bool has_shared_features) {
  rate = std::clamp(rate, 0.0, 1.0);
  const bool sampled = rate < 1.0 - kEps;
  uint64_t calls = 1;  // the query itself
  if (sampled) {
    ++calls;  // sampler
  }
  if (update_history) {
    ++calls;  // model fit
    if (sampled || !has_shared_features) {
      ++calls;  // re-extraction (shared extraction reused at full rate)
    }
  }
  return calls;
}

uint64_t MonitoringSystem::PlanCustomOracleCalls(double rate) {
  return std::clamp(rate, 0.0, 1.0) >= kNearFullRate ? 3 : 1;
}

void MonitoringSystem::ExecuteQueryPre(QueryRuntime& qr, const trace::Batch& batch, double rate,
                                       bool update_history,
                                       const features::FeatureVector* shared_features,
                                       uint64_t base_seq, QueryExec& ex,
                                       QueryTaskResult& result) {
  rate = std::clamp(rate, 0.0, 1.0);
  ex.rate = rate;
  ex.update_history = update_history;
  ex.packets = &batch.packets;
  if (rate < 1.0 - kEps) {
    WorkHint sample_hint{qr.query.get(), &batch.packets, 0.0};
    result.AddCharge(/*ls=*/true,
                     oracle_->RunAt(base_seq++, WorkKind::kSampling, sample_hint, [&] {
                       if (qr.query->preferred_sampling() == query::SamplingMethod::kFlow) {
                         qr.flow_sampler.SampleInto(batch.packets, rate, qr.sample_buf);
                       } else {
                         qr.pkt_sampler.SampleInto(batch.packets, rate, qr.sample_buf);
                       }
                     }));
    ex.packets = &qr.sample_buf;
  }

  // Re-extract features on the batch the query actually processes so the
  // regression history stays consistent (Alg. 1 line 12); charged to the
  // load shedding subsystem when sampling was applied. At full rate the
  // prediction-stage extraction is reused when available (§3.4.4 sharing).
  // Reactive mode keeps no history and skips this entirely.
  if (update_history) {
    if (rate >= 1.0 - kEps && shared_features != nullptr) {
      ex.features = *shared_features;
    } else {
      WorkHint extract_hint{qr.query.get(), ex.packets, 0.0};
      const double extract_cycles =
          oracle_->RunAt(base_seq++, WorkKind::kFeatureExtraction, extract_hint, [&] {
            ex.features = qr.engine.extractor().Extract(*ex.packets);
          });
      result.AddCharge(/*ls=*/rate < 1.0 - kEps, extract_cycles);
    }
  }
  ex.next_seq = base_seq;

  // Intra-query shard plan over the sampled view. The plan only shapes the
  // fan-out: any shard count (including 1) produces bit-identical results
  // and charges, so the decision is free to depend on the pool width.
  ex.ranges.clear();
  ex.states.clear();
  ex.shard_cycles.clear();
  query::ShardableQuery* shardable = qr.query->shardable();
  if (shardable != nullptr && config_.max_shards_per_query > 1) {
    query::BatchInput in{*ex.packets, batch.start_us, batch.duration_us, rate};
    const size_t units = shardable->ShardUnits(in);
    const size_t shards = executor_.PlanShards(units, config_.max_shards_per_query,
                                               shardable->MinShardUnits());
    if (shards > 1) {
      ex.ranges = exec::QueryExecutor::SplitUnits(units, shards);
      ex.states.reserve(ex.ranges.size());
      for (size_t s = 0; s < ex.ranges.size(); ++s) {
        ex.states.push_back(shardable->ForkShard());
      }
      ex.shard_cycles.assign(ex.ranges.size(), 0.0);
    }
  }
}

void MonitoringSystem::ExecuteQueryPost(QueryRuntime& qr, const trace::Batch& batch,
                                        QueryExec& ex, QueryTaskResult& result) {
  query::BatchInput in{*ex.packets, batch.start_us, batch.duration_us, ex.rate};
  WorkHint query_hint{qr.query.get(), ex.packets, 0.0};
  double used = 0.0;
  if (ex.sharded()) {
    // Ordered shard merge inside the single reserved kQuery slot: the model
    // charge is the query's work-unit delta, which the mergeable-state
    // discipline makes equal to the serial delta — same slot, same noise,
    // same charge. The worker-timed shard cycles travel in the hint so a
    // wall-measuring oracle charges the scans too, not just this merge.
    for (const double cycles : ex.shard_cycles) {
      query_hint.shard_cycles += cycles;
    }
    obs::Span merge_span(tracer_, obs::Stage::kMerge, static_cast<uint32_t>(log_.size()));
    used = oracle_->RunAt(ex.next_seq++, WorkKind::kQuery, query_hint,
                          [&] { qr.query->ProcessShards(in, std::move(ex.states)); });
  } else {
    used = oracle_->RunAt(ex.next_seq++, WorkKind::kQuery, query_hint,
                          [&] { qr.query->ProcessBatch(in); });
  }

  if (ex.update_history) {
    WorkHint fit_hint{qr.query.get(), nullptr,
                      static_cast<double>(config_.predictor.history)};
    result.AddCharge(/*ls=*/false,
                     oracle_->RunAt(ex.next_seq++, WorkKind::kFcbfMlr, fit_hint, [&] {
                       qr.engine.ObserveActual(ex.features, used);
                     }));
  }

  result.unsampled =
      (static_cast<double>(batch.size()) - static_cast<double>(ex.packets->size())) /
      std::max<double>(1.0, static_cast<double>(queries_.size()));
  // Drop the sampled view before the batch (and its payload arena) can be
  // recycled; the buffer keeps its capacity for the next bin.
  qr.sample_buf.clear();
  qr.last_cycles = used;
  result.used = used;
}

void MonitoringSystem::RunShardWaves(const trace::Batch& batch, std::vector<QueryExec>& ex,
                                     std::vector<QueryTaskResult>& results) {
  struct ShardTask {
    size_t query;
    size_t shard;
  };
  std::vector<ShardTask> tasks;
  std::vector<size_t> sharded;  // queries with a pending post phase
  for (size_t q = 0; q < ex.size(); ++q) {
    if (!ex[q].sharded()) {
      continue;
    }
    sharded.push_back(q);
    for (size_t s = 0; s < ex[q].states.size(); ++s) {
      tasks.push_back({q, s});
    }
  }
  if (tasks.empty()) {
    return;
  }
  // Wave 2: every (query, shard) range on any worker in any order — shards
  // only touch their own partial plus the query's stable pre-batch state.
  // Each task is TSC-timed so wall-measuring oracles can charge this work
  // at the query's merge (the model oracle ignores the timings).
  executor_.SetTraceStage(obs::Stage::kShard);
  executor_.Run(
      tasks.size(),
      [&](size_t t) {
        const ShardTask& task = tasks[t];
        QueryRuntime& qr = *queries_[task.query];
        QueryExec& e = ex[task.query];
        query::BatchInput in{*e.packets, batch.start_us, batch.duration_us, e.rate};
        const util::CycleTimer timer;
        qr.query->shardable()->OnShardBatch(*e.states[task.shard], in,
                                            e.ranges[task.shard].begin,
                                            e.ranges[task.shard].end);
        e.shard_cycles[task.shard] = static_cast<double>(timer.Elapsed());
      },
      nullptr);
  // Wave 3: fold the partials (per query, in shard-index order) and finish
  // the per-query pipeline; only the sharded queries have work left.
  executor_.SetTraceStage(obs::Stage::kQuery);
  executor_.Run(
      sharded.size(),
      [&](size_t i) {
        const size_t q = sharded[i];
        ExecuteQueryPost(*queries_[q], batch, ex[q], results[q]);
      },
      nullptr);
}

MonitoringSystem::QueryTaskResult MonitoringSystem::ExecuteCustom(QueryRuntime& qr,
                                                                  const trace::Batch& batch,
                                                                  double rate, double granted,
                                                                  uint64_t base_seq) {
  QueryTaskResult result;
  rate = std::clamp(rate, 0.0, 1.0);
  // The query receives the *unsampled* batch (sampling_rate = 1); the budget
  // fraction travels separately so custom methods don't double-correct.
  query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
  WorkHint query_hint{qr.query.get(), &batch.packets, 0.0};
  const double used = oracle_->RunAt(base_seq++, WorkKind::kQuery, query_hint,
                                     [&] { qr.query->ProcessCustom(in, rate); });

  // §6.1.1: compare actual vs expected consumption; the correction factor and
  // the policing decision both come from this observation.
  qr.enforcement.Observe(granted, used);

  // History discipline for custom shedding: the model must keep predicting
  // the query's *full* cost from the input features, so only genuine
  // full-cost samples (near-full-rate bins) are fed back; shed bins leave
  // the coefficients untouched and predictions still track the traffic
  // through the features. (Feeding back used/rate would let a selfish query
  // launder its overuse into inflated demand; feeding back the model's own
  // prediction creates a self-reinforcing drift.)
  if (rate >= kNearFullRate) {
    features::FeatureVector full_features{};
    WorkHint extract_hint{qr.query.get(), &batch.packets, 0.0};
    result.AddCharge(/*ls=*/false,
                     oracle_->RunAt(base_seq++, WorkKind::kFeatureExtraction, extract_hint, [&] {
                       full_features = qr.engine.extractor().Extract(batch.packets);
                     }));
    WorkHint fit_hint{qr.query.get(), nullptr,
                      static_cast<double>(config_.predictor.history)};
    result.AddCharge(/*ls=*/false,
                     oracle_->RunAt(base_seq++, WorkKind::kFcbfMlr, fit_hint, [&] {
                       qr.engine.ObserveActual(full_features, used);
                     }));
  }

  result.unsampled = static_cast<double>(batch.size()) * (1.0 - rate) /
                     std::max<double>(1.0, static_cast<double>(queries_.size()));
  qr.last_cycles = used;
  result.used = used;
  return result;
}

void MonitoringSystem::RunPredictive(const trace::Batch& batch, BinLog& log) {
  const size_t n = queries_.size();
  const uint32_t bin = static_cast<uint32_t>(log_.size());

  // Phase 1 (Alg. 1 lines 3-6): shared feature extraction + per-query
  // prediction of the cost of the full batch.
  features::FeatureVector f_full{};
  WorkHint extract_hint{nullptr, &batch.packets, 0.0};
  {
    obs::Span span(tracer_, obs::Stage::kExtraction, bin);
    log.ps_cycles += oracle_->Run(WorkKind::kFeatureExtraction, extract_hint,
                                  [&] { f_full = sys_extractor_.Extract(batch.packets); });
  }

  std::vector<double> pred(n, 0.0);
  double pred_total = 0.0;
  {
    obs::Span span(tracer_, obs::Stage::kPrediction, bin);
    for (size_t q = 0; q < n; ++q) {
      pred[q] = std::max(0.0, queries_[q]->engine.PredictCycles(f_full));
      pred_total += pred[q];
    }
  }
  log.predicted_cycles = pred_total;

  // Phases 2-3 are one shed_decision span: availability, allocation and the
  // ladder rungs together form the decision the trace should show.
  const uint64_t shed_start_us = tracer_ != nullptr ? tracer_->NowUs() : 0;

  // Phase 2 (line 7): available cycles, corrected by measured overheads and
  // the buffer-discovery slack (rtthresh - delay). The effective slack is
  // additionally capped by the remaining buffer headroom so one bin's
  // overshoot can never fill the capture buffer and cause drops.
  const double ps_hat = std::max(ps_ewma_.value(), log.ps_cycles);
  double avail = capacity_ - log.como_cycles - ps_hat;
  if (config_.rtthresh_enabled) {
    // Borrow at most one bin's worth of buffer: enough to smooth transient
    // under-use, small enough that rate decisions stay stable and a badly
    // under-predicted burst still fits in the remaining buffer headroom.
    const double headroom = std::max(0.0, capacity_ - backlog_cycles_);
    avail += std::min(rtthresh_, headroom) - backlog_cycles_;
  } else {
    avail -= backlog_cycles_;
  }
  avail = std::max(0.0, avail);
  log.avail_cycles = avail;

  // Phase 3 (lines 8-9): decide whether and how much to shed. Demands are
  // inflated by the prediction-error EWMA as a safety margin, and by each
  // query's enforcement correction when custom shedding is active.
  const double err = config_.error_margin_enabled ? error_ewma_.value() : 0.0;
  const double ls_hat = ls_ewma_.value();
  const double budget = std::max(0.0, avail - ls_hat);
  std::vector<shed::QueryDemand> demands(n);
  for (size_t q = 0; q < n; ++q) {
    double demand = pred[q] * (1.0 + err);
    if (config_.enable_custom_shedding) {
      demand *= queries_[q]->enforcement.correction();
    }
    demands[q].predicted_cycles = std::max(demand, 1.0);
    demands[q].min_sampling_rate = queries_[q]->config.min_sampling_rate;
  }
  shed::Allocation alloc = strategy_->Allocate(demands, budget);
  log.overload = pred_total * (1.0 + err) > budget + kEps;

  // Deadline-ladder boost/truncate rungs act on the finished allocation, so
  // the cycle-oracle-driven decision above stays untouched (and bit-exact)
  // whenever the governor is quiet.
  ApplyDegradation(alloc.rate, alloc.disabled);
  if (tracer_ != nullptr) {
    tracer_->Record(obs::Stage::kShedDecision, shed_start_us, tracer_->NowUs() - shed_start_us,
                    bin);
  }

  // Phase 4 (lines 10-16): shed and execute. Pre-execution bookkeeping
  // (penalty ticks, warm-up probes, rate finalization, charge-slot
  // reservation) stays on the coordinating thread in registration order so
  // the reserved cost sequence matches the serial schedule; per-query work
  // then fans out over the pool and merges back in the same order.
  struct QueryPlan {
    bool execute = false;
    bool custom = false;
    uint64_t base_seq = 0;
  };
  std::vector<QueryPlan> plan(n);
  std::vector<QueryTaskResult> results(n);
  for (size_t q = 0; q < n; ++q) {
    QueryRuntime& qr = *queries_[q];
    if (config_.enable_custom_shedding && qr.enforcement.InPenalty()) {
      qr.enforcement.Tick();
      alloc.rate[q] = 0.0;
      alloc.disabled[q] = true;
    }
    if (qr.engine.predictor().history_size() < config_.warmup_observations) {
      // Probe cautiously while the cost model is cold, but never undercut the
      // user's declared minimum rate (m_q is a contract, §5.2).
      const double probe =
          std::max(config_.bootstrap_rate, qr.config.min_sampling_rate);
      alloc.rate[q] = std::min(alloc.rate[q], probe);
    }
    log.rate[q] = alloc.rate[q];
    log.disabled[q] = alloc.disabled[q];
    if (alloc.disabled[q] || alloc.rate[q] <= kEps) {
      continue;
    }
    plan[q].execute = true;
    // Custom shedding is only delegated once the query's cost model is warm:
    // the system needs a trustworthy full-cost prediction before it can
    // verify that the query honours its budget (§6.1.1). Until then the
    // query is sampled like any other, which also yields clean
    // (features, cycles) observations to bootstrap the model.
    plan[q].custom = config_.enable_custom_shedding && qr.config.allow_custom_shedding &&
                     qr.query->supports_custom_shedding() &&
                     qr.engine.predictor().history_size() >= config_.warmup_observations;
    plan[q].base_seq = oracle_->ReserveSequence(
        plan[q].custom ? PlanCustomOracleCalls(alloc.rate[q])
                       : PlanOracleCalls(alloc.rate[q], /*update_history=*/true,
                                         /*has_shared_features=*/true));
  }

  // Wave 1: the whole per-query pipeline for unsharded queries, and the
  // sampling/extraction pre-phase (plus the shard plan) for queries whose
  // batch splits further. Waves 2/3 (RunShardWaves) then run the (query,
  // shard) ranges and the ordered per-query merges; the BinLog fold below
  // replays registration order on the coordinator exactly as before.
  std::vector<QueryExec> ex(n);
  double used_total = 0.0;
  double expected_total = 0.0;
  double measured_ls = 0.0;
  executor_.Run(
      n,
      [&](size_t q) {
        if (!plan[q].execute) {
          return;
        }
        QueryRuntime& qr = *queries_[q];
        if (plan[q].custom) {
          results[q] = ExecuteCustom(qr, batch, alloc.rate[q], alloc.rate[q] * pred[q],
                                     plan[q].base_seq);
          return;
        }
        ExecuteQueryPre(qr, batch, alloc.rate[q], /*update_history=*/true, &f_full,
                        plan[q].base_seq, ex[q], results[q]);
        if (!ex[q].sharded()) {
          ExecuteQueryPost(qr, batch, ex[q], results[q]);
        }
      },
      nullptr);
  RunShardWaves(batch, ex, results);
  for (size_t q = 0; q < n; ++q) {
    if (!plan[q].execute) {
      log.packets_unsampled += static_cast<double>(batch.size()) /
                               std::max<double>(1.0, static_cast<double>(n));
      queries_[q]->last_cycles = 0.0;
      continue;
    }
    const QueryTaskResult& r = results[q];
    const double ls_before = log.ls_cycles;
    for (size_t c = 0; c < r.num_charges; ++c) {
      (r.charges[c].ls ? log.ls_cycles : log.ps_cycles) += r.charges[c].cycles;
    }
    measured_ls += log.ls_cycles - ls_before;
    log.packets_unsampled += r.unsampled;
    log.per_query_cycles[q] = r.used;
    used_total += r.used;
    expected_total += alloc.rate[q] * pred[q];
  }
  log.query_cycles = used_total;

  // Phase 5 (line 17 + §4.3): smoothers for the next bin.
  if (used_total > kEps && expected_total > kEps) {
    error_ewma_.Update(std::max(0.0, 1.0 - expected_total / used_total));
  }
  ls_ewma_.Update(measured_ls);
  ps_ewma_.Update(log.ps_cycles);
}

void MonitoringSystem::RunReactive(const trace::Batch& batch, BinLog& log) {
  // Eq. 4.1: the sampling rate follows the previous bin's consumption.
  const double avail = std::max(0.0, capacity_ - log.como_cycles - backlog_cycles_);
  log.avail_cycles = avail;
  if (reactive_consumed_prev_ > kEps) {
    reactive_rate_ = std::min(
        1.0, std::max(config_.reactive_min_rate,
                      reactive_rate_ * avail / reactive_consumed_prev_));
  } else {
    reactive_rate_ = 1.0;
  }
  log.overload = reactive_rate_ < 1.0 - kEps;

  const size_t n = queries_.size();
  // The deadline ladder applies on top of the reactive controller exactly as
  // it does on the predictive allocation: scale the granted rates, then
  // truncate the lowest-priority queries. The controller's own state
  // (reactive_rate_) deliberately stays unscaled so recovery after the
  // governor steps down starts from the controller's view, not the ladder's.
  std::vector<double> rates(n, reactive_rate_);
  std::vector<bool> disabled(n, false);
  ApplyDegradation(rates, disabled);

  std::vector<uint64_t> base_seq(n);
  for (size_t q = 0; q < n; ++q) {
    log.rate[q] = rates[q];
    log.disabled[q] = disabled[q];
    if (disabled[q]) {
      continue;
    }
    base_seq[q] = oracle_->ReserveSequence(PlanOracleCalls(
        rates[q], /*update_history=*/false, /*has_shared_features=*/false));
  }
  std::vector<QueryTaskResult> results(n);
  std::vector<QueryExec> ex(n);
  double used_total = 0.0;
  executor_.Run(
      n,
      [&](size_t q) {
        if (disabled[q]) {
          return;
        }
        ExecuteQueryPre(*queries_[q], batch, rates[q],
                        /*update_history=*/false, nullptr, base_seq[q], ex[q], results[q]);
        if (!ex[q].sharded()) {
          ExecuteQueryPost(*queries_[q], batch, ex[q], results[q]);
        }
      },
      nullptr);
  RunShardWaves(batch, ex, results);
  for (size_t q = 0; q < n; ++q) {
    const QueryTaskResult& r = results[q];
    for (size_t c = 0; c < r.num_charges; ++c) {
      (r.charges[c].ls ? log.ls_cycles : log.ps_cycles) += r.charges[c].cycles;
    }
    log.packets_unsampled += r.unsampled;
    log.per_query_cycles[q] = r.used;
    used_total += r.used;
  }
  // Reactive systems skip the prediction subsystem: no history upkeep.
  log.ps_cycles = 0.0;
  log.query_cycles = used_total;
  reactive_consumed_prev_ = used_total + log.ls_cycles;
}

void MonitoringSystem::RunNoShed(const trace::Batch& batch, BinLog& log) {
  log.avail_cycles = std::max(0.0, capacity_ - log.como_cycles);
  const size_t n = queries_.size();
  std::vector<uint64_t> base_seq(n);
  for (size_t q = 0; q < n; ++q) {
    log.rate[q] = 1.0;
    base_seq[q] = oracle_->ReserveSequence(1);
  }
  std::vector<QueryTaskResult> results(n);
  std::vector<QueryExec> ex(n);
  double used_total = 0.0;
  executor_.Run(
      n,
      [&](size_t q) {
        ExecuteQueryPre(*queries_[q], batch, /*rate=*/1.0,
                        /*update_history=*/false, nullptr, base_seq[q], ex[q], results[q]);
        if (!ex[q].sharded()) {
          ExecuteQueryPost(*queries_[q], batch, ex[q], results[q]);
        }
      },
      nullptr);
  RunShardWaves(batch, ex, results);
  for (size_t q = 0; q < n; ++q) {
    log.per_query_cycles[q] = results[q].used;
    used_total += results[q].used;
  }
  log.query_cycles = used_total;
  log.overload = used_total > log.avail_cycles;
}

void MonitoringSystem::TickIntervals() {
  for (auto& qr_ptr : queries_) {
    QueryRuntime& qr = *qr_ptr;
    if (++qr.bins_in_interval >= qr.query->interval_bins()) {
      qr.query->EndInterval();
      qr.engine.StartInterval();
      qr.flow_sampler.Reseed(rng_.NextU64());
      qr.bins_in_interval = 0;
    }
  }
  if (++sys_bins_in_interval_ >= config_.system_interval_bins) {
    sys_extractor_.StartInterval();
    sys_bins_in_interval_ = 0;
  }
}

void MonitoringSystem::UpdateBufferAndThreshold(double spent_total) {
  const double buffer_cap = config_.buffer_bins * capacity_;
  backlog_cycles_ = std::max(0.0, backlog_cycles_ + spent_total - capacity_);

  if (!config_.rtthresh_enabled) {
    return;
  }
  // §4.1 buffer discovery: grow the allowance while the system underuses its
  // budget; collapse it (slow-start style) when the buffer starts filling.
  if (backlog_cycles_ > std::min(capacity_, 0.5 * buffer_cap)) {
    ssthresh_ = std::max(rtthresh_ / 2.0, capacity_ * 0.01);
    rtthresh_ = 0.0;
  } else if (spent_total < capacity_) {
    if (rtthresh_ < ssthresh_) {
      rtthresh_ = std::max(capacity_ * 0.001, rtthresh_ * 2.0);  // exponential
    } else {
      rtthresh_ += capacity_ * 0.01;  // linear
    }
    rtthresh_ = std::min(rtthresh_, std::min(capacity_, 0.9 * buffer_cap));
  }
}

bool MonitoringSystem::AtIntervalBoundary() const {
  if (sys_bins_in_interval_ != 0) {
    return false;
  }
  for (const auto& qr : queries_) {
    if (qr->bins_in_interval != 0) {
      return false;
    }
  }
  return true;
}

void MonitoringSystem::SaveState(obs::SnapshotWriter& w) const {
  w.RngState(rng_.State());
  w.F64(capacity_);
  w.F64(backlog_cycles_);
  w.F64(rtthresh_);
  w.F64(ssthresh_);
  w.F64(error_ewma_.value());
  w.Bool(error_ewma_.seeded());
  w.F64(ls_ewma_.value());
  w.Bool(ls_ewma_.seeded());
  w.F64(ps_ewma_.value());
  w.Bool(ps_ewma_.seeded());
  w.F64(reactive_rate_);
  w.F64(reactive_consumed_prev_);
  w.U64(sys_bins_in_interval_);
  w.U64(total_packets_);
  w.U64(total_dropped_);
  w.U64(queries_.size());
  for (const auto& qr : queries_) {
    w.U64(qr->bins_in_interval);
    w.F64(qr->last_cycles);
    w.RngState(qr->pkt_sampler.RngState());
    w.U64(qr->flow_sampler.seed());
    const shed::EnforcementPolicy::State es = qr->enforcement.GetState();
    w.F64(es.usage_ratio);
    w.Bool(es.usage_ratio_seeded);
    w.I64(es.strikes);
    w.I64(es.penalty_left);
    w.U64(es.times_policed);
    qr->engine.predictor().SaveState(w);
  }
  oracle_->SaveState(w);
}

void MonitoringSystem::LoadState(obs::SnapshotReader& r) {
  rng_.SetState(r.RngState());
  capacity_ = r.F64();
  backlog_cycles_ = r.F64();
  rtthresh_ = r.F64();
  ssthresh_ = r.F64();
  {
    const double v = r.F64();
    error_ewma_.Restore(v, r.Bool());
  }
  {
    const double v = r.F64();
    ls_ewma_.Restore(v, r.Bool());
  }
  {
    const double v = r.F64();
    ps_ewma_.Restore(v, r.Bool());
  }
  reactive_rate_ = r.F64();
  reactive_consumed_prev_ = r.F64();
  sys_bins_in_interval_ = static_cast<size_t>(r.U64());
  total_packets_ = r.U64();
  total_dropped_ = r.U64();
  const uint64_t n = r.U64();
  if (n != queries_.size()) {
    throw obs::SnapshotError("snapshot query count does not match the registered roster");
  }
  for (auto& qr : queries_) {
    qr->bins_in_interval = static_cast<size_t>(r.U64());
    qr->last_cycles = r.F64();
    qr->pkt_sampler.SetRngState(r.RngState());
    qr->flow_sampler.Reseed(r.U64());
    shed::EnforcementPolicy::State es;
    es.usage_ratio = r.F64();
    es.usage_ratio_seeded = r.Bool();
    es.strikes = static_cast<int>(r.I64());
    es.penalty_left = static_cast<int>(r.I64());
    es.times_policed = r.U64();
    qr->enforcement.SetState(es);
    qr->engine.predictor().LoadState(r);
  }
  oracle_->LoadState(r);
}

void MonitoringSystem::Finish() {
  for (auto& qr_ptr : queries_) {
    QueryRuntime& qr = *qr_ptr;
    if (qr.bins_in_interval > 0) {
      qr.query->EndInterval();
      qr.bins_in_interval = 0;
    }
  }
}

}  // namespace shedmon::core
