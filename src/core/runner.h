#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/system.h"
#include "src/query/accuracy.h"
#include "src/trace/generator.h"

namespace shedmon::core {

// Minimum sampling-rate constraints (m_q) for the standard queries, taken
// from Table 5.2 of the thesis (p2p-detector from the Ch. 6 validation).
double DefaultMinRate(std::string_view query_name);

struct RunSpec {
  SystemConfig system;
  OracleKind oracle = OracleKind::kModel;
  std::vector<std::string> query_names;
  // Optional per-query overrides; when empty, DefaultMinRate is used for m_q
  // on the mmfs/eq strategies and 0 elsewhere.
  std::vector<QueryConfig> query_configs;
  bool use_default_min_rates = true;
};

// Output of a full system run plus the reference (unsampled) instances the
// accuracy of every query is measured against.
struct RunResult {
  std::unique_ptr<MonitoringSystem> system;  // holds logs and shed queries
  std::vector<std::unique_ptr<query::Query>> reference;

  // Mean / stdev interval error of query i against its reference.
  query::AccuracyRow Accuracy(size_t i) const;
  // 1 - mean error, the "accuracy" of Ch. 5/6 plots.
  double MeanAccuracy(size_t i) const;
  double AverageAccuracy() const;  // across queries
  double MinimumAccuracy() const;  // worst query
};

// Runs the configured system over the trace (and the reference instances over
// the unsampled trace) and returns both. When spec.system.num_threads > 0 the
// per-query pipeline stages *and* the reference instances run on an
// exec::ThreadPool; results are bit-identical to the serial run (see
// SystemConfig::num_threads).
//
// Batch-mode compatibility wrapper: since the api::Pipeline facade became
// the supported entry point this is a thin shim over api::RunTrace, defined
// in src/api/run.cpp (the facade sits above core in the dependency DAG).
// Callers must link shedmon::shedmon (or shedmon::shedmon_api). New code
// should use shedmon::PipelineBuilder directly.
RunResult RunSystemOnTrace(const RunSpec& spec, const trace::Trace& trace);

// Mean per-bin cycles demanded by full (unsampled) processing of the given
// queries — the thesis's experimentally determined capacity C. Experiments
// set cycles_per_bin = MeasureMeanDemand(...) * (1 - K) to create an overload
// factor K (§5.4: "K = 0.5 ... resource demands are twice the capacity").
double MeasureMeanDemand(const std::vector<std::string>& names, const trace::Trace& trace,
                         OracleKind oracle, uint64_t bin_us = 100'000);

}  // namespace shedmon::core
