#include "src/core/cost.h"

#include <unordered_set>

#include "src/util/cycle_clock.h"
#include "src/util/rng.h"

namespace shedmon::core {

double MeasuredCostOracle::Run(WorkKind /*kind*/, const WorkHint& hint,
                               const std::function<void()>& fn) {
  const util::CycleTimer timer;
  fn();
  // shard_cycles carries the worker-timed cost of shard tasks that already
  // ran for this unit of work (see WorkHint); fn here is only the merge.
  return static_cast<double>(timer.Elapsed()) + hint.shard_cycles;
}

double MeasuredCostOracle::DefaultBinBudget(uint64_t bin_us) const {
  return util::CyclesPerSecond() * static_cast<double>(bin_us) * 1e-6;
}

namespace {

struct BatchCounts {
  double pkts = 0.0;
  double bytes = 0.0;
  double unique_5t = 0.0;
  double unique_src = 0.0;
  double unique_dst = 0.0;
};

BatchCounts ExactCounts(const trace::PacketVec& packets) {
  BatchCounts c;
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> tuples;
  std::unordered_set<uint32_t> srcs;
  std::unordered_set<uint32_t> dsts;
  for (const net::Packet& pkt : packets) {
    c.pkts += 1.0;
    c.bytes += static_cast<double>(pkt.rec->wire_len);
    tuples.insert(pkt.rec->tuple);
    srcs.insert(pkt.rec->tuple.src_ip);
    dsts.insert(pkt.rec->tuple.dst_ip);
  }
  c.unique_5t = static_cast<double>(tuples.size());
  c.unique_src = static_cast<double>(srcs.size());
  c.unique_dst = static_cast<double>(dsts.size());
  return c;
}

}  // namespace

double ModelCostOracle::QueryCost(std::string_view name, const trace::PacketVec& packets) const {
  const BatchCounts c = ExactCounts(packets);
  // Coefficients loosely calibrated against Fig. 2.2's relative costs:
  // byte-driven queries (trace, pattern-search, p2p-detector) at the top,
  // plain counters at the bottom, flow-state queries in between.
  if (name == "counter") {
    return 40.0 * c.pkts;
  }
  if (name == "application") {
    return 70.0 * c.pkts;
  }
  if (name == "high-watermark") {
    return 45.0 * c.pkts;
  }
  if (name == "flows") {
    return 90.0 * c.pkts + 700.0 * c.unique_5t;
  }
  if (name == "top-k") {
    return 110.0 * c.pkts + 350.0 * c.unique_dst;
  }
  if (name == "trace") {
    return 25.0 * c.pkts + 1.6 * c.bytes;
  }
  if (name == "pattern-search") {
    return 30.0 * c.pkts + 2.6 * c.bytes;
  }
  if (name == "p2p-detector") {
    return 60.0 * c.pkts + 1.8 * c.bytes + 900.0 * c.unique_5t;
  }
  if (name == "autofocus") {
    return 80.0 * c.pkts + 260.0 * c.unique_src;
  }
  if (name == "super-sources") {
    return 85.0 * c.pkts + 420.0 * c.unique_src;
  }
  // Unknown (user-defined) query: generic packet+byte model.
  return 60.0 * c.pkts + 0.5 * c.bytes;
}

double ModelCostOracle::Run(WorkKind kind, const WorkHint& hint,
                            const std::function<void()>& fn) {
  return RunAt(ReserveSequence(1), kind, hint, fn);
}

uint64_t ModelCostOracle::ReserveSequence(uint64_t n) {
  // Slots are 1-based: the pre-sequencing code charged from ++call_count_.
  return call_count_.fetch_add(n, std::memory_order_relaxed) + 1;
}

double ModelCostOracle::RunAt(uint64_t seq, WorkKind kind, const WorkHint& hint,
                              const std::function<void()>& fn) {
  fn();
  // +/-1% deterministic pseudo-noise so the regression problem is not exact.
  const double noise =
      1.0 + 0.02 * (static_cast<double>(util::HashU64(seq) % 1000) / 1000.0 - 0.5);

  const double pkts =
      hint.packets != nullptr ? static_cast<double>(hint.packets->size()) : 0.0;
  switch (kind) {
    case WorkKind::kQuery: {
      if (hint.query != nullptr) {
        const double current = hint.query->work_units();
        double delta;
        {
          util::MutexLock lock(mutex_);
          double& last = last_work_[hint.query];
          delta = current - last;
          last = current;
        }
        if (delta > 0.0) {
          return delta * noise;
        }
      }
      // Note: both operands of each conditional must share a reference type,
      // otherwise a temporary is materialized and the view would dangle.
      static const trace::PacketVec kEmpty;
      const std::string_view name =
          hint.query != nullptr ? std::string_view(hint.query->name()) : std::string_view();
      const trace::PacketVec& packets = hint.packets != nullptr ? *hint.packets : kEmpty;
      return QueryCost(name, packets) * noise;
    }
    case WorkKind::kFeatureExtraction:
      // Ten hashes + ten bitmap inserts per packet; sized so the whole
      // prediction subsystem lands near the ~10% overhead of Table 3.4 for
      // a seven-query workload (extraction dominating, as in the paper).
      return (300.0 + 30.0 * pkts) * noise;
    case WorkKind::kFcbfMlr:
      return (600.0 + 8.0 * hint.aux) * noise;
    case WorkKind::kSampling:
      return (50.0 + 2.0 * pkts) * noise;
  }
  return 0.0;
}

void ModelCostOracle::OnQueryAdded(const query::Query* query) {
  if (query == nullptr) {
    return;
  }
  util::MutexLock lock(mutex_);
  last_work_[query] = query->work_units();
}

void ModelCostOracle::OnQueryRemoved(const query::Query* query) {
  util::MutexLock lock(mutex_);
  last_work_.erase(query);
}

void ModelCostOracle::SaveState(obs::SnapshotWriter& w) const {
  w.U64(call_count_.load(std::memory_order_relaxed));
}

void ModelCostOracle::LoadState(obs::SnapshotReader& r) {
  call_count_.store(r.U64(), std::memory_order_relaxed);
}

double ModelCostOracle::DefaultBinBudget(uint64_t bin_us) const {
  // The model's cycle scale is arbitrary; 6e5 cycles per 100 ms roughly fits
  // the default traces' per-bin demand, but experiments set capacity via K.
  return 6e5 * static_cast<double>(bin_us) / 100'000.0;
}

std::unique_ptr<CostOracle> MakeOracle(OracleKind kind) {
  switch (kind) {
    case OracleKind::kMeasured:
      return std::make_unique<MeasuredCostOracle>();
    case OracleKind::kModel:
      return std::make_unique<ModelCostOracle>();
  }
  return nullptr;
}

}  // namespace shedmon::core
