#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/cost.h"
#include "src/exec/query_executor.h"
#include "src/exec/thread_pool.h"
#include "src/features/extractor.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/predict/engine.h"
#include "src/query/query.h"
#include "src/shed/enforcement.h"
#include "src/shed/sampler.h"
#include "src/rt/fault.h"
#include "src/rt/governor.h"
#include "src/shed/strategy.h"
#include "src/trace/batch.h"
#include "src/util/ewma.h"
#include "src/util/rng.h"

namespace shedmon::core {

// How overload is handled (§4.5.1 / §5.5.3 systems under comparison).
enum class ShedderKind {
  kNoShed,     // "original": drop packets when the capture buffer fills
  kReactive,   // SEDA-like: rate from the previous bin's consumption (eq. 4.1)
  kPredictive  // Alg. 1: predict, then allocate via a ShedStrategy
};

struct QueryConfig {
  // m_q: minimum sampling rate the user declares (Ch. 5); 0 = no floor.
  double min_sampling_rate = 0.0;
  // Allow this query to use its own shedding method when it offers one and
  // the system has custom shedding enabled (Ch. 6).
  bool allow_custom_shedding = true;
};

struct SystemConfig {
  uint64_t time_bin_us = 100'000;
  // System capacity C in cycles per time bin. <= 0 means "use the oracle's
  // real-time budget" (only meaningful with the measured oracle).
  double cycles_per_bin = 0.0;
  ShedderKind shedder = ShedderKind::kPredictive;
  shed::StrategyKind strategy = shed::StrategyKind::kEqSrates;
  predict::PredictorConfig predictor;
  features::FeatureExtractor::Config extractor;
  // Capture buffer size in time bins. The thesis's testbed had 256 MB of DAG
  // buffer (seconds of traffic); its 200 ms figure was only the emulation
  // used to estimate the no-shedding baseline's error. Five bins (500 ms)
  // absorb a single badly under-predicted burst bin without uncontrolled
  // loss while still exposing sustained overload in the baselines.
  double buffer_bins = 5.0;
  // EWMA weight for the prediction-error and overhead smoothers (§4.3).
  double ewma_alpha = 0.9;
  // Inflate demands by the smoothed prediction error (Alg. 1 line 8's
  // "(1 + error_hat)" safeguard). Disable only for ablation studies.
  bool error_margin_enabled = true;
  // Fixed share of capacity consumed by core CoMo tasks (capture, storage).
  double como_overhead_fraction = 0.05;
  // alpha floor of the reactive controller (eq. 4.1).
  double reactive_min_rate = 0.05;
  // Measurement interval of the shared prediction-stage feature extractor.
  size_t system_interval_bins = 10;
  // §4.1 buffer-discovery (slow-start) threshold on top of avail_cycles.
  bool rtthresh_enabled = true;
  // Cold-start guard: while a query's prediction model has fewer than
  // `warmup_observations`, its batches are probed at most at `bootstrap_rate`
  // so an unknown (possibly expensive) query cannot blow the cycle budget
  // before the system has learned its cost. The linear feature model then
  // extrapolates from the sampled observations to full batches.
  size_t warmup_observations = 5;
  double bootstrap_rate = 0.1;
  // Ch. 6: let queries that support it shed their own load, policed by the
  // enforcement policy.
  bool enable_custom_shedding = false;
  shed::EnforcementConfig enforcement;
  uint64_t seed = 42;
  // Worker threads for the per-bin, per-query pipeline stages (sampling,
  // query processing, post-shed re-extraction, model fits) and for the
  // reference instances core::RunSystemOnTrace runs. 0 = serial, today's
  // single-threaded behavior. Any value yields bit-identical BinLogs and
  // accuracies under the deterministic model oracle: per-query work fans out
  // over an exec::ThreadPool while cost charges are sequenced and BinLog
  // merges replayed in registration order (see exec::QueryExecutor).
  size_t num_threads = 0;
  // Upper bound on intra-query data parallelism: how many shards one query's
  // bin batch may be split into when the query implements
  // query::ShardableQuery and a pool is available (num_threads > 0). 1, the
  // default, keeps batches whole. Any value yields BinLogs, query results and
  // accuracies bit-identical to the serial path: shard partials are exact and
  // folded in shard-index order, and sharding consumes no extra cost-oracle
  // slots — the per-query kQuery charge is applied once, at the merge, from
  // the same reserved sequence slot as the unsharded path, so shedding
  // decisions cannot depend on the shard count.
  size_t max_shards_per_query = 1;
};

// Everything the system recorded about one time bin, the raw material for
// every Ch. 4-6 figure.
struct BinLog {
  uint64_t start_us = 0;
  size_t packets_in = 0;
  size_t packets_dropped = 0;    // uncontrolled (capture buffer overflow)
  double packets_unsampled = 0;  // shed deliberately via sampling
  bool batch_dropped = false;
  bool overload = false;
  double predicted_cycles = 0.0;  // sum over queries, before safety margin
  double avail_cycles = 0.0;
  double query_cycles = 0.0;  // measured, after shedding
  double ps_cycles = 0.0;     // prediction subsystem (extraction + fit)
  double ls_cycles = 0.0;     // load shedding (sampling + re-extraction)
  double como_cycles = 0.0;
  double backlog_cycles = 0.0;  // buffer occupancy after this bin
  double rtthresh = 0.0;
  std::vector<double> rate;          // per query
  std::vector<double> per_query_cycles;
  std::vector<bool> disabled;
  // Real-time robustness bookkeeping (src/rt). All three stay at their zero
  // defaults unless a deadline governor is attached and fired, so runs
  // without one are bit-identical to pre-rt builds.
  uint8_t degradation = 0;       // rt::DegradeAction applied to this bin
  bool deadline_missed = false;  // bin overran its wall-clock budget
  double deadline_overrun_us = 0.0;
};

// The CoMo-like monitoring pipeline with the thesis's load shedding scheme.
// Offline and online behave identically (§2.3.2); capacity is an explicit
// cycle budget per 100 ms bin, and a backlog/buffer emulation produces the
// uncontrolled drops the reactive and no-shedding baselines suffer.
class MonitoringSystem {
 public:
  MonitoringSystem(const SystemConfig& config, std::unique_ptr<CostOracle> oracle);
  ~MonitoringSystem();

  MonitoringSystem(const MonitoringSystem&) = delete;
  MonitoringSystem& operator=(const MonitoringSystem&) = delete;

  // Registers a query before or between batches (Fig. 6.9 adds them mid-run).
  query::Query& AddQuery(std::unique_ptr<query::Query> query, const QueryConfig& config = {});

  // Unregisters the query at `index` between batches and returns it so its
  // results stay readable. Later queries shift down one index, which is why
  // the supported public surface (api::Pipeline) hands out stable handles
  // instead of indices. Throws std::out_of_range on a bad index.
  std::unique_ptr<query::Query> RemoveQuery(size_t index);

  void ProcessBatch(const trace::Batch& batch);
  // Flushes any partially filled measurement intervals at end of input.
  void Finish();

  const std::vector<BinLog>& log() const { return log_; }
  size_t num_queries() const { return queries_.size(); }
  query::Query& query(size_t i) { return *queries_[i]->query; }
  const query::Query& query(size_t i) const { return *queries_[i]->query; }
  const shed::EnforcementPolicy& enforcement(size_t i) const { return queries_[i]->enforcement; }
  const predict::PredictionEngine& engine(size_t i) const { return queries_[i]->engine; }

  const SystemConfig& config() const { return config_; }
  double capacity() const { return capacity_; }
  // Worker pool behind num_threads; null when the system runs serially. The
  // facade reuses it between batches (e.g. for reference instances); it must
  // only be driven from the coordinating thread, never from inside a batch.
  exec::ThreadPool* pool() const { return pool_.get(); }

  uint64_t total_packets() const { return total_packets_; }
  uint64_t total_dropped() const { return total_dropped_; }

  // ---- Observability -------------------------------------------------------
  // Live metrics registry; always present. The hot path caches instrument
  // pointers, updates them once per bin on the coordinating thread, and
  // never reads them back, so scraping at any moment cannot perturb results.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }

  // Optional span tracer: when set, every bin records per-stage spans
  // (shared extraction, prediction, shedding decision, per-query and
  // per-shard execution waves, ordered merges). Borrowed pointer; nullptr
  // (the default) detaches. Spans are write-only like the metrics, so traced
  // runs stay bit-identical.
  void SetTracer(obs::Tracer* tracer);

  const QueryConfig& query_config(size_t i) const { return queries_[i]->config; }
  double backlog_cycles() const { return backlog_cycles_; }
  double rtthresh() const { return rtthresh_; }
  double error_ewma_value() const { return error_ewma_.value(); }

  // ---- Real-time robustness (src/rt) ---------------------------------------
  // Degradation directive for subsequent ProcessBatch calls, normally issued
  // per bin by a rt::DeadlineGovernor (via api::Pipeline). kBoostShedding
  // scales granted sampling rates by rate_scale (never below a query's
  // declared minimum — if the floors themselves bust the budget the ladder
  // escalates past them); kTruncate additionally disables the last
  // `truncate_queries` enabled queries (highest registration index = lowest
  // priority); kDropBin discards the whole batch like a capture-buffer
  // overflow. A default-constructed Directive restores normal processing and
  // is bit-exact with never having called this.
  void SetDegradation(const rt::Directive& directive) { degrade_ = directive; }
  // Fault-injection hook; nullptr (the default) detaches. The injector's
  // OnBinStart fires before each batch and its worker hook is threaded
  // through the exec fan-out.
  void SetFaultInjector(rt::FaultInjector* injector);
  // Stamps the governor's stopwatch verdict onto the most recent bin; the
  // fields are pure bookkeeping read by sinks/tests, never by shedding.
  void MarkDeadline(bool missed, double overrun_us);

  // ---- Snapshot/restore ----------------------------------------------------
  // True when every query's measurement interval and the system's shared
  // interval are freshly reset — the only points where per-interval query
  // and extractor state is empty, making the numeric state below a complete
  // description of the run.
  bool AtIntervalBoundary() const;
  // Serializes the mutable numeric state (RNG, smoothers, buffer/threshold,
  // per-query sampler/enforcement/predictor state, oracle state). The
  // configuration and query roster travel separately (api::Pipeline writes
  // them first); LoadState expects the same roster in the same order.
  void SaveState(obs::SnapshotWriter& w) const;
  void LoadState(obs::SnapshotReader& r);

 private:
  struct QueryRuntime {
    std::unique_ptr<query::Query> query;
    QueryConfig config;
    predict::PredictionEngine engine;
    shed::PacketSampler pkt_sampler;
    shed::FlowSampler flow_sampler;
    shed::EnforcementPolicy enforcement;
    size_t bins_in_interval = 0;
    double last_cycles = 0.0;  // previous bin's consumption (reactive)
    // Per-query instruments (labelled {query=<name>}), borrowed from
    // registry_; set right after registration, written once per bin by the
    // coordinator.
    obs::Gauge* m_rate = nullptr;
    obs::Counter* m_cycles = nullptr;
    obs::Counter* m_disabled_bins = nullptr;
    obs::Gauge* m_times_policed = nullptr;
    // Reusable buffer the samplers write into: sampling a batch stops
    // allocating once the buffer has grown to the query's working set.
    // Valid only within the bin's execute waves — its Packets point into
    // the current Batch's arena — so ExecuteQueryPost clears it (capacity
    // kept) and it must never be read between bins.
    trace::PacketVec sample_buf;
  };

  void RunPredictive(const trace::Batch& batch, BinLog& log);
  void RunReactive(const trace::Batch& batch, BinLog& log);
  void RunNoShed(const trace::Batch& batch, BinLog& log);
  void RecordDroppedBin(const trace::Batch& batch, BinLog& log);
  // Applies the active directive's boost/truncate rungs to a finished rate
  // allocation, in place; shared by the predictive and reactive paths.
  void ApplyDegradation(std::vector<double>& rate, std::vector<bool>& disabled);

  // What one query's execution inside a bin produced. Tasks run on workers
  // and only touch state owned by their query; everything order-sensitive is
  // carried here and merged into the BinLog on the coordinating thread in
  // registration order, replaying the serial schedule charge by charge so
  // accumulated cycle counters are bit-identical to serial execution.
  struct QueryTaskResult {
    struct Charge {
      bool ls = false;  // ls_cycles (true) or ps_cycles (false)
      double cycles = 0.0;
    };
    double used = 0.0;       // measured query cycles
    double unsampled = 0.0;  // contribution to BinLog::packets_unsampled
    // Subsystem charges in serial call order. Capacity 3 is exact: the
    // sampled update_history path charges sampling + re-extraction + fit
    // (the query charge itself travels in `used`).
    std::array<Charge, 3> charges{};
    size_t num_charges = 0;

    void AddCharge(bool ls, double cycles) {
      assert(num_charges < charges.size());
      charges[num_charges++] = {ls, cycles};
    }
  };

  // Number of oracle calls the pre+post execution of one query will make for
  // the given parameters; the coordinator reserves exactly this many charge
  // slots per query (in registration order) before fanning tasks out, so
  // sequenced charges match the serial call schedule no matter which worker
  // runs when. Intra-query sharding never changes this count: a sharded
  // batch is still charged through the single reserved kQuery slot.
  static uint64_t PlanOracleCalls(double rate, bool update_history, bool has_shared_features);
  static uint64_t PlanCustomOracleCalls(double rate);

  // Per-query execution context threaded through the fan-out waves of one
  // bin: the packet view after sampling, the re-extracted features, the next
  // reserved charge slot, and the intra-query shard plan (partials forked in
  // the pre phase, filled by (query, shard) tasks, folded by the post phase
  // in shard-index order).
  struct QueryExec {
    double rate = 1.0;
    bool update_history = false;
    const trace::PacketVec* packets = nullptr;
    features::FeatureVector features{};
    uint64_t next_seq = 0;
    std::vector<exec::ShardRange> ranges;
    std::vector<std::unique_ptr<query::ShardState>> states;
    // TSC cycles each shard task spent in OnShardBatch, summed into the
    // kQuery WorkHint so wall-measuring oracles charge the scans that ran
    // on workers, not just the merge (the model oracle ignores it).
    std::vector<double> shard_cycles;
    bool sharded() const { return states.size() > 1; }
  };

  // First half of the per-query pipeline: samples the batch and re-extracts
  // features for the history update (reusing `shared_features` at full rate —
  // the §3.4.4 computation sharing), consuming reserved slots from
  // `base_seq`; then plans the intra-query shard fan-out over the sampled
  // view. Safe to call concurrently for distinct queries.
  void ExecuteQueryPre(QueryRuntime& qr, const trace::Batch& batch, double rate,
                       bool update_history, const features::FeatureVector* shared_features,
                       uint64_t base_seq, QueryExec& ex, QueryTaskResult& result);
  // Second half: the query charge itself — ProcessBatch, or the ordered
  // shard merge when the pre phase split the batch — then the model fit
  // (Alg. 1 line 12). Must run after every shard task of this query.
  void ExecuteQueryPost(QueryRuntime& qr, const trace::Batch& batch, QueryExec& ex,
                        QueryTaskResult& result);
  // Runs the (query, shard) tasks of every sharded entry in `ex` over the
  // pool, then the post phase of those queries; no-op when nothing sharded.
  void RunShardWaves(const trace::Batch& batch, std::vector<QueryExec>& ex,
                     std::vector<QueryTaskResult>& results);
  // Custom-shedding execution path (Ch. 6); custom batches are never sharded
  // (the method owns its own traversal order).
  QueryTaskResult ExecuteCustom(QueryRuntime& qr, const trace::Batch& batch, double rate,
                                double granted, uint64_t base_seq);

  void TickIntervals();
  void UpdateBufferAndThreshold(double spent_total);

  // System-level instruments, borrowed from registry_ and cached at
  // construction so per-bin updates are pointer stores, not map lookups.
  struct Instruments {
    obs::Counter* bins_total = nullptr;
    obs::Counter* packets_total = nullptr;
    obs::Counter* packets_dropped_total = nullptr;
    obs::Counter* packets_shed_total = nullptr;
    obs::Counter* batches_dropped_total = nullptr;
    obs::Counter* overload_bins_total = nullptr;
    obs::Gauge* capacity_cycles = nullptr;
    obs::Gauge* backlog_cycles = nullptr;
    obs::Gauge* rtthresh_cycles = nullptr;
    obs::Gauge* avail_cycles = nullptr;
    obs::Gauge* utilization = nullptr;
    obs::Gauge* prediction_error_ewma = nullptr;
    obs::Histogram* bin_utilization = nullptr;
    obs::Histogram* prediction_error_ratio = nullptr;
    // Indexed by ladder rung (1=boost 2=truncate 3=drop; [0] unused) so each
    // degraded bin counts under its rung-name label.
    std::array<obs::Counter*, 4> rt_degraded_bins{};
    obs::Counter* rt_dropped_bins = nullptr;
    obs::Counter* rt_truncated_queries = nullptr;
  };

  void InitInstruments();
  // Publishes one finished bin into the registry. Runs on the coordinating
  // thread after the bin's BinLog is final; reads the log, never writes any
  // shedding state, so it cannot perturb results.
  void UpdateBinInstruments(const BinLog& log);

  SystemConfig config_;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  Instruments ins_;
  std::unique_ptr<CostOracle> oracle_;
  std::unique_ptr<exec::ThreadPool> pool_;  // null when num_threads == 0
  exec::QueryExecutor executor_;
  std::unique_ptr<shed::ShedStrategy> strategy_;
  features::FeatureExtractor sys_extractor_;
  std::vector<std::unique_ptr<QueryRuntime>> queries_;
  util::Rng rng_;
  rt::Directive degrade_;
  rt::FaultInjector* injector_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  double capacity_ = 0.0;
  double backlog_cycles_ = 0.0;
  double rtthresh_ = 0.0;
  double ssthresh_ = 0.0;
  util::Ewma error_ewma_;     // \hat{error} of Alg. 1
  util::Ewma ls_ewma_;        // \hat{ls_cycles}
  util::Ewma ps_ewma_;        // prediction-subsystem overhead estimate
  double reactive_rate_ = 1.0;
  double reactive_consumed_prev_ = 0.0;
  size_t sys_bins_in_interval_ = 0;

  std::vector<BinLog> log_;
  uint64_t total_packets_ = 0;
  uint64_t total_dropped_ = 0;
};

}  // namespace shedmon::core
