#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "src/obs/snapshot.h"
#include "src/query/query.h"
#include "src/trace/batch.h"
#include "src/util/sync.h"
#include "src/util/thread_annotations.h"

namespace shedmon::core {

// What a unit of charged work is (Alg. 1 / Table 3.4 accounting buckets).
enum class WorkKind {
  kQuery,              // plug-in module processing a batch
  kFeatureExtraction,  // 42-feature extraction over a packet vector
  kFcbfMlr,            // feature selection + regression fit
  kSampling,           // packet/flow sampling of a batch
};

struct WorkHint {
  const query::Query* query = nullptr;
  const trace::PacketVec* packets = nullptr;
  double aux = 0.0;  // kind-specific scale (e.g. regression history length)
  // Cycles already spent on this unit of work outside `fn`: intra-query
  // shard tasks run (and are TSC-timed) on workers before the ordered merge
  // executes under the kQuery charge. Wall-measuring oracles must add this
  // to fn's own elapsed time or a sharded query's scan cost vanishes from
  // the books; the model oracle ignores it — its query charge is the
  // work-unit delta, which the merge applies inside fn.
  double shard_cycles = 0.0;
};

// Source of truth for "how many CPU cycles did this work cost". The paper
// measures with the TSC (§3.2.4); that is MeasuredCostOracle. Unit tests and
// the simulation experiments use ModelCostOracle, which still executes the
// work but charges a deterministic, feature-driven synthetic cost, so runs
// are bit-reproducible across machines.
//
// Thread-safety contract (src/exec/ parallel pipelines): Run/RunAt may be
// invoked concurrently as long as concurrent calls reference *distinct*
// queries in their hints — exactly what sharding per-query work guarantees.
// Sequenced charging keeps the model oracle deterministic under that
// concurrency: a coordinator reserves one sequence slot per upcoming call in
// the serial order (ReserveSequence), workers then charge at their assigned
// slots (RunAt), so every charge is bit-identical to the serial schedule no
// matter which worker executes it when.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  // Executes `fn` and returns the cycles to charge for it. Equivalent to
  // RunAt(ReserveSequence(1), ...).
  virtual double Run(WorkKind kind, const WorkHint& hint, const std::function<void()>& fn) = 0;

  // Reserves `n` consecutive charge slots and returns the first, advancing
  // the oracle's internal call counter as if the calls had already happened.
  // Oracles whose charges are order-independent (the measured one) may
  // return any value.
  virtual uint64_t ReserveSequence(uint64_t n) {
    (void)n;
    return 0;
  }

  // Executes `fn` and charges it as the seq-th oracle call. Defaults to the
  // unsequenced Run for oracles without ordering state.
  virtual double RunAt(uint64_t seq, WorkKind kind, const WorkHint& hint,
                       const std::function<void()>& fn) {
    (void)seq;
    return Run(kind, hint, fn);
  }

  // Query lifecycle hints from the owning system. OnQueryAdded (re)baselines
  // any per-query bookkeeping to the query's current state — a no-op for a
  // fresh instance, and exactly what makes a re-registered veteran instance
  // charge only its new work. OnQueryRemoved drops the bookkeeping so a
  // later allocation reusing the address can never inherit a stale baseline.
  // Default no-ops for oracles without per-query state.
  virtual void OnQueryAdded(const query::Query* query) { (void)query; }
  virtual void OnQueryRemoved(const query::Query* query) { (void)query; }

  // Cycle budget corresponding to one wall-clock time bin on this oracle's
  // scale; experiments usually override capacity explicitly instead.
  virtual double DefaultBinBudget(uint64_t bin_us) const = 0;

  virtual std::string_view name() const = 0;

  // Snapshot/restore of ordering-relevant state. The measured oracle is
  // stateless; the model oracle must preserve its call counter or the
  // deterministic pseudo-noise sequence restarts and restored runs diverge
  // from uninterrupted ones. Per-query baselines (last_work_) are rebuilt
  // via OnQueryAdded on the restored instances, not serialized.
  virtual void SaveState(obs::SnapshotWriter& w) const { (void)w; }
  virtual void LoadState(obs::SnapshotReader& r) { (void)r; }
};

// Charges real elapsed TSC cycles around the executed work.
class MeasuredCostOracle : public CostOracle {
 public:
  double Run(WorkKind kind, const WorkHint& hint, const std::function<void()>& fn) override;
  double DefaultBinBudget(uint64_t bin_us) const override;
  std::string_view name() const override { return "measured"; }
};

// Deterministic cost model. Query work is charged from the *delta* of the
// query's own work-unit counter (Query::work_units), so the charge reflects
// what the query actually did: uniform sampling reduces it proportionally, a
// custom shedding method reduces it by what it skips, and a selfish query
// that ignores its budget is charged in full (Ch. 6). System work (feature
// extraction, regression, sampling) is charged from linear functions of the
// hint. A small deterministic pseudo-noise keeps regression non-trivial.
class ModelCostOracle : public CostOracle {
 public:
  ModelCostOracle() = default;

  double Run(WorkKind kind, const WorkHint& hint, const std::function<void()>& fn) override;
  uint64_t ReserveSequence(uint64_t n) override;
  double RunAt(uint64_t seq, WorkKind kind, const WorkHint& hint,
               const std::function<void()>& fn) override;
  void OnQueryAdded(const query::Query* query) override;
  void OnQueryRemoved(const query::Query* query) override;
  double DefaultBinBudget(uint64_t bin_us) const override;
  std::string_view name() const override { return "model"; }
  void SaveState(obs::SnapshotWriter& w) const override;
  void LoadState(obs::SnapshotReader& r) override;

  // Fallback cost for queries that do not meter their work: linear model over
  // the batch's exact packet/byte/distinct counts (shape of Fig. 2.2).
  double QueryCost(std::string_view query_name, const trace::PacketVec& packets) const;

 private:
  std::atomic<uint64_t> call_count_{0};
  // Guards last_work_: entries are per-query, but first-touch insertion can
  // rehash the table under concurrent per-query calls.
  util::Mutex mutex_;
  std::unordered_map<const query::Query*, double> last_work_ SHEDMON_GUARDED_BY(mutex_);
};

enum class OracleKind { kMeasured, kModel };
std::unique_ptr<CostOracle> MakeOracle(OracleKind kind);

}  // namespace shedmon::core
