#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/query/query.h"
#include "src/trace/batch.h"

namespace shedmon::core {

// What a unit of charged work is (Alg. 1 / Table 3.4 accounting buckets).
enum class WorkKind {
  kQuery,              // plug-in module processing a batch
  kFeatureExtraction,  // 42-feature extraction over a packet vector
  kFcbfMlr,            // feature selection + regression fit
  kSampling,           // packet/flow sampling of a batch
};

struct WorkHint {
  const query::Query* query = nullptr;
  const trace::PacketVec* packets = nullptr;
  double aux = 0.0;  // kind-specific scale (e.g. regression history length)
};

// Source of truth for "how many CPU cycles did this work cost". The paper
// measures with the TSC (§3.2.4); that is MeasuredCostOracle. Unit tests and
// the simulation experiments use ModelCostOracle, which still executes the
// work but charges a deterministic, feature-driven synthetic cost, so runs
// are bit-reproducible across machines.
class CostOracle {
 public:
  virtual ~CostOracle() = default;

  // Executes `fn` and returns the cycles to charge for it.
  virtual double Run(WorkKind kind, const WorkHint& hint, const std::function<void()>& fn) = 0;

  // Cycle budget corresponding to one wall-clock time bin on this oracle's
  // scale; experiments usually override capacity explicitly instead.
  virtual double DefaultBinBudget(uint64_t bin_us) const = 0;

  virtual std::string_view name() const = 0;
};

// Charges real elapsed TSC cycles around the executed work.
class MeasuredCostOracle : public CostOracle {
 public:
  double Run(WorkKind kind, const WorkHint& hint, const std::function<void()>& fn) override;
  double DefaultBinBudget(uint64_t bin_us) const override;
  std::string_view name() const override { return "measured"; }
};

// Deterministic cost model. Query work is charged from the *delta* of the
// query's own work-unit counter (Query::work_units), so the charge reflects
// what the query actually did: uniform sampling reduces it proportionally, a
// custom shedding method reduces it by what it skips, and a selfish query
// that ignores its budget is charged in full (Ch. 6). System work (feature
// extraction, regression, sampling) is charged from linear functions of the
// hint. A small deterministic pseudo-noise keeps regression non-trivial.
class ModelCostOracle : public CostOracle {
 public:
  ModelCostOracle() = default;

  double Run(WorkKind kind, const WorkHint& hint, const std::function<void()>& fn) override;
  double DefaultBinBudget(uint64_t bin_us) const override;
  std::string_view name() const override { return "model"; }

  // Fallback cost for queries that do not meter their work: linear model over
  // the batch's exact packet/byte/distinct counts (shape of Fig. 2.2).
  double QueryCost(std::string_view query_name, const trace::PacketVec& packets) const;

 private:
  uint64_t call_count_ = 0;
  std::unordered_map<const query::Query*, double> last_work_;
};

enum class OracleKind { kMeasured, kModel };
std::unique_ptr<CostOracle> MakeOracle(OracleKind kind);

}  // namespace shedmon::core
