#pragma once

#include <cstddef>
#include <cstdint>

#include "src/net/packet.h"

namespace shedmon::net {

// Ethernet/IPv4 wire geometry shared by the pcap importer (src/trace) and the
// live capture front-end (src/capture).
inline constexpr size_t kEthHeaderLen = 14;
inline constexpr size_t kIpv4MinHeaderLen = 20;
inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;

inline uint16_t ReadBe16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

inline uint32_t ReadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

inline uint64_t ReadBe64(const uint8_t* p) {
  return (static_cast<uint64_t>(ReadBe32(p)) << 32) | ReadBe32(p + 4);
}

enum class FrameDecodeStatus : uint8_t {
  kOk = 0,
  // Too short for Ethernet+IPv4, or EtherType is not IPv4: not our traffic,
  // callers skip it silently (a capture link carries ARP and the rest).
  kNotIpv4,
  // Claims to be IPv4 but its geometry is impossible (IHL below 20 bytes or
  // past the captured bytes, TCP data offset below 20): attacker-shaped
  // input, counted and dropped — never dereferenced.
  kMalformed,
};

// One frame decoded against the bytes actually captured. `payload` points
// into the caller's buffer (null when no payload bytes were captured) and
// `payload_captured` is how many payload bytes are really present there —
// always <= rec.payload_len, which is derived from the IP total length and
// may exceed the capture when the frame was snapped short.
struct DecodedFrame {
  PacketRecord rec;
  const uint8_t* payload = nullptr;
  uint16_t payload_captured = 0;
};

// Hardened Ethernet/IPv4/TCP-or-UDP decoder: every offset is bounds-checked
// against `len` before it is read, so crafted IHL / data-offset values can
// classify a frame as malformed but can never push a read out of bounds.
// rec.ts_us is left at 0 — timestamps come from the transport (pcap record
// header, replay header, or arrival clock), not from the frame.
FrameDecodeStatus DecodeEthernetFrame(const uint8_t* data, size_t len, DecodedFrame* out);

}  // namespace shedmon::net
