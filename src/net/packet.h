#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace shedmon::net {

// IP protocol numbers used by the generator and queries.
inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;
inline constexpr uint8_t kProtoIcmp = 1;

// TCP flag bits carried in PacketRecord::tcp_flags.
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpAck = 0x10;
inline constexpr uint8_t kTcpFin = 0x01;

// Application class a flow belongs to; drives port selection, packet sizes and
// payload content in the generator, and ground truth for the p2p-detector.
enum class AppClass : uint8_t {
  kWeb = 0,
  kDns,
  kMail,
  kP2p,
  kStreaming,
  kSsh,
  kOther,
  kAttack,  // injected anomaly traffic
};
inline constexpr int kNumAppClasses = 8;
std::string_view AppClassName(AppClass app);

// Payload content family, used to deterministically materialize payload bytes
// per packet (signatures for pattern-search / p2p-detector live here).
enum class PayloadClass : uint8_t {
  kNone = 0,      // header-only trace
  kRandom,        // uniform bytes
  kHttpRequest,   // starts with "GET /... HTTP/1.1"
  kBittorrent,    // starts with the BitTorrent handshake signature
  kGnutella,      // starts with "GNUTELLA CONNECT"
  kEdonkey,       // starts with the eDonkey magic byte 0xe3
};

// Classic 5-tuple flow key.
struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  // Canonical 13-byte serialization, the hash key for sketches and samplers.
  std::array<uint8_t, 13> Bytes() const;
};

struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const;
};

// One captured packet. Payload bytes are not stored in the trace; they are
// materialized deterministically from (payload_seed, payload_class) when a
// batch is built, which keeps multi-minute traces small in memory.
struct PacketRecord {
  uint64_t ts_us = 0;  // timestamp, microseconds since trace start
  FiveTuple tuple;
  uint16_t wire_len = 0;     // bytes on the wire (IP length)
  uint16_t payload_len = 0;  // L4 payload bytes (0 for header-only traces)
  uint8_t tcp_flags = 0;
  AppClass app = AppClass::kOther;        // ground truth, never read by queries
  PayloadClass payload_class = PayloadClass::kNone;
  uint32_t payload_seed = 0;
};

// A packet as seen by queries: the record plus materialized payload bytes
// (possibly empty) owned by the enclosing Batch arena.
struct Packet {
  const PacketRecord* rec = nullptr;
  const uint8_t* payload = nullptr;
  uint16_t payload_len = 0;

  const FiveTuple& tuple() const { return rec->tuple; }
  uint64_t ts_us() const { return rec->ts_us; }
  uint16_t wire_len() const { return rec->wire_len; }

  // Payload-less view over a bare record, for callers that hold PacketRecords
  // and push them through Packet-based interfaces (the payload is then
  // materialized deterministically from the record downstream). The view
  // borrows `rec`; it must not outlive the record.
  static Packet View(const PacketRecord& rec) { return Packet{&rec, nullptr, rec.payload_len}; }
};

// Dotted-quad helper for reports.
std::string Ipv4ToString(uint32_t ip);

}  // namespace shedmon::net
