#include "src/net/packet.h"

#include <cstdio>
#include <cstring>

#include "src/util/rng.h"

namespace shedmon::net {

std::string_view AppClassName(AppClass app) {
  switch (app) {
    case AppClass::kWeb:
      return "web";
    case AppClass::kDns:
      return "dns";
    case AppClass::kMail:
      return "mail";
    case AppClass::kP2p:
      return "p2p";
    case AppClass::kStreaming:
      return "streaming";
    case AppClass::kSsh:
      return "ssh";
    case AppClass::kOther:
      return "other";
    case AppClass::kAttack:
      return "attack";
  }
  return "unknown";
}

std::array<uint8_t, 13> FiveTuple::Bytes() const {
  std::array<uint8_t, 13> out;
  std::memcpy(out.data(), &src_ip, 4);
  std::memcpy(out.data() + 4, &dst_ip, 4);
  std::memcpy(out.data() + 8, &src_port, 2);
  std::memcpy(out.data() + 10, &dst_port, 2);
  out[12] = proto;
  return out;
}

size_t FiveTupleHash::operator()(const FiveTuple& t) const {
  uint64_t a = (static_cast<uint64_t>(t.src_ip) << 32) | t.dst_ip;
  uint64_t b = (static_cast<uint64_t>(t.src_port) << 24) |
               (static_cast<uint64_t>(t.dst_port) << 8) | t.proto;
  return static_cast<size_t>(util::HashU64(a ^ util::HashU64(b)));
}

std::string Ipv4ToString(uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace shedmon::net
