#include "src/net/frame.h"

namespace shedmon::net {

FrameDecodeStatus DecodeEthernetFrame(const uint8_t* data, size_t len, DecodedFrame* out) {
  *out = DecodedFrame{};
  if (len < kEthHeaderLen + kIpv4MinHeaderLen || ReadBe16(data + 12) != kEtherTypeIpv4) {
    return FrameDecodeStatus::kNotIpv4;
  }
  const uint8_t* ip = data + kEthHeaderLen;
  if ((ip[0] >> 4) != 4) {
    return FrameDecodeStatus::kMalformed;  // EtherType said IPv4, header disagrees
  }
  const size_t ihl = static_cast<size_t>(ip[0] & 0x0f) * 4;
  if (ihl < kIpv4MinHeaderLen || kEthHeaderLen + ihl > len) {
    // An IHL below the minimum header, or one that points past the captured
    // bytes, would previously wrap the l4_avail subtraction into a huge
    // value and read ports/flags out of bounds.
    return FrameDecodeStatus::kMalformed;
  }

  PacketRecord& rec = out->rec;
  rec.wire_len = ReadBe16(ip + 2);
  rec.tuple.proto = ip[9];
  rec.tuple.src_ip = ReadBe32(ip + 12);
  rec.tuple.dst_ip = ReadBe32(ip + 16);

  const uint8_t* l4 = ip + ihl;
  const size_t l4_avail = len - kEthHeaderLen - ihl;  // safe: ihl bounded above
  if (l4_avail >= 4) {
    rec.tuple.src_port = ReadBe16(l4);
    rec.tuple.dst_port = ReadBe16(l4 + 2);
  }
  size_t l4_header = 8;
  if (rec.tuple.proto == kProtoTcp && l4_avail >= 14) {
    const size_t data_offset = static_cast<size_t>(l4[12] >> 4) * 4;
    if (data_offset < 20) {
      return FrameDecodeStatus::kMalformed;  // TCP header cannot be under 20 bytes
    }
    l4_header = data_offset;
    rec.tcp_flags = l4[13];
  }

  const size_t header_total = ihl + l4_header;
  rec.payload_len =
      rec.wire_len > header_total ? static_cast<uint16_t>(rec.wire_len - header_total) : 0;
  rec.payload_class = PayloadClass::kNone;  // wire bytes carry the payload, not a seed

  // Payload bytes actually captured: the data offset may legitimately point
  // past a snaplen-truncated capture, in which case nothing is available.
  if (rec.payload_len > 0 && l4_avail > l4_header) {
    const size_t captured_after_headers = l4_avail - l4_header;
    out->payload_captured = static_cast<uint16_t>(
        captured_after_headers < rec.payload_len ? captured_after_headers : rec.payload_len);
    out->payload = data + kEthHeaderLen + header_total;
  }
  return FrameDecodeStatus::kOk;
}

}  // namespace shedmon::net
