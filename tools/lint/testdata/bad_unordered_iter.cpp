// lint-test-path: src/query/bad_unordered_iter.cpp
//
// Fixture: range-for over unordered containers (direct members, struct
// fields, and through a `using` alias) fires [unordered-iter]; ordered
// containers and annotated loops stay silent. Never compiled — consumed by
// shedmon_lint.py --self-test.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace shedmon::query {

struct Truth {
  std::unordered_set<uint64_t> all;
};

using FlowTable = std::unordered_map<uint64_t, uint64_t>;

class Agg {
 public:
  uint64_t Total(const Truth& truth) const {
    uint64_t sum = 0;
    for (const auto key : truth.all) {  // expect: unordered-iter
      sum += key;
    }
    for (const auto& [flow, bytes] : table_) {  // expect: unordered-iter
      sum += bytes;
    }

    // lint: order-insensitive fixture: summation commutes
    for (const auto& [flow, bytes] : table_) {
      sum += bytes;
    }

    // Negatives: ordered containers and classic fors are fine.
    for (const auto& [key, value] : sorted_) {
      sum += value;
    }
    for (const uint64_t v : plain_) {
      sum += v;
    }
    for (std::size_t i = 0; i < plain_.size(); ++i) {
      sum += plain_[i];
    }
    return sum;
  }

 private:
  FlowTable table_;
  std::map<uint64_t, uint64_t> sorted_;
  std::vector<uint64_t> plain_;
};

}  // namespace shedmon::query
