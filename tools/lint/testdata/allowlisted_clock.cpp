// lint-test-path: src/util/cycle_clock.cpp
//
// Fixture: the wall-clock allowlist (src/rt/clock.*, src/util/cycle_clock.*,
// src/obs/server.*) disables [wall-clock] for the files whose whole purpose
// is to BE a time source — zero findings expected here. Never compiled —
// consumed by shedmon_lint.py --self-test.
#include <chrono>
#include <cstdint>

namespace shedmon::util {

uint64_t MonotonicNowUsFixture() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace shedmon::util
