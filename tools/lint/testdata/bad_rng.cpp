// lint-test-path: src/core/bad_rng.cpp
//
// Fixture: nondeterministic / unseeded randomness fires [rng] anywhere under
// src/, explicitly seeded engines stay silent, the allow() annotation
// suppresses. Never compiled — consumed by shedmon_lint.py --self-test.
#include <cstdlib>
#include <random>

namespace shedmon::core {

int BadRandom() {
  std::random_device entropy;                 // expect: rng
  std::mt19937 unseeded;                      // expect: rng
  std::mt19937 braced{};                      // expect: rng
  std::mt19937_64 wide;                       // expect: rng
  std::default_random_engine engine(7);       // expect: rng
  srand(42);                                  // expect: rng
  int r = rand();                             // expect: rng
  double d = drand48();                       // expect: rng

  // Negatives: an explicit seed (or a pure type access) is fine.
  std::mt19937 seeded(0x5eed);
  std::mt19937_64 seeded_braced{0x5eedULL};
  using Result = std::mt19937::result_type;

  // lint: allow(rng) fixture: the annotation must suppress the rule
  std::random_device annotated;

  (void)entropy; (void)unseeded; (void)braced; (void)wide; (void)engine;
  (void)d; (void)seeded; (void)seeded_braced; (void)annotated;
  return r + static_cast<int>(Result{0});
}

}  // namespace shedmon::core
