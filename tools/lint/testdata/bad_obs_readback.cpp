// lint-test-path: src/predict/bad_obs_readback.cpp
//
// Fixture: reading observability state from a decision subsystem fires
// [obs-read]; writing instruments and the checkpoint Save/Load types stay
// silent. Never compiled — consumed by shedmon_lint.py --self-test.

namespace obs {
class MetricsRegistry;
class Counter;
class SnapshotWriter;
class SnapshotReader;
}  // namespace obs

namespace shedmon::predict {

void BadReadback(obs::MetricsRegistry& registry, obs::MetricsRegistry* reg_ptr,
                 obs::Counter& packets) {
  auto snap = registry.Snapshot();            // expect: obs-read
  auto snap2 = reg_ptr->Snapshot();           // expect: obs-read
  double level = packets.Value();             // expect: obs-read
  (void)snap; (void)snap2; (void)level;
}

void UsesSnapshotType(const obs::MetricsSnapshot& snap);  // expect: obs-read

// Negatives: one-way writes and the crash-safe checkpoint types are not
// observability readback — SnapshotWriter/SnapshotReader must not match.
void GoodOneWay(obs::Counter& packets);
void SaveState(obs::SnapshotWriter& writer);
void LoadState(obs::SnapshotReader& reader);

void Annotated(obs::MetricsRegistry& registry) {
  // lint: allow(obs-read) fixture: the annotation must suppress the rule
  auto snap = registry.Snapshot();
  (void)snap;
}

}  // namespace shedmon::predict
