// lint-test-path: src/shed/clean_decision.cpp
//
// Fixture: idiomatic decision-path code produces ZERO findings — injected
// rt::Clock time, explicitly seeded randomness, one-way obs:: writes, and
// ordered iteration only. Never compiled — consumed by
// shedmon_lint.py --self-test.
#include <cstdint>
#include <map>
#include <random>
#include <vector>

namespace obs {
class Counter;
}

namespace shedmon::shed {

class Controller {
 public:
  // Time arrives through the injectable clock, never read ambiently.
  void Tick(uint64_t now_us, obs::Counter& decisions) {
    last_tick_us_ = now_us;
    double total = 0.0;
    for (const auto& [bin, load] : load_by_bin_) {
      total += load;
    }
    for (const double sample : history_) {
      total += sample;
    }
    (void)decisions;  // one-way writes only; values are never read back
    (void)total;
  }

  // Randomness is fine when the seed is explicit and recorded.
  uint32_t Jitter(uint64_t seed) {
    std::mt19937 rng(static_cast<uint32_t>(seed));
    return rng();
  }

 private:
  uint64_t last_tick_us_ = 0;
  std::map<uint32_t, double> load_by_bin_;
  std::vector<double> history_;
};

}  // namespace shedmon::shed
