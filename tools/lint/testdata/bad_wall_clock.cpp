// lint-test-path: src/shed/bad_wall_clock.cpp
//
// Fixture: every unsanctioned time source fires [wall-clock] in a decision
// subsystem, and the allow() annotation suppresses it. Never compiled —
// consumed by shedmon_lint.py --self-test.
#include <chrono>
#include <ctime>
#include <sys/time.h>

namespace shedmon::shed {

void BadNow() {
  auto a = std::chrono::steady_clock::now();           // expect: wall-clock
  auto b = std::chrono::system_clock::now();           // expect: wall-clock
  auto c = std::chrono::high_resolution_clock::now();  // expect: wall-clock
  std::time_t t = std::time(nullptr);                  // expect: wall-clock
  std::time_t u = time(nullptr);                       // expect: wall-clock
  struct timeval tv;
  gettimeofday(&tv, nullptr);                          // expect: wall-clock
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);                 // expect: wall-clock
  std::tm* parts = localtime(&t);                      // expect: wall-clock

  // lint: allow(wall-clock) fixture: the annotation must suppress the rule
  auto sanctioned_by_annotation = std::chrono::steady_clock::now();

  // Negatives: identifiers that merely contain "time" stay silent.
  double runtime (0.0);
  (void)runtime;
  (void)a; (void)b; (void)c; (void)u; (void)parts;
  (void)sanctioned_by_annotation;
}

}  // namespace shedmon::shed
